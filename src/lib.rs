//! Umbrella crate for the Primo reproduction workspace.
//!
//! Re-exports the public API of every sub-crate so that examples and
//! integration tests can use a single `primo_repro::...` namespace.
pub use primo_baselines as baselines;
pub use primo_common as common;
pub use primo_core as core;
pub use primo_net as net;
pub use primo_runtime as runtime;
pub use primo_storage as storage;
pub use primo_wal as wal;
pub use primo_workloads as workloads;
