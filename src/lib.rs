//! Reproduction of **Primo** (ICDE 2023): *Knock Out 2PC with Practicality
//! Intact — a High-performance and General Distributed Transaction Protocol*.
//!
//! This crate is the public face of the workspace. Three entry points cover
//! everything the paper's evaluation does:
//!
//! * **[`Primo`]** — build a simulated shared-nothing cluster with
//!   [`Primo::builder()`] (partitions, workers, group-commit scheme, crash
//!   plans) and run ad-hoc transactions through [`Session`]s. Transactions
//!   are arbitrary programs over [`TxnContext`]: they may branch on what they
//!   read, so the engine never needs a read/write set in advance — the
//!   generality argument of §1.
//! * **[`ExperimentBuilder`]** — declare a measurement run fluently
//!   (`.protocol(..).workload(..).scale(..).crash(..)`) and receive a
//!   [`MetricsSnapshot`]; this is what the figure harnesses in `primo-bench`
//!   are written against.
//! * **[`ProtocolRegistry`]** — Primo, its two ablations and all five
//!   baselines (2PL×2, Silo, Sundial, Aria, TAPIR) behind one
//!   [`Protocol`] constructor keyed by [`ProtocolKind`], each paired with
//!   the group-commit scheme §6.1.3 prescribes.
//!
//! ```
//! use primo_repro::{Experiment, PartitionId, Primo, ProtocolKind, Scale, TableId, Value};
//!
//! // Ad-hoc transactions through the cluster facade:
//! let primo = Primo::builder().partitions(2).fast_local().build();
//! let session = primo.session();
//! session.load(PartitionId(0), TableId(0), 1, Value::from_u64(10));
//! session
//!     .transaction(PartitionId(0), |ctx| {
//!         let v = ctx.read(PartitionId(0), TableId(0), 1)?.as_u64();
//!         // `insert` creates the record on the remote partition at commit;
//!         // a plain `write` updates an existing one.
//!         ctx.insert(PartitionId(1), TableId(0), 2, Value::from_u64(v * 2))
//!     })
//!     .unwrap();
//! primo.shutdown();
//!
//! // A measurement run:
//! let snap = Experiment::new()
//!     .protocol(ProtocolKind::Primo)
//!     .scale(Scale::test())
//!     .fast_local()
//!     .run();
//! assert!(snap.committed > 0);
//! ```
//!
//! The sub-crates remain accessible under namespaced modules ([`common`],
//! [`storage`], [`net`], [`wal`], [`runtime`], [`core`], [`baselines`],
//! [`workloads`]) for low-level integration — protocol internals, WAL
//! primitives, lock tables — but experiment and transaction entry points
//! live here.

pub mod experiment;
pub mod facade;
pub mod registry;

pub use experiment::{Experiment, ExperimentBuilder, Scale};
pub use facade::{ClusterBuilder, Primo, Session};
pub use registry::{ProtocolEntry, ProtocolRegistry};

// The shared vocabulary, re-exported flat so facade users rarely need the
// namespaced modules.
pub use primo_common::config::{
    ClusterConfig, CommitMode, LoggingScheme, NetConfig, PrimoConfig, ProtocolKind, WalConfig,
};
pub use primo_common::{
    AbortReason, FastRng, Key, MetricsSnapshot, PartitionId, Phase, TableId, TxnError, TxnId,
    TxnResult, Value, ZipfGen,
};
pub use primo_core::PrimoProtocol;
pub use primo_recovery::{CheckpointStats, Checkpointer, RecoveryManager, RecoveryReport};
pub use primo_runtime::commit::{AtomicCommit, ClassicTwoPc, PaxosCommit, PrepareOutcome};
pub use primo_runtime::experiment::{CrashKind, CrashPlan};
pub use primo_runtime::prefetch::{Footprint, PrefetchOutcome, ReadFanout};
pub use primo_runtime::protocol::{CommittedTxn, Protocol};
pub use primo_runtime::snapshot::{execute_snapshot, SnapshotOutcome, SnapshotSession};
pub use primo_runtime::txn::{ClosureProgram, TxnContext, TxnProgram, Workload};
pub use primo_trace::{FlightRecorder, Timeline, TraceEvent, TraceEventKind};
pub use primo_workloads::{
    SmallbankConfig, SmallbankWorkload, TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload,
};

// Namespaced access to the sub-crates for advanced integration.
pub use primo_baselines as baselines;
pub use primo_common as common;
pub use primo_core as core;
pub use primo_net as net;
pub use primo_recovery as recovery;
pub use primo_runtime as runtime;
pub use primo_storage as storage;
pub use primo_trace as trace;
pub use primo_wal as wal;
pub use primo_workloads as workloads;
