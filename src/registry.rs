//! The protocol registry: one place where every distributed transaction
//! protocol — Primo, its ablations and the five baselines — registers a
//! constructor behind the [`Protocol`] trait object.
//!
//! Figure harnesses, benches and examples select protocols by
//! [`ProtocolKind`] or by display name; nothing outside this module needs to
//! know which crate implements which protocol. The registry also records the
//! group-commit scheme each protocol is paired with (§6.1.3 of the paper:
//! baselines get COCO's epoch group commit, full Primo gets the watermark
//! scheme, Aria and TAPIR confirm durability themselves).

use primo_baselines::{AriaProtocol, SiloProtocol, SundialProtocol, TapirProtocol, TwoPlProtocol};
use primo_common::config::{CommitMode, LoggingScheme, ProtocolKind};
use primo_core::PrimoProtocol;
use primo_runtime::protocol::Protocol;
use std::sync::Arc;

/// A constructor producing a fresh protocol instance.
pub type ProtocolCtor = Arc<dyn Fn() -> Arc<dyn Protocol> + Send + Sync>;

/// One registered protocol.
#[derive(Clone)]
pub struct ProtocolEntry {
    /// The kind this entry is keyed by.
    pub kind: ProtocolKind,
    /// Display name, matching the paper's figure legends.
    pub name: &'static str,
    /// The group-commit scheme this protocol is paired with by default.
    pub logging: LoggingScheme,
    /// The atomic-commit mode distributed transactions of this protocol
    /// decide with (default: classic blocking 2PC, the paper's baseline).
    pub commit: CommitMode,
    ctor: ProtocolCtor,
}

impl std::fmt::Debug for ProtocolEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtocolEntry")
            .field("kind", &self.kind)
            .field("name", &self.name)
            .field("logging", &self.logging)
            .field("commit", &self.commit)
            .finish()
    }
}

impl ProtocolEntry {
    /// Construct a fresh instance of this protocol.
    pub fn build(&self) -> Arc<dyn Protocol> {
        (self.ctor)()
    }
}

/// Registry of every available protocol, keyed by [`ProtocolKind`].
#[derive(Debug, Clone)]
pub struct ProtocolRegistry {
    entries: Vec<ProtocolEntry>,
}

impl Default for ProtocolRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl ProtocolRegistry {
    /// An empty registry (for tests or fully custom protocol sets).
    pub fn empty() -> Self {
        ProtocolRegistry {
            entries: Vec::new(),
        }
    }

    /// The standard registry: Primo, both ablations and all five baselines,
    /// each paired with its group-commit scheme per §6.1.3.
    pub fn standard() -> Self {
        let mut reg = Self::empty();
        reg.register(
            ProtocolKind::TwoPlNoWait,
            LoggingScheme::CocoEpoch,
            Arc::new(|| Arc::new(TwoPlProtocol::no_wait())),
        );
        reg.register(
            ProtocolKind::TwoPlWaitDie,
            LoggingScheme::CocoEpoch,
            Arc::new(|| Arc::new(TwoPlProtocol::wait_die())),
        );
        reg.register(
            ProtocolKind::Silo,
            LoggingScheme::CocoEpoch,
            Arc::new(|| Arc::new(SiloProtocol::new())),
        );
        reg.register(
            ProtocolKind::Sundial,
            LoggingScheme::CocoEpoch,
            Arc::new(|| Arc::new(SundialProtocol::new())),
        );
        // Aria logs inputs in its sequencing layer and TAPIR replicates in
        // its prepare round: both confirm durability themselves, so the
        // configured scheme is not on their commit path.
        reg.register(
            ProtocolKind::Aria,
            LoggingScheme::Watermark,
            Arc::new(|| Arc::new(AriaProtocol::new(Default::default()))),
        );
        reg.register(
            ProtocolKind::Tapir,
            LoggingScheme::Watermark,
            Arc::new(|| Arc::new(TapirProtocol::new())),
        );
        reg.register(
            ProtocolKind::Primo,
            LoggingScheme::Watermark,
            Arc::new(|| Arc::new(PrimoProtocol::full())),
        );
        reg.register(
            ProtocolKind::PrimoNoWm,
            LoggingScheme::CocoEpoch,
            Arc::new(|| Arc::new(PrimoProtocol::full().labeled("Primo w/o WM"))),
        );
        reg.register(
            ProtocolKind::PrimoNoWcfNoWm,
            LoggingScheme::CocoEpoch,
            Arc::new(|| Arc::new(PrimoProtocol::without_wcf().labeled("Primo w/o WM & WCF"))),
        );
        reg
    }

    /// Register (or replace) the constructor for a protocol kind. The display
    /// name is the kind's figure label.
    pub fn register(&mut self, kind: ProtocolKind, logging: LoggingScheme, ctor: ProtocolCtor) {
        self.entries.retain(|e| e.kind != kind);
        self.entries.push(ProtocolEntry {
            kind,
            name: kind.label(),
            logging,
            commit: CommitMode::default(),
            ctor,
        });
    }

    /// Named knob: set the atomic-commit mode one protocol's distributed
    /// transactions decide with (chainable).
    ///
    /// # Panics
    /// Panics if the kind is not registered — a silently dropped knob would
    /// make an ablation run measure the wrong protocol.
    pub fn with_commit_mode(mut self, kind: ProtocolKind, mode: CommitMode) -> Self {
        self.set_commit_mode(kind, mode);
        self
    }

    /// In-place form of [`ProtocolRegistry::with_commit_mode`].
    ///
    /// # Panics
    /// Panics if the kind is not registered.
    pub fn set_commit_mode(&mut self, kind: ProtocolKind, mode: CommitMode) {
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.kind == kind)
            .unwrap_or_else(|| panic!("protocol {kind:?} is not registered"));
        entry.commit = mode;
    }

    /// Set the atomic-commit mode of *every* registered protocol (chainable)
    /// — the whole-matrix ablation switch.
    pub fn with_commit_mode_everywhere(mut self, mode: CommitMode) -> Self {
        for e in &mut self.entries {
            e.commit = mode;
        }
        self
    }

    /// The atomic-commit mode a kind decides distributed transactions with.
    /// Defaults to classic 2PC for unregistered kinds.
    pub fn commit_mode_for(&self, kind: ProtocolKind) -> CommitMode {
        self.entry(kind).map(|e| e.commit).unwrap_or_default()
    }

    /// All registered kinds, in registration order.
    pub fn kinds(&self) -> Vec<ProtocolKind> {
        self.entries.iter().map(|e| e.kind).collect()
    }

    /// Look up the entry for a kind.
    pub fn entry(&self, kind: ProtocolKind) -> Option<&ProtocolEntry> {
        self.entries.iter().find(|e| e.kind == kind)
    }

    /// Look up an entry by display name (case-insensitive), e.g. `"Primo"`,
    /// `"2PL(NW)"`, `"Sundial"`.
    pub fn entry_by_name(&self, name: &str) -> Option<&ProtocolEntry> {
        self.entries
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
    }

    /// Construct a fresh protocol instance for a kind.
    ///
    /// # Panics
    /// Panics if the kind is not registered; use [`ProtocolRegistry::entry`]
    /// for a fallible lookup.
    pub fn build(&self, kind: ProtocolKind) -> Arc<dyn Protocol> {
        self.entry(kind)
            .unwrap_or_else(|| panic!("protocol {kind:?} is not registered"))
            .build()
    }

    /// The group-commit scheme a kind is paired with (§6.1.3). Defaults to
    /// COCO for unregistered kinds.
    pub fn logging_scheme_for(&self, kind: ProtocolKind) -> LoggingScheme {
        self.entry(kind)
            .map(|e| e.logging)
            .unwrap_or(LoggingScheme::CocoEpoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_covers_every_kind() {
        let reg = ProtocolRegistry::standard();
        for kind in [
            ProtocolKind::TwoPlNoWait,
            ProtocolKind::TwoPlWaitDie,
            ProtocolKind::Silo,
            ProtocolKind::Sundial,
            ProtocolKind::Aria,
            ProtocolKind::Tapir,
            ProtocolKind::Primo,
            ProtocolKind::PrimoNoWm,
            ProtocolKind::PrimoNoWcfNoWm,
        ] {
            let p = reg.build(kind);
            assert_eq!(p.name(), kind.label(), "{kind:?} label mismatch");
        }
        assert_eq!(reg.kinds().len(), 9);
    }

    #[test]
    fn logging_pairing_follows_the_paper() {
        let reg = ProtocolRegistry::standard();
        assert_eq!(
            reg.logging_scheme_for(ProtocolKind::Primo),
            LoggingScheme::Watermark
        );
        assert_eq!(
            reg.logging_scheme_for(ProtocolKind::Sundial),
            LoggingScheme::CocoEpoch
        );
        assert_eq!(
            reg.logging_scheme_for(ProtocolKind::PrimoNoWm),
            LoggingScheme::CocoEpoch
        );
    }

    #[test]
    fn lookup_by_name_matches_figure_legends() {
        let reg = ProtocolRegistry::standard();
        assert_eq!(
            reg.entry_by_name("primo").unwrap().kind,
            ProtocolKind::Primo
        );
        assert_eq!(
            reg.entry_by_name("2PL(NW)").unwrap().kind,
            ProtocolKind::TwoPlNoWait
        );
        assert!(reg.entry_by_name("nope").is_none());
    }

    #[test]
    fn commit_mode_knob_is_per_protocol() {
        let reg = ProtocolRegistry::standard()
            .with_commit_mode(ProtocolKind::TwoPlNoWait, CommitMode::PaxosCommit);
        assert_eq!(
            reg.commit_mode_for(ProtocolKind::TwoPlNoWait),
            CommitMode::PaxosCommit
        );
        // Everyone else keeps the blocking default.
        assert_eq!(reg.commit_mode_for(ProtocolKind::Primo), CommitMode::TwoPc);
        let reg = reg.with_commit_mode_everywhere(CommitMode::PaxosCommit);
        for kind in reg.kinds() {
            assert_eq!(reg.commit_mode_for(kind), CommitMode::PaxosCommit);
        }
    }

    #[test]
    #[should_panic(expected = "is not registered")]
    fn commit_mode_knob_rejects_unregistered_kinds() {
        let _ = ProtocolRegistry::empty()
            .with_commit_mode(ProtocolKind::Primo, CommitMode::PaxosCommit);
    }

    #[test]
    fn register_replaces_existing_entry() {
        let mut reg = ProtocolRegistry::standard();
        reg.register(
            ProtocolKind::Primo,
            LoggingScheme::CocoEpoch,
            Arc::new(|| Arc::new(PrimoProtocol::without_wcf())),
        );
        assert_eq!(reg.kinds().len(), 9);
        assert_eq!(
            reg.logging_scheme_for(ProtocolKind::Primo),
            LoggingScheme::CocoEpoch
        );
    }
}
