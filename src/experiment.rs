//! The [`ExperimentBuilder`]: declare a measurement run fluently —
//! `.protocol(..).workload(..).scale(..).crash(..)` — and get a
//! [`MetricsSnapshot`] back.
//!
//! This absorbs what used to be free functions in the bench crate plus the
//! raw `ExperimentOptions` struct: the builder assembles the cluster
//! configuration (pairing each protocol with its §6.1.3 group-commit scheme
//! via the [`ProtocolRegistry`]), loads the workload, runs worker threads for
//! warm-up + measurement, optionally injects a partition crash / control-lag
//! / slowdown, and aggregates the metrics.
//!
//! ```
//! use primo_repro::{Experiment, ProtocolKind, Scale};
//!
//! let snap = Experiment::new()
//!     .protocol(ProtocolKind::Primo)
//!     .scale(Scale::test())
//!     .fast_local()
//!     .ycsb_with(|y| y.zipf_theta = 0.8)
//!     .run();
//! assert!(snap.committed > 0);
//! ```

use crate::registry::ProtocolRegistry;
use primo_common::config::{ClusterConfig, CommitMode, LoggingScheme, ProtocolKind};
use primo_common::{MetricsSnapshot, PartitionId};
use primo_runtime::experiment::{run_experiment, CrashPlan, ExperimentOptions};
use primo_runtime::protocol::Protocol;
use primo_runtime::txn::Workload;
use primo_workloads::{
    SmallbankConfig, SmallbankWorkload, TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload,
};
use std::sync::Arc;
use std::time::Duration;

/// Run-scale of an experiment: cluster size, data-set size and how long each
/// data point runs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    pub partitions: usize,
    pub workers_per_partition: usize,
    pub ycsb_keys_per_partition: u64,
    pub duration_ms: u64,
    pub warmup_ms: u64,
}

impl Scale {
    /// Quick mode: every figure in a few minutes (used by CI and the recorded
    /// outputs in EXPERIMENTS.md).
    pub fn quick() -> Self {
        Scale {
            partitions: 4,
            workers_per_partition: 4,
            ycsb_keys_per_partition: 50_000,
            duration_ms: 400,
            warmup_ms: 100,
        }
    }

    /// Full mode: longer runs and larger tables for smoother numbers.
    pub fn full() -> Self {
        Scale {
            partitions: 4,
            workers_per_partition: 8,
            ycsb_keys_per_partition: 200_000,
            duration_ms: 2_000,
            warmup_ms: 300,
        }
    }

    /// Miniature mode for unit/integration tests: a 2-partition cluster, a
    /// tiny table and a ~150 ms measurement window.
    pub fn test() -> Self {
        Scale {
            partitions: 2,
            workers_per_partition: 2,
            ycsb_keys_per_partition: 2_000,
            duration_ms: 150,
            warmup_ms: 30,
        }
    }

    pub fn with_partitions(mut self, n: usize) -> Self {
        self.partitions = n;
        self
    }

    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers_per_partition = n;
        self
    }

    /// Default YCSB configuration at this scale (paper §6.1.2 parameters).
    pub fn ycsb_config(&self) -> YcsbConfig {
        YcsbConfig::paper_default(self.partitions, self.ycsb_keys_per_partition)
    }

    /// Default TPC-C configuration at this scale.
    pub fn tpcc_config(&self) -> TpccConfig {
        TpccConfig::paper_default(self.partitions)
    }
}

enum WorkloadSpec {
    Ycsb(YcsbConfig),
    /// Deferred: built from the *final* scale at `run()` time, then tweaked,
    /// so `.ycsb_with(..).partitions(n)` cannot desync workload and cluster.
    YcsbWith(Box<dyn FnOnce(&mut YcsbConfig)>),
    Tpcc(TpccConfig),
    /// Deferred like [`WorkloadSpec::YcsbWith`].
    TpccWith(Box<dyn FnOnce(&mut TpccConfig)>),
    Smallbank(SmallbankConfig),
    Custom(Arc<dyn Workload>),
}

/// A deferred edit to the assembled [`ClusterConfig`].
type ClusterTweak = Box<dyn FnOnce(&mut ClusterConfig)>;

/// Fluent builder for one experiment run. See the module docs for an example.
pub struct ExperimentBuilder {
    registry: ProtocolRegistry,
    kind: ProtocolKind,
    protocol_override: Option<Arc<dyn Protocol>>,
    scale: Scale,
    workload: Option<WorkloadSpec>,
    logging_override: Option<LoggingScheme>,
    commit_override: Option<CommitMode>,
    crash: Option<CrashPlan>,
    lag_partition: Option<(PartitionId, u64)>,
    slow_partition: Option<(PartitionId, u64)>,
    checkpoint_interval: Option<Duration>,
    fast_local: bool,
    cluster_tweaks: Vec<ClusterTweak>,
}

/// Short alias for [`ExperimentBuilder`], used in examples and docs.
pub type Experiment = ExperimentBuilder;

impl Default for ExperimentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ExperimentBuilder {
    pub fn new() -> Self {
        ExperimentBuilder {
            registry: ProtocolRegistry::standard(),
            kind: ProtocolKind::Primo,
            protocol_override: None,
            scale: Scale::quick(),
            workload: None,
            logging_override: None,
            commit_override: None,
            crash: None,
            lag_partition: None,
            slow_partition: None,
            checkpoint_interval: None,
            fast_local: false,
            cluster_tweaks: Vec::new(),
        }
    }

    /// Use unit-test timing: microsecond-scale network latency, a 1 ms
    /// watermark interval and short back-off, so miniature experiments finish
    /// in milliseconds. Combine with [`Scale::test`].
    pub fn fast_local(mut self) -> Self {
        self.fast_local = true;
        self
    }

    /// Select the protocol under test by kind (default Primo).
    pub fn protocol(mut self, kind: ProtocolKind) -> Self {
        self.kind = kind;
        self
    }

    /// Select the protocol by its figure-legend name (e.g. `"Sundial"`).
    ///
    /// # Panics
    /// Panics if no registered protocol has that name.
    pub fn protocol_named(mut self, name: &str) -> Self {
        let entry = self
            .registry
            .entry_by_name(name)
            .unwrap_or_else(|| panic!("no protocol named {name:?} is registered"));
        self.kind = entry.kind;
        self
    }

    /// Run a specific protocol instance (still paired with the logging scheme
    /// registered for `kind`, unless [`ExperimentBuilder::logging`] overrides it).
    pub fn protocol_impl(mut self, protocol: Arc<dyn Protocol>) -> Self {
        self.protocol_override = Some(protocol);
        self
    }

    /// Use a custom registry for construction and logging-scheme pairing.
    pub fn registry(mut self, registry: ProtocolRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Set the run scale (cluster size, data size, duration).
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    pub fn partitions(mut self, n: usize) -> Self {
        self.scale.partitions = n;
        self
    }

    pub fn workers_per_partition(mut self, n: usize) -> Self {
        self.scale.workers_per_partition = n;
        self
    }

    pub fn duration_ms(mut self, ms: u64) -> Self {
        self.scale.duration_ms = ms;
        self
    }

    pub fn warmup_ms(mut self, ms: u64) -> Self {
        self.scale.warmup_ms = ms;
        self
    }

    /// Run YCSB with an explicit configuration. The config is taken as-is —
    /// its `num_partitions` must match the experiment's scale.
    pub fn ycsb(mut self, cfg: YcsbConfig) -> Self {
        self.workload = Some(WorkloadSpec::Ycsb(cfg));
        self
    }

    /// Run YCSB with tweaks applied to the paper-default configuration
    /// (skew, distributed ratio, ...). The base config is built from the
    /// *final* scale when [`ExperimentBuilder::run`] executes, so this
    /// composes with `.scale()` / `.partitions()` in any order.
    pub fn ycsb_with(mut self, f: impl FnOnce(&mut YcsbConfig) + 'static) -> Self {
        self.workload = Some(WorkloadSpec::YcsbWith(Box::new(f)));
        self
    }

    /// Run TPC-C with an explicit configuration. The config is taken as-is —
    /// its `num_partitions` must match the experiment's scale.
    pub fn tpcc(mut self, cfg: TpccConfig) -> Self {
        self.workload = Some(WorkloadSpec::Tpcc(cfg));
        self
    }

    /// Run TPC-C with tweaks applied to the paper-default configuration,
    /// deferred to [`ExperimentBuilder::run`] like
    /// [`ExperimentBuilder::ycsb_with`].
    pub fn tpcc_with(mut self, f: impl FnOnce(&mut TpccConfig) + 'static) -> Self {
        self.workload = Some(WorkloadSpec::TpccWith(Box::new(f)));
        self
    }

    /// Run Smallbank with an explicit configuration.
    pub fn smallbank(mut self, cfg: SmallbankConfig) -> Self {
        self.workload = Some(WorkloadSpec::Smallbank(cfg));
        self
    }

    /// Run a custom workload implementation.
    pub fn workload_impl(mut self, workload: Arc<dyn Workload>) -> Self {
        self.workload = Some(WorkloadSpec::Custom(workload));
        self
    }

    /// Force a group-commit scheme instead of the §6.1.3 pairing.
    pub fn logging(mut self, scheme: LoggingScheme) -> Self {
        self.logging_override = Some(scheme);
        self
    }

    /// Force an atomic-commit mode instead of the registry's per-protocol
    /// pairing: [`CommitMode::TwoPc`] (blocking, the paper's baseline) or
    /// [`CommitMode::PaxosCommit`] (non-blocking over the replicated log).
    pub fn commit_mode(mut self, mode: CommitMode) -> Self {
        self.commit_override = Some(mode);
        self
    }

    /// Watermark interval / COCO epoch length in milliseconds (default 20 ms,
    /// the unified size of §6.2).
    pub fn wal_interval_ms(mut self, ms: u64) -> Self {
        self.cluster_tweaks
            .push(Box::new(move |c| c.wal.interval_ms = ms));
        self
    }

    /// Experiment seed: deterministic randomness derived from it (the
    /// network jitter salt) varies across seeds while each run stays
    /// reproducible.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cluster_tweaks.push(Box::new(move |c| c.seed = seed));
        self
    }

    /// Log replicas per partition (default 1 — single-copy). With `n > 1`
    /// durability means a majority quorum persisted the record, so a crash
    /// plan survives losing the leader's disk — and the quorum-ack delay
    /// (reported as `replication_lag_us`) shows up in commit latency.
    pub fn replication_factor(mut self, n: usize) -> Self {
        self.cluster_tweaks
            .push(Box::new(move |c| c.wal.replication_factor = n.max(1)));
        self
    }

    /// Persist delay of non-leader log replicas, microseconds (default: the
    /// leader's `persist_delay_us`); the one-way network hop is added on
    /// top.
    pub fn replica_persist_delay_us(mut self, us: u64) -> Self {
        self.cluster_tweaks
            .push(Box::new(move |c| c.wal.replica_persist_delay_us = Some(us)));
        self
    }

    /// Crash a partition leader mid-run (Fig 12). The driver clamps the
    /// plan to the measurement window and runs real recovery (wipe +
    /// checkpoint restore + durable-log replay); recovery latency and
    /// replayed-transaction counts land in the
    /// [`MetricsSnapshot`].
    pub fn crash(mut self, plan: CrashPlan) -> Self {
        self.crash = Some(plan);
        self
    }

    /// Fold the durable log into a fresh checkpoint image every `ms`
    /// milliseconds during the run (a base checkpoint after loading is
    /// always taken). Shorter intervals bound recovery replay — and log
    /// growth — more tightly.
    pub fn checkpoint_interval_ms(mut self, ms: u64) -> Self {
        self.checkpoint_interval = Some(Duration::from_millis(ms));
        self
    }

    /// Delay control (watermark / epoch) messages sent by one partition by
    /// `extra_us` microseconds (Fig 13a).
    pub fn lag_partition(mut self, p: PartitionId, extra_us: u64) -> Self {
        self.lag_partition = Some((p, extra_us));
        self
    }

    /// Add per-transaction execution time on one partition ("masked cores",
    /// Fig 13b).
    pub fn slow_partition(mut self, p: PartitionId, extra_us: u64) -> Self {
        self.slow_partition = Some((p, extra_us));
        self
    }

    /// Escape hatch: arbitrary cluster-configuration tweaks, applied in
    /// order after everything else.
    pub fn tweak_cluster(mut self, f: impl FnOnce(&mut ClusterConfig) + 'static) -> Self {
        self.cluster_tweaks.push(Box::new(f));
        self
    }

    /// The cluster configuration this experiment would run with.
    fn cluster_config(&mut self) -> ClusterConfig {
        let mut cfg = if self.fast_local {
            ClusterConfig::for_tests(self.scale.partitions)
        } else {
            ClusterConfig {
                num_partitions: self.scale.partitions,
                ..ClusterConfig::default()
            }
        };
        cfg.workers_per_partition = self.scale.workers_per_partition;
        cfg.wal.scheme = self
            .logging_override
            .unwrap_or_else(|| self.registry.logging_scheme_for(self.kind));
        cfg.commit_mode = self
            .commit_override
            .unwrap_or_else(|| self.registry.commit_mode_for(self.kind));
        if !self.fast_local {
            // Paper §6.2: the epoch size of COCO and the watermark interval
            // of WM are unified (20 ms) so all protocols see ~10 ms avg
            // commit latency. `fast_local` keeps the 1 ms test interval.
            cfg.wal.interval_ms = 20;
        }
        for tweak in self.cluster_tweaks.drain(..) {
            tweak(&mut cfg);
        }
        cfg
    }

    /// Build the cluster, load the workload, run the measurement and return
    /// the aggregated metrics.
    pub fn run(mut self) -> MetricsSnapshot {
        let cfg = self.cluster_config();
        let protocol = self
            .protocol_override
            .take()
            .unwrap_or_else(|| self.registry.build(self.kind));
        let workload: Arc<dyn Workload> = match self
            .workload
            .take()
            .unwrap_or(WorkloadSpec::Ycsb(self.scale.ycsb_config()))
        {
            WorkloadSpec::Ycsb(c) => Arc::new(YcsbWorkload::new(c)),
            WorkloadSpec::YcsbWith(f) => {
                let mut c = self.scale.ycsb_config();
                f(&mut c);
                Arc::new(YcsbWorkload::new(c))
            }
            WorkloadSpec::Tpcc(c) => Arc::new(TpccWorkload::new(c)),
            WorkloadSpec::TpccWith(f) => {
                let mut c = self.scale.tpcc_config();
                f(&mut c);
                Arc::new(TpccWorkload::new(c))
            }
            WorkloadSpec::Smallbank(c) => Arc::new(SmallbankWorkload::new(c)),
            WorkloadSpec::Custom(w) => w,
        };
        let options = ExperimentOptions {
            warmup: Duration::from_millis(self.scale.warmup_ms),
            duration: Duration::from_millis(self.scale.duration_ms),
            crash: self.crash,
            lag_partition: self.lag_partition,
            slow_partition: self.slow_partition,
            checkpoint_interval: self.checkpoint_interval,
        };
        run_experiment(cfg, protocol, workload, &options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_match_the_paper_setup() {
        let q = Scale::quick();
        assert_eq!(q.partitions, 4);
        assert_eq!(q.ycsb_config().zipf_theta, 0.6);
        assert_eq!(q.ycsb_config().distributed_ratio, 0.2);
        assert_eq!(Scale::full().workers_per_partition, 8);
        assert_eq!(Scale::quick().with_partitions(8).partitions, 8);
    }

    #[test]
    fn builder_pairs_protocol_with_its_logging_scheme() {
        let mut e = Experiment::new().protocol(ProtocolKind::Primo);
        assert_eq!(e.cluster_config().wal.scheme, LoggingScheme::Watermark);
        let mut e = Experiment::new().protocol(ProtocolKind::Silo);
        assert_eq!(e.cluster_config().wal.scheme, LoggingScheme::CocoEpoch);
        let mut e = Experiment::new()
            .protocol(ProtocolKind::Silo)
            .logging(LoggingScheme::Clv);
        assert_eq!(e.cluster_config().wal.scheme, LoggingScheme::Clv);
    }

    #[test]
    fn builder_routes_the_commit_mode_knob() {
        // Default: the registry pairing (classic 2PC everywhere).
        let mut e = Experiment::new().protocol(ProtocolKind::Primo);
        assert_eq!(e.cluster_config().commit_mode, CommitMode::TwoPc);
        // Explicit override wins.
        let mut e = Experiment::new().commit_mode(CommitMode::PaxosCommit);
        assert_eq!(e.cluster_config().commit_mode, CommitMode::PaxosCommit);
        // A registry knob flows through without an override.
        let mut e = Experiment::new()
            .registry(
                ProtocolRegistry::standard()
                    .with_commit_mode(ProtocolKind::Silo, CommitMode::PaxosCommit),
            )
            .protocol(ProtocolKind::Silo);
        assert_eq!(e.cluster_config().commit_mode, CommitMode::PaxosCommit);
    }

    #[test]
    fn builder_applies_scale_and_tweaks() {
        let mut e = Experiment::new()
            .scale(Scale::test())
            .partitions(3)
            .wal_interval_ms(5)
            .tweak_cluster(|c| c.backoff_initial_us = 77);
        let cfg = e.cluster_config();
        assert_eq!(cfg.num_partitions, 3);
        assert_eq!(cfg.wal.interval_ms, 5);
        assert_eq!(cfg.backoff_initial_us, 77);
    }

    #[test]
    fn replication_knobs_reach_the_cluster_config() {
        let mut e = Experiment::new()
            .replication_factor(3)
            .replica_persist_delay_us(900);
        let cfg = e.cluster_config();
        assert_eq!(cfg.wal.replication_factor, 3);
        assert_eq!(cfg.wal.replica_persist_delay_us, Some(900));
        // A zero factor is clamped to the single-copy minimum.
        let mut e = Experiment::new().replication_factor(0);
        assert_eq!(e.cluster_config().wal.replication_factor, 1);
    }

    #[test]
    fn protocol_named_resolves_legend_names() {
        let e = Experiment::new().protocol_named("2PL(WD)");
        assert_eq!(e.kind, ProtocolKind::TwoPlWaitDie);
    }

    #[test]
    #[should_panic(expected = "no protocol named")]
    fn protocol_named_rejects_unknown_names() {
        let _ = Experiment::new().protocol_named("Calvin");
    }

    #[test]
    fn quick_scale_end_to_end_smoke() {
        // A tiny end-to-end run: Primo on a shrunken YCSB must commit
        // transactions.
        let snap = Experiment::new()
            .protocol(ProtocolKind::Primo)
            .scale(Scale::test())
            .fast_local()
            .run();
        assert!(snap.committed > 0);
        assert!(snap.throughput_tps > 0.0);
    }
}
