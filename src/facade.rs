//! The `Primo` facade: build a cluster, open a session, run transactions.
//!
//! This is the primary entry point of the workspace. A [`ClusterBuilder`]
//! assembles a simulated shared-nothing cluster (partitions, worker budget,
//! group-commit scheme, network timing); the resulting [`Primo`] handle owns
//! the cluster together with one protocol instance and hands out [`Session`]s
//! for ad-hoc transactions expressed as closures over
//! [`TxnContext`] — arbitrary programs whose
//! read/write sets emerge at runtime, exactly the generality the paper
//! targets.
//!
//! ```
//! use primo_repro::{PartitionId, Primo, TableId, Value};
//!
//! const ACCOUNTS: TableId = TableId(0);
//!
//! let primo = Primo::builder().partitions(2).fast_local().build();
//! let session = primo.session();
//! session.load(PartitionId(0), ACCOUNTS, 1, Value::from_u64(100));
//! session.load(PartitionId(1), ACCOUNTS, 2, Value::from_u64(50));
//!
//! // Transfer 10 from account 1 (partition 0) to account 2 (partition 1).
//! session
//!     .transaction(PartitionId(0), |ctx| {
//!         let a = ctx.read(PartitionId(0), ACCOUNTS, 1)?.as_u64();
//!         let b = ctx.read(PartitionId(1), ACCOUNTS, 2)?.as_u64();
//!         ctx.write(PartitionId(0), ACCOUNTS, 1, Value::from_u64(a - 10))?;
//!         ctx.write(PartitionId(1), ACCOUNTS, 2, Value::from_u64(b + 10))?;
//!         Ok(())
//!     })
//!     .unwrap();
//!
//! assert_eq!(session.get(PartitionId(0), ACCOUNTS, 1).unwrap().as_u64(), 90);
//! assert_eq!(session.get(PartitionId(1), ACCOUNTS, 2).unwrap().as_u64(), 60);
//! primo.shutdown();
//! ```

use crate::registry::ProtocolRegistry;
use primo_common::config::{ClusterConfig, CommitMode, LoggingScheme, ProtocolKind};
use primo_common::{AbortReason, Key, PartitionId, TableId, TxnResult, Value};
use primo_runtime::cluster::Cluster;
use primo_runtime::experiment::{CrashKind, CrashPlan};
use primo_runtime::protocol::Protocol;
use primo_runtime::txn::{ClosureProgram, TxnContext, TxnProgram};
use primo_runtime::worker::run_single_txn;
use std::sync::Arc;

/// A deferred edit to the assembled [`ClusterConfig`].
type ClusterTweak = Box<dyn FnOnce(&mut ClusterConfig)>;

/// Fluent builder for a [`Primo`] cluster handle.
///
/// Knobs are recorded and applied in [`ClusterBuilder::build`], so call
/// order does not matter: `.wal_interval_ms(7).fast_local()` and
/// `.fast_local().wal_interval_ms(7)` produce the same cluster, and
/// [`ClusterBuilder::tweak`] closures run last (they win).
pub struct ClusterBuilder {
    partitions: usize,
    workers_per_partition: Option<usize>,
    wal_interval_ms: Option<u64>,
    fast_local: bool,
    kind: ProtocolKind,
    protocol_override: Option<Arc<dyn Protocol>>,
    registry: ProtocolRegistry,
    logging_override: Option<LoggingScheme>,
    commit_override: Option<CommitMode>,
    crash: Option<CrashPlan>,
    tweaks: Vec<ClusterTweak>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    pub fn new() -> Self {
        ClusterBuilder {
            partitions: ClusterConfig::default().num_partitions,
            workers_per_partition: None,
            wal_interval_ms: None,
            fast_local: false,
            kind: ProtocolKind::Primo,
            protocol_override: None,
            registry: ProtocolRegistry::standard(),
            logging_override: None,
            commit_override: None,
            crash: None,
            tweaks: Vec::new(),
        }
    }

    /// Number of shared-nothing partitions (default 4, as in §6.1).
    pub fn partitions(mut self, n: usize) -> Self {
        self.partitions = n;
        self
    }

    /// Worker threads per partition leader (default 4; 2 under
    /// [`ClusterBuilder::fast_local`]).
    pub fn workers_per_partition(mut self, n: usize) -> Self {
        self.workers_per_partition = Some(n);
        self
    }

    /// Force a group-commit scheme instead of the protocol's §6.1.3 pairing.
    pub fn logging(mut self, scheme: LoggingScheme) -> Self {
        self.logging_override = Some(scheme);
        self
    }

    /// Atomic-commit mode for distributed transactions:
    /// [`CommitMode::TwoPc`] (blocking, the default) or
    /// [`CommitMode::PaxosCommit`] (non-blocking over the replicated log).
    /// Overrides the registry's per-protocol pairing.
    pub fn commit_mode(mut self, mode: CommitMode) -> Self {
        self.commit_override = Some(mode);
        self
    }

    /// Watermark interval / COCO epoch length in milliseconds.
    pub fn wal_interval_ms(mut self, ms: u64) -> Self {
        self.wal_interval_ms = Some(ms);
        self
    }

    /// Experiment seed (drives e.g. the network jitter salt): different
    /// seeds sample different jitter, the same seed reproduces a run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.tweaks.push(Box::new(move |c| c.seed = seed));
        self
    }

    /// Log replicas per partition (default 1 — single-copy). With `n > 1` a
    /// log record is durable once a majority quorum of replicas persisted
    /// it, so recovery survives losing the leader's *disk* (see
    /// [`Primo::crash_partition_discarding_log`]), at the cost of the
    /// quorum-ack delay on every commit acknowledgement.
    pub fn replication_factor(mut self, n: usize) -> Self {
        self.tweaks
            .push(Box::new(move |c| c.wal.replication_factor = n.max(1)));
        self
    }

    /// Persist delay of non-leader log replicas, microseconds (default: the
    /// leader's `persist_delay_us`). The one-way network hop is added on
    /// top, so slower replica disks directly stretch the quorum-ack delay.
    pub fn replica_persist_delay_us(mut self, us: u64) -> Self {
        self.tweaks
            .push(Box::new(move |c| c.wal.replica_persist_delay_us = Some(us)));
        self
    }

    /// Bound on each record's MVCC version chain: the newest `n` committed
    /// versions (current + `n - 1` history entries) stay readable by
    /// snapshot transactions; older ones are evicted on install, and a
    /// snapshot that needs one falls back to the protocol. The default (4)
    /// keeps memory flat under write-heavy churn.
    ///
    /// # Panics
    /// Panics on `0` — a record must always retain at least its current
    /// version, so zero would silently disable snapshot reads instead of
    /// expressing a chain bound.
    pub fn max_versions(mut self, n: usize) -> Self {
        assert!(
            n >= 1,
            "version-chain bound must be at least 1 (the current version), got {n}"
        );
        self.tweaks
            .push(Box::new(move |c| c.primo.max_versions = n));
        self
    }

    /// Disable MVCC snapshot reads: declared read-only transactions run
    /// through the concurrency-control protocol like everything else (the
    /// validate-everything baseline of the read-only-scaling figure).
    pub fn without_snapshot_reads(mut self) -> Self {
        self.tweaks
            .push(Box::new(|c| c.primo.read_only_snapshot = false));
        self
    }

    /// Select the protocol by kind (default [`ProtocolKind::Primo`]).
    pub fn protocol(mut self, kind: ProtocolKind) -> Self {
        self.kind = kind;
        self
    }

    /// Use a specific protocol instance instead of a registry constructor.
    pub fn protocol_impl(mut self, protocol: Arc<dyn Protocol>) -> Self {
        self.protocol_override = Some(protocol);
        self
    }

    /// Use a custom [`ProtocolRegistry`].
    pub fn registry(mut self, registry: ProtocolRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Attach a crash plan to the handle. It is executed against the live
    /// cluster by [`Primo::trigger_crash_plan`] (and exposed via
    /// [`Primo::crash_plan`]); building alone schedules nothing.
    pub fn crash(mut self, plan: CrashPlan) -> Self {
        self.crash = Some(plan);
        self
    }

    /// Use unit-test timing: microsecond-scale network latency and a 1 ms
    /// watermark interval, so transactions complete in milliseconds. Other
    /// knobs are unaffected regardless of call order.
    pub fn fast_local(mut self) -> Self {
        self.fast_local = true;
        self
    }

    /// Escape hatch: arbitrary configuration tweaks, applied last (after
    /// every other knob) in registration order.
    pub fn tweak(mut self, f: impl FnOnce(&mut ClusterConfig) + 'static) -> Self {
        self.tweaks.push(Box::new(f));
        self
    }

    /// Assemble the cluster and return the [`Primo`] handle.
    pub fn build(self) -> Primo {
        let mut config = if self.fast_local {
            ClusterConfig::for_tests(self.partitions)
        } else {
            ClusterConfig {
                num_partitions: self.partitions,
                ..ClusterConfig::default()
            }
        };
        if let Some(workers) = self.workers_per_partition {
            config.workers_per_partition = workers;
        }
        config.wal.scheme = self
            .logging_override
            .unwrap_or_else(|| self.registry.logging_scheme_for(self.kind));
        config.commit_mode = self
            .commit_override
            .unwrap_or_else(|| self.registry.commit_mode_for(self.kind));
        if let Some(ms) = self.wal_interval_ms {
            config.wal.interval_ms = ms;
        }
        for tweak in self.tweaks {
            tweak(&mut config);
        }
        let protocol = self
            .protocol_override
            .unwrap_or_else(|| self.registry.build(self.kind));
        Primo {
            cluster: Cluster::new(config),
            protocol,
            registry: self.registry,
            crash: self.crash,
        }
    }
}

/// Handle to a running Primo cluster: one protocol instance plus the
/// simulated partitions, network and group commit.
pub struct Primo {
    cluster: Arc<Cluster>,
    protocol: Arc<dyn Protocol>,
    registry: ProtocolRegistry,
    crash: Option<CrashPlan>,
}

impl Primo {
    /// Start building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::new()
    }

    /// Open a session for ad-hoc transactions.
    pub fn session(&self) -> Session<'_> {
        Session { primo: self }
    }

    /// The underlying cluster (for advanced integration).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The protocol this handle runs transactions with.
    pub fn protocol(&self) -> &Arc<dyn Protocol> {
        &self.protocol
    }

    /// The registry the handle was built from.
    pub fn registry(&self) -> &ProtocolRegistry {
        &self.registry
    }

    /// The crash plan configured at build time, if any.
    pub fn crash_plan(&self) -> Option<CrashPlan> {
        self.crash
    }

    pub fn num_partitions(&self) -> usize {
        self.cluster.num_partitions()
    }

    /// Simulate a crash of a partition leader: remote accesses to it fail,
    /// the group commit agrees on a rollback point (§5.2), the replicated
    /// log hands leadership to the deterministic successor replica and the
    /// crash-time quorum-durable LSN is captured for the eventual recovery.
    pub fn crash_partition(&self, p: PartitionId) {
        self.cluster.crash_partition(p);
    }

    /// [`Primo::crash_partition`], but the dead leader's local log replica
    /// is **discarded** too (disk loss). With
    /// [`ClusterBuilder::replication_factor`] above one the surviving
    /// quorum still reproduces every acknowledged transaction; with a
    /// single-copy log the history is honestly gone.
    pub fn crash_partition_discarding_log(&self, p: PartitionId) {
        self.cluster.crash_partition_discarding_log(p);
    }

    /// Checkpoint every partition: a quiescent base image if none exists
    /// yet, then log-fold checkpoints that also truncate what the newest
    /// durable image covers. Call once after loading data through
    /// [`Session::load`] so a later crash can rebuild it.
    pub fn checkpoint_all(&self) -> Vec<primo_recovery::CheckpointStats> {
        self.cluster.checkpoint_all()
    }

    /// Execute the crash plan configured at build time on this thread:
    /// wait `plan.at`, crash the partition, wait `plan.recover_after`,
    /// recover it. For a [`CrashKind::Coordinator`] plan nothing goes down —
    /// the one-shot coordinator trap is armed instead and there is no
    /// recovery step. Blocks for the plan's whole timeline (run it from a
    /// driver thread while sessions keep working on others). Returns false
    /// (and does nothing) if the builder configured no plan.
    pub fn trigger_crash_plan(&self) -> bool {
        let Some(plan) = self.crash else {
            return false;
        };
        std::thread::sleep(plan.at);
        if plan.kind == CrashKind::Coordinator {
            self.cluster.arm_coordinator_crash(plan.partition);
            return true;
        }
        self.crash_partition(plan.partition);
        std::thread::sleep(plan.recover_after);
        self.recover_partition(plan.partition);
        true
    }

    /// Bring a crashed partition back: a replacement leader wipes the
    /// volatile store and rebuilds it from the latest durable checkpoint
    /// plus durable-log replay, bounded per group-commit scheme. The
    /// partition stays unreachable until the replay finishes. Returns the
    /// [`RecoveryReport`](primo_recovery::RecoveryReport), or `None` if the
    /// partition was not crashed through [`Primo::crash_partition`].
    pub fn recover_partition(&self, p: PartitionId) -> Option<primo_recovery::RecoveryReport> {
        self.cluster.recover_partition(p)
    }

    /// Stop background threads. The handle must not be used afterwards.
    pub fn shutdown(&self) {
        self.cluster.shutdown();
    }
}

impl std::fmt::Debug for Primo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Primo")
            .field("partitions", &self.cluster.num_partitions())
            .field("protocol", &self.protocol.name())
            .finish()
    }
}

/// A session on a [`Primo`] handle: load data, read committed state and run
/// transactions to completion (conflict aborts are retried with back-off).
pub struct Session<'a> {
    primo: &'a Primo,
}

impl Session<'_> {
    /// Load a record directly (outside any transaction) — initial population.
    pub fn load(&self, partition: PartitionId, table: TableId, key: Key, value: Value) {
        self.primo
            .cluster
            .partition(partition)
            .store
            .insert(table, key, value);
    }

    /// Read the latest committed value of a record (outside any transaction).
    pub fn get(&self, partition: PartitionId, table: TableId, key: Key) -> Option<Value> {
        self.primo
            .cluster
            .partition(partition)
            .store
            .get(table, key)
            .map(|r| r.read().value)
    }

    /// Run a transaction expressed as a closure to completion. Returns the
    /// number of attempts it took, or the abort reason if the transaction
    /// rolled back permanently (user abort).
    pub fn transaction<F>(&self, home: PartitionId, body: F) -> Result<usize, AbortReason>
    where
        F: Fn(&mut dyn TxnContext) -> TxnResult<()> + Send + Sync,
    {
        self.run_program(&ClosureProgram::new(home, body))
    }

    /// Run a pre-built [`TxnProgram`] to completion.
    pub fn run_program(&self, program: &dyn TxnProgram) -> Result<usize, AbortReason> {
        run_single_txn(&self.primo.cluster, self.primo.protocol.as_ref(), program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::TxnError;

    const T: TableId = TableId(0);

    fn fast(n: usize) -> Primo {
        Primo::builder().partitions(n).fast_local().build()
    }

    #[test]
    fn default_builder_builds_primo_on_watermark() {
        let primo = Primo::builder().fast_local().build();
        assert_eq!(primo.protocol().name(), "Primo");
        assert_eq!(primo.num_partitions(), 4);
        assert_eq!(primo.cluster().group_commit.label(), "Watermark");
        primo.shutdown();
    }

    #[test]
    fn builder_pairs_baselines_with_coco() {
        let primo = Primo::builder()
            .partitions(2)
            .protocol(ProtocolKind::Sundial)
            .fast_local()
            .build();
        assert_eq!(primo.protocol().name(), "Sundial");
        assert_eq!(primo.cluster().group_commit.label(), "COCO");
        primo.shutdown();
    }

    #[test]
    fn commit_mode_knob_reaches_the_cluster() {
        let primo = Primo::builder()
            .partitions(2)
            .fast_local()
            .commit_mode(CommitMode::PaxosCommit)
            .build();
        assert_eq!(primo.cluster().atomic_commit().label(), "PaxosCommit");
        primo.shutdown();
        // Default stays the blocking baseline.
        let primo = Primo::builder().partitions(1).fast_local().build();
        assert_eq!(primo.cluster().atomic_commit().label(), "2PC");
        primo.shutdown();
    }

    #[test]
    #[should_panic(expected = "version-chain bound must be at least 1")]
    fn max_versions_rejects_zero() {
        let _ = Primo::builder().max_versions(0);
    }

    #[test]
    fn max_versions_reaches_the_cluster_config() {
        let primo = Primo::builder()
            .partitions(1)
            .fast_local()
            .max_versions(9)
            .build();
        assert_eq!(primo.cluster().config.primo.max_versions, 9);
        primo.shutdown();
    }

    #[test]
    fn without_snapshot_reads_disables_the_mvcc_path() {
        let primo = Primo::builder()
            .partitions(1)
            .fast_local()
            .without_snapshot_reads()
            .build();
        assert!(!primo.cluster().config.primo.read_only_snapshot);
        primo.shutdown();
    }

    #[test]
    fn read_only_closure_commits_through_the_snapshot_path() {
        let primo = fast(2);
        let s = primo.session();
        s.load(PartitionId(0), T, 1, Value::from_u64(41));
        s.load(PartitionId(1), T, 2, Value::from_u64(58));
        let attempts = s
            .run_program(
                &ClosureProgram::new(PartitionId(0), |ctx| {
                    let a = ctx.read(PartitionId(0), T, 1)?.as_u64();
                    let b = ctx.read(PartitionId(1), T, 2)?.as_u64();
                    assert_eq!(a + b, 99);
                    Ok(())
                })
                .read_only(),
            )
            .unwrap();
        assert_eq!(attempts, 1, "a snapshot read never retries");
        primo.shutdown();
    }

    #[test]
    fn transfer_between_partitions_is_atomic() {
        let primo = fast(2);
        let s = primo.session();
        s.load(PartitionId(0), T, 1, Value::from_u64(100));
        s.load(PartitionId(1), T, 2, Value::from_u64(100));
        s.transaction(PartitionId(0), |ctx| {
            let a = ctx.read(PartitionId(0), T, 1)?.as_u64();
            let b = ctx.read(PartitionId(1), T, 2)?.as_u64();
            ctx.write(PartitionId(0), T, 1, Value::from_u64(a - 30))?;
            ctx.write(PartitionId(1), T, 2, Value::from_u64(b + 30))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(s.get(PartitionId(0), T, 1).unwrap().as_u64(), 70);
        assert_eq!(s.get(PartitionId(1), T, 2).unwrap().as_u64(), 130);
        primo.shutdown();
    }

    #[test]
    fn user_rollback_has_no_effect() {
        let primo = fast(1);
        let s = primo.session();
        s.load(PartitionId(0), T, 1, Value::from_u64(5));
        let err = s
            .transaction(PartitionId(0), |ctx| {
                ctx.write(PartitionId(0), T, 1, Value::from_u64(999))?;
                Err(TxnError::Aborted(AbortReason::UserAbort))
            })
            .unwrap_err();
        assert_eq!(err, AbortReason::UserAbort);
        assert_eq!(s.get(PartitionId(0), T, 1).unwrap().as_u64(), 5);
        primo.shutdown();
    }

    #[test]
    fn branching_on_query_results_works() {
        // The "general workload" the paper motivates: the write target depends
        // on what was read.
        let primo = fast(2);
        let s = primo.session();
        s.load(PartitionId(0), T, 1, Value::from_u64(7)); // odd -> write key 100
        s.load(PartitionId(1), T, 100, Value::from_u64(0));
        s.load(PartitionId(1), T, 200, Value::from_u64(0));
        s.transaction(PartitionId(0), |ctx| {
            let v = ctx.read(PartitionId(0), T, 1)?.as_u64();
            let target = if v % 2 == 1 { 100 } else { 200 };
            ctx.write(PartitionId(1), T, target, Value::from_u64(v))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(s.get(PartitionId(1), T, 100).unwrap().as_u64(), 7);
        assert_eq!(s.get(PartitionId(1), T, 200).unwrap().as_u64(), 0);
        primo.shutdown();
    }

    #[test]
    fn get_of_missing_key_is_none() {
        let primo = fast(1);
        assert!(primo.session().get(PartitionId(0), T, 404).is_none());
        primo.shutdown();
    }

    #[test]
    fn replication_factor_reaches_the_partition_logs() {
        let primo = Primo::builder()
            .partitions(1)
            .fast_local()
            .replication_factor(3)
            .replica_persist_delay_us(75)
            .build();
        let log = &primo.cluster().partition(PartitionId(0)).log;
        assert_eq!(log.replication_factor(), 3);
        assert_eq!(log.quorum(), 2);
        // Quorum ack = replication hop (5us in fast_local) + replica disk.
        assert_eq!(log.quorum_ack_delay_us(), 80);
        primo.shutdown();
    }

    #[test]
    fn crash_and_recover_round_trip() {
        let primo = fast(2);
        let s = primo.session();
        s.load(PartitionId(1), T, 9, Value::from_u64(1));
        // Recovery wipes the volatile store for real: without this base
        // checkpoint the loaded record would be unrecoverable.
        primo.checkpoint_all();
        std::thread::sleep(std::time::Duration::from_millis(5));
        primo.crash_partition(PartitionId(1));
        assert!(primo.cluster().net.is_crashed(PartitionId(1)));
        let report = primo
            .recover_partition(PartitionId(1))
            .expect("recovery ran");
        assert_eq!(report.restored_records, 1);
        assert!(!primo.cluster().net.is_crashed(PartitionId(1)));
        // The cluster keeps working after recovery and the record is back.
        s.transaction(PartitionId(0), |ctx| {
            ctx.read(PartitionId(1), T, 9).map(|_| ())
        })
        .unwrap();
        assert_eq!(s.get(PartitionId(1), T, 9).unwrap().as_u64(), 1);
        primo.shutdown();
    }
}
