//! Crash-induced aborts and checkpointed recovery (§5.2 / Fig 12b).
//!
//! Runs Primo on YCSB while a partition leader crashes mid-run. The
//! watermark-based group commit agrees on a rollback point; transactions
//! above it are crash-aborted (and retried), everything below stays
//! durable. Crash-aborted transactions that had already installed writes on
//! *surviving* partitions are undone in place from the before-images in
//! their log entries, so the abort is atomic across the whole cluster.
//! The replacement leader then *actually* rebuilds the partition:
//! its volatile store is wiped and reconstructed from the latest durable
//! checkpoint plus durable-log replay, and the partition stays unreachable
//! until the replay completes. The example prints the crash-abort rate
//! together with the recovery cost — the quantities Fig 12b sweeps against
//! the watermark interval.
//!
//! Run with: `cargo run --release --example crash_recovery`

use primo_repro::{CrashPlan, Experiment, PartitionId, ProtocolKind, Scale};
use std::time::Duration;

fn main() {
    let scale = Scale {
        partitions: 4,
        workers_per_partition: 4,
        ycsb_keys_per_partition: 10_000,
        duration_ms: 600,
        warmup_ms: 100,
    };

    for interval_ms in [10u64, 40, 80] {
        let snap = Experiment::new()
            .protocol(ProtocolKind::Primo)
            .scale(scale)
            .wal_interval_ms(interval_ms)
            // Three log replicas per partition: durability means a majority
            // quorum persisted the record, so the crash below survives disk
            // loss — and the quorum-ack delay shows up as replication lag.
            .replication_factor(3)
            .checkpoint_interval_ms(150)
            .crash(CrashPlan {
                partition: PartitionId(1),
                at: Duration::from_millis(300),
                recover_after: Duration::from_millis(30),
            })
            .run();
        println!(
            "watermark interval {:>3} ms: {:>8.1} ktps, crash-abort rate {:.4}, avg latency {:.2} ms",
            interval_ms,
            snap.ktps(),
            snap.crash_abort_rate,
            snap.mean_latency_ms
        );
        println!(
            "    recovery: {:.2} ms to wipe + restore + replay {} txns; \
             {} rolled-back txns compensated on survivors; post-recovery {:>8.1} ktps",
            snap.recovery_time_us as f64 / 1000.0,
            snap.replayed_txns,
            snap.compensated_txns,
            snap.post_recovery_tps / 1000.0
        );
        println!(
            "    replicated log: {} leader hand-off(s), replication lag {} us \
             (append -> quorum ack)",
            snap.leader_changes, snap.replication_lag_us
        );
        println!(
            "    append pipeline: committers blocked {} us on the sequencer; \
             pump batches averaged {:.1} entr(ies)",
            snap.wal_append_wait_us, snap.replication_batch_len
        );
    }
    println!();
    println!("Larger watermark intervals widen the window of transactions that a crash");
    println!("rolls back (higher crash-abort rate) and add commit latency — the trade-off");
    println!("the paper tunes in Fig 12. Checkpoints bound the replay a recovery must do;");
    println!("shorten the checkpoint interval to shrink recovery time further.");
}
