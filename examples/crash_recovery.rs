//! Crash-induced aborts and checkpointed recovery (§5.2 / Fig 12b).
//!
//! Runs Primo on YCSB while a partition leader crashes mid-run. The
//! watermark-based group commit agrees on a rollback point; transactions
//! above it are crash-aborted (and retried), everything below stays
//! durable. Crash-aborted transactions that had already installed writes on
//! *surviving* partitions are undone in place from the before-images in
//! their log entries, so the abort is atomic across the whole cluster.
//! The replacement leader then *actually* rebuilds the partition:
//! its volatile store is wiped and reconstructed from the latest durable
//! checkpoint plus durable-log replay, and the partition stays unreachable
//! until the replay completes. The example prints the crash-abort rate
//! together with the recovery cost — the quantities Fig 12b sweeps against
//! the watermark interval — and finishes with a flight-recorder excerpt:
//! the merged, causally-ordered event window around an injected crash
//! (crash → compensation → leader change → recovery replay).
//!
//! Run with: `cargo run --release --example crash_recovery`

use primo_repro::{
    ClosureProgram, CommitMode, CrashPlan, Experiment, PartitionId, Primo, ProtocolKind, Scale,
    TableId, TraceEventKind, Value,
};
use std::time::Duration;

fn main() {
    let scale = Scale {
        partitions: 4,
        workers_per_partition: 4,
        ycsb_keys_per_partition: 10_000,
        duration_ms: 600,
        warmup_ms: 100,
    };

    for interval_ms in [10u64, 40, 80] {
        let snap = Experiment::new()
            .protocol(ProtocolKind::Primo)
            .scale(scale)
            .wal_interval_ms(interval_ms)
            // Three log replicas per partition: durability means a majority
            // quorum persisted the record, so the crash below survives disk
            // loss — and the quorum-ack delay shows up as replication lag.
            .replication_factor(3)
            .checkpoint_interval_ms(150)
            .crash(CrashPlan::partition_loss(
                PartitionId(1),
                Duration::from_millis(300),
                Duration::from_millis(30),
            ))
            .run();
        println!(
            "watermark interval {:>3} ms: {:>8.1} ktps, crash-abort rate {:.4}, avg latency {:.2} ms",
            interval_ms,
            snap.ktps(),
            snap.crash_abort_rate,
            snap.mean_latency_ms
        );
        println!(
            "    recovery: {:.2} ms to wipe + restore + replay {} txns; \
             {} rolled-back txns compensated on survivors; post-recovery {:>8.1} ktps",
            snap.recovery_time_us as f64 / 1000.0,
            snap.replayed_txns,
            snap.compensated_txns,
            snap.post_recovery_tps / 1000.0
        );
        println!(
            "    replicated log: {} leader hand-off(s), replication lag {} us \
             (append -> quorum ack)",
            snap.leader_changes, snap.replication_lag_us
        );
        println!(
            "    append pipeline: committers blocked {} us on the sequencer; \
             pump batches averaged {:.1} entr(ies)",
            snap.wal_append_wait_us, snap.replication_batch_len
        );
        println!(
            "    atomic commit: {} distributed decisions, prepare->decide mean {:.0} us \
             / p99 {} us; {} in-doubt resolved",
            snap.commit_decisions,
            snap.commit_decide_mean_us,
            snap.commit_decide_p99_us,
            snap.in_doubt_resolved
        );
    }
    println!();
    println!("Larger watermark intervals widen the window of transactions that a crash");
    println!("rolls back (higher crash-abort rate) and add commit latency — the trade-off");
    println!("the paper tunes in Fig 12. Checkpoints bound the replay a recovery must do;");
    println!("shorten the checkpoint interval to shrink recovery time further.");

    coordinator_crash(&scale);
    trace_excerpt();
}

/// Crash the *coordinator* instead of a partition: a one-shot trap fires
/// between the vote round and the decision of one distributed commit — the
/// classic 2PC in-doubt window. Under blocking 2PC the transaction is
/// orphaned (its locks leak); under Paxos Commit it is terminated from the
/// quorum-durable vote set.
fn coordinator_crash(scale: &Scale) {
    println!();
    for mode in [CommitMode::TwoPc, CommitMode::PaxosCommit] {
        let snap = Experiment::new()
            .protocol(ProtocolKind::TwoPlNoWait)
            .scale(*scale)
            .commit_mode(mode)
            .replication_factor(3)
            .crash(CrashPlan::coordinator(
                PartitionId(0),
                Duration::from_millis(scale.duration_ms / 2),
            ))
            .run();
        println!(
            "coordinator crash under {:<11}: {:>8.1} ktps, {} decisions \
             (mean {:.0} us, p99 {} us), {} in-doubt resolved, {} orphaned",
            mode.label(),
            snap.ktps(),
            snap.commit_decisions,
            snap.commit_decide_mean_us,
            snap.commit_decide_p99_us,
            snap.in_doubt_resolved,
            snap.orphaned_txns
        );
    }
    println!("Paxos Commit terminates the stranded transaction (in-doubt resolved, nothing");
    println!("orphaned); classic 2PC leaves it blocked with its locks held.");
}

/// Re-run the crash in miniature through the cluster facade and print what
/// the always-on flight recorder saw around it — the same merged timeline
/// the seeded crash suites dump when an assertion trips.
fn trace_excerpt() {
    const T: TableId = TableId(0);
    let primo = Primo::builder()
        .partitions(2)
        .protocol(ProtocolKind::Primo)
        .fast_local()
        .replication_factor(3)
        .seed(42)
        .build();
    let session = primo.session();
    for p in 0..2u32 {
        for k in 0..8u64 {
            session.load(PartitionId(p), T, k, Value::from_u64(k));
        }
    }
    primo.checkpoint_all();
    // Distributed increments from a worker thread, crashed mid-flight: the
    // transactions whose results are still in flight at the crash are
    // rolled back, and their survivor-side writes compensated — exactly the
    // window the recorder is built to explain.
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let writer = primo.session();
        let stop = &stop;
        s.spawn(move || {
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let k = i % 8;
                i += 1;
                let _ = writer.run_program(&ClosureProgram::new(PartitionId(0), move |ctx| {
                    let a = ctx.read(PartitionId(0), T, k)?.as_u64();
                    ctx.write(PartitionId(0), T, k, Value::from_u64(a + 1))?;
                    let b = ctx.read(PartitionId(1), T, k)?.as_u64();
                    ctx.write(PartitionId(1), T, k, Value::from_u64(b + 1))
                }));
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        primo.crash_partition(PartitionId(1));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    primo.recover_partition(PartitionId(1));

    let timeline = primo.cluster().recorder.merge();
    let crash_at = timeline
        .of_kind(|k| matches!(k, TraceEventKind::CrashInjected))
        .events()
        .first()
        .map(|e| e.at_us)
        .unwrap_or(0);
    // Non-transaction cluster events in the crash window: the crash mark,
    // compensation on the survivor, the leader hand-off, recovery replay
    // passes and the watermark publishes resuming afterwards.
    let window = timeline
        .between(crash_at.saturating_sub(500), crash_at.saturating_add(5_000))
        .of_kind(|k| !matches!(k, TraceEventKind::MsgHop { .. }));
    const SHOW: usize = 30;
    println!();
    println!(
        "Flight-recorder excerpt around the injected crash ({} of {} events \
         in a -0.5/+5 ms window; {} recorded in total):",
        window.len().min(SHOW),
        window.len(),
        primo.cluster().recorder.events_recorded()
    );
    for e in window
        .events()
        .iter()
        .filter(|e| e.txn.is_none())
        .take(SHOW)
    {
        println!("  {e}");
    }
    // And one rolled-back transaction's lifecycle, if the crash caught any:
    // the per-txn view trace-dump-on-failure renders.
    if let Some(doomed) = timeline
        .of_kind(|k| matches!(k, TraceEventKind::Compensation { .. }))
        .events()
        .iter()
        .find_map(|e| e.txn)
    {
        println!();
        println!("Lifecycle of crash-rolled-back txn {doomed}:");
        for e in timeline.for_txn(doomed).events() {
            println!("  {e}");
        }
    }
    primo.shutdown();
}
