//! Crash-induced aborts and watermark recovery (§5.2 / Fig 12b).
//!
//! Runs Primo on YCSB while a partition leader crashes mid-run. The
//! watermark-based group commit agrees on a rollback point; transactions
//! above it are crash-aborted (and retried), everything below stays durable.
//! The example prints the resulting crash-abort rate — the quantity Fig 12b
//! sweeps against the watermark interval.
//!
//! Run with: `cargo run --release --example crash_recovery`

use primo_repro::common::config::ClusterConfig;
use primo_repro::common::PartitionId;
use primo_repro::core::PrimoProtocol;
use primo_repro::runtime::experiment::{run_experiment, CrashPlan, ExperimentOptions};
use primo_repro::workloads::{YcsbConfig, YcsbWorkload};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let partitions = 4;
    let ycsb = YcsbConfig::paper_default(partitions, 10_000);

    for interval_ms in [10u64, 40, 80] {
        let mut cfg = ClusterConfig {
            num_partitions: partitions,
            workers_per_partition: 4,
            ..Default::default()
        };
        cfg.wal.interval_ms = interval_ms;
        let options = ExperimentOptions {
            warmup: Duration::from_millis(100),
            duration: Duration::from_millis(600),
            crash: Some(CrashPlan {
                partition: PartitionId(1),
                at: Duration::from_millis(300),
                recover_after: Duration::from_millis(30),
            }),
            ..Default::default()
        };
        let snap = run_experiment(
            cfg,
            Arc::new(PrimoProtocol::full()),
            Arc::new(YcsbWorkload::new(ycsb.clone())),
            &options,
        );
        println!(
            "watermark interval {:>3} ms: {:>8.1} ktps, crash-abort rate {:.4}, avg latency {:.2} ms",
            interval_ms,
            snap.ktps(),
            snap.crash_abort_rate,
            snap.mean_latency_ms
        );
    }
    println!();
    println!("Larger watermark intervals widen the window of transactions that a crash");
    println!("rolls back (higher crash-abort rate) and add commit latency — the trade-off");
    println!("the paper tunes in Fig 12.");
}
