//! Quickstart: an embedded Primo cluster in a few lines.
//!
//! Creates a 2-partition cluster, loads two accounts on different partitions
//! and runs a distributed transfer — committed without any two-phase commit
//! (the write-conflict-free protocol of the paper), with durability confirmed
//! by the watermark-based group commit.
//!
//! Run with: `cargo run --example quickstart`

use primo_repro::{PartitionId, Primo, TableId, Value};

const ACCOUNTS: TableId = TableId(0);

fn main() {
    // A 2-partition cluster with test-friendly (microsecond-scale) latencies.
    let primo = Primo::builder().partitions(2).fast_local().build();
    let session = primo.session();

    // Load: account 1 lives on partition 0, account 2 on partition 1.
    session.load(PartitionId(0), ACCOUNTS, 1, Value::from_u64(100));
    session.load(PartitionId(1), ACCOUNTS, 2, Value::from_u64(50));

    // A distributed transaction: read both accounts, move 25 across
    // partitions. The closure may branch on what it reads — Primo never needs
    // the read/write set in advance.
    let attempts = session
        .transaction(PartitionId(0), |ctx| {
            let a = ctx.read(PartitionId(0), ACCOUNTS, 1)?.as_u64();
            let b = ctx.read(PartitionId(1), ACCOUNTS, 2)?.as_u64();
            let amount = 25.min(a);
            ctx.write(PartitionId(0), ACCOUNTS, 1, Value::from_u64(a - amount))?;
            ctx.write(PartitionId(1), ACCOUNTS, 2, Value::from_u64(b + amount))?;
            Ok(())
        })
        .expect("transfer commits");

    let a = session.get(PartitionId(0), ACCOUNTS, 1).unwrap().as_u64();
    let b = session.get(PartitionId(1), ACCOUNTS, 2).unwrap().as_u64();
    println!("transfer committed after {attempts} attempt(s)");
    println!("account 1 (partition 0): {a}");
    println!("account 2 (partition 1): {b}");
    assert_eq!(a + b, 150, "money is conserved");

    primo.shutdown();
}
