//! TPC-C on a simulated shared-nothing cluster: the wholesale-business
//! workload the paper's introduction motivates (NewOrder chooses how much
//! stock to deduct based on what it reads; 10 % of order lines are supplied
//! by a remote warehouse; 15 % of payments cross warehouses).
//!
//! Runs Primo on a 4-partition cluster (16 warehouses per partition) and
//! prints throughput plus the per-phase latency breakdown.
//!
//! Run with: `cargo run --release --example tpcc_cluster`

use primo_repro::common::config::ClusterConfig;
use primo_repro::common::Phase;
use primo_repro::core::PrimoProtocol;
use primo_repro::runtime::experiment::{run_experiment, ExperimentOptions};
use primo_repro::workloads::{TpccConfig, TpccWorkload};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let partitions = 4;
    let tpcc = TpccConfig::paper_default(partitions);
    let cfg = ClusterConfig {
        num_partitions: partitions,
        workers_per_partition: 4,
        ..Default::default()
    };
    let options = ExperimentOptions {
        warmup: Duration::from_millis(100),
        duration: Duration::from_millis(600),
        ..Default::default()
    };

    println!(
        "TPC-C: {} partitions x {} warehouses, NewOrder/Payment mix",
        partitions, tpcc.warehouses_per_partition
    );
    let snap = run_experiment(
        cfg,
        Arc::new(PrimoProtocol::full()),
        Arc::new(TpccWorkload::new(tpcc)),
        &options,
    );

    println!("committed:     {}", snap.committed);
    println!("throughput:    {:.1} ktps", snap.ktps());
    println!("abort rate:    {:.3}", snap.abort_rate);
    println!("avg latency:   {:.2} ms", snap.mean_latency_ms);
    println!("p99 latency:   {:.2} ms", snap.p99_latency_ms);
    println!("latency breakdown per committed transaction:");
    for phase in Phase::ALL {
        let ms = snap.phase(phase);
        if ms > 0.0005 {
            println!("  {:<12} {:.3} ms", phase.label(), ms);
        }
    }
}
