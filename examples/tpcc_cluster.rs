//! TPC-C on a simulated shared-nothing cluster: the wholesale-business
//! workload the paper's introduction motivates (NewOrder chooses how much
//! stock to deduct based on what it reads; 10 % of order lines are supplied
//! by a remote warehouse; 15 % of payments cross warehouses).
//!
//! Runs Primo on a 4-partition cluster (16 warehouses per partition) and
//! prints throughput plus the per-phase latency breakdown.
//!
//! Run with: `cargo run --release --example tpcc_cluster`

use primo_repro::{Experiment, Phase, ProtocolKind, Scale};

fn main() {
    let scale = Scale {
        partitions: 4,
        workers_per_partition: 4,
        duration_ms: 600,
        warmup_ms: 100,
        ..Scale::quick()
    };
    let tpcc = scale.tpcc_config();

    println!(
        "TPC-C: {} partitions x {} warehouses, NewOrder/Payment mix",
        scale.partitions, tpcc.warehouses_per_partition
    );
    let snap = Experiment::new()
        .protocol(ProtocolKind::Primo)
        .scale(scale)
        .tpcc(tpcc)
        .run();

    println!("committed:     {}", snap.committed);
    println!("throughput:    {:.1} ktps", snap.ktps());
    println!("abort rate:    {:.3}", snap.abort_rate);
    println!("avg latency:   {:.2} ms", snap.mean_latency_ms);
    println!("p99 latency:   {:.2} ms", snap.p99_latency_ms);
    println!("latency breakdown per committed transaction:");
    for phase in Phase::ALL {
        let ms = snap.phase(phase);
        if ms > 0.0005 {
            println!("  {:<12} {:.3} ms", phase.label(), ms);
        }
    }
}
