//! YCSB shoot-out: Primo vs Sundial vs 2PL(NO_WAIT) on the paper's default
//! YCSB setting (10 ops/txn, 50 % writes, Zipf 0.6, 20 % distributed), on a
//! small simulated 4-partition cluster.
//!
//! This is a miniature of Fig 4a; the full sweep lives in the bench crate
//! (`cargo run -p primo-bench --release --bin figures -- fig4`).
//!
//! Run with: `cargo run --release --example ycsb_shootout`

use primo_repro::{Experiment, ProtocolKind, Scale};

fn main() {
    let scale = Scale {
        partitions: 4,
        workers_per_partition: 4,
        ycsb_keys_per_partition: 20_000,
        duration_ms: 500,
        warmup_ms: 100,
    };

    println!(
        "YCSB, {} partitions, 20k keys/partition, 500 ms measured",
        scale.partitions
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "protocol",
        "ktps",
        "abort rate",
        "avg lat ms",
        "p99 lat ms",
        "snap reads",
        "rt/dist-txn",
        "hit rate",
        "dist p99 ms"
    );
    // Each protocol runs with the group-commit scheme the registry pairs it
    // with (§6.1.3): Primo on Watermark, the baselines on COCO. Fully
    // read-only transactions (all 10 ops draw "read") commit through the
    // MVCC snapshot path — the snap-reads column counts them. The last three
    // columns show the remote-read economics: round trips charged per
    // committed distributed transaction, the batched-prefetch hit rate and
    // the distributed-only p99.
    for kind in [
        ProtocolKind::Primo,
        ProtocolKind::Sundial,
        ProtocolKind::TwoPlNoWait,
    ] {
        let snap = Experiment::new().protocol(kind).scale(scale).run();
        println!(
            "{:<12} {:>12.1} {:>12.3} {:>12.2} {:>12.2} {:>12} {:>12.2} {:>9.1}% {:>12.2}",
            kind.label(),
            snap.ktps(),
            snap.abort_rate,
            snap.mean_latency_ms,
            snap.p99_latency_ms,
            snap.snapshot_reads,
            snap.remote_round_trips_per_dist_txn,
            snap.prefetch_hit_rate * 100.0,
            snap.dist_txn_p99_ms
        );
    }
}
