//! YCSB shoot-out: Primo vs Sundial vs 2PL(NO_WAIT) on the paper's default
//! YCSB setting (10 ops/txn, 50 % writes, Zipf 0.6, 20 % distributed), on a
//! small simulated 4-partition cluster.
//!
//! This is a miniature of Fig 4a; the full sweep lives in the bench crate
//! (`cargo run -p primo-bench --release --bin figures -- fig4`).
//!
//! Run with: `cargo run --release --example ycsb_shootout`

use primo_repro::baselines::{SundialProtocol, TwoPlProtocol};
use primo_repro::common::config::{ClusterConfig, LoggingScheme};
use primo_repro::core::PrimoProtocol;
use primo_repro::runtime::experiment::{run_experiment, ExperimentOptions};
use primo_repro::runtime::protocol::Protocol;
use primo_repro::workloads::{YcsbConfig, YcsbWorkload};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let partitions = 4;
    let ycsb = YcsbConfig::paper_default(partitions, 20_000);
    let options = ExperimentOptions {
        warmup: Duration::from_millis(100),
        duration: Duration::from_millis(500),
        ..Default::default()
    };

    let entries: Vec<(Arc<dyn Protocol>, LoggingScheme)> = vec![
        (Arc::new(PrimoProtocol::full()), LoggingScheme::Watermark),
        (Arc::new(SundialProtocol::new()), LoggingScheme::CocoEpoch),
        (Arc::new(TwoPlProtocol::no_wait()), LoggingScheme::CocoEpoch),
    ];

    println!("YCSB, {partitions} partitions, 20k keys/partition, 500 ms measured");
    println!("{:<12} {:>12} {:>12} {:>12} {:>12}", "protocol", "ktps", "abort rate", "avg lat ms", "p99 lat ms");
    for (protocol, scheme) in entries {
        let mut cfg = ClusterConfig {
            num_partitions: partitions,
            workers_per_partition: 4,
            ..Default::default()
        };
        cfg.wal.scheme = scheme;
        let name = protocol.name();
        let snap = run_experiment(
            cfg,
            protocol,
            Arc::new(YcsbWorkload::new(ycsb.clone())),
            &options,
        );
        println!(
            "{:<12} {:>12.1} {:>12.3} {:>12.2} {:>12.2}",
            name,
            snap.ktps(),
            snap.abort_rate,
            snap.mean_latency_ms,
            snap.p99_latency_ms
        );
    }
}
