//! MVCC snapshot reads: declared read-only transactions at the durable
//! group-commit horizon, against the validate-everything baseline.
//!
//! A YCSB mix with a high read ratio generates many fully read-only
//! transactions (a transaction is read-only iff every one of its 10 ops is a
//! read, so read ratio 0.95 makes ~60 % of them read-only). With snapshot
//! reads enabled those commit lock-free at the horizon; with the knob off
//! they run through the protocol like any other transaction.
//!
//! Run with: `cargo run --release --example snapshot_reads`

use primo_repro::{Experiment, ProtocolKind, Scale};

fn main() {
    let scale = Scale {
        partitions: 4,
        workers_per_partition: 4,
        ycsb_keys_per_partition: 20_000,
        duration_ms: 500,
        warmup_ms: 100,
    };

    println!(
        "YCSB read ratio 0.95, {} partitions, Primo on Watermark, 500 ms measured",
        scale.partitions
    );
    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>12} {:>10}",
        "mode", "ktps", "p99 lat ms", "snap reads/s", "snap reads", "pruned"
    );
    for snapshot_on in [true, false] {
        let snap = Experiment::new()
            .protocol(ProtocolKind::Primo)
            .scale(scale)
            .checkpoint_interval_ms(100)
            .ycsb_with(|y| y.read_ratio = 0.95)
            .tweak_cluster(move |c| c.primo.read_only_snapshot = snapshot_on)
            .run();
        println!(
            "{:<22} {:>10.1} {:>12.2} {:>14.0} {:>12} {:>10}",
            if snapshot_on {
                "snapshot (MVCC)"
            } else {
                "baseline (validate)"
            },
            snap.ktps(),
            snap.p99_latency_ms,
            snap.snapshot_read_tps,
            snap.snapshot_reads,
            snap.pruned_versions
        );
    }
    println!(
        "(snap reads = read-only txns served lock-free from the version chains at the\n\
         group-commit horizon; pruned = history versions GC'd by the checkpointer)"
    );
}
