//! Property-based tests (proptest) over the core data structures and
//! protocol invariants.

use proptest::prelude::*;
use primo_repro::common::{FastRng, PartitionId, TableId, TxnId, Value, ZipfGen};
use primo_repro::core::PrimoDb;
use primo_repro::storage::{LockMode, LockPolicy, LockRequestResult, Record};
use primo_repro::wal::{LogPayload, PartitionWal};

proptest! {
    /// TxnId packing is lossless for realistic sequence numbers.
    #[test]
    fn txn_id_pack_roundtrip(seq in 0u64..(1 << 40), coord in 0u32..1024) {
        let id = TxnId::new(PartitionId(coord), seq);
        prop_assert_eq!(TxnId::unpack(id.pack()), id);
    }

    /// TxnId ordering is by age (sequence number) first.
    #[test]
    fn txn_id_order_is_by_sequence(a in 0u64..1_000_000, b in 0u64..1_000_000,
                                   ca in 0u32..64, cb in 0u32..64) {
        let x = TxnId::new(PartitionId(ca), a);
        let y = TxnId::new(PartitionId(cb), b);
        if a < b {
            prop_assert!(x < y);
        } else if a > b {
            prop_assert!(x > y);
        }
    }

    /// Zipf samples always stay inside the domain, for any skew.
    #[test]
    fn zipf_stays_in_domain(n in 1u64..50_000, theta in 0.0f64..0.99, seed in any::<u64>()) {
        let gen = ZipfGen::new(n, theta);
        let mut rng = FastRng::new(seed);
        for _ in 0..100 {
            prop_assert!(gen.sample(&mut rng) < n);
        }
    }

    /// A record's valid interval never shrinks and installs always leave
    /// `wts == rts`.
    #[test]
    fn record_interval_invariants(ops in prop::collection::vec((0u8..3, 1u64..1_000_000), 1..50)) {
        let record = Record::new(Value::from_u64(0));
        let mut last_wts = 0u64;
        for (kind, ts) in ops {
            let (w_before, r_before) = record.timestamps();
            match kind {
                0 => {
                    record.extend_rts(ts);
                    let (w, r) = record.timestamps();
                    prop_assert_eq!(w, w_before);
                    prop_assert!(r >= r_before);
                }
                1 => {
                    record.install(Value::from_u64(ts), ts);
                    let (w, r) = record.timestamps();
                    prop_assert_eq!(w, ts);
                    prop_assert_eq!(r, ts);
                    last_wts = ts;
                }
                _ => {
                    record.raise_watermark_floor(ts);
                    let (w, r) = record.timestamps();
                    prop_assert!(w > ts || w > last_wts || w == w_before);
                    prop_assert!(r >= w);
                }
            }
            let (w, r) = record.timestamps();
            prop_assert!(r >= w, "rts must never fall below wts");
        }
    }

    /// Exclusive locks are mutually exclusive no matter the request order.
    #[test]
    fn lock_exclusivity(holders in prop::collection::vec(1u64..100, 2..10)) {
        let record = Record::new(Value::from_u64(0));
        let mut granted = Vec::new();
        for seq in &holders {
            let txn = TxnId::new(PartitionId(0), *seq);
            if record.acquire(txn, LockMode::Exclusive, LockPolicy::NoWait)
                == LockRequestResult::Granted
            {
                granted.push(txn);
            }
        }
        // Only one distinct transaction may ever hold the exclusive lock.
        granted.dedup();
        prop_assert_eq!(granted.len(), 1);
        record.release(granted[0]);
        prop_assert!(!record.lock().is_locked());
    }

    /// The WAL replays exactly the prefix below the requested watermark.
    #[test]
    fn wal_replay_is_a_prefix(ts_list in prop::collection::vec(1u64..1_000, 1..40), cut in 1u64..1_000) {
        let wal = PartitionWal::new(PartitionId(0), 0);
        for (i, ts) in ts_list.iter().enumerate() {
            wal.append(LogPayload::TxnWrites {
                txn: TxnId::new(PartitionId(0), i as u64),
                ts: *ts,
                writes: vec![(TableId(0), i as u64, Value::from_u64(*ts))],
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
        let replayed = wal.replay_prefix(cut);
        let expected = ts_list.iter().filter(|t| **t < cut).count();
        prop_assert_eq!(replayed.len(), expected);
        prop_assert!(replayed.iter().all(|(_, ts, _)| *ts < cut));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random sequences of transfers through the full Primo stack conserve
    /// the total balance.
    #[test]
    fn primo_transfers_conserve_money(transfers in prop::collection::vec(
        (0u64..8, 0u64..8, 0u32..2, 0u32..2, 1u64..50), 1..15)) {
        const T: TableId = TableId(0);
        let db = PrimoDb::with_partitions(2);
        for p in 0..2u32 {
            for k in 0..8u64 {
                db.load(PartitionId(p), T, k, Value::from_u64(100));
            }
        }
        for (from, to, pf, pt, amount) in transfers {
            let _ = db.transaction(PartitionId(pf), move |ctx| {
                let a = ctx.read(PartitionId(pf), T, from)?.as_u64();
                let b = ctx.read(PartitionId(pt), T, to)?.as_u64();
                let amt = amount.min(a);
                if (pf, from) == (pt, to) {
                    return Ok(());
                }
                ctx.write(PartitionId(pf), T, from, Value::from_u64(a - amt))?;
                ctx.write(PartitionId(pt), T, to, Value::from_u64(b + amt))?;
                Ok(())
            });
        }
        let mut total = 0;
        for p in 0..2u32 {
            for k in 0..8u64 {
                total += db.get(PartitionId(p), T, k).unwrap().as_u64();
            }
        }
        db.shutdown();
        prop_assert_eq!(total, 2 * 8 * 100);
    }
}
