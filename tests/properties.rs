//! Randomized property tests over the core data structures and protocol
//! invariants.
//!
//! The offline build environment has no proptest, so these are seeded
//! exhaustive/randomized loops over the same properties: each case draws its
//! inputs from a deterministic [`FastRng`] stream, so failures reproduce
//! exactly.

use primo_repro::storage::{LockMode, LockPolicy, LockRequestResult, Record};
use primo_repro::wal::{LogPayload, LoggedWrite, PartitionWal};
use primo_repro::{FastRng, PartitionId, Primo, TableId, TxnId, Value, ZipfGen};

#[test]
fn txn_id_pack_roundtrip() {
    let mut rng = FastRng::new(0xA11CE);
    for _ in 0..2_000 {
        let seq = rng.next_u64() & ((1 << 40) - 1);
        let coord = (rng.next_u64() % 1024) as u32;
        let id = TxnId::new(PartitionId(coord), seq);
        assert_eq!(TxnId::unpack(id.pack()), id, "lossy pack for {id}");
    }
}

#[test]
fn txn_id_order_is_by_sequence() {
    let mut rng = FastRng::new(0xB0B);
    for _ in 0..2_000 {
        let (a, b) = (rng.next_below(1_000_000), rng.next_below(1_000_000));
        let (ca, cb) = (rng.next_below(64) as u32, rng.next_below(64) as u32);
        let x = TxnId::new(PartitionId(ca), a);
        let y = TxnId::new(PartitionId(cb), b);
        if a < b {
            assert!(x < y);
        } else if a > b {
            assert!(x > y);
        }
    }
}

#[test]
fn zipf_stays_in_domain() {
    let mut rng = FastRng::new(0x21bf);
    for _ in 0..50 {
        let n = 1 + rng.next_below(50_000);
        let theta = (rng.next_below(99) as f64) / 100.0;
        let gen = ZipfGen::new(n, theta);
        let mut sample_rng = FastRng::new(rng.next_u64());
        for _ in 0..100 {
            assert!(gen.sample(&mut sample_rng) < n, "n={n} theta={theta}");
        }
    }
}

#[test]
fn record_interval_invariants() {
    // A record's valid interval never shrinks and installs always leave
    // `wts == rts`.
    let mut rng = FastRng::new(0x5EED);
    for _ in 0..100 {
        let record = Record::new(Value::from_u64(0));
        let mut last_wts = 0u64;
        let num_ops = 1 + rng.next_below(50) as usize;
        for _ in 0..num_ops {
            let kind = rng.next_below(3);
            let ts = 1 + rng.next_below(1_000_000);
            let (w_before, r_before) = record.timestamps();
            match kind {
                0 => {
                    record.extend_rts(ts);
                    let (w, r) = record.timestamps();
                    assert_eq!(w, w_before);
                    assert!(r >= r_before);
                }
                1 => {
                    record.install(Value::from_u64(ts), ts);
                    let (w, r) = record.timestamps();
                    assert_eq!(w, ts);
                    assert_eq!(r, ts);
                    last_wts = ts;
                }
                _ => {
                    record.raise_watermark_floor(ts);
                    let (w, r) = record.timestamps();
                    assert!(w > ts || w > last_wts || w == w_before);
                    assert!(r >= w);
                }
            }
            let (w, r) = record.timestamps();
            assert!(r >= w, "rts must never fall below wts");
        }
    }
}

#[test]
fn lock_exclusivity() {
    // Exclusive locks are mutually exclusive no matter the request order.
    let mut rng = FastRng::new(0x10CC);
    for _ in 0..200 {
        let record = Record::new(Value::from_u64(0));
        let num_holders = 2 + rng.next_below(8) as usize;
        let mut granted = Vec::new();
        for _ in 0..num_holders {
            let txn = TxnId::new(PartitionId(0), 1 + rng.next_below(100));
            if record.acquire(txn, LockMode::Exclusive, LockPolicy::NoWait)
                == LockRequestResult::Granted
            {
                granted.push(txn);
            }
        }
        // Only one distinct transaction may ever hold the exclusive lock.
        granted.dedup();
        assert_eq!(granted.len(), 1);
        record.release(granted[0]);
        assert!(!record.lock().is_locked());
    }
}

#[test]
fn wal_replay_is_a_prefix() {
    // The WAL replays exactly the prefix below the requested watermark.
    let mut rng = FastRng::new(0xA1);
    for _ in 0..40 {
        let wal = PartitionWal::new(PartitionId(0), 0);
        let num_entries = 1 + rng.next_below(40) as usize;
        let ts_list: Vec<u64> = (0..num_entries)
            .map(|_| 1 + rng.next_below(1_000))
            .collect();
        let cut = 1 + rng.next_below(1_000);
        for (i, ts) in ts_list.iter().enumerate() {
            wal.append(LogPayload::TxnWrites {
                txn: TxnId::new(PartitionId(0), i as u64),
                ts: *ts,
                writes: vec![LoggedWrite::put(TableId(0), i as u64, Value::from_u64(*ts))],
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
        let replayed = wal.replay_prefix(cut);
        let expected = ts_list.iter().filter(|t| **t < cut).count();
        assert_eq!(replayed.len(), expected);
        assert!(replayed.iter().all(|(_, ts, _)| *ts < cut));
    }
}

#[test]
fn primo_transfers_conserve_money() {
    // Random sequences of transfers through the full Primo facade conserve
    // the total balance.
    const T: TableId = TableId(0);
    let mut rng = FastRng::new(0xCAFE);
    for _ in 0..8 {
        let primo = Primo::builder().partitions(2).fast_local().build();
        let session = primo.session();
        for p in 0..2u32 {
            for k in 0..8u64 {
                session.load(PartitionId(p), T, k, Value::from_u64(100));
            }
        }
        let num_transfers = 1 + rng.next_below(14) as usize;
        for _ in 0..num_transfers {
            let from = rng.next_below(8);
            let to = rng.next_below(8);
            let pf = PartitionId(rng.next_below(2) as u32);
            let pt = PartitionId(rng.next_below(2) as u32);
            let amount = 1 + rng.next_below(49);
            let _ = session.transaction(pf, move |ctx| {
                let a = ctx.read(pf, T, from)?.as_u64();
                let b = ctx.read(pt, T, to)?.as_u64();
                let amt = amount.min(a);
                if (pf, from) == (pt, to) {
                    return Ok(());
                }
                ctx.write(pf, T, from, Value::from_u64(a - amt))?;
                ctx.write(pt, T, to, Value::from_u64(b + amt))?;
                Ok(())
            });
        }
        let mut total = 0;
        for p in 0..2u32 {
            for k in 0..8u64 {
                total += session.get(PartitionId(p), T, k).unwrap().as_u64();
            }
        }
        primo.shutdown();
        assert_eq!(total, 2 * 8 * 100);
    }
}
