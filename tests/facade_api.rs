//! Coverage for the public facade: cluster builder defaults, registry
//! round-trips over every protocol kind, and a smoke experiment per protocol
//! on a tiny YCSB scale.

use primo_repro::{
    Experiment, LoggingScheme, PartitionId, Primo, ProtocolKind, ProtocolRegistry, Scale, TableId,
    Value,
};

const ALL_KINDS: [ProtocolKind; 9] = [
    ProtocolKind::TwoPlNoWait,
    ProtocolKind::TwoPlWaitDie,
    ProtocolKind::Silo,
    ProtocolKind::Sundial,
    ProtocolKind::Aria,
    ProtocolKind::Tapir,
    ProtocolKind::Primo,
    ProtocolKind::PrimoNoWm,
    ProtocolKind::PrimoNoWcfNoWm,
];

#[test]
fn default_cluster_builder_is_primo_on_watermark() {
    let primo = Primo::builder().fast_local().build();
    assert_eq!(primo.num_partitions(), 4);
    assert_eq!(primo.protocol().name(), "Primo");
    assert_eq!(primo.cluster().group_commit.label(), "Watermark");
    assert!(primo.crash_plan().is_none());
    primo.shutdown();
}

#[test]
fn cluster_builder_knobs_reach_the_cluster() {
    // Knob order must not matter: wal_interval_ms set *before* fast_local
    // still wins over fast_local's 1 ms test interval.
    let primo = Primo::builder()
        .partitions(3)
        .workers_per_partition(1)
        .protocol(ProtocolKind::Silo)
        .wal_interval_ms(7)
        .fast_local()
        .build();
    assert_eq!(primo.num_partitions(), 3);
    assert_eq!(primo.protocol().name(), "Silo");
    assert_eq!(primo.cluster().config.workers_per_partition, 1);
    assert_eq!(primo.cluster().config.wal.interval_ms, 7);
    // Silo pairs with COCO per §6.1.3.
    assert_eq!(primo.cluster().group_commit.label(), "COCO");
    primo.shutdown();

    // tweak() runs last and can override anything, including the scheme.
    let primo = Primo::builder()
        .partitions(2)
        .fast_local()
        .tweak(|c| c.wal.scheme = LoggingScheme::CocoEpoch)
        .build();
    assert_eq!(primo.cluster().group_commit.label(), "COCO");
    primo.shutdown();
}

#[test]
fn registry_round_trips_every_kind() {
    let registry = ProtocolRegistry::standard();
    assert_eq!(registry.kinds().len(), ALL_KINDS.len());
    for kind in ALL_KINDS {
        // kind -> entry -> protocol -> name -> entry -> kind
        let entry = registry.entry(kind).expect("kind registered");
        assert_eq!(entry.kind, kind);
        let protocol = entry.build();
        assert_eq!(protocol.name(), kind.label());
        let back = registry
            .entry_by_name(protocol.name())
            .expect("name resolves");
        assert_eq!(back.kind, kind, "name round-trip for {kind:?}");
    }
}

#[test]
fn every_protocol_builds_a_working_cluster_handle() {
    for kind in ALL_KINDS {
        let primo = Primo::builder()
            .partitions(2)
            .protocol(kind)
            .fast_local()
            .build();
        assert_eq!(primo.protocol().name(), kind.label());
        let session = primo.session();
        session.load(PartitionId(0), TableId(0), 1, Value::from_u64(9));
        assert_eq!(
            session.get(PartitionId(0), TableId(0), 1).unwrap().as_u64(),
            9
        );
        primo.shutdown();
    }
}

#[test]
fn smoke_experiment_per_protocol_on_tiny_ycsb() {
    for kind in ALL_KINDS {
        let snap = Experiment::new()
            .protocol(kind)
            .scale(Scale {
                duration_ms: 120,
                warmup_ms: 20,
                ..Scale::test()
            })
            .fast_local()
            .run();
        assert!(snap.committed > 0, "{} committed nothing", kind.label());
        assert!(
            snap.throughput_tps > 0.0,
            "{} has zero throughput",
            kind.label()
        );
    }
}

#[test]
fn workload_tweaks_follow_a_later_scale_change() {
    // ycsb_with is deferred to run(): shrinking the cluster afterwards must
    // shrink the workload's partition space too (no out-of-bounds access).
    let snap = Experiment::new()
        .ycsb_with(|y| y.zipf_theta = 0.9)
        .scale(Scale::test())
        .partitions(2)
        .fast_local()
        .run();
    assert!(snap.committed > 0);
}

#[test]
fn crash_plan_from_builder_is_executable() {
    use primo_repro::CrashPlan;
    use std::time::Duration;
    let primo = Primo::builder()
        .partitions(2)
        .fast_local()
        .crash(CrashPlan::partition_loss(
            PartitionId(1),
            Duration::from_millis(5),
            Duration::from_millis(5),
        ))
        .build();
    assert!(primo.crash_plan().is_some());
    assert!(primo.trigger_crash_plan());
    // The plan ran to completion: the partition is recovered and usable.
    assert!(!primo.cluster().net.is_crashed(PartitionId(1)));
    let session = primo.session();
    session.load(PartitionId(1), TableId(0), 1, Value::from_u64(1));
    session
        .transaction(PartitionId(0), |ctx| {
            ctx.read(PartitionId(1), TableId(0), 1).map(|_| ())
        })
        .unwrap();
    primo.shutdown();

    // Without a plan, triggering is a no-op returning false.
    let bare = Primo::builder().partitions(1).fast_local().build();
    assert!(!bare.trigger_crash_plan());
    bare.shutdown();
}

#[test]
fn experiment_honours_logging_override() {
    let snap = Experiment::new()
        .protocol(ProtocolKind::Primo)
        .scale(Scale::test())
        .fast_local()
        .logging(LoggingScheme::CocoEpoch)
        .run();
    assert!(snap.committed > 0);
}

#[test]
fn custom_registry_flows_through_the_builders() {
    use primo_repro::PrimoProtocol;
    use std::sync::Arc;
    let mut registry = ProtocolRegistry::empty();
    registry.register(
        ProtocolKind::Primo,
        LoggingScheme::Watermark,
        Arc::new(|| Arc::new(PrimoProtocol::full().labeled("Primo(custom)"))),
    );
    let primo = Primo::builder()
        .registry(registry.clone())
        .protocol(ProtocolKind::Primo)
        .fast_local()
        .build();
    assert_eq!(primo.protocol().name(), "Primo(custom)");
    primo.shutdown();

    let snap = Experiment::new()
        .registry(registry)
        .protocol(ProtocolKind::Primo)
        .scale(Scale::test())
        .fast_local()
        .run();
    assert!(snap.committed > 0);
}
