//! The atomic-commit acceptance suite: a coordinator crash between the vote
//! round and the decision must leave **zero blocked and zero
//! inconsistently-decided** transactions under Paxos Commit, for every
//! protocol × group-commit scheme the registry knows — and the same loop
//! must *catch* classic 2PC blocking, proving the harness can tell the two
//! modes apart (the falsification test).
//!
//! The workload is a pair increment: each transaction adds 1 to the same key
//! on both partitions, so any committed prefix keeps `(P0, k) == (P1, k)`.
//! A transaction decided inconsistently (committed on one side, aborted on
//! the other) breaks the equality; a transaction left blocked keeps its
//! locks and starves the post-storm liveness probe.
//!
//! Seeds: `PRIMO_COORD_CRASH_SEEDS=n` widens the loop to `n` seeds per cell
//! (CI runs 8 in release); the default of 1 keeps the debug tier-1 run
//! cheap.

use primo_repro::{
    CommitMode, CrashPlan, Experiment, LoggingScheme, PartitionId, Primo, ProtocolKind, Scale,
    TableId, TraceEventKind, TxnContext, TxnProgram, TxnResult, Value,
};
use std::time::Duration;

const T: TableId = TableId(0);
const KEYS: u64 = 8;

const ALL_KINDS: [ProtocolKind; 9] = [
    ProtocolKind::TwoPlNoWait,
    ProtocolKind::TwoPlWaitDie,
    ProtocolKind::Silo,
    ProtocolKind::Sundial,
    ProtocolKind::Aria,
    ProtocolKind::Tapir,
    ProtocolKind::Primo,
    ProtocolKind::PrimoNoWm,
    ProtocolKind::PrimoNoWcfNoWm,
];

const ALL_SCHEMES: [LoggingScheme; 4] = [
    LoggingScheme::SyncPerTxn,
    LoggingScheme::CocoEpoch,
    LoggingScheme::Clv,
    LoggingScheme::Watermark,
];

fn seed_count() -> u64 {
    std::env::var("PRIMO_COORD_CRASH_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Add 1 to the same key on both partitions — the committed state must keep
/// the two sides equal, whatever commits or aborts.
struct PairIncrement {
    home: PartitionId,
    key: u64,
}

impl TxnProgram for PairIncrement {
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        let a = ctx.read(PartitionId(0), T, self.key)?.as_u64();
        ctx.write(PartitionId(0), T, self.key, Value::from_u64(a + 1))?;
        let b = ctx.read(PartitionId(1), T, self.key)?.as_u64();
        ctx.write(PartitionId(1), T, self.key, Value::from_u64(b + 1))
    }
    fn home_partition(&self) -> PartitionId {
        self.home
    }
}

fn loaded(kind: ProtocolKind, scheme: LoggingScheme, mode: CommitMode, seed: u64) -> Primo {
    let primo = Primo::builder()
        .partitions(2)
        .protocol(kind)
        .logging(scheme)
        .commit_mode(mode)
        .replication_factor(3)
        .fast_local()
        .seed(seed)
        .build();
    let session = primo.session();
    for p in 0..2u32 {
        for k in 0..KEYS {
            session.load(PartitionId(p), T, k, Value::from_u64(0));
        }
    }
    primo
}

/// Run a two-thread pair-increment storm with a one-shot coordinator crash
/// armed on partition 0 mid-run.
fn coordinator_crash_storm(primo: &Primo, per_thread: usize) {
    std::thread::scope(|scope| {
        for t in 0..2u32 {
            let session = primo.session();
            scope.spawn(move || {
                for i in 0..per_thread {
                    let _ = session.run_program(&PairIncrement {
                        home: PartitionId(t % 2),
                        key: (t as u64 + i as u64) % KEYS,
                    });
                }
            });
        }
        // Arm while the storm runs: the next distributed commit coordinated
        // by partition 0 dies between its vote round and the decision.
        std::thread::sleep(Duration::from_millis(2));
        primo.cluster().arm_coordinator_crash(PartitionId(0));
    });
}

/// Every pair must agree across partitions — the "zero inconsistently
/// decided" half of the acceptance criterion.
fn assert_pairs_consistent(primo: &Primo, label: &str) {
    let session = primo.session();
    for k in 0..KEYS {
        let a = session.get(PartitionId(0), T, k).unwrap().as_u64();
        let b = session.get(PartitionId(1), T, k).unwrap().as_u64();
        assert_eq!(
            a, b,
            "{label}: pair {k} decided inconsistently ({a} vs {b})"
        );
    }
}

/// A fresh transaction on every key must still get through — the "zero
/// blocked" half. An orphaned transaction's leaked locks would starve this
/// probe into retry exhaustion.
fn assert_no_blocked_locks(primo: &Primo, label: &str) {
    let session = primo.session();
    for k in 0..KEYS {
        session
            .run_program(&PairIncrement {
                home: PartitionId(1),
                key: k,
            })
            .unwrap_or_else(|e| panic!("{label}: key {k} still blocked after the storm: {e:?}"));
    }
}

#[test]
fn paxos_commit_terminates_coordinator_crashes_across_the_matrix() {
    for seed in 0..seed_count() {
        for kind in ALL_KINDS {
            for scheme in ALL_SCHEMES {
                let label = format!("{kind:?}/{scheme:?}/seed{seed}");
                let primo = loaded(kind, scheme, CommitMode::PaxosCommit, 0xC0DE + seed);
                coordinator_crash_storm(&primo, 20);
                // Some protocols never run a prepare round (Aria sequences
                // its batches, Primo's WCF path decides inside execution), so
                // the trap may stay armed — that is consistent termination
                // too; what may never happen is an orphan.
                assert_eq!(
                    primo.cluster().orphaned_txns(),
                    0,
                    "{label}: Paxos Commit orphaned a transaction"
                );
                assert_pairs_consistent(&primo, &label);
                assert_no_blocked_locks(&primo, &label);
                primo.shutdown();
            }
        }
    }
}

/// Falsification: the exact same loop must catch classic 2PC blocking —
/// otherwise the matrix test above proves nothing.
#[test]
fn the_loop_catches_classic_two_pc_blocking() {
    let primo = loaded(
        ProtocolKind::TwoPlNoWait,
        LoggingScheme::CocoEpoch,
        CommitMode::TwoPc,
        0xC0DE,
    );
    primo.cluster().arm_coordinator_crash(PartitionId(0));
    let session = primo.session();
    // The armed trap orphans this transaction's first distributed attempt;
    // its leaked locks then starve every retry (fresh transaction IDs die
    // against the orphan's locks) until the attempt budget runs out.
    let result = session.run_program(&PairIncrement {
        home: PartitionId(0),
        key: 0,
    });
    assert!(
        result.is_err(),
        "classic 2PC should have blocked on the orphaned transaction's locks"
    );
    assert_eq!(
        primo.cluster().orphaned_txns(),
        1,
        "the coordinator crash should have orphaned exactly the trapped transaction"
    );
    // The liveness probe the matrix test runs would flag this cell: the
    // orphan still holds key 0 on both partitions.
    assert!(
        session
            .run_program(&PairIncrement {
                home: PartitionId(1),
                key: 0,
            })
            .is_err(),
        "key 0 should still be blocked by the orphan's leaked locks"
    );
    // Untouched keys stay live — the blocking is precisely scoped to the
    // orphan's footprint, not a wedged cluster.
    session
        .run_program(&PairIncrement {
            home: PartitionId(1),
            key: 1,
        })
        .expect("keys outside the orphan's footprint must stay available");
    assert_pairs_consistent(&primo, "classic falsification");
    primo.shutdown();
}

/// Votes and decisions are quorum-durable log entries: losing the leader's
/// disk must not lose them.
#[test]
fn votes_and_decisions_survive_leader_disk_loss() {
    let primo = loaded(
        ProtocolKind::TwoPlNoWait,
        LoggingScheme::CocoEpoch,
        CommitMode::PaxosCommit,
        0xD15C,
    );
    let session = primo.session();
    primo.checkpoint_all();
    for k in 0..KEYS {
        session
            .run_program(&PairIncrement {
                home: PartitionId(0),
                key: k,
            })
            .unwrap();
    }
    // Every commit above reached a durable decision on partition 1's log.
    let decided: Vec<_> = primo
        .cluster()
        .recorder
        .merge()
        .of_kind(|k| matches!(k, TraceEventKind::DecisionReached { commit: true, .. }))
        .events()
        .iter()
        .filter_map(|e| e.txn)
        .collect();
    assert!(!decided.is_empty(), "no durable commit decisions recorded");

    // Disk loss: the dead leader's local log replica is discarded too; the
    // surviving quorum must still reproduce every vote and decision.
    primo.crash_partition_discarding_log(PartitionId(1));
    primo
        .recover_partition(PartitionId(1))
        .expect("recovery ran");
    let log = &primo.cluster().partition(PartitionId(1)).log;
    for txn in &decided {
        assert_eq!(
            log.commit_decision_for(*txn, None),
            Some(true),
            "decision for {txn} lost with the leader's disk"
        );
    }
    assert!(
        log.unresolved_commit_votes(None).is_empty(),
        "every logged vote must still be covered by a decision after fail-over"
    );
    assert_pairs_consistent(&primo, "disk loss");
    primo.shutdown();
}

/// The experiment driver's coordinator-crash plan end to end: the snapshot
/// reports the in-doubt resolution and the commit-decision latency
/// breakdown, and Paxos Commit orphans nothing.
#[test]
fn coordinator_crash_plan_reports_in_doubt_metrics() {
    let snap = Experiment::new()
        .protocol(ProtocolKind::TwoPlNoWait)
        .commit_mode(CommitMode::PaxosCommit)
        .replication_factor(3)
        .scale(Scale::test())
        .duration_ms(300)
        .fast_local()
        .crash(CrashPlan::coordinator(
            PartitionId(0),
            Duration::from_millis(100),
        ))
        .run();
    assert!(snap.committed > 0);
    assert_eq!(snap.orphaned_txns, 0, "Paxos Commit must not orphan");
    assert_eq!(
        snap.in_doubt_resolved, 1,
        "the trapped transaction resolves from the durable vote set"
    );
    assert!(snap.commit_decisions > 0);
    assert!(snap.commit_decide_mean_us > 0.0);
    assert!(snap.commit_decide_p99_us > 0);
}
