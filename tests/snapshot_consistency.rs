//! Crash consistency of MVCC snapshot reads: a snapshot reader must never
//! observe a value that crash compensation (or crashed-partition recovery)
//! later undoes.
//!
//! The scenario, per protocol × group-commit scheme: monotone-counter
//! writers increment keys on a 2-partition cluster while snapshot readers
//! continuously resolve declared read-only programs through
//! [`execute_snapshot`]; partition 1 is crashed mid-run (rolling back every
//! transaction above the scheme's agreement point — undone on survivors via
//! before-image compensation, never replayed on the crashed partition) and
//! then recovered from checkpoint + durable-log replay. Writers stop at the
//! crash, so nothing can re-increment a key and mask a rollback: if any
//! reader ever observed a value above the key's final committed state, the
//! snapshot horizon let an undurable write leak.
//!
//! Counters only grow, so the invariant per key is simply
//! `final committed value >= max value any snapshot read returned`.
//!
//! A second test flips `unsafe_latest_commit_horizon` — the ablation that
//! stubs every scheme's horizon to "latest commit timestamp" — and asserts
//! the same loop DOES observe violations: the suite genuinely discriminates
//! a sound horizon from a plausible-but-wrong one, and the durability wait
//! the real horizon encodes is load-bearing.

use primo_repro::runtime::{execute_snapshot, SnapshotOutcome};
use primo_repro::{
    AbortReason, ClosureProgram, FastRng, LoggingScheme, PartitionId, Primo, ProtocolKind, TableId,
    TraceEventKind, TxnId, Value,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const T: TableId = TableId(0);
const PARTITIONS: u32 = 2;
const KEYS_PER_PARTITION: u64 = 8;

const ALL_PROTOCOLS: [ProtocolKind; 9] = [
    ProtocolKind::TwoPlNoWait,
    ProtocolKind::TwoPlWaitDie,
    ProtocolKind::Silo,
    ProtocolKind::Sundial,
    ProtocolKind::Aria,
    ProtocolKind::Tapir,
    ProtocolKind::Primo,
    ProtocolKind::PrimoNoWm,
    ProtocolKind::PrimoNoWcfNoWm,
];

const ALL_SCHEMES: [LoggingScheme; 4] = [
    LoggingScheme::SyncPerTxn,
    LoggingScheme::CocoEpoch,
    LoggingScheme::Clv,
    LoggingScheme::Watermark,
];

/// One violation: a snapshot read returned `observed` for the key but the
/// final committed state (after crash, compensation and recovery) is lower.
#[derive(Debug)]
#[allow(dead_code)] // fields exist for the assertion failure's Debug output
struct Violation {
    partition: u32,
    key: u64,
    observed: u64,
    final_value: u64,
}

struct CaseOutcome {
    violations: Vec<Violation>,
    /// Snapshot reads answered across the whole case (sanity: the MVCC path
    /// actually ran, the loop is not vacuously green).
    observations: u64,
    /// Flight-recorder dump rendered on failure (empty when the case passed):
    /// the causally-ordered lifecycle of the transactions the crash rolled
    /// back, merged across every worker ring.
    trace_dump: String,
}

/// Trace-dump-on-failure: ask the flight recorder which transactions the
/// crash rolled back (their `Compensation` undo events, or failing that their
/// crash-abort resolutions) and render their merged per-txn lifecycle.
fn crash_rollback_trace_dump(primo: &Primo) -> String {
    let timeline = primo.cluster().recorder.merge();
    let mut doomed: Vec<TxnId> = timeline
        .of_kind(|k| matches!(k, TraceEventKind::Compensation { .. }))
        .events()
        .iter()
        .filter_map(|e| e.txn)
        .collect();
    if doomed.is_empty() {
        // No survivor residue was compensated — fall back to the waiters the
        // crash agreement resolved as not-committed.
        doomed = timeline
            .of_kind(|k| {
                matches!(
                    k,
                    TraceEventKind::Abort {
                        reason: AbortReason::CrashAbort
                    } | TraceEventKind::GroupCommitRelease { committed: false }
                )
            })
            .events()
            .iter()
            .filter_map(|e| e.txn)
            .collect();
    }
    doomed.sort_unstable();
    doomed.dedup();
    doomed.truncate(6); // keep the failure message readable
    primo.cluster().recorder.failure_report(&doomed)
}

/// Run one seeded crash case and report what the snapshot readers saw.
fn run_case(
    kind: ProtocolKind,
    scheme: LoggingScheme,
    seed: u64,
    unsafe_horizon: bool,
) -> CaseOutcome {
    let primo = Primo::builder()
        .partitions(PARTITIONS as usize)
        .protocol(kind)
        .logging(scheme)
        .fast_local()
        .seed(seed)
        // Deep-ish chains so the safe horizon rarely outruns the retained
        // history (a fallback discards the batch, weakening the probe).
        .max_versions(8)
        .tweak(move |c| c.wal.unsafe_latest_commit_horizon = unsafe_horizon)
        .build();
    let session = primo.session();
    for p in 0..PARTITIONS {
        for k in 0..KEYS_PER_PARTITION {
            session.load(PartitionId(p), T, k, Value::from_u64(0));
        }
    }
    // Recovery wipes the crashed partition's volatile store for real; the
    // loaded counters must be rebuildable.
    primo.checkpoint_all();

    let stop_writers = AtomicBool::new(false);
    let stop_readers = AtomicBool::new(false);
    let observed: Mutex<HashMap<(u32, u64), u64>> = Mutex::new(HashMap::new());
    let observations = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..2u64 {
            let session = primo.session();
            let stop_writers = &stop_writers;
            s.spawn(move || {
                let mut rng = FastRng::new(seed.wrapping_mul(0x9E37) + w);
                while !stop_writers.load(Ordering::Relaxed) {
                    let p = PartitionId(rng.next_below(PARTITIONS as u64) as u32);
                    let k = rng.next_below(KEYS_PER_PARTITION);
                    let other = PartitionId(1 - p.0);
                    let ok = rng.next_below(KEYS_PER_PARTITION);
                    // ~30 % distributed increments, so the crash leaves
                    // residue on the survivor that compensation must undo.
                    let distributed = rng.next_below(10) < 3;
                    let _ = session.run_program(&ClosureProgram::new(p, move |ctx| {
                        let v = ctx.read(p, T, k)?.as_u64();
                        ctx.write(p, T, k, Value::from_u64(v + 1))?;
                        if distributed {
                            let w = ctx.read(other, T, ok)?.as_u64();
                            ctx.write(other, T, ok, Value::from_u64(w + 1))?;
                        }
                        Ok(())
                    }));
                }
            });
        }
        for _ in 0..2 {
            let cluster = primo.cluster();
            let stop_readers = &stop_readers;
            let observed = &observed;
            let observations = &observations;
            s.spawn(move || {
                while !stop_readers.load(Ordering::Relaxed) {
                    // One declared read-only program sweeping every key;
                    // partition 0 (the survivor) first, so its observations
                    // survive a RemoteUnavailable on the crashed remote.
                    let seen: Mutex<Vec<(u32, u64, u64)>> = Mutex::new(Vec::new());
                    let prog = ClosureProgram::new(PartitionId(0), |ctx| {
                        for p in 0..PARTITIONS {
                            for k in 0..KEYS_PER_PARTITION {
                                let v = ctx.read(PartitionId(p), T, k)?;
                                seen.lock().unwrap().push((p, k, v.as_u64()));
                            }
                        }
                        Ok(())
                    })
                    .read_only();
                    let outcome = execute_snapshot(cluster, &prog);
                    if let SnapshotOutcome::Done(Err(e)) = &outcome {
                        // The snapshot path must never conflict-abort: the
                        // only legitimate error here is an unreachable
                        // (crashed) remote partition. NotFound would mean a
                        // loaded counter vanished; Validation and the lock
                        // reasons would mean the "no locks, no validation"
                        // contract broke.
                        assert_eq!(
                            e.reason(),
                            AbortReason::RemoteUnavailable,
                            "snapshot read aborted for a non-crash reason under {kind:?}/{scheme:?}: {e:?}"
                        );
                    }
                    // Every answered read was resolved at the session's
                    // fixed horizon, so it counts even if a later read in
                    // the same sweep hit the crashed partition or fell back.
                    let batch = std::mem::take(&mut *seen.lock().unwrap());
                    if !batch.is_empty() {
                        observations.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        let mut map = observed.lock().unwrap();
                        for (p, k, v) in batch {
                            let slot = map.entry((p, k)).or_insert(0);
                            *slot = (*slot).max(v);
                        }
                    }
                }
            });
        }

        // Timeline: let writers and readers race, then crash partition 1
        // mid-flight. Writers stop at the crash so post-crash increments
        // cannot re-cover a rolled-back value and mask a violation.
        std::thread::sleep(Duration::from_millis(30));
        stop_writers.store(true, Ordering::Relaxed);
        primo.crash_partition(PartitionId(1));
        // Readers keep running across the outage (horizon capped below the
        // crash agreement) and across recovery.
        std::thread::sleep(Duration::from_millis(8));
        primo.recover_partition(PartitionId(1));
        std::thread::sleep(Duration::from_millis(8));
        stop_readers.store(true, Ordering::Relaxed);
    });

    let mut violations = Vec::new();
    let observed = observed.into_inner().unwrap();
    for ((p, k), &max_seen) in observed.iter() {
        let final_value = session
            .get(PartitionId(*p), T, *k)
            .expect("loaded counters never disappear")
            .as_u64();
        if max_seen > final_value {
            violations.push(Violation {
                partition: *p,
                key: *k,
                observed: max_seen,
                final_value,
            });
        }
    }
    // Render the trace before shutdown (the recorder lives on the cluster);
    // skip the work entirely on the happy path.
    let trace_dump = if violations.is_empty() {
        String::new()
    } else {
        crash_rollback_trace_dump(&primo)
    };
    primo.shutdown();
    CaseOutcome {
        violations,
        observations: observations.load(Ordering::Relaxed),
        trace_dump,
    }
}

fn seeds_from_env(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn snapshot_reads_survive_crashes_under_all_protocols_and_schemes() {
    let seeds = seeds_from_env("PRIMO_SNAPSHOT_SEEDS", 1);
    let mut total_observations = 0u64;
    for kind in ALL_PROTOCOLS {
        for scheme in ALL_SCHEMES {
            for seed in 0..seeds {
                let outcome = run_case(kind, scheme, 0xC0DE + seed, false);
                assert!(
                    outcome.violations.is_empty(),
                    "snapshot readers observed crash-rolled-back values under \
                     {kind:?}/{scheme:?} seed {seed}: {:?}\n{}",
                    outcome.violations,
                    outcome.trace_dump
                );
                total_observations += outcome.observations;
            }
        }
    }
    assert!(
        total_observations > 0,
        "the snapshot path never answered a read — the suite is vacuous"
    );
}

#[test]
fn latest_commit_horizon_stub_is_caught_by_the_suite() {
    // Falsification: with the horizon stubbed to "latest commit timestamp"
    // (no durability wait, no crash cap) the same loop must detect readers
    // observing values the crash rolls back. Watermark publishes durability
    // one interval behind commit, so the window between "committed" and
    // "durable" is wide open; a handful of seeds is ample to land a crash
    // inside it. If this test ever fails, the suite above has lost its
    // teeth, not the horizon its soundness.
    let mut violations = 0usize;
    let mut dumps = String::new();
    for seed in 0..8u64 {
        let outcome = run_case(ProtocolKind::Primo, LoggingScheme::Watermark, seed, true);
        violations += outcome.violations.len();
        dumps.push_str(&outcome.trace_dump);
    }
    assert!(
        violations > 0,
        "the unsound latest-commit horizon produced no observable violation; \
         the crash-consistency suite cannot discriminate it from a sound one"
    );
    // The same violating runs double as the flight recorder's falsification
    // fixture: the failure path must have rendered a merged trace dump with
    // at least one per-transaction lifecycle in it — an empty or headless
    // dump would mean the trace-dump-on-failure consumer is dead weight.
    assert!(
        dumps.contains("flight recorder"),
        "a violating case produced no trace dump"
    );
    assert!(
        dumps.contains("--- txn"),
        "the trace dump names no rolled-back transaction; dump was:\n{dumps}"
    );
}
