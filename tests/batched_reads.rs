//! Batched remote-read fan-out: message accounting and outcome equivalence.
//!
//! The batching layer must change exactly one thing — how many network round
//! trips the read phase charges — and nothing else. These tests pin both
//! sides of that contract:
//!
//! * per-protocol round-trip accounting (in the style of the `twopl.rs`
//!   round-trip tests): a hinted transaction with `m` remote reads pays
//!   `m - 1` fewer round trips batched than sequential, with exact totals for
//!   the protocols whose commit rounds are pinned elsewhere;
//! * a seeded 9-protocol × 4-scheme equivalence suite: the same deterministic
//!   workload, run batched (the default) and sequential
//!   (`batch_remote_reads = false`), produces identical commit/abort
//!   outcomes and byte-identical stores — including across an injected
//!   partition crash and real recovery.

use primo_repro::{
    AbortReason, FastRng, Key, LoggingScheme, PartitionId, Primo, ProtocolKind, TableId,
    TraceEventKind, TxnContext, TxnProgram, TxnResult, Value,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const ALL_KINDS: [ProtocolKind; 9] = [
    ProtocolKind::TwoPlNoWait,
    ProtocolKind::TwoPlWaitDie,
    ProtocolKind::Silo,
    ProtocolKind::Sundial,
    ProtocolKind::Aria,
    ProtocolKind::Tapir,
    ProtocolKind::Primo,
    ProtocolKind::PrimoNoWm,
    ProtocolKind::PrimoNoWcfNoWm,
];

const ALL_SCHEMES: [LoggingScheme; 4] = [
    LoggingScheme::Watermark,
    LoggingScheme::CocoEpoch,
    LoggingScheme::Clv,
    LoggingScheme::SyncPerTxn,
];

const T: TableId = TableId(0);
const LOADED_KEYS: u64 = 32;
const FRESH_KEY: u64 = 5_000;
const DELETE_KEY: u64 = 9_999;

/// A read-modify-write over an explicit key list that advertises the whole
/// list as its static footprint — the YCSB shape, minimized.
#[derive(Clone)]
struct HintedRmw {
    home: PartitionId,
    keys: Vec<(PartitionId, Key)>,
}

impl TxnProgram for HintedRmw {
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        for (p, k) in &self.keys {
            let v = ctx.read(*p, T, *k)?;
            ctx.write(*p, T, *k, Value::from_u64(v.as_u64() + 1))?;
        }
        Ok(())
    }
    fn home_partition(&self) -> PartitionId {
        self.home
    }
    fn read_hint(&self) -> Vec<(PartitionId, TableId, Key)> {
        self.keys.iter().map(|(p, k)| (*p, T, *k)).collect()
    }
}

fn build(kind: ProtocolKind, scheme: LoggingScheme, batched: bool, seed: u64) -> Primo {
    let b = Primo::builder()
        .partitions(3)
        .protocol(kind)
        .logging(scheme)
        .fast_local()
        .seed(seed);
    let b = if batched {
        b
    } else {
        b.tweak(|c| c.batch_remote_reads = false)
    };
    let primo = b.build();
    let session = primo.session();
    for p in 0..3u32 {
        for k in 0..LOADED_KEYS {
            session.load(PartitionId(p), T, k, Value::from_u64(k));
        }
        // Dedicated victim for the transactional delete in the workload.
        session.load(PartitionId(p), T, DELETE_KEY, Value::from_u64(99));
    }
    primo
}

/// Round trips charged by one run of `program` on a fresh cluster.
fn round_trips_for(kind: ProtocolKind, batched: bool, program: &dyn TxnProgram) -> u64 {
    let primo = build(kind, LoggingScheme::Watermark, batched, 7);
    let before = primo.cluster().net.round_trips_charged();
    primo.session().run_program(program).unwrap();
    let charged = primo.cluster().net.round_trips_charged() - before;
    primo.shutdown();
    charged
}

// ---------------------------------------------------------------------------
// Per-protocol round-trip accounting.
// ---------------------------------------------------------------------------

/// A hinted transaction with `m` remote reads on one partition collapses its
/// read phase to a single fan-out: `m - 1` round trips saved, under every
/// protocol, whatever its commit rounds cost.
#[test]
fn batching_saves_m_minus_one_round_trips_for_every_protocol() {
    let program = HintedRmw {
        home: PartitionId(0),
        keys: vec![
            (PartitionId(1), 3),
            (PartitionId(1), 4),
            (PartitionId(1), 5),
        ],
    };
    for kind in ALL_KINDS {
        let seq = round_trips_for(kind, false, &program);
        let bat = round_trips_for(kind, true, &program);
        assert_eq!(
            seq - bat,
            2,
            "{}: 3 remote reads must batch into 1 fan-out (seq {seq}, batched {bat})",
            kind.label()
        );
    }
}

/// Exact totals for the protocols whose commit rounds are pinned by their own
/// round-trip tests: reads collapse to one fan-out, commit rounds unchanged.
#[test]
fn exact_round_trip_totals_with_batching() {
    let program = HintedRmw {
        home: PartitionId(0),
        keys: vec![
            (PartitionId(1), 3),
            (PartitionId(1), 4),
            (PartitionId(1), 5),
        ],
    };
    // (kind, sequential, batched): sequential = m reads + commit rounds;
    // batched replaces the m reads with one fan-out.
    let cases = [
        // WCF Primo: exclusive-locked remote reads, no 2PC.
        (ProtocolKind::Primo, 3, 1),
        (ProtocolKind::PrimoNoWm, 3, 1),
        // Non-WCF ablation: shared reads + prepare + commit.
        (ProtocolKind::PrimoNoWcfNoWm, 5, 3),
        // 2PL and the OCC baselines: reads + prepare + commit.
        (ProtocolKind::TwoPlNoWait, 5, 3),
        (ProtocolKind::TwoPlWaitDie, 5, 3),
        (ProtocolKind::Silo, 5, 3),
        (ProtocolKind::Sundial, 5, 3),
        // TAPIR: reads + one consolidated prepare round.
        (ProtocolKind::Tapir, 4, 2),
    ];
    for (kind, want_seq, want_bat) in cases {
        assert_eq!(
            round_trips_for(kind, false, &program),
            want_seq,
            "{}: sequential round trips",
            kind.label()
        );
        assert_eq!(
            round_trips_for(kind, true, &program),
            want_bat,
            "{}: batched round trips",
            kind.label()
        );
    }
}

/// A footprint spanning two remote partitions still resolves in ONE round
/// trip — the fan-out is charged at the slowest partition, not the sum.
#[test]
fn fan_out_across_partitions_is_one_round_trip() {
    let program = HintedRmw {
        home: PartitionId(0),
        keys: vec![(PartitionId(1), 3), (PartitionId(2), 4)],
    };
    assert_eq!(round_trips_for(ProtocolKind::Primo, false, &program), 2);
    assert_eq!(round_trips_for(ProtocolKind::Primo, true, &program), 1);
}

/// WCF dummy reads (pre-locking blind writes) piggyback on the batch: two
/// remote blind writes cost one fan-out instead of two dummy-read rounds.
#[test]
fn wcf_dummy_reads_piggyback_on_the_batch() {
    #[derive(Clone)]
    struct BlindWrites;
    impl TxnProgram for BlindWrites {
        fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
            ctx.write(PartitionId(1), T, 3, Value::from_u64(77))?;
            ctx.write(PartitionId(1), T, 4, Value::from_u64(78))
        }
        fn home_partition(&self) -> PartitionId {
            PartitionId(0)
        }
        fn read_hint(&self) -> Vec<(PartitionId, TableId, Key)> {
            vec![(PartitionId(1), T, 3), (PartitionId(1), T, 4)]
        }
    }
    let seq = round_trips_for(ProtocolKind::Primo, false, &BlindWrites);
    let bat = round_trips_for(ProtocolKind::Primo, true, &BlindWrites);
    assert_eq!(seq, 2, "each dummy read pays its own round trip");
    assert_eq!(bat, 1, "both dummy reads are covered by the fan-out");
}

/// The cluster-level prefetch counters and the flight recorder both see the
/// fan-out: one issue event, a hit per covered read, a live hit rate.
#[test]
fn prefetch_counters_and_trace_events_record_the_fan_out() {
    let primo = build(ProtocolKind::Primo, LoggingScheme::Watermark, true, 7);
    let program = HintedRmw {
        home: PartitionId(0),
        keys: vec![
            (PartitionId(1), 3),
            (PartitionId(1), 4),
            (PartitionId(1), 5),
        ],
    };
    primo.session().run_program(&program).unwrap();
    let cluster = primo.cluster();
    assert_eq!(cluster.prefetch_fanouts(), 1);
    assert_eq!(cluster.prefetch_hits(), 3);
    assert_eq!(cluster.prefetch_stale(), 0);
    assert!((cluster.prefetch_hit_rate() - 1.0).abs() < 1e-9);

    let timeline = cluster.recorder.merge();
    let issued = timeline
        .of_kind(|k| matches!(k, TraceEventKind::PrefetchIssued { .. }))
        .events()
        .len();
    let hits = timeline
        .of_kind(|k| matches!(k, TraceEventKind::PrefetchHit))
        .events()
        .len();
    assert_eq!(issued, 1, "one PrefetchIssued event per fan-out");
    assert_eq!(hits, 3, "one PrefetchHit event per covered read");
    primo.shutdown();
}

/// A prefetched version that is overwritten between the fan-out and the read
/// is detected as stale: the read pays its round trip, returns the live
/// value, and the transaction still commits correctly.
#[test]
fn stale_prefetch_falls_back_to_a_live_read() {
    #[derive(Clone)]
    struct StaleSecondRead {
        cluster: Arc<primo_repro::runtime::cluster::Cluster>,
    }
    impl TxnProgram for StaleSecondRead {
        fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
            // First read hits the prefetch buffer.
            ctx.read(PartitionId(1), T, 3)?;
            // An external writer bumps key 4 *after* the fan-out observed it.
            self.cluster
                .partition(PartitionId(1))
                .store
                .get(T, 4)
                .unwrap()
                .install_next_version(Value::from_u64(4_000));
            // The prefetched wts no longer matches: stale, live round trip.
            let v = ctx.read(PartitionId(1), T, 4)?;
            assert_eq!(v.as_u64(), 4_000, "a stale hit must read the live value");
            Ok(())
        }
        fn home_partition(&self) -> PartitionId {
            PartitionId(0)
        }
        fn read_hint(&self) -> Vec<(PartitionId, TableId, Key)> {
            vec![(PartitionId(1), T, 3), (PartitionId(1), T, 4)]
        }
    }
    let primo = build(ProtocolKind::TwoPlNoWait, LoggingScheme::CocoEpoch, true, 7);
    let program = StaleSecondRead {
        cluster: Arc::clone(primo.cluster()),
    };
    primo.session().run_program(&program).unwrap();
    let cluster = primo.cluster();
    assert!(
        cluster.prefetch_stale() >= 1,
        "the bumped key must be stale"
    );
    assert!(cluster.prefetch_hits() >= 1, "the untouched key still hits");
    let stale_events = cluster
        .recorder
        .merge()
        .of_kind(|k| matches!(k, TraceEventKind::PrefetchStale))
        .events()
        .len();
    assert!(stale_events >= 1, "PrefetchStale must be traced");
    primo.shutdown();
}

/// Hint-less programs with a conflict abort learn their footprint: the retry
/// resolves the aborted attempt's observed remote set in one fan-out.
#[test]
fn learned_footprint_batches_the_retry() {
    use std::sync::atomic::{AtomicBool, Ordering};

    struct FailsOnce {
        cluster: Arc<primo_repro::runtime::cluster::Cluster>,
        failed: AtomicBool,
    }
    impl TxnProgram for FailsOnce {
        fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
            // No hint: the first attempt pays one round trip per remote read.
            for k in [3u64, 4, 5] {
                ctx.read(PartitionId(1), T, k)?;
            }
            if !self.failed.swap(true, Ordering::SeqCst) {
                // First attempt: bail out with a retryable conflict so the
                // worker captures the observed remote set as the next plan.
                return Err(primo_repro::TxnError::Aborted(AbortReason::LockConflict));
            }
            ctx.write(PartitionId(0), T, 1, Value::from_u64(9))
        }
        fn home_partition(&self) -> PartitionId {
            PartitionId(0)
        }
    }
    let primo = build(ProtocolKind::TwoPlNoWait, LoggingScheme::CocoEpoch, true, 7);
    let program = FailsOnce {
        cluster: Arc::clone(primo.cluster()),
        failed: AtomicBool::new(false),
    };
    let _ = &program.cluster; // cluster handle kept for symmetry with the stale test
    let attempts = primo.session().run_program(&program).unwrap();
    assert_eq!(attempts, 2, "exactly one retry");
    let cluster = primo.cluster();
    // Attempt 1: no plan -> 3 misses. Attempt 2: learned plan -> 3 hits.
    assert_eq!(cluster.prefetch_fanouts(), 1, "only the retry fans out");
    assert_eq!(cluster.prefetch_hits(), 3);
    assert_eq!(cluster.prefetch_misses(), 3);
    primo.shutdown();
}

// ---------------------------------------------------------------------------
// 9-protocol × 4-scheme equivalence: batched vs sequential.
// ---------------------------------------------------------------------------

/// Byte-level snapshot of one partition's committed keys and payloads.
fn value_snapshot(primo: &Primo, p: PartitionId) -> BTreeMap<u64, Vec<u8>> {
    let table = primo.cluster().partition(p).store.table(T);
    let mut keys = table.scan_keys(|_| true);
    keys.sort_unstable();
    keys.into_iter()
        .map(|k| {
            let rec = table.get(k).expect("scanned key exists");
            (k, rec.read().value.as_bytes().to_vec())
        })
        .collect()
}

/// The deterministic seeded workload both modes run: a mix of distributed
/// RMWs (hinted), an insert and a delete, plus a hint-less closure program so
/// the empty-footprint path is exercised in the same run.
fn run_workload(primo: &Primo, seed: u64) -> Vec<Result<usize, AbortReason>> {
    let mut rng = FastRng::new(seed);
    let session = primo.session();
    let mut outcomes = Vec::new();
    for i in 0..10u64 {
        let home = PartitionId((rng.next_below(3)) as u32);
        let mut keys = Vec::new();
        for _ in 0..4 {
            let p = PartitionId(rng.next_below(3) as u32);
            keys.push((p, rng.next_below(LOADED_KEYS)));
        }
        // Force at least one remote access so every transaction can batch.
        let remote = PartitionId((home.0 + 1) % 3);
        keys.push((remote, rng.next_below(LOADED_KEYS)));
        keys.sort_unstable();
        keys.dedup();
        outcomes.push(session.run_program(&HintedRmw { home, keys }));
        if i == 4 {
            // Lifecycle ops mid-stream, through a hint-less program (so the
            // empty-footprint path runs in the same workload): a remote
            // insert of a fresh key and a remote delete of a loaded one.
            #[derive(Clone)]
            struct InsertDelete;
            impl TxnProgram for InsertDelete {
                fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                    ctx.insert(PartitionId(1), T, FRESH_KEY, Value::from_u64(1))?;
                    ctx.delete(PartitionId(1), T, DELETE_KEY)
                }
                fn home_partition(&self) -> PartitionId {
                    PartitionId(0)
                }
            }
            outcomes.push(session.run_program(&InsertDelete));
        }
    }
    outcomes
}

/// One combo of the equivalence matrix: run the seeded workload batched and
/// sequential, then crash + recover a partition in both, and require
/// identical outcomes and byte-identical stores throughout.
fn equivalent_with_and_without_batching(kind: ProtocolKind, scheme: LoggingScheme) {
    let seed = kind as u64 * 101 + scheme as u64 * 13 + 5;
    let label = format!("{}/{}", kind.label(), scheme.label());

    let run = |batched: bool| {
        let primo = build(kind, scheme, batched, seed);
        primo.checkpoint_all();
        let outcomes = run_workload(&primo, seed);
        // Let the committed work become durable, then crash and recover the
        // partition most of the remote traffic hit.
        std::thread::sleep(Duration::from_millis(40));
        let target = PartitionId(1);
        let before = value_snapshot(&primo, target);
        primo.crash_partition(target);
        primo.recover_partition(target).expect("recovery must run");
        assert_eq!(
            before,
            value_snapshot(&primo, target),
            "{label}: recovery diverged from the crash-free state (batched={batched})"
        );
        let snaps: Vec<_> = (0..3u32)
            .map(|p| value_snapshot(&primo, PartitionId(p)))
            .collect();
        primo.shutdown();
        (outcomes, snaps)
    };

    let (outcomes_batched, stores_batched) = run(true);
    let (outcomes_seq, stores_seq) = run(false);
    assert_eq!(
        outcomes_batched, outcomes_seq,
        "{label}: commit/abort outcomes must not depend on batching"
    );
    assert_eq!(
        stores_batched, stores_seq,
        "{label}: stores must be byte-identical with and without batching"
    );
}

#[test]
fn batched_and_sequential_runs_are_equivalent_for_all_protocols_and_schemes() {
    for kind in ALL_KINDS {
        for scheme in ALL_SCHEMES {
            equivalent_with_and_without_batching(kind, scheme);
        }
    }
}

/// Batching defaults on, and the sequential tweak really reaches the config.
#[test]
fn batching_is_on_by_default_and_tweakable() {
    let on = Primo::builder().partitions(1).fast_local().build();
    assert!(on.cluster().config.batch_remote_reads);
    on.shutdown();
    let off = Primo::builder()
        .partitions(1)
        .fast_local()
        .tweak(|c| c.batch_remote_reads = false)
        .build();
    assert!(!off.cluster().config.batch_remote_reads);
    off.shutdown();
}
