//! End-to-end experiment-driver tests through the facade: every protocol ×
//! workload combination used by the figure harnesses must run, commit
//! transactions and produce sensible metrics on a miniature cluster.

use primo_repro::{
    CrashPlan, Experiment, LoggingScheme, PartitionId, Phase, ProtocolKind, Scale, SmallbankConfig,
    YcsbConfig,
};
use std::time::Duration;

fn tiny() -> Experiment {
    Experiment::new()
        .scale(Scale {
            partitions: 2,
            workers_per_partition: 2,
            duration_ms: 200,
            warmup_ms: 30,
            ..Scale::test()
        })
        .fast_local()
        .wal_interval_ms(2)
        .ycsb(YcsbConfig::small(2))
}

#[test]
fn every_protocol_commits_on_ycsb() {
    // The §6.1.3 pairing (Primo on Watermark, baselines on COCO, Aria/TAPIR
    // self-durable) comes from the registry; the ablation kinds cover the
    // "Primo CC on COCO" combinations.
    for kind in [
        ProtocolKind::Primo,
        ProtocolKind::PrimoNoWcfNoWm,
        ProtocolKind::TwoPlNoWait,
        ProtocolKind::TwoPlWaitDie,
        ProtocolKind::Silo,
        ProtocolKind::Sundial,
        ProtocolKind::Aria,
        ProtocolKind::Tapir,
    ] {
        let name = kind.label();
        let snap = tiny().protocol(kind).run();
        assert!(snap.committed > 0, "{name} committed nothing");
        assert!(snap.throughput_tps > 0.0, "{name} has zero throughput");
        assert!(snap.mean_latency_ms >= 0.0);
        assert!(snap.abort_rate >= 0.0 && snap.abort_rate <= 1.0);
    }
}

#[test]
fn primo_commits_on_tpcc_and_smallbank() {
    let snap = tiny()
        .protocol(ProtocolKind::Primo)
        .tpcc(primo_repro::TpccConfig::small(2))
        .run();
    assert!(snap.committed > 0, "TPC-C committed nothing");

    let snap = tiny()
        .protocol(ProtocolKind::Primo)
        .smallbank(SmallbankConfig {
            num_partitions: 2,
            accounts_per_partition: 500,
            ..Default::default()
        })
        .run();
    assert!(snap.committed > 0, "Smallbank committed nothing");
}

#[test]
fn latency_breakdown_reflects_protocol_structure() {
    // Primo must not spend time in the 2PC phase; 2PL+2PC must.
    let primo = tiny().protocol(ProtocolKind::Primo).run();
    assert!(primo.phase(Phase::TwoPc) < 1e-6, "Primo charged 2PC time");
    assert!(primo.phase(Phase::Execute) > 0.0);

    let twopl = tiny().protocol(ProtocolKind::TwoPlNoWait).run();
    assert!(
        twopl.phase(Phase::TwoPc) > 0.0,
        "2PL+2PC must charge 2PC time"
    );
}

#[test]
fn crash_injection_produces_crash_aborts_and_recovers() {
    let snap = tiny()
        .protocol(ProtocolKind::Primo)
        .duration_ms(400)
        // Longer interval so in-flight transactions exist when the crash hits.
        .wal_interval_ms(20)
        .crash(CrashPlan::partition_loss(
            PartitionId(1),
            Duration::from_millis(150),
            Duration::from_millis(50),
        ))
        .run();
    assert!(
        snap.committed > 0,
        "cluster did not keep committing around the crash"
    );
}

#[test]
fn lagging_partition_hurts_coco_more_than_watermark() {
    // Fig 13a in miniature: delay control messages from partition 1 and
    // compare WM vs COCO. The runs here are far too short (300 ms) for a
    // stable throughput-ratio comparison — Fig 13a (the `figures fig13`
    // harness) does that at proper scale. This test only checks that both
    // schemes keep committing while a partition's control messages are
    // delayed by 20 ms.
    let run = |scheme: LoggingScheme, lag_us: Option<u64>| {
        let mut exp = tiny()
            .protocol(ProtocolKind::Primo)
            .duration_ms(300)
            .logging(scheme);
        if let Some(us) = lag_us {
            exp = exp.lag_partition(PartitionId(1), us);
        }
        exp.run().throughput_tps
    };
    let lag = Some(20_000u64); // 20 ms
    let wm_base = run(LoggingScheme::Watermark, None);
    let wm_lagged = run(LoggingScheme::Watermark, lag);
    let coco_base = run(LoggingScheme::CocoEpoch, None);
    let coco_lagged = run(LoggingScheme::CocoEpoch, lag);
    assert!(wm_base > 0.0 && coco_base > 0.0);
    assert!(
        wm_lagged > 0.0,
        "watermark group commit stalled completely under control-message lag"
    );
    assert!(
        coco_lagged >= 0.0,
        "COCO run failed outright under control-message lag"
    );
}
