//! End-to-end experiment-driver tests: every protocol × workload combination
//! used by the figure harnesses must run, commit transactions and produce
//! sensible metrics on a miniature cluster.

use primo_repro::baselines::{AriaProtocol, SiloProtocol, SundialProtocol, TapirProtocol, TwoPlProtocol};
use primo_repro::common::config::{ClusterConfig, LoggingScheme};
use primo_repro::common::{PartitionId, Phase};
use primo_repro::core::PrimoProtocol;
use primo_repro::runtime::experiment::{run_experiment, CrashPlan, ExperimentOptions};
use primo_repro::runtime::protocol::Protocol;
use primo_repro::workloads::{SmallbankConfig, SmallbankWorkload, TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload};
use std::sync::Arc;
use std::time::Duration;

fn tiny_cluster(scheme: LoggingScheme) -> ClusterConfig {
    let mut cfg = ClusterConfig::for_tests(2);
    cfg.wal.scheme = scheme;
    cfg.wal.interval_ms = 2;
    cfg
}

fn quick_options() -> ExperimentOptions {
    ExperimentOptions {
        warmup: Duration::from_millis(30),
        duration: Duration::from_millis(200),
        ..Default::default()
    }
}

fn ycsb() -> Arc<YcsbWorkload> {
    Arc::new(YcsbWorkload::new(YcsbConfig::small(2)))
}

#[test]
fn every_protocol_commits_on_ycsb() {
    let protocols: Vec<(Arc<dyn Protocol>, LoggingScheme)> = vec![
        (Arc::new(PrimoProtocol::full()), LoggingScheme::Watermark),
        (Arc::new(PrimoProtocol::without_wcf()), LoggingScheme::CocoEpoch),
        (Arc::new(TwoPlProtocol::no_wait()), LoggingScheme::CocoEpoch),
        (Arc::new(TwoPlProtocol::wait_die()), LoggingScheme::CocoEpoch),
        (Arc::new(SiloProtocol::new()), LoggingScheme::CocoEpoch),
        (Arc::new(SundialProtocol::new()), LoggingScheme::CocoEpoch),
        (Arc::new(AriaProtocol::new(Default::default())), LoggingScheme::Watermark),
        (Arc::new(TapirProtocol::new()), LoggingScheme::Watermark),
    ];
    for (protocol, scheme) in protocols {
        let name = protocol.name();
        let snap = run_experiment(tiny_cluster(scheme), protocol, ycsb(), &quick_options());
        assert!(snap.committed > 0, "{name} committed nothing");
        assert!(snap.throughput_tps > 0.0, "{name} has zero throughput");
        assert!(snap.mean_latency_ms >= 0.0);
        assert!(snap.abort_rate >= 0.0 && snap.abort_rate <= 1.0);
    }
}

#[test]
fn primo_commits_on_tpcc_and_smallbank() {
    let snap = run_experiment(
        tiny_cluster(LoggingScheme::Watermark),
        Arc::new(PrimoProtocol::full()),
        Arc::new(TpccWorkload::new(TpccConfig::small(2))),
        &quick_options(),
    );
    assert!(snap.committed > 0, "TPC-C committed nothing");

    let snap = run_experiment(
        tiny_cluster(LoggingScheme::Watermark),
        Arc::new(PrimoProtocol::full()),
        Arc::new(SmallbankWorkload::new(SmallbankConfig {
            num_partitions: 2,
            accounts_per_partition: 500,
            ..Default::default()
        })),
        &quick_options(),
    );
    assert!(snap.committed > 0, "Smallbank committed nothing");
}

#[test]
fn latency_breakdown_reflects_protocol_structure() {
    // Primo must not spend time in the 2PC phase; 2PL+2PC must.
    let primo = run_experiment(
        tiny_cluster(LoggingScheme::Watermark),
        Arc::new(PrimoProtocol::full()),
        ycsb(),
        &quick_options(),
    );
    assert!(primo.phase(Phase::TwoPc) < 1e-6, "Primo charged 2PC time");
    assert!(primo.phase(Phase::Execute) > 0.0);

    let twopl = run_experiment(
        tiny_cluster(LoggingScheme::CocoEpoch),
        Arc::new(TwoPlProtocol::no_wait()),
        ycsb(),
        &quick_options(),
    );
    assert!(
        twopl.phase(Phase::TwoPc) > 0.0,
        "2PL+2PC must charge 2PC time"
    );
}

#[test]
fn crash_injection_produces_crash_aborts_and_recovers() {
    let options = ExperimentOptions {
        warmup: Duration::from_millis(30),
        duration: Duration::from_millis(400),
        crash: Some(CrashPlan {
            partition: PartitionId(1),
            at: Duration::from_millis(150),
            recover_after: Duration::from_millis(50),
        }),
        ..Default::default()
    };
    let mut cfg = tiny_cluster(LoggingScheme::Watermark);
    // Longer interval so in-flight transactions exist when the crash hits.
    cfg.wal.interval_ms = 20;
    let snap = run_experiment(cfg, Arc::new(PrimoProtocol::full()), ycsb(), &options);
    assert!(snap.committed > 0, "cluster did not keep committing around the crash");
}

#[test]
fn lagging_partition_hurts_coco_more_than_watermark() {
    // Fig 13a in miniature: delay control messages from partition 1 and
    // compare the throughput drop of WM vs COCO. The watermark scheme must
    // retain at least as much relative throughput as COCO.
    let lag = Some((PartitionId(1), 20_000u64)); // 20 ms
    let run = |scheme, lag_opt: Option<(PartitionId, u64)>| {
        let options = ExperimentOptions {
            warmup: Duration::from_millis(30),
            duration: Duration::from_millis(300),
            lag_partition: lag_opt,
            ..Default::default()
        };
        run_experiment(
            tiny_cluster(scheme),
            Arc::new(PrimoProtocol::full()),
            ycsb(),
            &options,
        )
        .throughput_tps
    };
    let wm_base = run(LoggingScheme::Watermark, None);
    let wm_lagged = run(LoggingScheme::Watermark, lag);
    let coco_base = run(LoggingScheme::CocoEpoch, None);
    let coco_lagged = run(LoggingScheme::CocoEpoch, lag);
    // The runs here are far too short (300 ms) for a stable throughput-ratio
    // comparison — Fig 13a (the `figures fig13` harness) does that at proper
    // scale. This test only checks that both schemes keep committing while a
    // partition's control messages are delayed by 20 ms.
    assert!(wm_base > 0.0 && coco_base > 0.0);
    assert!(
        wm_lagged > 0.0,
        "watermark group commit stalled completely under control-message lag"
    );
    assert!(
        coco_lagged >= 0.0,
        "COCO run failed outright under control-message lag"
    );
}
