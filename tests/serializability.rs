//! Cross-protocol serializability checks: concurrent transfer transactions
//! must conserve the total amount of money regardless of the protocol, and
//! every per-transaction effect must be all-or-nothing across partitions.
//!
//! All protocols are selected through the facade's [`ProtocolRegistry`] — the
//! same constructor path the figure harnesses use.

use primo_repro::{
    PartitionId, Primo, ProtocolKind, TableId, TxnContext, TxnProgram, TxnResult, Value,
};
use std::sync::atomic::{AtomicU64, Ordering};

const ACCOUNTS: TableId = TableId(0);
const NUM_ACCOUNTS: u64 = 8;
const INITIAL: u64 = 1_000;

struct TransferTxn {
    home: PartitionId,
    from: (PartitionId, u64),
    to: (PartitionId, u64),
    amount: u64,
}

impl TxnProgram for TransferTxn {
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        if self.from == self.to {
            // Transferring to the same account is a no-op.
            let _ = ctx.read(self.from.0, ACCOUNTS, self.from.1)?;
            return Ok(());
        }
        let a = ctx.read(self.from.0, ACCOUNTS, self.from.1)?.as_u64();
        let b = ctx.read(self.to.0, ACCOUNTS, self.to.1)?.as_u64();
        // Branch on the read: never overdraw.
        let amount = self.amount.min(a);
        ctx.write(
            self.from.0,
            ACCOUNTS,
            self.from.1,
            Value::from_u64(a - amount),
        )?;
        ctx.write(self.to.0, ACCOUNTS, self.to.1, Value::from_u64(b + amount))?;
        Ok(())
    }

    fn home_partition(&self) -> PartitionId {
        self.home
    }
}

fn loaded_primo(kind: ProtocolKind, partitions: usize) -> Primo {
    let primo = Primo::builder()
        .protocol(kind)
        .partitions(partitions)
        .fast_local()
        .build();
    let session = primo.session();
    for p in 0..partitions as u32 {
        for k in 0..NUM_ACCOUNTS {
            session.load(PartitionId(p), ACCOUNTS, k, Value::from_u64(INITIAL));
        }
    }
    primo
}

fn total_money(primo: &Primo, partitions: usize) -> u64 {
    let session = primo.session();
    let mut total = 0;
    for p in 0..partitions as u32 {
        for k in 0..NUM_ACCOUNTS {
            total += session.get(PartitionId(p), ACCOUNTS, k).unwrap().as_u64();
        }
    }
    total
}

fn run_transfer_storm(kind: ProtocolKind, partitions: usize, threads: usize, per_thread: usize) {
    let primo = loaded_primo(kind, partitions);
    let expected_total = partitions as u64 * NUM_ACCOUNTS * INITIAL;
    let committed = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..threads {
            let session = primo.session();
            let committed = &committed;
            scope.spawn(move || {
                let mut seed = 0x1234_5678u64 ^ (t as u64) << 17;
                for i in 0..per_thread {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let home = PartitionId((t % partitions) as u32);
                    let from_p = PartitionId((seed % partitions as u64) as u32);
                    let to_p = PartitionId(((seed >> 8) % partitions as u64) as u32);
                    let txn = TransferTxn {
                        home,
                        from: (from_p, seed % NUM_ACCOUNTS),
                        to: (to_p, (seed >> 16) % NUM_ACCOUNTS),
                        amount: 1 + (i as u64 % 17),
                    };
                    if session.run_program(&txn).is_ok() {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let name = primo.protocol().name();
    assert!(
        committed.load(Ordering::Relaxed) > 0,
        "{name}: no transaction committed"
    );
    assert_eq!(
        total_money(&primo, partitions),
        expected_total,
        "{name}: money not conserved"
    );
    primo.shutdown();
}

#[test]
fn primo_conserves_money_under_concurrency() {
    run_transfer_storm(ProtocolKind::Primo, 2, 4, 30);
}

#[test]
fn primo_without_wcf_conserves_money() {
    run_transfer_storm(ProtocolKind::PrimoNoWcfNoWm, 2, 4, 20);
}

#[test]
fn two_pl_no_wait_conserves_money() {
    run_transfer_storm(ProtocolKind::TwoPlNoWait, 2, 4, 20);
}

#[test]
fn two_pl_wait_die_conserves_money() {
    run_transfer_storm(ProtocolKind::TwoPlWaitDie, 2, 4, 20);
}

#[test]
fn silo_conserves_money() {
    run_transfer_storm(ProtocolKind::Silo, 2, 4, 20);
}

#[test]
fn sundial_conserves_money() {
    run_transfer_storm(ProtocolKind::Sundial, 2, 4, 20);
}

#[test]
fn tapir_conserves_money() {
    run_transfer_storm(ProtocolKind::Tapir, 2, 4, 20);
}

#[test]
fn primo_conserves_money_on_three_partitions() {
    run_transfer_storm(ProtocolKind::Primo, 3, 6, 20);
}
