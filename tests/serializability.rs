//! Cross-protocol serializability checks: concurrent transfer transactions
//! must conserve the total amount of money regardless of the protocol, and
//! every per-transaction effect must be all-or-nothing across partitions.

use primo_repro::baselines::{SiloProtocol, SundialProtocol, TapirProtocol, TwoPlProtocol};
use primo_repro::common::config::ClusterConfig;
use primo_repro::common::{PartitionId, TableId, TxnResult, Value};
use primo_repro::core::PrimoProtocol;
use primo_repro::runtime::cluster::Cluster;
use primo_repro::runtime::protocol::Protocol;
use primo_repro::runtime::txn::{TxnContext, TxnProgram};
use primo_repro::runtime::worker::run_single_txn;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const ACCOUNTS: TableId = TableId(0);
const NUM_ACCOUNTS: u64 = 8;
const INITIAL: u64 = 1_000;

struct TransferTxn {
    home: PartitionId,
    from: (PartitionId, u64),
    to: (PartitionId, u64),
    amount: u64,
}

impl TxnProgram for TransferTxn {
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        if self.from == self.to {
            // Transferring to the same account is a no-op.
            let _ = ctx.read(self.from.0, ACCOUNTS, self.from.1)?;
            return Ok(());
        }
        let a = ctx.read(self.from.0, ACCOUNTS, self.from.1)?.as_u64();
        let b = ctx.read(self.to.0, ACCOUNTS, self.to.1)?.as_u64();
        // Branch on the read: never overdraw.
        let amount = self.amount.min(a);
        ctx.write(self.from.0, ACCOUNTS, self.from.1, Value::from_u64(a - amount))?;
        ctx.write(self.to.0, ACCOUNTS, self.to.1, Value::from_u64(b + amount))?;
        Ok(())
    }

    fn home_partition(&self) -> PartitionId {
        self.home
    }
}

fn loaded_cluster(partitions: usize) -> Arc<Cluster> {
    let cluster = Cluster::new(ClusterConfig::for_tests(partitions));
    for p in 0..partitions as u32 {
        for k in 0..NUM_ACCOUNTS {
            cluster
                .partition(PartitionId(p))
                .store
                .insert(ACCOUNTS, k, Value::from_u64(INITIAL));
        }
    }
    cluster
}

fn total_money(cluster: &Cluster, partitions: usize) -> u64 {
    let mut total = 0;
    for p in 0..partitions as u32 {
        for k in 0..NUM_ACCOUNTS {
            total += cluster
                .partition(PartitionId(p))
                .store
                .get(ACCOUNTS, k)
                .unwrap()
                .read()
                .value
                .as_u64();
        }
    }
    total
}

fn run_transfer_storm(protocol: Arc<dyn Protocol>, partitions: usize, threads: usize, per_thread: usize) {
    let cluster = loaded_cluster(partitions);
    let expected_total = partitions as u64 * NUM_ACCOUNTS * INITIAL;
    let committed = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for t in 0..threads {
        let cluster = Arc::clone(&cluster);
        let protocol = Arc::clone(&protocol);
        let committed = Arc::clone(&committed);
        handles.push(std::thread::spawn(move || {
            let mut seed = 0x1234_5678u64 ^ (t as u64) << 17;
            for i in 0..per_thread {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let home = PartitionId((t % partitions) as u32);
                let from_p = PartitionId((seed % partitions as u64) as u32);
                let to_p = PartitionId(((seed >> 8) % partitions as u64) as u32);
                let txn = TransferTxn {
                    home,
                    from: (from_p, seed % NUM_ACCOUNTS),
                    to: (to_p, (seed >> 16) % NUM_ACCOUNTS),
                    amount: 1 + (i as u64 % 17),
                };
                if run_single_txn(&cluster, protocol.as_ref(), &txn).is_ok() {
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    assert!(
        committed.load(Ordering::Relaxed) > 0,
        "{}: no transaction committed",
        protocol.name()
    );
    assert_eq!(
        total_money(&cluster, partitions),
        expected_total,
        "{}: money not conserved",
        protocol.name()
    );
    cluster.shutdown();
}

#[test]
fn primo_conserves_money_under_concurrency() {
    run_transfer_storm(Arc::new(PrimoProtocol::full()), 2, 4, 30);
}

#[test]
fn primo_without_wcf_conserves_money() {
    run_transfer_storm(Arc::new(PrimoProtocol::without_wcf()), 2, 4, 20);
}

#[test]
fn two_pl_no_wait_conserves_money() {
    run_transfer_storm(Arc::new(TwoPlProtocol::no_wait()), 2, 4, 20);
}

#[test]
fn two_pl_wait_die_conserves_money() {
    run_transfer_storm(Arc::new(TwoPlProtocol::wait_die()), 2, 4, 20);
}

#[test]
fn silo_conserves_money() {
    run_transfer_storm(Arc::new(SiloProtocol::new()), 2, 4, 20);
}

#[test]
fn sundial_conserves_money() {
    run_transfer_storm(Arc::new(SundialProtocol::new()), 2, 4, 20);
}

#[test]
fn tapir_conserves_money() {
    run_transfer_storm(Arc::new(TapirProtocol::new()), 2, 4, 20);
}

#[test]
fn primo_conserves_money_on_three_partitions() {
    run_transfer_storm(Arc::new(PrimoProtocol::full()), 3, 6, 20);
}
