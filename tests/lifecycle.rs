//! Cross-protocol record-lifecycle properties: under **every** registered
//! protocol, an aborted transaction leaves the store byte-identical to its
//! pre-transaction state — no phantom records from aborted inserts, no
//! resurrected tombstones from aborted deletes, no leaked locks — and the
//! put/insert/delete contract holds afterwards (a plain put to a key whose
//! insert aborted still fails `NotFound`).
//!
//! This is the acceptance test for the ROADMAP phantom-insert item: before
//! the lifecycle state machine, an insert materialised a zeroed record ahead
//! of the commit decision and never removed it on abort.

use primo_repro::storage::LifecycleState;
use primo_repro::{
    AbortReason, PartitionId, Primo, ProtocolKind, TableId, TxnContext, TxnError, TxnId,
    TxnProgram, TxnResult, Value,
};
use std::collections::BTreeMap;

const ALL_KINDS: [ProtocolKind; 9] = [
    ProtocolKind::TwoPlNoWait,
    ProtocolKind::TwoPlWaitDie,
    ProtocolKind::Silo,
    ProtocolKind::Sundial,
    ProtocolKind::Aria,
    ProtocolKind::Tapir,
    ProtocolKind::Primo,
    ProtocolKind::PrimoNoWm,
    ProtocolKind::PrimoNoWcfNoWm,
];

const T: TableId = TableId(0);
const LOADED_KEYS: u64 = 32;
const FRESH_KEY: u64 = 9_000;

fn loaded(kind: ProtocolKind) -> Primo {
    let primo = Primo::builder()
        .partitions(2)
        .protocol(kind)
        .fast_local()
        .build();
    let session = primo.session();
    for p in 0..2u32 {
        for k in 0..LOADED_KEYS {
            session.load(PartitionId(p), T, k, Value::from_u64(k + 100));
        }
    }
    primo
}

/// Byte-level snapshot of every *visible* record's key and payload. TicToc
/// metadata (`wts`/`rts`) is deliberately excluded: reads legitimately
/// extend leases and raise watermark floors even when the transaction later
/// aborts, but the logical content — which keys exist and what bytes they
/// hold — must be untouched.
type StoreSnapshot = BTreeMap<(u32, u64), Vec<u8>>;

fn snapshot(primo: &Primo) -> StoreSnapshot {
    let mut out = BTreeMap::new();
    for p in primo.cluster().partition_ids() {
        let table = primo.cluster().partition(p).store.table(T);
        let mut keys = table.scan_keys(|_| true);
        keys.sort_unstable();
        for k in keys {
            let rec = table.get(k).expect("scanned key exists");
            out.insert((p.0, k), rec.read().value.as_bytes().to_vec());
        }
    }
    out
}

/// No record anywhere is locked or left in a transient lifecycle state.
fn assert_clean_store(primo: &Primo, label: &str) {
    for p in primo.cluster().partition_ids() {
        let table = primo.cluster().partition(p).store.table(T);
        for k in 0..2 * FRESH_KEY {
            if let Some(rec) = table.get(k) {
                assert!(!rec.lock().is_locked(), "{label}: leaked lock on {p:?}/{k}");
                assert!(
                    !matches!(rec.state(), LifecycleState::UncommittedInsert { .. }),
                    "{label}: uncommitted insert left behind on {p:?}/{k}"
                );
            }
        }
    }
}

struct Program<F: Fn(&mut dyn TxnContext) -> TxnResult<()> + Send + Sync> {
    home: PartitionId,
    body: F,
}

impl<F: Fn(&mut dyn TxnContext) -> TxnResult<()> + Send + Sync> TxnProgram for Program<F> {
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        (self.body)(ctx)
    }
    fn home_partition(&self) -> PartitionId {
        self.home
    }
}

#[test]
fn aborted_insert_and_delete_leave_the_store_byte_identical() {
    for kind in ALL_KINDS {
        let primo = loaded(kind);
        let before = snapshot(&primo);

        // One transaction per partition target: insert a fresh key, delete a
        // loaded key, update another — then roll everything back.
        for target in [PartitionId(0), PartitionId(1)] {
            let err = primo
                .session()
                .run_program(&Program {
                    home: PartitionId(0),
                    body: move |ctx: &mut dyn TxnContext| {
                        ctx.read(target, T, 1)?;
                        ctx.insert(target, T, FRESH_KEY, Value::from_u64(1))?;
                        ctx.delete(target, T, 2)?;
                        ctx.write(target, T, 3, Value::from_u64(999))?;
                        Err(TxnError::Aborted(AbortReason::UserAbort))
                    },
                })
                .unwrap_err();
            assert_eq!(err, AbortReason::UserAbort, "{kind:?}");
        }

        let after = snapshot(&primo);
        assert_eq!(
            before, after,
            "{kind:?}: aborted insert/delete txn must leave the store byte-identical"
        );
        assert_clean_store(&primo, kind.label());

        // The insert aborted, so the key still does not exist: a plain put
        // must abort NotFound under the same protocol...
        let err = primo
            .session()
            .run_program(&Program {
                home: PartitionId(0),
                body: |ctx: &mut dyn TxnContext| {
                    ctx.write(PartitionId(0), T, FRESH_KEY, Value::from_u64(5))
                },
            })
            .unwrap_err();
        assert_eq!(err, AbortReason::NotFound, "{kind:?}: phantom survived");

        // ... and the aborted delete's target is still readable.
        primo
            .session()
            .run_program(&Program {
                home: PartitionId(0),
                body: |ctx: &mut dyn TxnContext| ctx.read(PartitionId(0), T, 2).map(|_| ()),
            })
            .unwrap();

        primo.shutdown();
    }
}

#[test]
fn committed_delete_is_reclaimed_and_stays_deleted() {
    for kind in ALL_KINDS {
        let primo = loaded(kind);
        primo
            .session()
            .run_program(&Program {
                home: PartitionId(0),
                body: |ctx: &mut dyn TxnContext| {
                    ctx.read(PartitionId(0), T, 1)?;
                    ctx.delete(PartitionId(0), T, 5)
                },
            })
            .unwrap();
        // The record is physically gone (deferred reclamation ran) and stays
        // deleted: reads and updates abort NotFound; re-insert succeeds.
        assert!(
            primo.session().get(PartitionId(0), T, 5).is_none()
                || primo
                    .cluster()
                    .partition(PartitionId(0))
                    .store
                    .get(T, 5)
                    .map(|r| r.state() == LifecycleState::Tombstone)
                    .unwrap_or(false),
            "{kind:?}: delete must tombstone (and normally reclaim) the record"
        );
        let err = primo
            .session()
            .run_program(&Program {
                home: PartitionId(0),
                body: |ctx: &mut dyn TxnContext| ctx.read(PartitionId(0), T, 5).map(|_| ()),
            })
            .unwrap_err();
        assert_eq!(err, AbortReason::NotFound, "{kind:?}");
        primo
            .session()
            .run_program(&Program {
                home: PartitionId(0),
                body: |ctx: &mut dyn TxnContext| {
                    ctx.insert(PartitionId(0), T, 5, Value::from_u64(777))
                },
            })
            .unwrap();
        assert_eq!(
            primo.session().get(PartitionId(0), T, 5).unwrap().as_u64(),
            777,
            "{kind:?}: re-insert after delete"
        );
        assert_clean_store(&primo, kind.label());
        primo.shutdown();
    }
}

/// A conflict abort *during the commit phase* — after insert records were
/// already materialised — must unwind them too. (Aria takes no locks, so its
/// lifecycle is covered by the user-abort path and its deterministic
/// decision point instead.)
#[test]
fn commit_phase_conflict_unwinds_materialised_inserts() {
    use primo_repro::common::PhaseTimers;
    use primo_repro::storage::{LockMode, LockPolicy};

    for kind in ALL_KINDS {
        if kind == ProtocolKind::Aria {
            continue;
        }
        let primo = loaded(kind);
        let cluster = primo.cluster();
        // An *older* transaction pins key 3 exclusively so the attempt under
        // test fails its write-set lock phase after creating FRESH_KEY.
        let blocker = TxnId::new(PartitionId(0), 0);
        let blocked = cluster.partition(PartitionId(0)).store.get(T, 3).unwrap();
        blocked.acquire(blocker, LockMode::Exclusive, LockPolicy::NoWait);

        let program = Program {
            home: PartitionId(0),
            body: |ctx: &mut dyn TxnContext| {
                ctx.insert(PartitionId(0), T, FRESH_KEY, Value::from_u64(1))?;
                ctx.write(PartitionId(0), T, 3, Value::from_u64(2))
            },
        };
        let txn = cluster.next_txn_id(PartitionId(0));
        let ticket = cluster.group_commit.begin_txn(PartitionId(0), txn);
        let mut timers = PhaseTimers::new();
        let err = primo
            .protocol()
            .execute_once(
                cluster,
                txn,
                &program,
                &ticket,
                &mut timers,
                &primo_repro::ReadFanout::empty(),
            )
            .unwrap_err();
        cluster.group_commit.txn_aborted(&ticket);
        assert!(
            err.reason().is_conflict(),
            "{kind:?}: expected a conflict abort, got {err:?}"
        );
        assert!(
            cluster
                .partition(PartitionId(0))
                .store
                .get(T, FRESH_KEY)
                .is_none(),
            "{kind:?}: commit-phase abort left a phantom insert behind"
        );
        blocked.release(blocker);
        assert_clean_store(&primo, kind.label());
        primo.shutdown();
    }
}

/// The new YCSB insert/delete churn knob runs under every protocol.
#[test]
fn ycsb_churn_commits_under_every_protocol() {
    use primo_repro::{Experiment, Scale};
    for kind in ALL_KINDS {
        let snap = Experiment::new()
            .protocol(kind)
            .scale(Scale {
                duration_ms: 120,
                warmup_ms: 20,
                ..Scale::test()
            })
            .fast_local()
            .seed(kind as u64 + 1)
            .ycsb_with(|y| y.insert_delete_ratio = 0.3)
            .run();
        assert!(
            snap.committed > 0,
            "{}: churn workload committed nothing",
            kind.label()
        );
    }
}
