//! Integration tests of the watermark-based group commit's three guarantees
//! (§5: monotonicity, durability, consistency) observed through the public
//! cluster API.

use primo_repro::common::config::{ClusterConfig, LoggingScheme};
use primo_repro::common::{PartitionId, TableId, Value};
use primo_repro::core::PrimoProtocol;
use primo_repro::runtime::cluster::Cluster;
use primo_repro::runtime::txn::IncrementProgram;
use primo_repro::runtime::worker::run_single_txn;
use primo_repro::wal::{CommitOutcome, GroupCommit, WatermarkCommit};
use primo_repro::net::DelayedBus;
use primo_repro::common::config::WalConfig;
use primo_repro::common::TxnId;
use std::time::Duration;

fn wm(n: usize, interval_ms: u64) -> WatermarkCommit {
    let bus = DelayedBus::new(n, 50);
    WatermarkCommit::new(
        n,
        WalConfig {
            scheme: LoggingScheme::Watermark,
            interval_ms,
            persist_delay_us: 100,
            force_update: true,
        },
        bus,
    )
}

#[test]
fn global_watermark_is_monotonic_on_every_partition() {
    let wm = wm(3, 1);
    let mut last = vec![0u64; 3];
    for _ in 0..20 {
        std::thread::sleep(Duration::from_millis(3));
        for p in 0..3 {
            let g = wm.global_watermark(PartitionId(p as u32));
            assert!(g >= last[p], "global watermark went backwards on P{p}");
            last[p] = g;
        }
    }
    assert!(last.iter().all(|g| *g > 0), "watermark never advanced");
    wm.shutdown();
}

#[test]
fn global_watermark_never_exceeds_any_partition_watermark_seen() {
    let wm = wm(3, 1);
    std::thread::sleep(Duration::from_millis(40));
    for p in 0..3u32 {
        let g = wm.global_watermark(PartitionId(p));
        for q in 0..3u32 {
            // The published watermark of q can only be >= what p has seen.
            assert!(wm.partition_watermark(PartitionId(q)) + 1 >= g.min(1));
        }
        assert!(g <= wm.partition_watermark(PartitionId(p)) + 1_000_000);
    }
    wm.shutdown();
}

#[test]
fn transactions_below_recovered_watermark_stay_committed() {
    let wm = wm(2, 1);
    // Commit a transaction and wait until it is durable.
    let t1 = TxnId::new(PartitionId(0), 1);
    let ticket = wm.begin_txn(PartitionId(0), t1);
    wm.update_ts(&ticket, 2);
    let waiter = wm.txn_committed(&ticket, 2, 1);
    assert_eq!(wm.wait_durable(&waiter), CommitOutcome::Committed);
    // A crash afterwards must not un-commit it: the agreed watermark is at
    // least as large as any watermark used to report results.
    let agreed = wm.on_partition_crash(PartitionId(1));
    assert!(agreed >= 2, "agreed watermark {agreed} would roll back a reported result");
    wm.shutdown();
}

#[test]
fn committed_effects_survive_a_crash_of_another_partition() {
    // End-to-end: run a distributed transaction, let it become durable, crash
    // the other partition, recover, and check both partitions still show the
    // transaction's effects.
    let mut cfg = ClusterConfig::for_tests(2);
    cfg.wal.scheme = LoggingScheme::Watermark;
    let cluster = Cluster::new(cfg);
    for p in 0..2u32 {
        cluster
            .partition(PartitionId(p))
            .store
            .insert(TableId(0), 1, Value::from_u64(0));
    }
    let protocol = PrimoProtocol::full();
    let prog = IncrementProgram {
        home: PartitionId(0),
        accesses: vec![(PartitionId(0), TableId(0), 1), (PartitionId(1), TableId(0), 1)],
    };
    run_single_txn(&cluster, &protocol, &prog).unwrap();

    cluster.net.set_crashed(PartitionId(1), true);
    cluster.group_commit.on_partition_crash(PartitionId(1));
    cluster.net.set_crashed(PartitionId(1), false);

    for p in 0..2u32 {
        assert_eq!(
            cluster
                .partition(PartitionId(p))
                .store
                .get(TableId(0), 1)
                .unwrap()
                .read()
                .value
                .as_u64(),
            1,
            "durable effect lost on P{p}"
        );
    }
    // And the cluster keeps working after recovery.
    run_single_txn(&cluster, &protocol, &prog).unwrap();
    cluster.shutdown();
}

#[test]
fn ts_floor_prevents_new_transactions_below_the_watermark() {
    let wm = wm(2, 1);
    std::thread::sleep(Duration::from_millis(30));
    let floor = wm.ts_floor(PartitionId(0));
    assert!(floor > 0);
    // A transaction whose coordinator respects the floor commits above it and
    // therefore waits for a later watermark — never below an already
    // published one.
    let t = TxnId::new(PartitionId(0), 99);
    let ticket = wm.begin_txn(PartitionId(0), t);
    let ts = floor + 1;
    wm.update_ts(&ticket, ts);
    let waiter = wm.txn_committed(&ticket, ts, 1);
    assert_eq!(wm.wait_durable(&waiter), CommitOutcome::Committed);
    assert!(wm.global_watermark(PartitionId(0)) > ts || wm.partition_watermark(PartitionId(0)) > ts);
    wm.shutdown();
}
