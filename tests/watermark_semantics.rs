//! Integration tests of the watermark-based group commit's three guarantees
//! (§5: monotonicity, durability, consistency) — the scheme-level properties
//! through the namespaced `wal` module, the end-to-end behaviour through the
//! `Primo` facade.

use primo_repro::common::config::{LoggingScheme, WalConfig};
use primo_repro::net::DelayedBus;
use primo_repro::wal::{CommitOutcome, GroupCommit, WatermarkCommit};
use primo_repro::{PartitionId, Primo, TableId, TxnId, Value};
use std::time::Duration;

fn wm(n: usize, interval_ms: u64) -> WatermarkCommit {
    let bus = DelayedBus::new(n, 50);
    let cfg = WalConfig {
        scheme: LoggingScheme::Watermark,
        interval_ms,
        persist_delay_us: 100,
        force_update: true,
        ..WalConfig::default()
    };
    WatermarkCommit::new(n, cfg, bus, primo_repro::wal::build_logs(n, cfg))
}

#[test]
fn global_watermark_is_monotonic_on_every_partition() {
    let wm = wm(3, 1);
    let mut last = [0u64; 3];
    for _ in 0..20 {
        std::thread::sleep(Duration::from_millis(3));
        for (p, seen) in last.iter_mut().enumerate() {
            let g = wm.global_watermark(PartitionId(p as u32));
            assert!(g >= *seen, "global watermark went backwards on P{p}");
            *seen = g;
        }
    }
    assert!(last.iter().all(|g| *g > 0), "watermark never advanced");
    wm.shutdown();
}

#[test]
fn global_watermark_never_exceeds_any_partition_watermark_seen() {
    let wm = wm(3, 1);
    std::thread::sleep(Duration::from_millis(40));
    for p in 0..3u32 {
        let g = wm.global_watermark(PartitionId(p));
        for q in 0..3u32 {
            // The published watermark of q can only be >= what p has seen.
            assert!(wm.partition_watermark(PartitionId(q)) + 1 >= g.min(1));
        }
        assert!(g <= wm.partition_watermark(PartitionId(p)) + 1_000_000);
    }
    wm.shutdown();
}

#[test]
fn transactions_below_recovered_watermark_stay_committed() {
    let wm = wm(2, 1);
    // Commit a transaction and wait until it is durable.
    let t1 = TxnId::new(PartitionId(0), 1);
    let ticket = wm.begin_txn(PartitionId(0), t1);
    wm.update_ts(&ticket, 2);
    let waiter = wm.txn_committed(&ticket, 2, 1);
    assert_eq!(wm.wait_durable(&waiter), CommitOutcome::Committed);
    // A crash afterwards must not un-commit it: the agreed watermark is at
    // least as large as any watermark used to report results.
    let agreed = wm.on_partition_crash(PartitionId(1));
    assert!(
        agreed >= 2,
        "agreed watermark {agreed} would roll back a reported result"
    );
    wm.shutdown();
}

#[test]
fn committed_effects_survive_a_crash_of_another_partition() {
    // End-to-end through the facade: run a distributed transaction, let it
    // become durable, crash the other partition, recover, and check both
    // partitions still show the transaction's effects.
    let primo = Primo::builder().partitions(2).fast_local().build();
    let session = primo.session();
    for p in 0..2u32 {
        session.load(PartitionId(p), TableId(0), 1, Value::from_u64(0));
    }
    let increment = |session: &primo_repro::Session<'_>| {
        session
            .transaction(PartitionId(0), |ctx| {
                for p in 0..2u32 {
                    let v = ctx.read(PartitionId(p), TableId(0), 1)?.as_u64();
                    ctx.write(PartitionId(p), TableId(0), 1, Value::from_u64(v + 1))?;
                }
                Ok(())
            })
            .unwrap();
    };
    increment(&session);

    primo.crash_partition(PartitionId(1));
    primo.recover_partition(PartitionId(1));

    for p in 0..2u32 {
        assert_eq!(
            session.get(PartitionId(p), TableId(0), 1).unwrap().as_u64(),
            1,
            "durable effect lost on P{p}"
        );
    }
    // And the cluster keeps working after recovery.
    increment(&session);
    for p in 0..2u32 {
        assert_eq!(
            session.get(PartitionId(p), TableId(0), 1).unwrap().as_u64(),
            2
        );
    }
    primo.shutdown();
}

#[test]
fn ts_floor_prevents_new_transactions_below_the_watermark() {
    let wm = wm(2, 1);
    std::thread::sleep(Duration::from_millis(30));
    let floor = wm.ts_floor(PartitionId(0));
    assert!(floor > 0);
    // A transaction whose coordinator respects the floor commits above it and
    // therefore waits for a later watermark — never below an already
    // published one.
    let t = TxnId::new(PartitionId(0), 99);
    let ticket = wm.begin_txn(PartitionId(0), t);
    let ts = floor + 1;
    wm.update_ts(&ticket, ts);
    let waiter = wm.txn_committed(&ticket, ts, 1);
    assert_eq!(wm.wait_durable(&waiter), CommitOutcome::Committed);
    assert!(
        wm.global_watermark(PartitionId(0)) > ts || wm.partition_watermark(PartitionId(0)) > ts
    );
    wm.shutdown();
}
