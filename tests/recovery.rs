//! Crash-recovery equivalence: after an injected crash, a partition's store
//! is wiped and rebuilt from `latest durable checkpoint + bounded
//! durable-log replay` — and the result is byte-identical to the crash-free
//! committed state, for **every** registered protocol under **every**
//! group-commit scheme (the per-scheme replay bounds all have to be right:
//! recovered watermark, last durable epoch boundary, durable LSN).
//!
//! Plus seeded property loops (the offline environment has no proptest):
//! replaying any durable prefix twice equals replaying it once, and replay
//! output is always commit-timestamp-sorted and deduplicated.

use primo_repro::common::PhaseTimers;
use primo_repro::storage::LifecycleState;
use primo_repro::wal::{
    CommitOutcome, CommitWaiter, LogPayload, LoggedWrite, PartitionWal, ReplayBound,
};
use primo_repro::{
    AbortReason, CrashPlan, Experiment, FastRng, LoggingScheme, PartitionId, Primo, ProtocolKind,
    Scale, TableId, TraceEventKind, TxnContext, TxnId, TxnProgram, TxnResult, Value,
};
use std::collections::BTreeMap;
use std::time::Duration;

const ALL_KINDS: [ProtocolKind; 9] = [
    ProtocolKind::TwoPlNoWait,
    ProtocolKind::TwoPlWaitDie,
    ProtocolKind::Silo,
    ProtocolKind::Sundial,
    ProtocolKind::Aria,
    ProtocolKind::Tapir,
    ProtocolKind::Primo,
    ProtocolKind::PrimoNoWm,
    ProtocolKind::PrimoNoWcfNoWm,
];

const ALL_SCHEMES: [LoggingScheme; 4] = [
    LoggingScheme::Watermark,
    LoggingScheme::CocoEpoch,
    LoggingScheme::Clv,
    LoggingScheme::SyncPerTxn,
];

const T: TableId = TableId(0);
const LOADED_KEYS: u64 = 16;
const FRESH_KEY: u64 = 9_000;
const DELETED_KEY: u64 = 7;

struct Program<F: Fn(&mut dyn TxnContext) -> TxnResult<()> + Send + Sync> {
    home: PartitionId,
    body: F,
}

impl<F: Fn(&mut dyn TxnContext) -> TxnResult<()> + Send + Sync> TxnProgram for Program<F> {
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        (self.body)(ctx)
    }
    fn home_partition(&self) -> PartitionId {
        self.home
    }
}

/// Trace-dump-on-failure: render the flight recorder's merged per-txn
/// lifecycle of the transactions the crash rolled back (named by their
/// `Compensation` undo events, or failing that their crash-abort
/// resolutions), so a seeded divergence is diagnosable from the panic alone.
fn crash_rollback_trace_dump(primo: &Primo) -> String {
    let timeline = primo.cluster().recorder.merge();
    let mut doomed: Vec<TxnId> = timeline
        .of_kind(|k| matches!(k, TraceEventKind::Compensation { .. }))
        .events()
        .iter()
        .filter_map(|e| e.txn)
        .collect();
    if doomed.is_empty() {
        doomed = timeline
            .of_kind(|k| {
                matches!(
                    k,
                    TraceEventKind::Abort {
                        reason: AbortReason::CrashAbort
                    } | TraceEventKind::GroupCommitRelease { committed: false }
                )
            })
            .events()
            .iter()
            .filter_map(|e| e.txn)
            .collect();
    }
    doomed.sort_unstable();
    doomed.dedup();
    doomed.truncate(6); // keep the panic message readable
    primo.cluster().recorder.failure_report(&doomed)
}

/// Byte-level snapshot of one partition's committed keys and payloads.
/// TicToc metadata is excluded (recovery re-seeds timestamps from the log;
/// lease extensions are not logical content).
fn value_snapshot(primo: &Primo, p: PartitionId) -> BTreeMap<u64, Vec<u8>> {
    let table = primo.cluster().partition(p).store.table(T);
    let mut keys = table.scan_keys(|_| true);
    keys.sort_unstable();
    keys.into_iter()
        .map(|k| {
            let rec = table.get(k).expect("scanned key exists");
            (k, rec.read().value.as_bytes().to_vec())
        })
        .collect()
}

/// Run the deterministic committed workload every combination replays:
/// distributed updates, an insert and a delete, all landing on `target`.
fn run_committed_prefix(primo: &Primo, target: PartitionId) {
    let session = primo.session();
    for i in 0..4u64 {
        session
            .run_program(&Program {
                home: PartitionId(0),
                body: move |ctx: &mut dyn TxnContext| {
                    ctx.read(PartitionId(0), T, i)?;
                    ctx.write(target, T, i, Value::from_u64(1_000 + i))
                },
            })
            .unwrap_or_else(|e| panic!("update {i} failed: {e:?}"));
    }
    session
        .run_program(&Program {
            home: PartitionId(0),
            body: move |ctx: &mut dyn TxnContext| {
                ctx.read(PartitionId(0), T, 1)?;
                ctx.insert(target, T, FRESH_KEY, Value::from_u64(42))
            },
        })
        .expect("insert failed");
    session
        .run_program(&Program {
            home: PartitionId(0),
            body: move |ctx: &mut dyn TxnContext| {
                ctx.read(PartitionId(0), T, 1)?;
                ctx.delete(target, T, DELETED_KEY)
            },
        })
        .expect("delete failed");
}

/// One crash/recover byte-identity case. With `discard_log` the cluster runs
/// a 3-replica log and the crash throws the leader's local replica away (disk
/// loss, not just memory loss): recovery must rebuild a byte-identical store
/// from the surviving quorum. Verified to fail when quorum durability is
/// stubbed back to the leader's single copy (e.g. by disabling the
/// deterministic successor election): the wiped replica then has nothing to
/// restore or replay.
fn byte_identical_after_crash(kind: ProtocolKind, scheme: LoggingScheme, discard_log: bool) {
    let builder = Primo::builder()
        .partitions(2)
        .protocol(kind)
        .logging(scheme)
        .fast_local()
        .seed(kind as u64 * 31 + scheme as u64 + if discard_log { 1_000 } else { 1 });
    let builder = if discard_log {
        builder.replication_factor(3)
    } else {
        builder
    };
    let primo = builder.build();
    let session = primo.session();
    for p in 0..2u32 {
        for k in 0..LOADED_KEYS {
            session.load(PartitionId(p), T, k, Value::from_u64(k + 100));
        }
    }
    // Base checkpoints: without them the wiped loader data would be
    // unrecoverable (loads bypass the WAL by design).
    primo.checkpoint_all();

    let target = PartitionId(1);
    run_committed_prefix(&primo, target);
    // Let everything become durable and covered: log entries pass
    // their (quorum) persist delay, the watermark overtakes the committed
    // timestamps / the epoch seals its boundary markers.
    std::thread::sleep(Duration::from_millis(40));

    let before_target = value_snapshot(&primo, target);
    let before_other = value_snapshot(&primo, PartitionId(0));
    let live_before = primo.cluster().partition(target).store.total_records();
    assert!(live_before > 0);

    if discard_log {
        primo.crash_partition_discarding_log(target);
        // The wipe really dropped the history. (Not `len() == 0`: the
        // replicated log *service* outlives the leader crash, so a
        // cluster-wide agent may land a watermark/epoch marker on the wiped
        // copy in the instant after the fail-over — markers are not history.)
        assert!(
            primo
                .cluster()
                .partition(target)
                .log
                .replica(0)
                .entries_from(0)
                .iter()
                .all(|e| !matches!(&*e.payload, LogPayload::TxnWrites { .. })),
            "the dead leader's local replica still holds transaction history"
        );
    } else {
        primo.crash_partition(target);
    }
    let report = primo
        .recover_partition(target)
        .expect("real recovery must run");
    let label = format!("{}/{}", kind.label(), scheme.label());
    assert_eq!(
        report.wiped_records, live_before,
        "{label}: recovery must wipe the whole volatile store"
    );
    assert!(
        report.restored_records > 0,
        "{label}: checkpoint restore ran"
    );
    assert!(report.replayed_txns > 0, "{label}: durable log replay ran");

    let after_target = value_snapshot(&primo, target);
    assert_eq!(
        before_target, after_target,
        "{label}: recovered store differs from the crash-free committed state"
    );
    assert_eq!(
        before_other,
        value_snapshot(&primo, PartitionId(0)),
        "{label}: the surviving partition must be untouched"
    );
    // Every recovered record is clean: Visible, unlocked.
    let table = primo.cluster().partition(target).store.table(T);
    for k in after_target.keys() {
        let rec = table.get(*k).unwrap();
        assert_eq!(rec.state(), LifecycleState::Visible, "{label}: key {k}");
        assert!(!rec.lock().is_locked(), "{label}: leaked lock on {k}");
    }
    // Specific effects survived: the insert exists, the delete holds.
    assert_eq!(after_target.get(&FRESH_KEY).map(Vec::len), Some(8));
    assert!(!after_target.contains_key(&DELETED_KEY), "{label}");

    if discard_log {
        let log = &primo.cluster().partition(target).log;
        assert_eq!(
            log.leader_index(),
            1,
            "{label}: leadership must move to the deterministic ring successor"
        );
        assert!(log.term() >= 1, "{label}: the crash bumps the term");
        assert!(
            report.repaired_replicas >= 1,
            "{label}: the wiped replica is re-seeded from the new leader"
        );
        assert_eq!(
            log.replica(0).len(),
            log.replica(1).len(),
            "{label}: repair restores the wiped copy"
        );
    }

    // The partition serves transactions again.
    session
        .run_program(&Program {
            home: PartitionId(0),
            body: move |ctx: &mut dyn TxnContext| {
                ctx.read(target, T, 1)?;
                ctx.write(target, T, 1, Value::from_u64(7))
            },
        })
        .unwrap_or_else(|e| panic!("{label}: post-recovery txn failed: {e:?}"));
    primo.shutdown();
}

#[test]
fn recovered_store_is_byte_identical_for_all_protocols_and_schemes() {
    for kind in ALL_KINDS {
        for scheme in ALL_SCHEMES {
            byte_identical_after_crash(kind, scheme, false);
        }
    }
}

/// Replication factor 3, crash **and discard the leader's local log
/// replica**: the surviving quorum must still rebuild a byte-identical
/// store — the acceptance bar for the replicated-WAL refactor — for every
/// protocol under every group-commit scheme.
#[test]
fn replica_loss_recovery_is_byte_identical_for_all_protocols_and_schemes() {
    for kind in ALL_KINDS {
        for scheme in ALL_SCHEMES {
            byte_identical_after_crash(kind, scheme, true);
        }
    }
}

/// Writes that were installed but never covered by the agreed watermark are
/// rolled back by recovery — the bounded replay, not just the wipe, is what
/// enforces §5.2.
#[test]
fn uncovered_writes_are_rolled_back_not_resurrected() {
    let primo = Primo::builder()
        .partitions(2)
        .protocol(ProtocolKind::Primo)
        .fast_local()
        .build();
    let session = primo.session();
    for p in 0..2u32 {
        for k in 0..8u64 {
            session.load(PartitionId(p), T, k, Value::from_u64(k));
        }
    }
    primo.checkpoint_all();
    session
        .run_program(&Program {
            home: PartitionId(0),
            body: |ctx: &mut dyn TxnContext| {
                ctx.read(PartitionId(0), T, 0)?;
                ctx.write(PartitionId(1), T, 2, Value::from_u64(222))
            },
        })
        .expect("covered txn");
    std::thread::sleep(Duration::from_millis(30));

    // Forge a durable log entry far above any watermark the cluster will
    // agree on, with a matching rogue install: the paper's "result not yet
    // returnable" state at the instant of the crash.
    let rogue_ts = 1_u64 << 60;
    let wal = &primo.cluster().partition(PartitionId(1)).log;
    wal.append(LogPayload::TxnWrites {
        txn: TxnId::new(PartitionId(1), u64::MAX >> 20),
        ts: rogue_ts,
        writes: vec![LoggedWrite::put(T, 3, Value::from_u64(333))],
    });
    primo
        .cluster()
        .partition(PartitionId(1))
        .store
        .insert(T, 3, Value::from_u64(333));
    std::thread::sleep(Duration::from_millis(5));

    primo.crash_partition(PartitionId(1));
    primo.recover_partition(PartitionId(1)).expect("recovered");
    let snap = value_snapshot(&primo, PartitionId(1));
    assert_eq!(
        snap.get(&2),
        Some(&Value::from_u64(222).as_bytes().to_vec()),
        "covered write survives"
    );
    assert_eq!(
        snap.get(&3),
        Some(&Value::from_u64(3).as_bytes().to_vec()),
        "uncovered write is rolled back to the checkpointed value"
    );
    primo.shutdown();
}

/// A second crash after checkpoints have advanced past the first recovery
/// must not resurrect transactions the first crash rolled back: recovery
/// purges the rolled-back log suffix, so no later checkpoint fold can pick
/// it up (the double-crash hole found in review).
#[test]
fn second_crash_does_not_resurrect_rolled_back_writes() {
    let primo = Primo::builder()
        .partitions(2)
        .protocol(ProtocolKind::Primo)
        .fast_local()
        .build();
    let session = primo.session();
    for p in 0..2u32 {
        for k in 0..8u64 {
            session.load(PartitionId(p), T, k, Value::from_u64(k));
        }
    }
    primo.checkpoint_all();
    std::thread::sleep(Duration::from_millis(20));

    // A durable-but-uncovered write: logged and installed, with a ts just
    // above where the crash agreement will land — so the first recovery
    // rolls it back, but the watermark (and with it the replay/checkpoint
    // bounds) naturally grows past it soon afterwards.
    let rogue_ts = primo
        .cluster()
        .group_commit
        .ts_floor(PartitionId(1))
        .max(primo.cluster().group_commit.ts_floor(PartitionId(0)))
        + 40;
    let wal = &primo.cluster().partition(PartitionId(1)).log;
    wal.append(LogPayload::TxnWrites {
        txn: TxnId::new(PartitionId(1), u64::MAX >> 20),
        ts: rogue_ts,
        writes: vec![LoggedWrite::put(T, 3, Value::from_u64(333))],
    });
    primo
        .cluster()
        .partition(PartitionId(1))
        .store
        .insert(T, 3, Value::from_u64(333));
    std::thread::sleep(Duration::from_millis(2));

    let token1 = primo.cluster().crash_partition(PartitionId(1));
    assert!(
        token1 < rogue_ts,
        "precondition: the rogue write must be above the first agreement"
    );
    primo
        .recover_partition(PartitionId(1))
        .expect("first recovery");
    assert_eq!(
        value_snapshot(&primo, PartitionId(1)).get(&3),
        Some(&Value::from_u64(3).as_bytes().to_vec()),
        "first recovery rolls the uncovered write back"
    );

    // Commit more work and let the watermark overtake the rogue timestamp,
    // then checkpoint — before the purge fix, the fold (or the second
    // recovery's replay) would re-admit the rogue entry once the bound
    // passed its ts.
    session
        .run_program(&Program {
            home: PartitionId(0),
            body: |ctx: &mut dyn TxnContext| {
                ctx.read(PartitionId(0), T, 0)?;
                ctx.write(PartitionId(1), T, 5, Value::from_u64(555))
            },
        })
        .expect("post-recovery txn");
    std::thread::sleep(Duration::from_millis(70));
    primo.checkpoint_all();
    std::thread::sleep(Duration::from_millis(20));

    let token2 = primo.cluster().crash_partition(PartitionId(1));
    assert!(
        token2 > rogue_ts,
        "precondition: the second agreement must have passed the rogue ts \
         (got {token2} vs {rogue_ts}) — otherwise this test proves nothing"
    );
    primo
        .recover_partition(PartitionId(1))
        .expect("second recovery");
    let snap = value_snapshot(&primo, PartitionId(1));
    assert_eq!(
        snap.get(&3),
        Some(&Value::from_u64(3).as_bytes().to_vec()),
        "the rolled-back write must stay rolled back after a second crash"
    );
    assert_eq!(
        snap.get(&5),
        Some(&Value::from_u64(555).as_bytes().to_vec()),
        "committed post-recovery work survives the second crash"
    );
    primo.shutdown();
}

/// The experiment pipeline runs real recovery and reports it: recovery
/// latency and replayed-transaction counts in the snapshot, a partition
/// that is never left crashed, and periodic checkpoints bounding replay.
#[test]
fn experiment_pipeline_reports_recovery_metrics() {
    let snap = Experiment::new()
        .protocol(ProtocolKind::Primo)
        .scale(Scale {
            duration_ms: 250,
            warmup_ms: 30,
            ..Scale::test()
        })
        .fast_local()
        .checkpoint_interval_ms(50)
        .crash(CrashPlan::partition_loss(
            PartitionId(1),
            Duration::from_millis(100),
            Duration::from_millis(30),
        ))
        .run();
    assert!(snap.committed > 0);
    assert!(snap.recovery_time_us > 0, "recovery latency reported");
    assert!(snap.post_recovery_tps > 0.0, "throughput resumed");
    assert!(
        snap.replication_lag_us > 0,
        "append-to-quorum-ack lag reported (single copy: the persist delay)"
    );
}

/// Seeded property loop: for random durable logs and random bounds, replay
/// output is commit-timestamp-sorted, deduplicated by transaction, and
/// applying it twice equals applying it once.
#[test]
fn replaying_any_durable_prefix_twice_equals_once() {
    use primo_repro::recovery::apply_replay;
    use primo_repro::storage::PartitionStore;

    let mut rng = FastRng::new(0x4ECC);
    for case in 0..40 {
        let wal = PartitionWal::new(PartitionId(0), 0);
        let num_txns = 1 + rng.next_below(30);
        for seq in 0..num_txns {
            let num_writes = 1 + rng.next_below(3) as usize;
            let writes: Vec<LoggedWrite> = (0..num_writes)
                .map(|_| {
                    let key = rng.next_below(12);
                    if rng.next_below(4) == 0 {
                        LoggedWrite::delete(T, key)
                    } else {
                        LoggedWrite::put(T, key, Value::from_u64(rng.next_below(1_000)))
                    }
                })
                .collect();
            wal.append(LogPayload::TxnWrites {
                txn: TxnId::new(PartitionId(0), seq),
                ts: 1 + rng.next_below(50),
                writes,
            });
        }
        std::thread::sleep(Duration::from_millis(1));
        let bound = if rng.next_below(2) == 0 {
            ReplayBound::Ts(1 + rng.next_below(60))
        } else {
            ReplayBound::Lsn(rng.next_below(num_txns + 1))
        };
        let txns = wal.replay_range(0, &bound, None);
        // Sorted by commit timestamp, deduplicated by txn.
        for pair in txns.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "case {case}: not ts-sorted");
        }
        let mut ids: Vec<TxnId> = txns.iter().map(|(t, _, _)| *t).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), txns.len(), "case {case}: duplicate txn");

        let once = PartitionStore::new(PartitionId(0));
        apply_replay(&once, &txns);
        let twice = PartitionStore::new(PartitionId(0));
        apply_replay(&twice, &txns);
        apply_replay(&twice, &txns);
        let mut a = once.snapshot_visible();
        let mut b = twice.snapshot_visible();
        a.sort_by_key(|(t, k, _, _)| (*t, *k));
        b.sort_by_key(|(t, k, _, _)| (*t, *k));
        assert_eq!(a, b, "case {case}: replay not idempotent");
    }
}

/// Checkpoints bound recovery: after a checkpoint folds the log, replay
/// starts at the image's base and the truncated log stays small.
#[test]
fn checkpoints_bound_replay_and_log_growth() {
    let primo = Primo::builder()
        .partitions(1)
        .protocol(ProtocolKind::Primo)
        .fast_local()
        .build();
    let session = primo.session();
    for k in 0..8u64 {
        session.load(PartitionId(0), T, k, Value::from_u64(k));
    }
    primo.checkpoint_all();
    for round in 0..3 {
        for k in 0..8u64 {
            session
                .transaction(PartitionId(0), move |ctx| {
                    ctx.write(PartitionId(0), T, k, Value::from_u64(round * 100 + k))
                })
                .unwrap();
        }
        std::thread::sleep(Duration::from_millis(20));
        primo.checkpoint_all();
    }
    std::thread::sleep(Duration::from_millis(20));
    // One more pass so the newest durable checkpoint truncates its prefix.
    primo.checkpoint_all();
    let wal = &primo.cluster().partition(PartitionId(0)).log;
    let image = wal.latest_checkpoint().expect("images exist").1;
    assert!(image.len() >= 8);
    // Replay needed after the last checkpoint is (close to) nothing.
    let pending = wal.replay_range(image.base_lsn, &ReplayBound::Ts(u64::MAX), None);
    assert!(
        pending.len() <= 2,
        "folded log should leave almost nothing to replay, got {}",
        pending.len()
    );
    // Crash + recover still reproduces the latest committed values.
    let before = value_snapshot(&primo, PartitionId(0));
    primo.crash_partition(PartitionId(0));
    primo.recover_partition(PartitionId(0)).expect("recovered");
    assert_eq!(before, value_snapshot(&primo, PartitionId(0)));
    primo.shutdown();
}

// ---------------------------------------------------------------------------
// Cross-partition crash-abort atomicity (before-image compensation on
// surviving partitions).
//
// Atomic commit demands all-or-nothing across every participant: a
// transaction the group commit reports `CrashAborted` must disappear from
// *surviving* partitions (compensation) exactly as it disappears from the
// crashed one (bounded replay). These tests drive a distributed transaction
// to the installed-but-not-yet-returnable state, crash a participant, and
// check that every partition's state matches the reported outcome.
// ---------------------------------------------------------------------------

/// Execute `program` once through the handle's protocol and hand it to the
/// group commit — *without* waiting for the durable outcome, so the caller
/// can inject a crash while the result is still in flight (exactly the
/// window §5.2 rolls back). Conflict aborts are retried with a fresh id.
fn execute_installed(primo: &Primo, program: &dyn TxnProgram) -> CommitWaiter {
    let cluster = primo.cluster();
    let home = program.home_partition();
    loop {
        let txn = cluster.next_txn_id(home);
        let ticket = cluster.group_commit.begin_txn(home, txn);
        let mut timers = PhaseTimers::new();
        match primo.protocol().execute_once(
            cluster,
            txn,
            program,
            &ticket,
            &mut timers,
            &primo_repro::ReadFanout::empty(),
        ) {
            Ok(c) => return cluster.group_commit.txn_committed(&ticket, c.ts, c.ops),
            Err(e) => {
                cluster.group_commit.txn_aborted(&ticket);
                assert!(
                    e.reason().is_retryable(),
                    "doomed txn aborted non-retryably: {:?}",
                    e.reason()
                );
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
}

/// Build a handle whose timing makes the crash-abort window wide and
/// deterministic: long watermark/epoch intervals so the doomed transaction
/// cannot be covered between its commit and the injected crash, and a long
/// CLV persist delay so the crash lands inside the doomed persist window.
/// Replication factor 3 so the rollback-decision-durability epilogue can
/// discard a whole local log replica and recover from the quorum.
fn build_for_crash_abort(kind: ProtocolKind, scheme: LoggingScheme, seed: u64) -> Primo {
    let b = Primo::builder()
        .partitions(3)
        .protocol(kind)
        .logging(scheme)
        .fast_local()
        .replication_factor(3)
        .seed(seed);
    match scheme {
        LoggingScheme::Watermark | LoggingScheme::CocoEpoch => b.wal_interval_ms(150),
        LoggingScheme::Clv => b.tweak(|c| c.wal.persist_delay_us = 60_000),
        LoggingScheme::SyncPerTxn => b,
    }
    .build()
}

const CRASHED: PartitionId = PartitionId(1);
const SURVIVOR: PartitionId = PartitionId(2);
const HOME: PartitionId = PartitionId(0);
const DOOMED_PUT_KEY: u64 = 2;
const DOOMED_DELETE_KEY: u64 = 5;

struct DoomedProgram;

impl TxnProgram for DoomedProgram {
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        ctx.read(HOME, T, 0)?;
        ctx.write(CRASHED, T, DOOMED_PUT_KEY, Value::from_u64(999_999))?;
        ctx.write(SURVIVOR, T, DOOMED_PUT_KEY, Value::from_u64(999_999))?;
        ctx.insert(SURVIVOR, T, FRESH_KEY, Value::from_u64(4_242))?;
        ctx.delete(SURVIVOR, T, DOOMED_DELETE_KEY)
    }
    fn home_partition(&self) -> PartitionId {
        HOME
    }
}

#[test]
fn crash_abort_rolls_back_surviving_partitions_for_all_protocols_and_schemes() {
    for kind in ALL_KINDS {
        for scheme in ALL_SCHEMES {
            let label = format!("{}/{}", kind.label(), scheme.label());
            let primo = build_for_crash_abort(kind, scheme, kind as u64 * 37 + scheme as u64 + 1);
            let session = primo.session();
            for p in 0..3u32 {
                for k in 0..8u64 {
                    session.load(PartitionId(p), T, k, Value::from_u64(k + 100));
                }
            }
            primo.checkpoint_all();

            // One *committed* distributed transaction, waited until the
            // *scheme* covers it (Aria and TAPIR manage durability
            // themselves and would otherwise return before the watermark /
            // epoch does, leaving the prefix legitimately above the crash
            // agreement), so the suite also proves compensation spares
            // committed state.
            let prefix_waiter = execute_installed(
                &primo,
                &Program {
                    home: HOME,
                    body: |ctx: &mut dyn TxnContext| {
                        ctx.read(HOME, T, 0)?;
                        ctx.write(CRASHED, T, 0, Value::from_u64(7_000))?;
                        ctx.write(SURVIVOR, T, 0, Value::from_u64(7_000))
                    },
                },
            );
            assert_eq!(
                primo.cluster().group_commit.wait_durable(&prefix_waiter),
                CommitOutcome::Committed,
                "{label}: the prefix must be covered before the crash"
            );

            let before_home = value_snapshot(&primo, HOME);
            let before_survivor = value_snapshot(&primo, SURVIVOR);
            let before_crashed = value_snapshot(&primo, CRASHED);

            // The doomed transaction: installed everywhere, result in flight.
            let waiter = execute_installed(&primo, &DoomedProgram);
            let installed = value_snapshot(&primo, SURVIVOR);
            assert_ne!(
                before_survivor, installed,
                "{label}: the doomed txn must actually install on the survivor \
                 (otherwise this test cannot catch a missing compensation pass)"
            );
            assert_eq!(installed.get(&FRESH_KEY).map(Vec::len), Some(8), "{label}");
            assert!(!installed.contains_key(&DOOMED_DELETE_KEY), "{label}");

            // Crash a participant while the result is not yet returnable.
            primo.cluster().crash_partition(CRASHED);
            let outcome = primo.cluster().group_commit.wait_durable(&waiter);

            match outcome {
                CommitOutcome::CrashAborted => {
                    // All-or-nothing, "nothing" branch: every surviving
                    // partition must be byte-identical to a run where the
                    // doomed transaction never executed.
                    assert_eq!(
                        before_survivor,
                        value_snapshot(&primo, SURVIVOR),
                        "{label}: crash-aborted residue left on the survivor"
                    );
                    assert_eq!(
                        before_home,
                        value_snapshot(&primo, HOME),
                        "{label}: crash-aborted residue left on the coordinator"
                    );
                    let table = primo.cluster().partition(SURVIVOR).store.table(T);
                    assert!(
                        table.get(FRESH_KEY).is_none(),
                        "{label}: the compensated insert must be physically unlinked"
                    );
                    let revived = table
                        .get(DOOMED_DELETE_KEY)
                        .unwrap_or_else(|| panic!("{label}: compensated delete must revive"));
                    assert_eq!(revived.state(), LifecycleState::Visible, "{label}");
                    assert!(!revived.lock().is_locked(), "{label}: leaked lock");
                    // And the crashed side agrees after recovery: replay is
                    // bounded below the rollback point.
                    primo
                        .recover_partition(CRASHED)
                        .unwrap_or_else(|| panic!("{label}: recovery must run"));
                    assert_eq!(
                        before_crashed,
                        value_snapshot(&primo, CRASHED),
                        "{label}: the crashed partition must agree with the survivors"
                    );
                }
                CommitOutcome::Committed => {
                    // All-or-nothing, "all" branch (sync scheme, or a
                    // watermark/epoch that covered the txn in the tiny window
                    // before the crash): everything stays, everywhere.
                    let after = value_snapshot(&primo, SURVIVOR);
                    assert_eq!(after, installed, "{label}: committed writes must stay");
                    primo
                        .recover_partition(CRASHED)
                        .unwrap_or_else(|| panic!("{label}: recovery must run"));
                    assert_eq!(
                        value_snapshot(&primo, CRASHED).get(&DOOMED_PUT_KEY),
                        Some(&Value::from_u64(999_999).as_bytes().to_vec()),
                        "{label}: committed write must survive recovery on the crashed side"
                    );
                }
            }

            // The cluster still serves transactions afterwards.
            session
                .run_program(&Program {
                    home: HOME,
                    body: |ctx: &mut dyn TxnContext| {
                        ctx.read(SURVIVOR, T, 1)?;
                        ctx.write(SURVIVOR, T, 1, Value::from_u64(1))
                    },
                })
                .unwrap_or_else(|e| panic!("{label}: post-crash txn failed: {e:?}"));

            // Rollback-decision durability: the `TxnRolledBack` markers the
            // compensation pass sealed are replicated log records, not a
            // single disk's private state. Discard the SURVIVOR's local
            // replica wholesale and recover from the surviving quorum — the
            // rolled-back transaction must stay rolled back (and committed
            // state must stay committed). Before the replicated WAL, the
            // markers (and everything else) died with the one copy.
            std::thread::sleep(Duration::from_millis(100)); // markers reach the quorum
            primo.cluster().crash_partition_discarding_log(SURVIVOR);
            primo
                .recover_partition(SURVIVOR)
                .unwrap_or_else(|| panic!("{label}: replica-loss recovery must run"));
            let after = value_snapshot(&primo, SURVIVOR);
            assert_eq!(
                after.get(&0),
                Some(&Value::from_u64(7_000).as_bytes().to_vec()),
                "{label}: the committed prefix must survive losing the replica"
            );
            match outcome {
                CommitOutcome::CrashAborted => {
                    assert_eq!(
                        after.get(&DOOMED_PUT_KEY),
                        Some(&Value::from_u64(DOOMED_PUT_KEY + 100).as_bytes().to_vec()),
                        "{label}: the undone put must stay undone after replica loss"
                    );
                    assert!(
                        !after.contains_key(&FRESH_KEY),
                        "{label}: the undone insert must not resurrect from the quorum"
                    );
                    assert_eq!(
                        after.get(&DOOMED_DELETE_KEY),
                        Some(&Value::from_u64(DOOMED_DELETE_KEY + 100).as_bytes().to_vec()),
                        "{label}: the revived delete target must survive replica loss"
                    );
                    assert!(
                        primo
                            .cluster()
                            .partition(SURVIVOR)
                            .log
                            .rolled_back_txns()
                            .contains(&waiter.txn),
                        "{label}: the rollback marker must survive on the quorum"
                    );
                }
                CommitOutcome::Committed => {
                    assert_eq!(
                        after.get(&DOOMED_PUT_KEY),
                        Some(&Value::from_u64(999_999).as_bytes().to_vec()),
                        "{label}: committed writes must survive replica loss"
                    );
                    assert!(after.contains_key(&FRESH_KEY), "{label}");
                    assert!(!after.contains_key(&DOOMED_DELETE_KEY), "{label}");
                }
            }
            primo.shutdown();
        }
    }
}

/// Double crash, survivor edition: after compensation undoes a rolled-back
/// transaction on a surviving partition, that partition itself crashes. Its
/// recovery replay — whose bound has long overtaken the rolled-back
/// timestamps — must honor the `TxnRolledBack` markers and not resurrect
/// the undone writes (neither via replay nor via a checkpoint fold taken in
/// between).
#[test]
fn survivor_crash_after_compensation_does_not_resurrect_undone_writes() {
    let primo = build_for_crash_abort(ProtocolKind::Primo, LoggingScheme::Watermark, 0xD0B1);
    let session = primo.session();
    for p in 0..3u32 {
        for k in 0..8u64 {
            session.load(PartitionId(p), T, k, Value::from_u64(k + 100));
        }
    }
    primo.checkpoint_all();
    session
        .run_program(&Program {
            home: HOME,
            body: |ctx: &mut dyn TxnContext| {
                ctx.read(HOME, T, 0)?;
                ctx.write(CRASHED, T, 0, Value::from_u64(7_000))?;
                ctx.write(SURVIVOR, T, 0, Value::from_u64(7_000))
            },
        })
        .expect("committed prefix");
    let before_survivor = value_snapshot(&primo, SURVIVOR);

    let waiter = execute_installed(&primo, &DoomedProgram);
    let token = primo.cluster().crash_partition(CRASHED);
    assert!(
        waiter.ts >= token,
        "precondition: the doomed txn must be above the agreement ({} vs {token})",
        waiter.ts
    );
    assert_eq!(
        primo.cluster().group_commit.wait_durable(&waiter),
        CommitOutcome::CrashAborted
    );
    assert_eq!(
        before_survivor,
        value_snapshot(&primo, SURVIVOR),
        "compensation undid the survivor residue"
    );
    assert!(
        primo
            .cluster()
            .partition(SURVIVOR)
            .log
            .rolled_back_txns()
            .contains(&waiter.txn),
        "the rollback decision is sealed in the survivor's log"
    );
    primo.recover_partition(CRASHED).expect("first recovery");

    // Let the watermark overtake the rolled-back timestamps, commit more
    // work, and fold a checkpoint — before the marker-aware replay/fold,
    // either path would re-admit the doomed writes once the bound passed.
    session
        .run_program(&Program {
            home: HOME,
            body: |ctx: &mut dyn TxnContext| {
                ctx.read(HOME, T, 1)?;
                ctx.write(SURVIVOR, T, 6, Value::from_u64(6_666))
            },
        })
        .expect("post-crash committed txn");
    std::thread::sleep(Duration::from_millis(400));
    primo.checkpoint_all();
    std::thread::sleep(Duration::from_millis(20));

    let token2 = primo.cluster().crash_partition(SURVIVOR);
    assert!(
        token2 > waiter.ts,
        "precondition: the second agreement ({token2}) must have passed the \
         rolled-back ts ({}) — otherwise this proves nothing",
        waiter.ts
    );
    primo.recover_partition(SURVIVOR).expect("second recovery");

    let after = value_snapshot(&primo, SURVIVOR);
    assert_eq!(
        after.get(&DOOMED_PUT_KEY),
        Some(&Value::from_u64(DOOMED_PUT_KEY + 100).as_bytes().to_vec()),
        "the undone put must stay undone after the survivor's own crash"
    );
    assert!(
        !after.contains_key(&FRESH_KEY),
        "the undone insert must not be resurrected by replay or checkpoint fold"
    );
    assert_eq!(
        after.get(&DOOMED_DELETE_KEY),
        Some(&Value::from_u64(DOOMED_DELETE_KEY + 100).as_bytes().to_vec()),
        "the revived delete target must survive"
    );
    assert_eq!(
        after.get(&6),
        Some(&Value::from_u64(6_666).as_bytes().to_vec()),
        "committed post-crash work must survive"
    );
    primo.shutdown();
}

/// A second crash landing **mid-replay** must hand off to the deterministic
/// successor replica and still produce a byte-identical store. The first
/// crash discards the leader's disk (leadership: replica 0 → 1); while the
/// replacement leader replays, it crashes too (memory only — losing a
/// second disk of three would genuinely break the quorum), leadership moves
/// 1 → 2, and the recovery loop voids the half-done pass and rebuilds from
/// replica 2's copy.
#[test]
fn double_crash_mid_replay_hands_off_to_deterministic_successor() {
    let primo = Primo::builder()
        .partitions(2)
        .protocol(ProtocolKind::Primo)
        .fast_local()
        .replication_factor(3)
        .seed(0xD0B2)
        .build();
    let session = primo.session();
    let target = PartitionId(1);
    for p in 0..2u32 {
        for k in 0..LOADED_KEYS {
            session.load(PartitionId(p), T, k, Value::from_u64(k + 100));
        }
    }
    primo.checkpoint_all();
    run_committed_prefix(&primo, target);
    std::thread::sleep(Duration::from_millis(40));
    let before = value_snapshot(&primo, target);

    let cluster = primo.cluster();
    cluster.crash_partition_discarding_log(target);
    let log = &cluster.partition(target).log;
    assert_eq!(log.leader_index(), 1, "first hand-off: ring successor of 0");
    let term_after_first = log.term();

    let mut fired = false;
    let report = cluster
        .recover_partition_with_fault(target, &mut || {
            if !fired {
                fired = true;
                // The replacement leader dies while replaying: term bump,
                // leadership to the next ring successor. No new cluster
                // agreement — the partition was not serving.
                cluster.crash_replacement_leader(target, false);
            }
        })
        .expect("recovery must run");
    assert!(fired, "the mid-replay fault must actually land");
    assert_eq!(
        report.mid_replay_handoffs, 1,
        "the recovery loop must notice the term bump and restart once"
    );
    assert_eq!(
        log.leader_index(),
        2,
        "second hand-off: deterministic ring successor of replica 1"
    );
    assert_eq!(log.term(), term_after_first + 1);
    assert!(
        report.repaired_replicas >= 1,
        "the wiped first leader is re-seeded from the final leader"
    );
    assert_eq!(
        before,
        value_snapshot(&primo, target),
        "the store rebuilt by the final successor must be byte-identical"
    );
    // The partition serves transactions again under the new leader.
    session
        .run_program(&Program {
            home: PartitionId(0),
            body: move |ctx: &mut dyn TxnContext| {
                ctx.read(target, T, 1)?;
                ctx.write(target, T, 1, Value::from_u64(7))
            },
        })
        .expect("post-handoff txn");
    primo.shutdown();
}

/// Seeded property loop over real concurrent interleavings: worker threads
/// hammer pair-transactions (the same value written to key `k` on both
/// partitions), a partition crashes mid-run and recovers, and afterwards
/// every pair must agree — committed transactions survive on both sides,
/// crash-aborted ones disappear from both sides. Without the compensation
/// pass the surviving partition keeps the rolled-back half of a pair.
///
/// `PRIMO_CRASH_ABORT_SEEDS` widens the loop in CI (default 5 seeds).
#[test]
fn crash_abort_keeps_cross_partition_pairs_consistent_across_seeds() {
    use primo_repro::runtime::run_single_txn;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const KEYS: u64 = 64;

    struct PairWrite {
        key: u64,
    }
    impl TxnProgram for PairWrite {
        fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
            let a = ctx.read(PartitionId(0), T, self.key)?.as_u64();
            let _ = ctx.read(PartitionId(1), T, self.key)?;
            ctx.write(PartitionId(0), T, self.key, Value::from_u64(a + 1))?;
            ctx.write(PartitionId(1), T, self.key, Value::from_u64(a + 1))
        }
        fn home_partition(&self) -> PartitionId {
            PartitionId(0)
        }
    }

    let seeds: u64 = std::env::var("PRIMO_CRASH_ABORT_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    for seed in 1..=seeds {
        let primo = Primo::builder()
            .partitions(2)
            .protocol(ProtocolKind::Primo)
            .fast_local()
            .seed(seed)
            .build();
        let session = primo.session();
        for p in 0..2u32 {
            for k in 0..KEYS {
                session.load(PartitionId(p), T, k, Value::from_u64(0));
            }
        }
        primo.checkpoint_all();

        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        for w in 0..3u64 {
            let cluster = Arc::clone(primo.cluster());
            let protocol = Arc::clone(primo.protocol());
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let mut rng = FastRng::new(seed * 1_000 + w);
                while !stop.load(Ordering::Relaxed) {
                    let prog = PairWrite {
                        key: rng.next_below(KEYS),
                    };
                    // Crash-window attempts may exhaust retries; that is fine.
                    let _ = run_single_txn(&cluster, protocol.as_ref(), &prog);
                }
            }));
        }

        std::thread::sleep(Duration::from_millis(40));
        primo.cluster().crash_partition(PartitionId(1));
        std::thread::sleep(Duration::from_millis(20));
        // Quiesce before recovery so no in-flight transaction installs into
        // records detached by the recovery wipe.
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            t.join().unwrap();
        }
        primo.recover_partition(PartitionId(1)).expect("recovered");

        let p0 = value_snapshot(&primo, PartitionId(0));
        let p1 = value_snapshot(&primo, PartitionId(1));
        for k in 0..KEYS {
            if p0.get(&k) != p1.get(&k) {
                panic!(
                    "seed {seed}: pair {k} diverged ({:?} vs {:?}) — a \
                     crash-aborted transaction left half of its writes behind\n{}",
                    p0.get(&k),
                    p1.get(&k),
                    crash_rollback_trace_dump(&primo)
                );
            }
        }
        primo.shutdown();
    }
}

/// Seeded replica-loss property loop (`PRIMO_REPLICA_LOSS_SEEDS` widens it
/// in CI, default 3): concurrent pair-writers, then a crash that **discards
/// the leader's local log replica**, recovery from the surviving quorum, and
/// — after quiescing — a *second* disk-loss crash of the same partition.
/// Every cross-partition pair must agree after each recovery, and the second
/// recovery must reproduce the first one's state exactly: the `TxnRolledBack`
/// decisions sealed along the way are quorum-durable, never one disk's
/// private state.
#[test]
fn replica_loss_keeps_pairs_consistent_and_rollbacks_sealed_across_seeds() {
    use primo_repro::runtime::run_single_txn;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const KEYS: u64 = 64;

    struct PairWrite {
        key: u64,
    }
    impl TxnProgram for PairWrite {
        fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
            let a = ctx.read(PartitionId(0), T, self.key)?.as_u64();
            let _ = ctx.read(PartitionId(1), T, self.key)?;
            ctx.write(PartitionId(0), T, self.key, Value::from_u64(a + 1))?;
            ctx.write(PartitionId(1), T, self.key, Value::from_u64(a + 1))
        }
        fn home_partition(&self) -> PartitionId {
            PartitionId(0)
        }
    }

    let seeds: u64 = std::env::var("PRIMO_REPLICA_LOSS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    for seed in 1..=seeds {
        let primo = Primo::builder()
            .partitions(2)
            .protocol(ProtocolKind::Primo)
            .fast_local()
            .replication_factor(3)
            .seed(0xBEEF_0000 + seed)
            .build();
        let session = primo.session();
        for p in 0..2u32 {
            for k in 0..KEYS {
                session.load(PartitionId(p), T, k, Value::from_u64(0));
            }
        }
        primo.checkpoint_all();

        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        for w in 0..3u64 {
            let cluster = Arc::clone(primo.cluster());
            let protocol = Arc::clone(primo.protocol());
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let mut rng = FastRng::new(seed * 1_000 + w);
                while !stop.load(Ordering::Relaxed) {
                    let prog = PairWrite {
                        key: rng.next_below(KEYS),
                    };
                    // Crash-window attempts may exhaust retries; that is fine.
                    let _ = run_single_txn(&cluster, protocol.as_ref(), &prog);
                }
            }));
        }

        std::thread::sleep(Duration::from_millis(40));
        // Disk loss mid-run: the leader's replica is discarded with the
        // crash, yet the quorum must reproduce every acknowledged pair.
        primo
            .cluster()
            .crash_partition_discarding_log(PartitionId(1));
        std::thread::sleep(Duration::from_millis(20));
        // Quiesce before recovery so no in-flight transaction installs into
        // records detached by the recovery wipe.
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            t.join().unwrap();
        }
        primo
            .recover_partition(PartitionId(1))
            .expect("first replica-loss recovery");

        let p0 = value_snapshot(&primo, PartitionId(0));
        let p1 = value_snapshot(&primo, PartitionId(1));
        for k in 0..KEYS {
            if p0.get(&k) != p1.get(&k) {
                panic!(
                    "seed {seed}: pair {k} diverged after replica-loss \
                     recovery ({:?} vs {:?})\n{}",
                    p0.get(&k),
                    p1.get(&k),
                    crash_rollback_trace_dump(&primo)
                );
            }
        }

        // Second disk-loss crash after quiescing: everything the first
        // recovery produced — including which transactions stay rolled back
        // — must be reproducible from the (repaired) quorum again.
        std::thread::sleep(Duration::from_millis(60));
        let expected = value_snapshot(&primo, PartitionId(1));
        primo
            .cluster()
            .crash_partition_discarding_log(PartitionId(1));
        primo
            .recover_partition(PartitionId(1))
            .expect("second replica-loss recovery");
        assert_eq!(
            expected,
            value_snapshot(&primo, PartitionId(1)),
            "seed {seed}: the second replica-loss recovery must reproduce the \
             quiesced state — a rollback decision leaked back in"
        );
        for k in 0..KEYS {
            assert_eq!(
                value_snapshot(&primo, PartitionId(0)).get(&k),
                value_snapshot(&primo, PartitionId(1)).get(&k),
                "seed {seed}: pair {k} diverged after the second recovery"
            );
        }
        primo.shutdown();
    }
}
