//! Offline shim for the `parking_lot` API subset used in this workspace.
//!
//! The build environment has no access to crates.io, so this path dependency
//! provides `Mutex`, `RwLock` and `Condvar` with parking_lot's ergonomics
//! (no lock poisoning, guards returned directly) on top of `std::sync`.
//! A poisoned std lock is treated as still usable — panicking while holding a
//! lock already aborts the experiment in practice, and parking_lot itself has
//! no poisoning either.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual exclusion primitive (parking_lot-style: `lock()` returns the
/// guard directly, no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily take the inner std
    // guard by value (std's wait API consumes and returns the guard).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed `Condvar` wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Reader-writer lock (parking_lot-style: `read()` / `write()` return guards
/// directly, no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let started = Instant::now();
        let r = c.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(started.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait_for(&mut done, Duration::from_millis(50));
        }
        h.join().unwrap();
        assert!(*done);
    }
}
