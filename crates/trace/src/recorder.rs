//! The cluster-wide flight recorder.
//!
//! One [`FlightRecorder`] per cluster owns every worker's [`TraceRing`].
//! Rings are created lazily: the first event a thread emits against a given
//! recorder allocates that thread's ring (labelled with the thread name) and
//! registers it; after that the hot path is a thread-local vector probe and
//! a direct ring push — no locks, no allocation, no refcount traffic (the
//! cache holds a strong `Arc`, so there is no `Weak::upgrade` per event).
//! The registry keeps its own `Arc`, so rings outlive their threads and a
//! post-mortem merge still sees what exited workers recorded. Cache entries
//! carry the recorder's shared liveness flag; dropping a recorder (tests
//! build thousands of short-lived clusters) flips it, and each thread prunes
//! its dead entries — releasing the rings — the next time it registers
//! against a fresh recorder, so stale rings never accumulate across runs.

use crate::event::TraceEventKind;
use crate::ring::TraceRing;
use crate::timeline::Timeline;
use parking_lot::Mutex;
use primo_common::sim_time::now_us;
use primo_common::{PartitionId, TxnId};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default per-worker ring capacity (events). At ~56 bytes per slot this is
/// ~230 KiB per worker — minutes of tail history at typical event rates.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

struct CacheEntry {
    recorder_id: u64,
    /// The owning recorder's liveness flag — false once it drops.
    alive: Arc<AtomicBool>,
    ring: Arc<TraceRing>,
}

thread_local! {
    /// This thread's ring per recorder it has emitted against. Small linear
    /// vector: a thread talks to very few live recorders at a time.
    static RING_CACHE: RefCell<Vec<CacheEntry>> = const { RefCell::new(Vec::new()) };
}

/// Always-on, low-overhead event recorder shared by every layer of one
/// cluster. Cheap to clone via `Arc`; `emit` is safe from any thread.
pub struct FlightRecorder {
    id: u64,
    enabled: AtomicBool,
    /// Shared with thread-local cache entries; flipped false on drop so
    /// threads can prune their rings for this recorder.
    alive: Arc<AtomicBool>,
    ring_capacity: usize,
    rings: Mutex<Vec<Arc<TraceRing>>>,
}

impl FlightRecorder {
    pub fn new(enabled: bool, ring_capacity: usize) -> Self {
        FlightRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(enabled),
            alive: Arc::new(AtomicBool::new(true)),
            ring_capacity,
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Recording toggle (the recording-off arm of the overhead benchmark).
    /// With recording off, `emit` is a single relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one event, stamped with the current sim-time and the calling
    /// thread's ring. The hot path allocates nothing after a thread's first
    /// event.
    #[inline]
    pub fn emit(&self, txn: Option<TxnId>, partition: Option<PartitionId>, kind: TraceEventKind) {
        if !self.is_enabled() {
            return;
        }
        self.emit_at(now_us(), txn, partition, kind);
    }

    /// Like [`FlightRecorder::emit`] with an explicit timestamp — used when
    /// the event's causal time was sampled before some waiting happened
    /// (e.g. the start of a sequencer wait).
    pub fn emit_at(
        &self,
        at_us: u64,
        txn: Option<TxnId>,
        partition: Option<PartitionId>,
        kind: TraceEventKind,
    ) {
        if !self.is_enabled() {
            return;
        }
        RING_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(entry) = cache.iter().find(|e| e.recorder_id == self.id) {
                entry.ring.push(at_us, txn, partition, kind);
                return;
            }
            // Slow path: first event from this thread against this recorder.
            // Drop rings cached for recorders that died since, then register
            // a fresh ring.
            cache.retain(|e| e.alive.load(Ordering::Relaxed));
            let label = std::thread::current()
                .name()
                .unwrap_or("unnamed")
                .to_string();
            let ring = Arc::new(TraceRing::new(label, self.ring_capacity));
            self.rings.lock().push(Arc::clone(&ring));
            cache.push(CacheEntry {
                recorder_id: self.id,
                alive: Arc::clone(&self.alive),
                ring: Arc::clone(&ring),
            });
            ring.push(at_us, txn, partition, kind);
        });
    }

    /// Number of per-thread rings registered so far.
    pub fn ring_count(&self) -> usize {
        self.rings.lock().len()
    }

    /// Total events ever recorded across all rings (including overwritten
    /// ones).
    pub fn events_recorded(&self) -> u64 {
        self.rings.lock().iter().map(|r| r.pushed()).sum()
    }

    /// Merge every ring into one causally-ordered timeline (non-decreasing
    /// sim-time; ties broken by ring then per-ring push order).
    pub fn merge(&self) -> Timeline {
        let rings = self.rings.lock();
        let mut events = Vec::new();
        for (i, ring) in rings.iter().enumerate() {
            events.extend(ring.snapshot(i));
        }
        events.sort_by_key(|e| (e.at_us, e.ring, e.seq));
        Timeline::new(events)
    }

    /// Render the post-mortem for a failed assertion: the full lifecycle of
    /// each offending transaction, followed by the surrounding
    /// partition-scoped events (watermark publishes, crashes, leader
    /// changes, recovery passes) in the same time window. This string is
    /// what the crash-loop tests embed in their panic message, so the next
    /// 1-in-N flake arrives pre-diagnosed.
    pub fn failure_report(&self, txns: &[TxnId]) -> String {
        self.merge().failure_report(txns)
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        // Lets threads that cached a ring for this recorder prune it (and
        // free the ring) on their next slow-path registration.
        self.alive.store(false, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("id", &self.id)
            .field("enabled", &self.is_enabled())
            .field("rings", &self.ring_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::new(false, 64);
        rec.emit(None, None, TraceEventKind::ValidationStart);
        assert_eq!(rec.ring_count(), 0);
        assert_eq!(rec.events_recorded(), 0);
        rec.set_enabled(true);
        rec.emit(None, None, TraceEventKind::ValidationStart);
        assert_eq!(rec.events_recorded(), 1);
    }

    #[test]
    fn one_ring_per_thread_and_merge_sees_exited_threads() {
        let rec = Arc::new(FlightRecorder::new(true, 64));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let rec = Arc::clone(&rec);
                std::thread::Builder::new()
                    .name(format!("tracer-{i}"))
                    .spawn(move || {
                        for t in 0..10u64 {
                            rec.emit(None, None, TraceEventKind::Committed { ts: t });
                        }
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.ring_count(), 4);
        let merged = rec.merge();
        assert_eq!(merged.len(), 40, "events from exited threads survive");
        let workers: std::collections::HashSet<_> =
            merged.events().iter().map(|e| e.worker.clone()).collect();
        assert_eq!(workers.len(), 4);
    }

    #[test]
    fn merge_is_nondecreasing_in_sim_time() {
        let rec = Arc::new(FlightRecorder::new(true, 256));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for t in 0..200u64 {
                        rec.emit(None, None, TraceEventKind::Committed { ts: t });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let merged = rec.merge();
        assert!(merged.events().windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn two_recorders_on_one_thread_stay_separate() {
        let a = FlightRecorder::new(true, 64);
        let b = FlightRecorder::new(true, 64);
        a.emit(None, None, TraceEventKind::CrashInjected);
        b.emit(None, None, TraceEventKind::ValidationStart);
        b.emit(None, None, TraceEventKind::ValidationStart);
        assert_eq!(a.events_recorded(), 1);
        assert_eq!(b.events_recorded(), 2);
    }
}
