//! The trace event vocabulary and its fixed-width wire encoding.
//!
//! Every event is a `Copy` value that encodes into four `u64` words (one
//! discriminant + three payload words) so the ring buffer can store it in
//! pre-allocated atomic slots — no allocation, no pointer chasing, no Drop —
//! and decode it back losslessly at merge time.

use primo_common::{AbortReason, PartitionId, Ts, TxnId};
use std::fmt;

/// Sentinel for "no transaction" in the packed txn word ([`TxnId::pack`]
/// never produces it: the coordinator field is only 16 bits).
pub(crate) const NO_TXN: u64 = u64::MAX;
/// Sentinel for "no partition" in the packed partition half-word.
pub(crate) const NO_PARTITION: u32 = u32::MAX;

/// What happened. One variant per instrumentation point in the transaction
/// lifecycle; payloads are the few words a post-mortem actually needs
/// (owners, timestamps, LSNs, horizons), not full payload dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A worker started (attempt > 0: restarted) a transaction attempt.
    Begin { attempt: u32 },
    /// A lock request was denied (WAIT_DIE / NO_WAIT): the packed owner is
    /// whoever held the record when the requester died.
    LockWait { owner: TxnId },
    /// The commit phase began validating the read set.
    ValidationStart,
    /// Validation finished: `ok`, or the abort reason on failure.
    ValidationOutcome {
        ok: bool,
        reason: Option<AbortReason>,
    },
    /// The group-commit layer reserved (or finalized) the commit timestamp.
    CommitTsReserved { ts: Ts },
    /// 2PC prepare round sent to `participants` partitions.
    Prepare { participants: u32 },
    /// 2PC vote outcome collected by the coordinator.
    Vote { ok: bool },
    /// One `TxnWrites` entry appended to a partition's replicated log.
    WalAppend { lsn: u64, term: u64 },
    /// A committer blocked on the partition's log sequencer (stage 1 of the
    /// append pipeline) for `wait_us` before acquiring it.
    SequencerWait { wait_us: u64 },
    /// The replication pump shipped a drained batch to the followers
    /// (stage 2); `durable_lsn` is the quorum-durable LSN after the ship.
    QuorumAck { entries: u64, durable_lsn: u64 },
    /// The group-commit scheme released the transaction to the client.
    GroupCommitRelease { committed: bool },
    /// The transaction committed at `ts` (results returned to the client).
    Committed { ts: Ts },
    /// The attempt aborted.
    Abort { reason: AbortReason },
    /// A read-only transaction was served lock-free from the MVCC snapshot
    /// at the durable group-commit horizon.
    SnapshotRead { horizon: Ts },
    /// The watermark scheme published a new group watermark (Wg).
    WatermarkPublish { wg: Ts },
    /// The COCO-style scheme sealed an epoch.
    EpochSealed { epoch: u64 },
    /// The CLV scheme advanced its cut (committed-LSN vector decision).
    ClvCut { ts: Ts },
    /// A simulated crash was injected into a partition.
    CrashInjected,
    /// A crash-rolled-back transaction's surviving-partition writes were
    /// undone via before-image compensation.
    Compensation { writes: u64 },
    /// One recovery replay pass applied `entries` durable log entries.
    RecoveryReplay { pass: u32, entries: u64 },
    /// The partition's replicated log elected a new leader.
    LeaderChange { term: u64, leader: u32 },
    /// A simulated network hop (optional, off by default).
    MsgHop { from: u32, to: u32 },
    /// Paxos Commit: a prepare vote was appended to a partition's replicated
    /// log at `lsn` (`commit` is the vote itself).
    VoteLogged { lsn: u64, commit: bool },
    /// Paxos Commit: the vote at `lsn` became quorum-durable, so the verdict
    /// for this participant survives any single replica loss.
    VoteQuorumDurable { lsn: u64 },
    /// The atomic-commit layer reached a global verdict. `in_doubt` marks
    /// verdicts assembled *without* the coordinator (crash resolution), as
    /// opposed to the coordinator's own decision.
    DecisionReached { commit: bool, in_doubt: bool },
    /// The coordinating worker was killed between prepare and decision
    /// (worker-granularity crash injection, not a partition crash).
    CoordinatorCrashed,
    /// A batched remote-read fan-out was issued: `keys` keys fetched from
    /// `partitions` remote partitions in one parallel round trip.
    PrefetchIssued { partitions: u32, keys: u32 },
    /// A remote read was served from the attempt's prefetch buffer (no
    /// round trip charged).
    PrefetchHit,
    /// A prefetched record moved underneath the buffer; the read fell back
    /// to a fresh round trip (an ordinary conflict, never an anomaly).
    PrefetchStale,
}

/// Stable wire codes for [`AbortReason`]; the trace crate owns the mapping
/// so `primo-common` stays encoding-agnostic.
fn abort_code(r: AbortReason) -> u64 {
    match r {
        AbortReason::LockConflict => 0,
        AbortReason::WaitDie => 1,
        AbortReason::Validation => 2,
        AbortReason::ModeSwitch => 3,
        AbortReason::UserAbort => 4,
        AbortReason::NotFound => 5,
        AbortReason::CrashAbort => 6,
        AbortReason::RemoteUnavailable => 7,
        AbortReason::EpochAbort => 8,
        AbortReason::DeterministicConflict => 9,
        AbortReason::CoordinatorCrash => 10,
    }
}

fn abort_from_code(c: u64) -> Option<AbortReason> {
    Some(match c {
        0 => AbortReason::LockConflict,
        1 => AbortReason::WaitDie,
        2 => AbortReason::Validation,
        3 => AbortReason::ModeSwitch,
        4 => AbortReason::UserAbort,
        5 => AbortReason::NotFound,
        6 => AbortReason::CrashAbort,
        7 => AbortReason::RemoteUnavailable,
        8 => AbortReason::EpochAbort,
        9 => AbortReason::DeterministicConflict,
        10 => AbortReason::CoordinatorCrash,
        _ => return None,
    })
}

impl TraceEventKind {
    /// Encode into `(discriminant, a, b, c)`.
    pub(crate) fn encode(self) -> (u64, u64, u64, u64) {
        use TraceEventKind::*;
        match self {
            Begin { attempt } => (0, attempt as u64, 0, 0),
            LockWait { owner } => (1, owner.pack(), 0, 0),
            ValidationStart => (2, 0, 0, 0),
            ValidationOutcome { ok, reason } => (
                3,
                ok as u64,
                reason.map(abort_code).map(|c| c + 1).unwrap_or(0),
                0,
            ),
            CommitTsReserved { ts } => (4, ts, 0, 0),
            Prepare { participants } => (5, participants as u64, 0, 0),
            Vote { ok } => (6, ok as u64, 0, 0),
            WalAppend { lsn, term } => (7, lsn, term, 0),
            SequencerWait { wait_us } => (8, wait_us, 0, 0),
            QuorumAck {
                entries,
                durable_lsn,
            } => (9, entries, durable_lsn, 0),
            GroupCommitRelease { committed } => (10, committed as u64, 0, 0),
            Committed { ts } => (11, ts, 0, 0),
            Abort { reason } => (12, abort_code(reason), 0, 0),
            SnapshotRead { horizon } => (13, horizon, 0, 0),
            WatermarkPublish { wg } => (14, wg, 0, 0),
            EpochSealed { epoch } => (15, epoch, 0, 0),
            ClvCut { ts } => (16, ts, 0, 0),
            CrashInjected => (17, 0, 0, 0),
            Compensation { writes } => (18, writes, 0, 0),
            RecoveryReplay { pass, entries } => (19, pass as u64, entries, 0),
            LeaderChange { term, leader } => (20, term, leader as u64, 0),
            MsgHop { from, to } => (21, from as u64, to as u64, 0),
            VoteLogged { lsn, commit } => (22, lsn, commit as u64, 0),
            VoteQuorumDurable { lsn } => (23, lsn, 0, 0),
            DecisionReached { commit, in_doubt } => (24, commit as u64, in_doubt as u64, 0),
            CoordinatorCrashed => (25, 0, 0, 0),
            PrefetchIssued { partitions, keys } => (26, partitions as u64, keys as u64, 0),
            PrefetchHit => (27, 0, 0, 0),
            PrefetchStale => (28, 0, 0, 0),
        }
    }

    /// Inverse of [`TraceEventKind::encode`]. `None` for a torn / garbage
    /// slot (possible only if a reader raced a wrap, which the seqlock
    /// already filters; kept defensive anyway).
    pub(crate) fn decode(d: u64, a: u64, b: u64, _c: u64) -> Option<Self> {
        use TraceEventKind::*;
        Some(match d {
            0 => Begin { attempt: a as u32 },
            1 => LockWait {
                owner: TxnId::unpack(a),
            },
            2 => ValidationStart,
            3 => ValidationOutcome {
                ok: a != 0,
                reason: if b == 0 { None } else { abort_from_code(b - 1) },
            },
            4 => CommitTsReserved { ts: a },
            5 => Prepare {
                participants: a as u32,
            },
            6 => Vote { ok: a != 0 },
            7 => WalAppend { lsn: a, term: b },
            8 => SequencerWait { wait_us: a },
            9 => QuorumAck {
                entries: a,
                durable_lsn: b,
            },
            10 => GroupCommitRelease { committed: a != 0 },
            11 => Committed { ts: a },
            12 => Abort {
                reason: abort_from_code(a)?,
            },
            13 => SnapshotRead { horizon: a },
            14 => WatermarkPublish { wg: a },
            15 => EpochSealed { epoch: a },
            16 => ClvCut { ts: a },
            17 => CrashInjected,
            18 => Compensation { writes: a },
            19 => RecoveryReplay {
                pass: a as u32,
                entries: b,
            },
            20 => LeaderChange {
                term: a,
                leader: b as u32,
            },
            21 => MsgHop {
                from: a as u32,
                to: b as u32,
            },
            22 => VoteLogged {
                lsn: a,
                commit: b != 0,
            },
            23 => VoteQuorumDurable { lsn: a },
            24 => DecisionReached {
                commit: a != 0,
                in_doubt: b != 0,
            },
            25 => CoordinatorCrashed,
            26 => PrefetchIssued {
                partitions: a as u32,
                keys: b as u32,
            },
            27 => PrefetchHit,
            28 => PrefetchStale,
            _ => return None,
        })
    }
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TraceEventKind::*;
        match self {
            Begin { attempt } => write!(f, "begin attempt={attempt}"),
            LockWait { owner } => write!(f, "lock-wait owner={owner}"),
            ValidationStart => write!(f, "validation-start"),
            ValidationOutcome { ok: true, .. } => write!(f, "validation-ok"),
            ValidationOutcome { ok: false, reason } => match reason {
                Some(r) => write!(f, "validation-fail reason={r}"),
                None => write!(f, "validation-fail"),
            },
            CommitTsReserved { ts } => write!(f, "commit-ts-reserved ts={ts}"),
            Prepare { participants } => write!(f, "2pc-prepare participants={participants}"),
            Vote { ok } => write!(f, "2pc-vote ok={ok}"),
            WalAppend { lsn, term } => write!(f, "wal-append lsn={lsn} term={term}"),
            SequencerWait { wait_us } => write!(f, "sequencer-wait {wait_us}us"),
            QuorumAck {
                entries,
                durable_lsn,
            } => write!(f, "quorum-ack entries={entries} durable-lsn={durable_lsn}"),
            GroupCommitRelease { committed } => {
                write!(f, "group-commit-release committed={committed}")
            }
            Committed { ts } => write!(f, "committed ts={ts}"),
            Abort { reason } => write!(f, "abort reason={reason}"),
            SnapshotRead { horizon } => write!(f, "snapshot-read horizon={horizon}"),
            WatermarkPublish { wg } => write!(f, "watermark-publish wg={wg}"),
            EpochSealed { epoch } => write!(f, "epoch-sealed epoch={epoch}"),
            ClvCut { ts } => write!(f, "clv-cut ts={ts}"),
            CrashInjected => write!(f, "crash-injected"),
            Compensation { writes } => write!(f, "compensation writes={writes}"),
            RecoveryReplay { pass, entries } => {
                write!(f, "recovery-replay pass={pass} entries={entries}")
            }
            LeaderChange { term, leader } => {
                write!(f, "leader-change term={term} leader=r{leader}")
            }
            MsgHop { from, to } => write!(f, "msg P{from}->P{to}"),
            VoteLogged { lsn, commit } => write!(f, "vote-logged lsn={lsn} commit={commit}"),
            VoteQuorumDurable { lsn } => write!(f, "vote-quorum-durable lsn={lsn}"),
            DecisionReached { commit, in_doubt } => {
                write!(f, "decision-reached commit={commit} in-doubt={in_doubt}")
            }
            CoordinatorCrashed => write!(f, "coordinator-crashed"),
            PrefetchIssued { partitions, keys } => {
                write!(f, "prefetch-issued partitions={partitions} keys={keys}")
            }
            PrefetchHit => write!(f, "prefetch-hit"),
            PrefetchStale => write!(f, "prefetch-stale"),
        }
    }
}

/// One decoded event as it appears in a merged timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated-time stamp ([`primo_common::sim_time::now_us`]).
    pub at_us: u64,
    /// Push order within the originating ring (total order per worker).
    pub seq: u64,
    /// Index of the originating ring in the recorder's registry.
    pub ring: usize,
    /// Label of the originating worker thread (e.g. `worker-0-1`).
    pub worker: String,
    /// The transaction this event belongs to, if any.
    pub txn: Option<TxnId>,
    /// The partition this event concerns, if any.
    pub partition: Option<PartitionId>,
    pub kind: TraceEventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10}us] {:<14}", self.at_us, self.worker)?;
        match self.partition {
            Some(p) => write!(f, " {:<4}", p.to_string())?,
            None => write!(f, " {:<4}", "-")?,
        }
        match self.txn {
            Some(t) => write!(f, " {:<10}", t.to_string())?,
            None => write!(f, " {:<10}", "-")?,
        }
        write!(f, " {}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_every_variant() {
        let txn = TxnId::new(PartitionId(3), 77);
        let all = [
            TraceEventKind::Begin { attempt: 2 },
            TraceEventKind::LockWait { owner: txn },
            TraceEventKind::ValidationStart,
            TraceEventKind::ValidationOutcome {
                ok: true,
                reason: None,
            },
            TraceEventKind::ValidationOutcome {
                ok: false,
                reason: Some(AbortReason::Validation),
            },
            TraceEventKind::CommitTsReserved { ts: 42 },
            TraceEventKind::Prepare { participants: 3 },
            TraceEventKind::Vote { ok: false },
            TraceEventKind::WalAppend { lsn: 9, term: 2 },
            TraceEventKind::SequencerWait { wait_us: 120 },
            TraceEventKind::QuorumAck {
                entries: 5,
                durable_lsn: 8,
            },
            TraceEventKind::GroupCommitRelease { committed: true },
            TraceEventKind::Committed { ts: 1234 },
            TraceEventKind::Abort {
                reason: AbortReason::WaitDie,
            },
            TraceEventKind::SnapshotRead { horizon: 55 },
            TraceEventKind::WatermarkPublish { wg: 90 },
            TraceEventKind::EpochSealed { epoch: 7 },
            TraceEventKind::ClvCut { ts: 31 },
            TraceEventKind::CrashInjected,
            TraceEventKind::Compensation { writes: 4 },
            TraceEventKind::RecoveryReplay {
                pass: 1,
                entries: 200,
            },
            TraceEventKind::LeaderChange { term: 3, leader: 1 },
            TraceEventKind::MsgHop { from: 0, to: 2 },
            TraceEventKind::VoteLogged {
                lsn: 12,
                commit: true,
            },
            TraceEventKind::VoteQuorumDurable { lsn: 12 },
            TraceEventKind::DecisionReached {
                commit: false,
                in_doubt: true,
            },
            TraceEventKind::CoordinatorCrashed,
            TraceEventKind::Abort {
                reason: AbortReason::CoordinatorCrash,
            },
            TraceEventKind::PrefetchIssued {
                partitions: 2,
                keys: 7,
            },
            TraceEventKind::PrefetchHit,
            TraceEventKind::PrefetchStale,
        ];
        for kind in all {
            let (d, a, b, c) = kind.encode();
            assert_eq!(TraceEventKind::decode(d, a, b, c), Some(kind), "{kind}");
        }
    }

    #[test]
    fn unknown_discriminant_decodes_to_none() {
        assert_eq!(TraceEventKind::decode(10_000, 0, 0, 0), None);
    }

    #[test]
    fn display_is_grep_friendly() {
        let e = TraceEvent {
            at_us: 150,
            seq: 0,
            ring: 0,
            worker: "worker-0-1".into(),
            txn: Some(TxnId::new(PartitionId(0), 9)),
            partition: Some(PartitionId(0)),
            kind: TraceEventKind::WalAppend { lsn: 4, term: 1 },
        };
        let line = e.to_string();
        assert!(line.contains("worker-0-1"), "{line}");
        assert!(line.contains("T0.9"), "{line}");
        assert!(line.contains("wal-append lsn=4 term=1"), "{line}");
    }
}
