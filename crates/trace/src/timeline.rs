//! Merged, causally-ordered view over every ring, with the filters a
//! post-mortem needs: by transaction, by partition, by event kind.

use crate::event::{TraceEvent, TraceEventKind};
use primo_common::{PartitionId, TxnId};
use std::fmt;
use std::fmt::Write as _;

/// An ordered (non-decreasing `at_us`) sequence of decoded events.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    events: Vec<TraceEvent>,
}

impl Timeline {
    pub(crate) fn new(events: Vec<TraceEvent>) -> Self {
        Timeline { events }
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every event stamped with this transaction, in causal order.
    pub fn for_txn(&self, txn: TxnId) -> Timeline {
        self.filtered(|e| e.txn == Some(txn))
    }

    /// Every event concerning this partition.
    pub fn for_partition(&self, p: PartitionId) -> Timeline {
        self.filtered(|e| e.partition == Some(p))
    }

    /// Every event matching a kind predicate (e.g. only WAL appends).
    pub fn of_kind(&self, pred: impl Fn(&TraceEventKind) -> bool) -> Timeline {
        self.filtered(|e| pred(&e.kind))
    }

    /// Events within the closed sim-time window `[from_us, to_us]`.
    pub fn between(&self, from_us: u64, to_us: u64) -> Timeline {
        self.filtered(|e| e.at_us >= from_us && e.at_us <= to_us)
    }

    fn filtered(&self, pred: impl Fn(&TraceEvent) -> bool) -> Timeline {
        Timeline {
            events: self.events.iter().filter(|e| pred(e)).cloned().collect(),
        }
    }

    /// The post-mortem rendering used by trace-dump-on-failure: each
    /// offending transaction's full lifecycle, then the non-transaction
    /// events (crashes, watermark publishes, leader changes, recovery
    /// passes) of the partitions it touched, inside its time window padded
    /// by `WINDOW_PAD_US` on both sides.
    pub fn failure_report(&self, txns: &[TxnId]) -> String {
        const WINDOW_PAD_US: u64 = 2_000;
        let mut out = String::new();
        let _ = writeln!(out, "==== flight recorder: trace dump on failure ====");
        if self.is_empty() {
            let _ = writeln!(out, "(recorder is empty — was recording enabled?)");
            return out;
        }
        for &txn in txns {
            let mine = self.for_txn(txn);
            let _ = writeln!(out, "--- txn {txn}: {} event(s) ---", mine.len());
            if mine.is_empty() {
                let _ = writeln!(
                    out,
                    "(no events — evicted from the ring, or the txn never ran)"
                );
                continue;
            }
            for e in mine.events() {
                let _ = writeln!(out, "{e}");
            }
            let from = mine.events.first().map(|e| e.at_us).unwrap_or(0);
            let to = mine.events.last().map(|e| e.at_us).unwrap_or(u64::MAX);
            let mut parts: Vec<PartitionId> =
                mine.events.iter().filter_map(|e| e.partition).collect();
            parts.sort_unstable();
            parts.dedup();
            for p in parts {
                let around = self
                    .for_partition(p)
                    .between(from.saturating_sub(WINDOW_PAD_US), to + WINDOW_PAD_US)
                    .filtered(|e| e.txn.is_none());
                if around.is_empty() {
                    continue;
                }
                let _ = writeln!(out, "--- {p} context around txn {txn} ---");
                for e in around.events() {
                    let _ = writeln!(out, "{e}");
                }
            }
        }
        let _ = writeln!(out, "==== end trace dump ====");
        out
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FlightRecorder;
    use primo_common::AbortReason;

    fn sample() -> FlightRecorder {
        let rec = FlightRecorder::new(true, 128);
        let t1 = TxnId::new(PartitionId(0), 1);
        let t2 = TxnId::new(PartitionId(1), 2);
        let p0 = Some(PartitionId(0));
        let p1 = Some(PartitionId(1));
        rec.emit_at(10, Some(t1), p0, TraceEventKind::Begin { attempt: 0 });
        rec.emit_at(20, None, p0, TraceEventKind::WatermarkPublish { wg: 5 });
        rec.emit_at(30, Some(t1), p0, TraceEventKind::CommitTsReserved { ts: 7 });
        rec.emit_at(40, Some(t2), p1, TraceEventKind::Begin { attempt: 0 });
        rec.emit_at(
            50,
            Some(t2),
            p1,
            TraceEventKind::Abort {
                reason: AbortReason::WaitDie,
            },
        );
        rec.emit_at(60, Some(t1), p0, TraceEventKind::Committed { ts: 7 });
        rec.emit_at(99_999, None, p0, TraceEventKind::CrashInjected);
        rec
    }

    #[test]
    fn filters_compose() {
        let tl = sample().merge();
        let t1 = TxnId::new(PartitionId(0), 1);
        assert_eq!(tl.len(), 7);
        assert_eq!(tl.for_txn(t1).len(), 3);
        assert_eq!(tl.for_partition(PartitionId(1)).len(), 2);
        assert_eq!(
            tl.of_kind(|k| matches!(k, TraceEventKind::Begin { .. }))
                .len(),
            2
        );
        assert_eq!(tl.for_partition(PartitionId(0)).between(15, 35).len(), 2);
    }

    #[test]
    fn failure_report_contains_lifecycle_and_context() {
        let rec = sample();
        let t1 = TxnId::new(PartitionId(0), 1);
        let report = rec.failure_report(&[t1]);
        assert!(report.contains("txn T0.1: 3 event(s)"), "{report}");
        assert!(report.contains("commit-ts-reserved ts=7"), "{report}");
        assert!(
            report.contains("watermark-publish wg=5"),
            "partition context missing: {report}"
        );
        assert!(
            !report.contains("crash-injected"),
            "far-away event leaked into the window: {report}"
        );
        assert!(!report.contains("T1.2"), "other txn leaked: {report}");
    }

    #[test]
    fn failure_report_on_empty_recorder_says_so() {
        let rec = FlightRecorder::new(true, 64);
        let report = rec.failure_report(&[TxnId::new(PartitionId(0), 1)]);
        assert!(report.contains("recorder is empty"), "{report}");
    }
}
