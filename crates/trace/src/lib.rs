//! `primo-trace`: the cluster flight recorder.
//!
//! An always-on, low-overhead tracing substrate for the Primo reproduction:
//! every layer (workers, commit paths, the replicated WAL, group-commit
//! schemes, recovery) emits [`TraceEventKind`] events against the cluster's
//! [`FlightRecorder`]. Events land in per-thread fixed-capacity
//! [`TraceRing`]s — overwrite-oldest, zero allocation on the hot path — and
//! can be merged at any point into a causally-ordered [`Timeline`] filtered
//! by transaction, partition or kind.
//!
//! Two consumers pay for the machinery:
//!
//! * **Trace-dump-on-failure** — the seeded crash loops in the integration
//!   suites capture the recorder and, when an assertion trips, panic with
//!   [`FlightRecorder::failure_report`] for the offending transactions: the
//!   full lifecycle (begin → locks → validation → commit-ts → WAL append →
//!   group-commit release) plus surrounding partition events.
//! * The **metrics timeline** — the experiment driver samples windowed
//!   TPS / abort-rate / p99 series for the figure harnesses.
//!
//! The overhead budget (≤ 5% on contended-append and write-heavy YCSB,
//! recording-on vs off) is enforced by `bench_matrix --trace-overhead` in
//! CI; see ARCHITECTURE.md §Observability.

mod event;
mod recorder;
mod ring;
mod timeline;

pub use event::{TraceEvent, TraceEventKind};
pub use recorder::{FlightRecorder, DEFAULT_RING_CAPACITY};
pub use ring::TraceRing;
pub use timeline::Timeline;
