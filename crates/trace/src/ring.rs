//! Per-worker fixed-capacity trace ring.
//!
//! Single producer (the owning thread), overwrite-oldest, zero allocation
//! per event. Each slot is a tiny seqlock: the writer bumps the slot's
//! version to odd, stores the event words, then bumps it to even; snapshot
//! readers accept a slot only when they observe the same even version on
//! both sides of the data loads. No `unsafe` — the words are plain atomics
//! written and read with `Relaxed` data / `Release`–`Acquire` version
//! ordering, which is all a discard-on-tear seqlock needs.

use crate::event::{TraceEvent, TraceEventKind, NO_PARTITION, NO_TXN};
use primo_common::{PartitionId, TxnId};
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Words per slot: seq, at_us, txn, partition|discriminant, a, b, c.
const WORDS: usize = 7;

struct Slot {
    /// Odd while the writer is mid-store; even and stable otherwise.
    version: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            version: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

/// One worker's flight-recorder ring.
pub struct TraceRing {
    label: String,
    mask: u64,
    /// Total events ever pushed; the next event's sequence number.
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl TraceRing {
    /// `capacity` is rounded up to a power of two (min 8).
    pub fn new(label: impl Into<String>, capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        TraceRing {
            label: label.into(),
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }

    pub fn label(&self) -> &str {
        &self.label
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events ever pushed (not the number currently retained).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one event. Must only be called from the owning thread (the
    /// seqlock tolerates concurrent *readers*, not concurrent writers; the
    /// recorder's thread-local registration enforces single-writer).
    pub fn push(
        &self,
        at_us: u64,
        txn: Option<TxnId>,
        partition: Option<PartitionId>,
        kind: TraceEventKind,
    ) {
        let seq = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        let v = slot.version.load(Ordering::Relaxed);
        slot.version.store(v + 1, Ordering::Relaxed);
        // Release fence: the odd version above becomes visible to any thread
        // that observes one of the data stores below, so a reader that reads
        // a torn word is guaranteed to see a version mismatch and discard.
        fence(Ordering::Release);
        let (d, a, b, c) = kind.encode();
        let part = partition.map(|p| p.0).unwrap_or(NO_PARTITION);
        let packed = (part as u64) | (d << 32);
        for (w, val) in slot.words.iter().zip([
            seq,
            at_us,
            txn.map(|t| t.pack()).unwrap_or(NO_TXN),
            packed,
            a,
            b,
            c,
        ]) {
            w.store(val, Ordering::Relaxed);
        }
        slot.version.store(v + 2, Ordering::Release);
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Best-effort copy of the retained events, oldest first. Slots the
    /// writer is concurrently overwriting are skipped (a merge taken while
    /// workers still run loses at most the in-flight slot per ring).
    pub fn snapshot(&self, ring: usize) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 % 2 == 1 {
                continue; // never written, or a write is in flight
            }
            let mut w = [0u64; WORDS];
            for (dst, src) in w.iter_mut().zip(slot.words.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            // Acquire fence pairs with the writer's release fence: if any
            // data load above saw a mid-write value, the version re-read
            // below is guaranteed to see the odd (or advanced) version.
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) != v1 {
                continue; // torn by a wrap-around overwrite
            }
            let [seq, at_us, txn, packed, a, b, c] = w;
            let d = packed >> 32;
            let part = (packed & 0xFFFF_FFFF) as u32;
            if let Some(kind) = TraceEventKind::decode(d, a, b, c) {
                out.push(TraceEvent {
                    at_us,
                    seq,
                    ring,
                    worker: self.label.clone(),
                    txn: if txn == NO_TXN {
                        None
                    } else {
                        Some(TxnId::unpack(txn))
                    },
                    partition: if part == NO_PARTITION {
                        None
                    } else {
                        Some(PartitionId(part))
                    },
                    kind,
                });
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(i: u64) -> TraceEventKind {
        TraceEventKind::Committed { ts: i }
    }

    #[test]
    fn retains_everything_under_capacity() {
        let r = TraceRing::new("w", 16);
        for i in 0..10 {
            r.push(i, None, None, ev(i));
        }
        let snap = r.snapshot(0);
        assert_eq!(snap.len(), 10);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.kind, ev(i as u64));
        }
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let r = TraceRing::new("w", 8);
        for i in 0..20 {
            r.push(i, None, None, ev(i));
        }
        let snap = r.snapshot(0);
        assert_eq!(snap.len(), 8, "ring keeps exactly its capacity");
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>(), "oldest overwritten");
        assert_eq!(r.pushed(), 20);
    }

    #[test]
    fn snapshot_is_ordered_by_push_even_across_wrap() {
        let r = TraceRing::new("w", 8);
        for i in 0..13 {
            r.push(100 + i, None, None, ev(i));
        }
        let snap = r.snapshot(0);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        assert!(snap.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(TraceRing::new("w", 100).capacity(), 128);
        assert_eq!(TraceRing::new("w", 0).capacity(), 8);
    }

    #[test]
    fn concurrent_reader_never_sees_torn_events() {
        let r = Arc::new(TraceRing::new("w", 16));
        let writer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..200_000u64 {
                    // at_us mirrors the payload so a torn slot is detectable.
                    r.push(i, None, None, ev(i));
                }
            })
        };
        let mut seen = 0u64;
        while seen < 50 {
            for e in r.snapshot(0) {
                let TraceEventKind::Committed { ts } = e.kind else {
                    panic!("unexpected kind {:?}", e.kind);
                };
                assert_eq!(e.at_us, ts, "torn slot: at_us and payload disagree");
            }
            seen += 1;
        }
        writer.join().unwrap();
    }
}
