//! A tiny row codec: rows are fixed sequences of `u64` fields plus optional
//! filler bytes. Enough structure for TPC-C's numeric columns while keeping
//! the storage engine completely schema-agnostic.

use primo_common::Value;

/// Encode a row of `u64` fields, padding with `filler` extra bytes.
pub fn encode_fields(fields: &[u64], filler: usize) -> Value {
    let mut bytes = Vec::with_capacity(fields.len() * 8 + filler);
    for f in fields {
        bytes.extend_from_slice(&f.to_le_bytes());
    }
    bytes.resize(fields.len() * 8 + filler, 0xAB);
    Value::new(bytes)
}

/// Decode the `u64` fields of a row encoded with [`encode_fields`].
pub fn decode_fields(value: &Value, n: usize) -> Vec<u64> {
    let bytes = value.as_bytes();
    (0..n)
        .map(|i| {
            let start = i * 8;
            if bytes.len() >= start + 8 {
                u64::from_le_bytes(bytes[start..start + 8].try_into().unwrap())
            } else {
                0
            }
        })
        .collect()
}

/// Read one field without decoding the whole row.
pub fn field(value: &Value, idx: usize) -> u64 {
    decode_fields(value, idx + 1)[idx]
}

/// Return a copy of the row with one field replaced.
pub fn with_field(value: &Value, idx: usize, new: u64) -> Value {
    let mut bytes = value.as_bytes().to_vec();
    let start = idx * 8;
    if bytes.len() < start + 8 {
        bytes.resize(start + 8, 0);
    }
    bytes[start..start + 8].copy_from_slice(&new.to_le_bytes());
    Value::new(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fields() {
        let v = encode_fields(&[1, 2, 3, u64::MAX], 20);
        assert_eq!(decode_fields(&v, 4), vec![1, 2, 3, u64::MAX]);
        assert_eq!(v.len(), 4 * 8 + 20);
    }

    #[test]
    fn field_access_and_update() {
        let v = encode_fields(&[10, 20, 30], 0);
        assert_eq!(field(&v, 1), 20);
        let v2 = with_field(&v, 1, 99);
        assert_eq!(field(&v2, 1), 99);
        assert_eq!(field(&v2, 0), 10);
        assert_eq!(field(&v2, 2), 30);
    }

    #[test]
    fn decode_short_row_yields_zeroes() {
        let v = encode_fields(&[7], 0);
        assert_eq!(decode_fields(&v, 3), vec![7, 0, 0]);
    }

    #[test]
    fn with_field_extends_short_rows() {
        let v = Value::new(vec![]);
        let v2 = with_field(&v, 2, 5);
        assert_eq!(field(&v2, 2), 5);
    }
}
