//! Smallbank (Alomari et al., ICDE '08) — a small banking workload the paper
//! cites as another example where read-sets cover write-sets. Used by the
//! examples and as an extra workload for integration tests; it also provides
//! an easy-to-check invariant (money conservation across accounts).

use crate::codec::{encode_fields, field, with_field};
use primo_common::{FastRng, PartitionId, TableId, TxnResult};
use primo_runtime::txn::{TxnContext, TxnProgram, Workload};
use primo_storage::PartitionStore;

/// Checking-account table.
pub const CHECKING: TableId = TableId(0);
/// Savings-account table.
pub const SAVINGS: TableId = TableId(1);

/// Smallbank parameters.
#[derive(Debug, Clone)]
pub struct SmallbankConfig {
    pub num_partitions: usize,
    pub accounts_per_partition: u64,
    /// Initial balance per account (checking and savings each).
    pub initial_balance: u64,
    /// Fraction of transactions that touch an account on another partition.
    pub distributed_ratio: f64,
    /// Zipf-ish hotspot: fraction of accesses that go to the first
    /// `hot_accounts` accounts.
    pub hotspot_fraction: f64,
    pub hot_accounts: u64,
}

impl Default for SmallbankConfig {
    fn default() -> Self {
        SmallbankConfig {
            num_partitions: 2,
            accounts_per_partition: 10_000,
            initial_balance: 10_000,
            distributed_ratio: 0.2,
            hotspot_fraction: 0.25,
            hot_accounts: 100,
        }
    }
}

/// The six Smallbank transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmallbankKind {
    Balance,
    DepositChecking,
    TransactSavings,
    Amalgamate,
    WriteCheck,
    SendPayment,
}

/// One Smallbank transaction.
#[derive(Debug, Clone)]
pub struct SmallbankTxn {
    pub kind: SmallbankKind,
    pub home: PartitionId,
    pub account_a: (PartitionId, u64),
    pub account_b: (PartitionId, u64),
    pub amount: u64,
}

impl TxnProgram for SmallbankTxn {
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        let (pa, a) = self.account_a;
        let (pb, b) = self.account_b;
        match self.kind {
            SmallbankKind::Balance => {
                let _ = ctx.read(pa, CHECKING, a)?;
                let _ = ctx.read(pa, SAVINGS, a)?;
            }
            SmallbankKind::DepositChecking => {
                let c = ctx.read(pa, CHECKING, a)?;
                ctx.write(
                    pa,
                    CHECKING,
                    a,
                    with_field(&c, 0, field(&c, 0) + self.amount),
                )?;
            }
            SmallbankKind::TransactSavings => {
                let s = ctx.read(pa, SAVINGS, a)?;
                ctx.write(
                    pa,
                    SAVINGS,
                    a,
                    with_field(&s, 0, field(&s, 0) + self.amount),
                )?;
            }
            SmallbankKind::Amalgamate => {
                // Move everything from A's savings+checking into B's checking.
                let s = ctx.read(pa, SAVINGS, a)?;
                let c = ctx.read(pa, CHECKING, a)?;
                let total = field(&s, 0) + field(&c, 0);
                let bc = ctx.read(pb, CHECKING, b)?;
                ctx.write(pa, SAVINGS, a, with_field(&s, 0, 0))?;
                ctx.write(pa, CHECKING, a, with_field(&c, 0, 0))?;
                ctx.write(pb, CHECKING, b, with_field(&bc, 0, field(&bc, 0) + total))?;
            }
            SmallbankKind::WriteCheck => {
                let s = ctx.read(pa, SAVINGS, a)?;
                let c = ctx.read(pa, CHECKING, a)?;
                let available = field(&s, 0) + field(&c, 0);
                let deduction = if available < self.amount {
                    self.amount + 1 // overdraft penalty
                } else {
                    self.amount
                };
                ctx.write(
                    pa,
                    CHECKING,
                    a,
                    with_field(&c, 0, field(&c, 0).saturating_sub(deduction)),
                )?;
            }
            SmallbankKind::SendPayment => {
                let ca = ctx.read(pa, CHECKING, a)?;
                let cb = ctx.read(pb, CHECKING, b)?;
                let avail = field(&ca, 0);
                // Branch on the read result: only transfer what is available.
                let amount = self.amount.min(avail);
                ctx.write(pa, CHECKING, a, with_field(&ca, 0, avail - amount))?;
                ctx.write(pb, CHECKING, b, with_field(&cb, 0, field(&cb, 0) + amount))?;
            }
        }
        Ok(())
    }

    fn home_partition(&self) -> PartitionId {
        self.home
    }

    fn is_read_only(&self) -> bool {
        self.kind == SmallbankKind::Balance
    }

    fn read_fraction_hint(&self) -> f64 {
        match self.kind {
            SmallbankKind::Balance => 1.0,
            _ => 0.5,
        }
    }

    fn label(&self) -> &'static str {
        match self.kind {
            SmallbankKind::Balance => "balance",
            SmallbankKind::DepositChecking => "deposit_checking",
            SmallbankKind::TransactSavings => "transact_savings",
            SmallbankKind::Amalgamate => "amalgamate",
            SmallbankKind::WriteCheck => "write_check",
            SmallbankKind::SendPayment => "send_payment",
        }
    }
}

/// The Smallbank workload.
#[derive(Debug)]
pub struct SmallbankWorkload {
    cfg: SmallbankConfig,
}

impl SmallbankWorkload {
    pub fn new(cfg: SmallbankConfig) -> Self {
        SmallbankWorkload { cfg }
    }

    pub fn config(&self) -> &SmallbankConfig {
        &self.cfg
    }

    fn pick_account(&self, rng: &mut FastRng, partition: PartitionId) -> (PartitionId, u64) {
        let acct = if rng.flip(self.cfg.hotspot_fraction) {
            rng.next_below(self.cfg.hot_accounts.min(self.cfg.accounts_per_partition))
        } else {
            rng.next_below(self.cfg.accounts_per_partition)
        };
        (partition, acct)
    }

    /// Total money across all partitions (checking + savings) — the invariant
    /// integration tests check.
    pub fn total_money(&self, partitions: &[&PartitionStore]) -> u64 {
        let mut total = 0u64;
        for store in partitions {
            for table in [CHECKING, SAVINGS] {
                let t = store.table(table);
                for k in 0..self.cfg.accounts_per_partition {
                    if let Some(r) = t.get(k) {
                        total += field(&r.read().value, 0);
                    }
                }
            }
        }
        total
    }
}

impl Workload for SmallbankWorkload {
    fn name(&self) -> &'static str {
        "Smallbank"
    }

    fn load_partition(&self, store: &PartitionStore, _partition: PartitionId) {
        for table in [CHECKING, SAVINGS] {
            let t = store.table(table);
            for k in 0..self.cfg.accounts_per_partition {
                t.insert(k, encode_fields(&[self.cfg.initial_balance], 8));
            }
        }
    }

    fn generate(&self, rng: &mut FastRng, home: PartitionId) -> Box<dyn TxnProgram> {
        let kind = match rng.next_below(6) {
            0 => SmallbankKind::Balance,
            1 => SmallbankKind::DepositChecking,
            2 => SmallbankKind::TransactSavings,
            3 => SmallbankKind::Amalgamate,
            4 => SmallbankKind::WriteCheck,
            _ => SmallbankKind::SendPayment,
        };
        let account_a = self.pick_account(rng, home);
        let remote = self.cfg.num_partitions > 1 && rng.flip(self.cfg.distributed_ratio);
        let b_partition = if remote {
            let mut p = rng.next_below(self.cfg.num_partitions as u64) as u32;
            while p == home.0 {
                p = rng.next_below(self.cfg.num_partitions as u64) as u32;
            }
            PartitionId(p)
        } else {
            home
        };
        let account_b = self.pick_account(rng, b_partition);
        Box::new(SmallbankTxn {
            kind,
            home,
            account_a,
            account_b,
            amount: rng.next_range(1, 100),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loader_creates_both_tables() {
        let cfg = SmallbankConfig {
            accounts_per_partition: 50,
            ..Default::default()
        };
        let w = SmallbankWorkload::new(cfg);
        let store = PartitionStore::new(PartitionId(0));
        w.load_partition(&store, PartitionId(0));
        assert_eq!(store.table(CHECKING).len(), 50);
        assert_eq!(store.table(SAVINGS).len(), 50);
        assert_eq!(w.total_money(&[&store]), 50 * 2 * 10_000);
    }

    #[test]
    fn send_payment_conserves_money_in_a_map() {
        use primo_common::{Key, Value};
        use std::collections::HashMap;
        struct MapCtx(HashMap<(u32, u32, Key), Value>);
        impl TxnContext for MapCtx {
            fn read(&mut self, p: PartitionId, t: TableId, k: Key) -> TxnResult<Value> {
                Ok(self
                    .0
                    .get(&(p.0, t.0, k))
                    .cloned()
                    .unwrap_or_else(|| encode_fields(&[100], 0)))
            }
            fn write(&mut self, p: PartitionId, t: TableId, k: Key, v: Value) -> TxnResult<()> {
                self.0.insert((p.0, t.0, k), v);
                Ok(())
            }
            fn insert(&mut self, p: PartitionId, t: TableId, k: Key, v: Value) -> TxnResult<()> {
                self.write(p, t, k, v)
            }
            fn delete(&mut self, p: PartitionId, t: TableId, k: Key) -> TxnResult<()> {
                self.0.remove(&(p.0, t.0, k));
                Ok(())
            }
        }
        let txn = SmallbankTxn {
            kind: SmallbankKind::SendPayment,
            home: PartitionId(0),
            account_a: (PartitionId(0), 1),
            account_b: (PartitionId(1), 2),
            amount: 30,
        };
        let mut ctx = MapCtx(HashMap::new());
        txn.execute(&mut ctx).unwrap();
        let a = field(&ctx.0[&(0, CHECKING.0, 1)], 0);
        let b = field(&ctx.0[&(1, CHECKING.0, 2)], 0);
        assert_eq!(a + b, 200, "money conserved");
        assert_eq!(a, 70);
    }

    #[test]
    fn write_check_never_underflows() {
        use primo_common::{Key, Value};
        use std::collections::HashMap;
        struct MapCtx(HashMap<(u32, u32, Key), Value>);
        impl TxnContext for MapCtx {
            fn read(&mut self, p: PartitionId, t: TableId, k: Key) -> TxnResult<Value> {
                Ok(self
                    .0
                    .get(&(p.0, t.0, k))
                    .cloned()
                    .unwrap_or_else(|| encode_fields(&[10], 0)))
            }
            fn write(&mut self, p: PartitionId, t: TableId, k: Key, v: Value) -> TxnResult<()> {
                self.0.insert((p.0, t.0, k), v);
                Ok(())
            }
            fn insert(&mut self, p: PartitionId, t: TableId, k: Key, v: Value) -> TxnResult<()> {
                self.write(p, t, k, v)
            }
            fn delete(&mut self, p: PartitionId, t: TableId, k: Key) -> TxnResult<()> {
                self.0.remove(&(p.0, t.0, k));
                Ok(())
            }
        }
        let txn = SmallbankTxn {
            kind: SmallbankKind::WriteCheck,
            home: PartitionId(0),
            account_a: (PartitionId(0), 1),
            account_b: (PartitionId(0), 1),
            amount: 500,
        };
        let mut ctx = MapCtx(HashMap::new());
        txn.execute(&mut ctx).unwrap();
        // Saturating subtraction: balance clamps at 0 rather than wrapping.
        assert_eq!(field(&ctx.0[&(0, CHECKING.0, 1)], 0), 0);
    }

    #[test]
    fn generator_produces_all_kinds_and_valid_accounts() {
        let cfg = SmallbankConfig {
            num_partitions: 3,
            accounts_per_partition: 100,
            distributed_ratio: 0.5,
            ..Default::default()
        };
        let w = SmallbankWorkload::new(cfg);
        let mut rng = FastRng::new(9);
        let mut labels = std::collections::HashSet::new();
        for _ in 0..500 {
            let t = w.generate(&mut rng, PartitionId(1));
            labels.insert(t.label());
            assert_eq!(t.home_partition(), PartitionId(1));
        }
        assert!(labels.len() >= 5, "should see most transaction kinds");
    }
}
