//! OLTP workloads used in the paper's evaluation (§6.1.2): YCSB and TPC-C,
//! plus Smallbank as an additional example workload.
//!
//! Workloads produce [`primo_runtime::txn::TxnProgram`]s — programs that
//! branch on what they read — so nothing in the engine ever sees a read/write
//! set in advance.

pub mod codec;
pub mod smallbank;
pub mod tpcc;
pub mod ycsb;

pub use smallbank::{SmallbankConfig, SmallbankWorkload};
pub use tpcc::{TpccConfig, TpccWorkload};
pub use ycsb::{YcsbConfig, YcsbWorkload};
