//! YCSB (Cooper et al., SoCC '10) as configured in the paper (§6.1.2):
//! each transaction performs 10 key accesses drawn from a Zipf distribution;
//! by default 5 are reads and 5 are read-modify-writes, the skew is 0.6,
//! each partition holds 1 M keys and 20 % of transactions are distributed.
//! The figure harnesses sweep skew, distributed ratio, write ratio and
//! blind-write ratio through this configuration.

use primo_common::{FastRng, Key, PartitionId, TableId, TxnResult, Value, ZipfGen};
use primo_runtime::txn::{TxnContext, TxnProgram, Workload};
use primo_storage::PartitionStore;
use std::sync::atomic::{AtomicU64, Ordering};

/// The single YCSB table.
pub const YCSB_TABLE: TableId = TableId(0);

/// How many churn inserts stay live before the matching delete is issued:
/// churn op `c` inserts key `base + c` and deletes key `base + c - WINDOW`,
/// so the churn keyspace holds a rolling window of records whose tombstones
/// are continuously created and reclaimed.
///
/// The window is sized so that, at the default 10 ops/txn and full churn
/// ratio, it spans ~25 transactions — comfortably more than the number of
/// workers that can have churn transactions in flight on one partition.
/// Generation order is not commit order, so a delete whose matching insert
/// is still executing (or aborted permanently) surfaces as a `NotFound`
/// abandonment; the wide window makes that the rare tail, not the norm.
pub const CHURN_WINDOW: u64 = 256;

/// YCSB workload parameters.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    pub num_partitions: usize,
    /// Records per partition (paper: 1 M; scale down for quick runs).
    pub keys_per_partition: u64,
    /// Operations per transaction (paper: 10).
    pub ops_per_txn: usize,
    /// Fraction of the operations that are plain reads; the rest are
    /// read-modify-writes (or blind writes, see `blind_write_ratio`).
    pub read_ratio: f64,
    /// Zipf skew (paper default 0.6; Fig 6 sweeps 0–0.99).
    pub zipf_theta: f64,
    /// Fraction of transactions that access a remote partition (paper: 20 %).
    pub distributed_ratio: f64,
    /// Fraction of write operations that are blind writes (Fig 9).
    pub blind_write_ratio: f64,
    /// Fraction of operations that are insert/delete churn: each such op
    /// inserts a fresh key in a dedicated churn keyspace (above the loaded
    /// keys) and deletes the key inserted [`CHURN_WINDOW`] churn ops earlier
    /// on the same partition, exercising record creation, tombstoning and
    /// table-shard reclamation under every protocol. Disabled by default.
    pub insert_delete_ratio: f64,
    /// Probability that each individual operation of a distributed
    /// transaction goes to the remote partition.
    pub remote_op_ratio: f64,
    /// Payload size in bytes.
    pub value_size: usize,
}

impl YcsbConfig {
    /// The paper's default setting, scaled to `keys_per_partition` records.
    pub fn paper_default(num_partitions: usize, keys_per_partition: u64) -> Self {
        YcsbConfig {
            num_partitions,
            keys_per_partition,
            ops_per_txn: 10,
            read_ratio: 0.5,
            zipf_theta: 0.6,
            distributed_ratio: 0.2,
            blind_write_ratio: 0.0,
            insert_delete_ratio: 0.0,
            remote_op_ratio: 0.3,
            value_size: 100,
        }
    }

    /// A small configuration for unit/integration tests.
    pub fn small(num_partitions: usize) -> Self {
        YcsbConfig {
            keys_per_partition: 1_000,
            value_size: 16,
            ..Self::paper_default(num_partitions, 1_000)
        }
    }
}

/// One YCSB operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbOpKind {
    Read,
    ReadModifyWrite,
    BlindWrite,
    /// Create a fresh record in the churn keyspace.
    Insert,
    /// Remove a churn record inserted [`CHURN_WINDOW`] churn ops earlier.
    Delete,
}

#[derive(Debug, Clone, Copy)]
pub struct YcsbOp {
    pub partition: PartitionId,
    pub key: Key,
    pub kind: YcsbOpKind,
}

/// A YCSB transaction: a pre-drawn list of operations (keys are drawn by the
/// generator, but the *values* written depend on the values read, so the
/// engine still cannot predict the write-set contents).
#[derive(Debug, Clone)]
pub struct YcsbTxn {
    pub home: PartitionId,
    pub ops: Vec<YcsbOp>,
    pub value_size: usize,
    pub read_ratio: f64,
}

impl TxnProgram for YcsbTxn {
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        for op in &self.ops {
            match op.kind {
                YcsbOpKind::Read => {
                    ctx.read(op.partition, YCSB_TABLE, op.key)?;
                }
                YcsbOpKind::ReadModifyWrite => {
                    let v = ctx.read(op.partition, YCSB_TABLE, op.key)?;
                    let mut bytes = v.as_bytes().to_vec();
                    bytes.resize(self.value_size.max(8), 0);
                    let counter = u64::from_le_bytes(bytes[..8].try_into().unwrap()) + 1;
                    bytes[..8].copy_from_slice(&counter.to_le_bytes());
                    ctx.write(op.partition, YCSB_TABLE, op.key, Value::new(bytes))?;
                }
                YcsbOpKind::BlindWrite => {
                    ctx.write(
                        op.partition,
                        YCSB_TABLE,
                        op.key,
                        Value::zeroed(self.value_size),
                    )?;
                }
                YcsbOpKind::Insert => {
                    ctx.insert(
                        op.partition,
                        YCSB_TABLE,
                        op.key,
                        Value::zeroed(self.value_size),
                    )?;
                }
                YcsbOpKind::Delete => {
                    // The matching insert ran CHURN_WINDOW churn ops ago; if
                    // that transaction never committed the delete aborts
                    // NotFound, which the abort breakdown surfaces.
                    ctx.delete(op.partition, YCSB_TABLE, op.key)?;
                }
            }
        }
        Ok(())
    }

    fn home_partition(&self) -> PartitionId {
        self.home
    }

    fn read_hint(&self) -> Vec<(PartitionId, TableId, Key)> {
        // YCSB's key list is drawn up front, so the whole access set is a
        // static footprint: reads and read-modify-writes alike can be served
        // from one batched fan-out per remote partition. (Churn inserts and
        // deletes ride on the home partition and are dropped by the
        // footprint's home filter.)
        self.ops
            .iter()
            .map(|o| (o.partition, YCSB_TABLE, o.key))
            .collect()
    }

    fn is_read_only(&self) -> bool {
        self.ops.iter().all(|o| o.kind == YcsbOpKind::Read)
    }

    fn read_fraction_hint(&self) -> f64 {
        self.read_ratio
    }

    fn label(&self) -> &'static str {
        "ycsb"
    }
}

/// The YCSB workload generator.
#[derive(Debug)]
pub struct YcsbWorkload {
    cfg: YcsbConfig,
    zipf: ZipfGen,
    /// Per-partition churn-op counters: churn keys live at
    /// `keys_per_partition + c` in each home partition's table.
    churn: Vec<AtomicU64>,
}

impl YcsbWorkload {
    pub fn new(cfg: YcsbConfig) -> Self {
        let zipf = ZipfGen::new(cfg.keys_per_partition, cfg.zipf_theta);
        let churn = (0..cfg.num_partitions).map(|_| AtomicU64::new(0)).collect();
        YcsbWorkload { cfg, zipf, churn }
    }

    pub fn config(&self) -> &YcsbConfig {
        &self.cfg
    }

    /// The first key of `home`'s churn keyspace (above the loaded keys).
    pub fn churn_base(&self) -> Key {
        self.cfg.keys_per_partition
    }

    /// Generate the operation list of one transaction.
    fn generate_ops(&self, rng: &mut FastRng, home: PartitionId) -> Vec<YcsbOp> {
        let distributed = self.cfg.num_partitions > 1 && rng.flip(self.cfg.distributed_ratio);
        let remote_partition = if distributed {
            let mut p = rng.next_below(self.cfg.num_partitions as u64) as u32;
            while p == home.0 {
                p = rng.next_below(self.cfg.num_partitions as u64) as u32;
            }
            Some(PartitionId(p))
        } else {
            None
        };
        let mut ops = Vec::with_capacity(self.cfg.ops_per_txn);
        let mut any_remote = false;
        for i in 0..self.cfg.ops_per_txn {
            // Insert/delete churn rides on the home partition so a delete
            // always targets the partition its insert ran on.
            if self.cfg.insert_delete_ratio > 0.0 && rng.flip(self.cfg.insert_delete_ratio) {
                let c = self.churn[home.idx()].fetch_add(1, Ordering::Relaxed);
                ops.push(YcsbOp {
                    partition: home,
                    key: self.churn_base() + c,
                    kind: YcsbOpKind::Insert,
                });
                if c >= CHURN_WINDOW {
                    ops.push(YcsbOp {
                        partition: home,
                        key: self.churn_base() + c - CHURN_WINDOW,
                        kind: YcsbOpKind::Delete,
                    });
                }
                continue;
            }
            let partition = match remote_partition {
                // Make sure a "distributed" transaction really has at least
                // one remote access (force the last op remote if needed).
                Some(rp)
                    if rng.flip(self.cfg.remote_op_ratio)
                        || (i + 1 == self.cfg.ops_per_txn && !any_remote) =>
                {
                    any_remote = true;
                    rp
                }
                _ => home,
            };
            let key = self.zipf.sample(rng);
            let kind = if rng.flip(self.cfg.read_ratio) {
                YcsbOpKind::Read
            } else if rng.flip(self.cfg.blind_write_ratio) {
                YcsbOpKind::BlindWrite
            } else {
                YcsbOpKind::ReadModifyWrite
            };
            ops.push(YcsbOp {
                partition,
                key,
                kind,
            });
        }
        ops
    }
}

impl Workload for YcsbWorkload {
    fn name(&self) -> &'static str {
        "YCSB"
    }

    fn load_partition(&self, store: &PartitionStore, _partition: PartitionId) {
        let table = store.table(YCSB_TABLE);
        for k in 0..self.cfg.keys_per_partition {
            table.insert(k, Value::zeroed(self.cfg.value_size));
        }
    }

    fn generate(&self, rng: &mut FastRng, home: PartitionId) -> Box<dyn TxnProgram> {
        Box::new(YcsbTxn {
            home,
            ops: self.generate_ops(rng, home),
            value_size: self.cfg.value_size,
            read_ratio: self.cfg.read_ratio,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(cfg: YcsbConfig, n: usize) -> Vec<YcsbTxn> {
        let w = YcsbWorkload::new(cfg);
        let mut rng = FastRng::new(7);
        (0..n)
            .map(|_| YcsbTxn {
                home: PartitionId(0),
                ops: w.generate_ops(&mut rng, PartitionId(0)),
                value_size: 8,
                read_ratio: w.cfg.read_ratio,
            })
            .collect()
    }

    #[test]
    fn default_mix_is_half_reads() {
        let txns = gen_many(YcsbConfig::paper_default(4, 10_000), 500);
        let mut reads = 0usize;
        let mut total = 0usize;
        for t in &txns {
            assert_eq!(t.ops.len(), 10);
            reads += t.ops.iter().filter(|o| o.kind == YcsbOpKind::Read).count();
            total += t.ops.len();
        }
        let ratio = reads as f64 / total as f64;
        assert!((0.42..0.58).contains(&ratio), "read ratio {ratio}");
    }

    #[test]
    fn distributed_ratio_is_respected() {
        let txns = gen_many(YcsbConfig::paper_default(4, 10_000), 1_000);
        let dist = txns
            .iter()
            .filter(|t| t.ops.iter().any(|o| o.partition != t.home))
            .count();
        let ratio = dist as f64 / txns.len() as f64;
        assert!((0.12..0.30).contains(&ratio), "distributed ratio {ratio}");
    }

    #[test]
    fn all_distributed_when_ratio_is_one() {
        let mut cfg = YcsbConfig::paper_default(4, 1_000);
        cfg.distributed_ratio = 1.0;
        let txns = gen_many(cfg, 200);
        assert!(txns
            .iter()
            .all(|t| t.ops.iter().any(|o| o.partition != t.home)));
    }

    #[test]
    fn blind_writes_replace_rmws() {
        let mut cfg = YcsbConfig::paper_default(2, 1_000);
        cfg.blind_write_ratio = 1.0;
        let txns = gen_many(cfg, 100);
        assert!(txns
            .iter()
            .all(|t| t.ops.iter().all(|o| o.kind != YcsbOpKind::ReadModifyWrite)));
    }

    #[test]
    fn churn_mix_inserts_then_deletes_with_a_window() {
        let mut cfg = YcsbConfig::small(2);
        cfg.insert_delete_ratio = 1.0;
        let w = YcsbWorkload::new(cfg.clone());
        let mut rng = FastRng::new(13);
        let mut inserted = Vec::new();
        let mut deleted = Vec::new();
        for _ in 0..80 {
            for op in w.generate_ops(&mut rng, PartitionId(0)) {
                assert_eq!(op.partition, PartitionId(0), "churn stays on home");
                assert!(op.key >= cfg.keys_per_partition, "churn keyspace only");
                match op.kind {
                    YcsbOpKind::Insert => inserted.push(op.key),
                    YcsbOpKind::Delete => deleted.push(op.key),
                    other => panic!("unexpected op kind {other:?}"),
                }
            }
        }
        assert!(inserted.len() > CHURN_WINDOW as usize);
        assert!(!deleted.is_empty(), "the window must eventually fill");
        // Every delete targets a key some earlier op inserted, exactly
        // CHURN_WINDOW churn ops later.
        for (i, d) in deleted.iter().enumerate() {
            assert_eq!(*d, inserted[i]);
            assert_eq!(inserted[i + CHURN_WINDOW as usize], d + CHURN_WINDOW);
        }
        // Counters are per partition: another home starts its own sequence.
        let first_p1 = w
            .generate_ops(&mut rng, PartitionId(1))
            .first()
            .copied()
            .unwrap();
        assert_eq!(first_p1.key, cfg.keys_per_partition);
    }

    #[test]
    fn churn_is_off_by_default() {
        let txns = gen_many(YcsbConfig::paper_default(2, 1_000), 200);
        assert!(txns.iter().all(|t| t
            .ops
            .iter()
            .all(|o| !matches!(o.kind, YcsbOpKind::Insert | YcsbOpKind::Delete))));
    }

    #[test]
    fn keys_stay_in_domain_and_zipf_concentrates() {
        let cfg = YcsbConfig {
            zipf_theta: 0.9,
            ..YcsbConfig::paper_default(2, 1_000)
        };
        let txns = gen_many(cfg, 500);
        let mut hot = 0usize;
        let mut total = 0usize;
        for t in &txns {
            for o in &t.ops {
                assert!(o.key < 1_000);
                if o.key < 10 {
                    hot += 1;
                }
                total += 1;
            }
        }
        assert!(hot as f64 / total as f64 > 0.2, "zipf not skewed enough");
    }

    #[test]
    fn ycsb_program_runs_against_a_map_context() {
        use std::collections::HashMap;
        struct MapCtx(HashMap<(u32, u64), Value>);
        impl TxnContext for MapCtx {
            fn read(&mut self, p: PartitionId, _t: TableId, k: Key) -> TxnResult<Value> {
                Ok(self
                    .0
                    .get(&(p.0, k))
                    .cloned()
                    .unwrap_or_else(|| Value::zeroed(8)))
            }
            fn write(&mut self, p: PartitionId, _t: TableId, k: Key, v: Value) -> TxnResult<()> {
                self.0.insert((p.0, k), v);
                Ok(())
            }
            fn insert(&mut self, p: PartitionId, t: TableId, k: Key, v: Value) -> TxnResult<()> {
                self.write(p, t, k, v)
            }
            fn delete(&mut self, p: PartitionId, _t: TableId, k: Key) -> TxnResult<()> {
                self.0.remove(&(p.0, k));
                Ok(())
            }
        }
        let w = YcsbWorkload::new(YcsbConfig::small(2));
        let mut rng = FastRng::new(3);
        let prog = w.generate(&mut rng, PartitionId(0));
        let mut ctx = MapCtx(HashMap::new());
        prog.execute(&mut ctx).unwrap();
        assert!(!prog.is_read_only() || ctx.0.is_empty());
    }

    #[test]
    fn read_only_detection() {
        let txn = YcsbTxn {
            home: PartitionId(0),
            ops: vec![YcsbOp {
                partition: PartitionId(0),
                key: 1,
                kind: YcsbOpKind::Read,
            }],
            value_size: 8,
            read_ratio: 1.0,
        };
        assert!(txn.is_read_only());
        assert_eq!(txn.read_fraction_hint(), 1.0);
    }
}
