//! TPC-C (revision 5.11) as used in the paper (§6.1.2): warehouses are
//! horizontally partitioned (16 per partition by default); 10 % of NewOrder
//! order-lines are supplied by a remote warehouse (≈1 % per item, per the
//! spec) and 15 % of Payments pay through a remote warehouse.
//!
//! The implementation covers the full five-transaction mix (NewOrder,
//! Payment, OrderStatus, Delivery, StockLevel) but defaults to the
//! NewOrder + Payment mix the paper (and DBx1000) evaluates. The schema is
//! stored as numeric rows through [`crate::codec`]; the scale (customers per
//! district, items) is configurable so tests and simulations stay tractable —
//! contention behaviour is governed by warehouses/districts, which follow the
//! spec exactly.

use crate::codec::{encode_fields, field, with_field};
use primo_common::{FastRng, Key, PartitionId, TableId, TxnResult};
use primo_runtime::txn::{TxnContext, TxnProgram, Workload};
use primo_storage::PartitionStore;
use std::sync::atomic::{AtomicU64, Ordering};

// Table ids.
pub const WAREHOUSE: TableId = TableId(0);
pub const DISTRICT: TableId = TableId(1);
pub const CUSTOMER: TableId = TableId(2);
pub const HISTORY: TableId = TableId(3);
pub const NEW_ORDER: TableId = TableId(4);
pub const ORDER: TableId = TableId(5);
pub const ORDER_LINE: TableId = TableId(6);
pub const ITEM: TableId = TableId(7);
pub const STOCK: TableId = TableId(8);

// Row field indices (subset of the spec's columns that the transactions
// actually read or update).
pub const W_YTD: usize = 0;
pub const W_TAX: usize = 1;
pub const D_NEXT_O_ID: usize = 0;
pub const D_YTD: usize = 1;
pub const D_TAX: usize = 2;
/// Oldest undelivered order id of the district: the delivery cursor. Orders
/// in `[D_DELIV_O_ID, D_NEXT_O_ID)` still have their NEW-ORDER row.
pub const D_DELIV_O_ID: usize = 3;
pub const C_BALANCE: usize = 0;
pub const C_YTD_PAYMENT: usize = 1;
pub const C_PAYMENT_CNT: usize = 2;
pub const C_DISCOUNT: usize = 3;
pub const C_DELIVERY_CNT: usize = 4;
pub const S_QUANTITY: usize = 0;
pub const S_YTD: usize = 1;
pub const S_ORDER_CNT: usize = 2;
pub const S_REMOTE_CNT: usize = 3;
pub const I_PRICE: usize = 0;
pub const O_CARRIER_ID: usize = 2;

/// TPC-C sizing and mix parameters.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    pub num_partitions: usize,
    /// Warehouses per partition (paper default: 16; Fig 10 sweeps 1–128).
    pub warehouses_per_partition: u64,
    pub districts_per_warehouse: u64,
    /// Customers per district (spec: 3000; scaled down for simulation).
    pub customers_per_district: u64,
    /// Items / stock entries per warehouse (spec: 100 000; scaled down).
    pub items: u64,
    /// Probability that a NewOrder order-line is supplied by a remote
    /// warehouse (spec: 1 %, which yields ≈10 % remote transactions).
    pub remote_item_prob: f64,
    /// Probability that a Payment pays through a remote warehouse (15 %).
    pub remote_payment_prob: f64,
    /// Transaction mix (weights): NewOrder, Payment, OrderStatus, Delivery,
    /// StockLevel.
    pub mix: [u32; 5],
    /// Filler bytes appended to every row (models realistic row widths).
    pub row_filler: usize,
}

impl TpccConfig {
    /// The paper's configuration with a reduced per-warehouse scale so that a
    /// simulated cluster loads in milliseconds rather than minutes.
    pub fn paper_default(num_partitions: usize) -> Self {
        TpccConfig {
            num_partitions,
            warehouses_per_partition: 16,
            districts_per_warehouse: 10,
            customers_per_district: 60,
            items: 1_000,
            remote_item_prob: 0.01,
            remote_payment_prob: 0.15,
            mix: [50, 50, 0, 0, 0],
            row_filler: 64,
        }
    }

    /// Full five-transaction mix (NewOrder 45, Payment 43, OrderStatus 4,
    /// Delivery 4, StockLevel 4).
    pub fn full_mix(num_partitions: usize) -> Self {
        TpccConfig {
            mix: [45, 43, 4, 4, 4],
            ..Self::paper_default(num_partitions)
        }
    }

    /// A tiny configuration for unit tests.
    pub fn small(num_partitions: usize) -> Self {
        TpccConfig {
            warehouses_per_partition: 2,
            customers_per_district: 10,
            items: 100,
            row_filler: 8,
            ..Self::paper_default(num_partitions)
        }
    }

    pub fn total_warehouses(&self) -> u64 {
        self.warehouses_per_partition * self.num_partitions as u64
    }

    pub fn partition_of_warehouse(&self, w: u64) -> PartitionId {
        PartitionId((w / self.warehouses_per_partition) as u32)
    }

    // ---- key encodings ----
    pub fn district_key(&self, w: u64, d: u64) -> Key {
        w * self.districts_per_warehouse + d
    }
    pub fn customer_key(&self, w: u64, d: u64, c: u64) -> Key {
        self.district_key(w, d) * self.customers_per_district + c
    }
    pub fn stock_key(&self, w: u64, i: u64) -> Key {
        w * self.items + i
    }
    pub fn order_key(&self, w: u64, d: u64, o: u64) -> Key {
        self.district_key(w, d) * 10_000_000 + o
    }
    pub fn order_line_key(&self, w: u64, d: u64, o: u64, line: u64) -> Key {
        self.order_key(w, d, o) * 16 + line
    }
}

/// The five TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccTxnKind {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

/// One generated TPC-C transaction (inputs only — all logic runs inside
/// `execute`, branching on what it reads).
#[derive(Debug, Clone)]
pub struct TpccTxn {
    pub cfg: TpccConfig,
    pub kind: TpccTxnKind,
    pub home: PartitionId,
    pub w_id: u64,
    pub d_id: u64,
    pub c_id: u64,
    /// NewOrder: (item id, supply warehouse, quantity).
    pub items: Vec<(u64, u64, u64)>,
    /// Payment amount (cents).
    pub amount: u64,
    /// Payment: the customer's warehouse/district (may be remote).
    pub c_w_id: u64,
    pub c_d_id: u64,
    /// Unique id for history / order rows.
    pub unique: u64,
}

impl TpccTxn {
    fn part(&self, w: u64) -> PartitionId {
        self.cfg.partition_of_warehouse(w)
    }

    fn new_order(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        let cfg = &self.cfg;
        let home = self.part(self.w_id);
        // Warehouse tax (read).
        let wh = ctx.read(home, WAREHOUSE, self.w_id)?;
        let w_tax = field(&wh, W_TAX);
        // District: read next order id, increment it (RMW on a hot record).
        let dk = cfg.district_key(self.w_id, self.d_id);
        let district = ctx.read(home, DISTRICT, dk)?;
        let o_id = field(&district, D_NEXT_O_ID);
        ctx.write(
            home,
            DISTRICT,
            dk,
            with_field(&district, D_NEXT_O_ID, o_id + 1),
        )?;
        // Customer discount (read).
        let ck = cfg.customer_key(self.w_id, self.d_id, self.c_id);
        let customer = ctx.read(home, CUSTOMER, ck)?;
        let c_discount = field(&customer, C_DISCOUNT);
        // Insert ORDER and NEW-ORDER rows.
        let ok = cfg.order_key(self.w_id, self.d_id, o_id);
        ctx.insert(
            home,
            ORDER,
            ok,
            encode_fields(&[self.c_id, self.items.len() as u64, 0], cfg.row_filler),
        )?;
        ctx.insert(home, NEW_ORDER, ok, encode_fields(&[o_id], 8))?;
        // Order lines.
        let mut total: u64 = 0;
        for (line, (i_id, supply_w, qty)) in self.items.iter().enumerate() {
            // Item price (read-only, replicated per partition).
            let item = ctx.read(home, ITEM, *i_id)?;
            let price = field(&item, I_PRICE);
            // Stock at the supplying warehouse (may be remote).
            let sp = self.part(*supply_w);
            let sk = cfg.stock_key(*supply_w, *i_id);
            let stock = ctx.read(sp, STOCK, sk)?;
            let s_qty = field(&stock, S_QUANTITY);
            let new_qty = if s_qty > *qty + 10 {
                s_qty - qty
            } else {
                s_qty + 91 - qty
            };
            let mut updated = with_field(&stock, S_QUANTITY, new_qty);
            updated = with_field(&updated, S_YTD, field(&stock, S_YTD) + qty);
            updated = with_field(&updated, S_ORDER_CNT, field(&stock, S_ORDER_CNT) + 1);
            if *supply_w != self.w_id {
                updated = with_field(&updated, S_REMOTE_CNT, field(&stock, S_REMOTE_CNT) + 1);
            }
            ctx.write(sp, STOCK, sk, updated)?;
            let amount = price * qty;
            total += amount;
            ctx.insert(
                home,
                ORDER_LINE,
                cfg.order_line_key(self.w_id, self.d_id, o_id, line as u64),
                encode_fields(&[*i_id, *supply_w, *qty, amount], cfg.row_filler),
            )?;
        }
        // The total is a function of reads (tax, discount, prices): the
        // write-set contents genuinely depend on query results.
        let _ = total * (100 + w_tax) * (100 - c_discount);
        Ok(())
    }

    fn payment(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        let cfg = &self.cfg;
        let home = self.part(self.w_id);
        // Warehouse YTD (RMW).
        let wh = ctx.read(home, WAREHOUSE, self.w_id)?;
        ctx.write(
            home,
            WAREHOUSE,
            self.w_id,
            with_field(&wh, W_YTD, field(&wh, W_YTD) + self.amount),
        )?;
        // District YTD (RMW).
        let dk = cfg.district_key(self.w_id, self.d_id);
        let district = ctx.read(home, DISTRICT, dk)?;
        ctx.write(
            home,
            DISTRICT,
            dk,
            with_field(&district, D_YTD, field(&district, D_YTD) + self.amount),
        )?;
        // Customer balance (RMW) — possibly at a remote warehouse (15 %).
        let cp = self.part(self.c_w_id);
        let ck = cfg.customer_key(self.c_w_id, self.c_d_id, self.c_id);
        let customer = ctx.read(cp, CUSTOMER, ck)?;
        let mut updated = with_field(
            &customer,
            C_BALANCE,
            field(&customer, C_BALANCE).wrapping_sub(self.amount),
        );
        updated = with_field(
            &updated,
            C_YTD_PAYMENT,
            field(&customer, C_YTD_PAYMENT) + self.amount,
        );
        updated = with_field(&updated, C_PAYMENT_CNT, field(&customer, C_PAYMENT_CNT) + 1);
        ctx.write(cp, CUSTOMER, ck, updated)?;
        // History insert (blind insert, unique key).
        ctx.insert(
            home,
            HISTORY,
            self.unique,
            encode_fields(
                &[self.w_id, self.d_id, self.c_id, self.amount],
                cfg.row_filler,
            ),
        )?;
        Ok(())
    }

    fn order_status(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        let cfg = &self.cfg;
        let home = self.part(self.w_id);
        let ck = cfg.customer_key(self.w_id, self.d_id, self.c_id);
        let _customer = ctx.read(home, CUSTOMER, ck)?;
        // Read the district's latest order id and, if an order exists, its
        // order row (branching on query results).
        let dk = cfg.district_key(self.w_id, self.d_id);
        let district = ctx.read(home, DISTRICT, dk)?;
        let next_o = field(&district, D_NEXT_O_ID);
        if next_o > 1 {
            let ok = cfg.order_key(self.w_id, self.d_id, next_o - 1);
            let _ = ctx.read(home, ORDER, ok);
        }
        Ok(())
    }

    fn delivery(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        let cfg = &self.cfg;
        let home = self.part(self.w_id);
        // Deliver the oldest undelivered order of each district: advance the
        // delivery cursor, stamp the carrier on the ORDER row, bump the
        // customer's delivery count and — the part that needs real `delete`
        // support — remove the NEW-ORDER row instead of faking its removal.
        // A committed NewOrder advances D_NEXT_O_ID atomically with its
        // NEW-ORDER insert, so every order in [oldest, next_o) has its row;
        // a concurrent Delivery racing us on the same district conflicts on
        // the cursor RMW (or, if it already reclaimed the row, surfaces as a
        // NotFound abort — the spec's "skipped delivery").
        for d in 0..cfg.districts_per_warehouse {
            let dk = cfg.district_key(self.w_id, d);
            let district = ctx.read(home, DISTRICT, dk)?;
            let next_o = field(&district, D_NEXT_O_ID);
            let oldest = field(&district, D_DELIV_O_ID);
            if oldest >= next_o {
                continue; // nothing undelivered in this district
            }
            let ok = cfg.order_key(self.w_id, d, oldest);
            ctx.delete(home, NEW_ORDER, ok)?;
            ctx.write(
                home,
                DISTRICT,
                dk,
                with_field(&district, D_DELIV_O_ID, oldest + 1),
            )?;
            let order = ctx.read(home, ORDER, ok)?;
            let c_id = field(&order, 0);
            ctx.write(home, ORDER, ok, with_field(&order, O_CARRIER_ID, 7))?;
            let ck = cfg.customer_key(self.w_id, d, c_id % cfg.customers_per_district);
            let customer = ctx.read(home, CUSTOMER, ck)?;
            ctx.write(
                home,
                CUSTOMER,
                ck,
                with_field(
                    &customer,
                    C_DELIVERY_CNT,
                    field(&customer, C_DELIVERY_CNT) + 1,
                ),
            )?;
        }
        Ok(())
    }

    fn stock_level(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        let cfg = &self.cfg;
        let home = self.part(self.w_id);
        let dk = cfg.district_key(self.w_id, self.d_id);
        let _district = ctx.read(home, DISTRICT, dk)?;
        // Check stock of a handful of recently used items (simplified scan).
        for i in 0..10u64 {
            let item = (self.unique + i) % cfg.items;
            let _ = ctx.read(home, STOCK, cfg.stock_key(self.w_id, item))?;
        }
        Ok(())
    }
}

impl TxnProgram for TpccTxn {
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        match self.kind {
            TpccTxnKind::NewOrder => self.new_order(ctx),
            TpccTxnKind::Payment => self.payment(ctx),
            TpccTxnKind::OrderStatus => self.order_status(ctx),
            TpccTxnKind::Delivery => self.delivery(ctx),
            TpccTxnKind::StockLevel => self.stock_level(ctx),
        }
    }

    fn home_partition(&self) -> PartitionId {
        self.home
    }

    fn read_hint(&self) -> Vec<(PartitionId, TableId, Key)> {
        // Only the key-determined accesses that can leave the home partition
        // are worth hinting: NewOrder's stock rows at the supplying
        // warehouses and Payment's customer row at the paying warehouse.
        // Everything else (district cursors, order rows) is home-resident or
        // depends on values read inside the transaction.
        match self.kind {
            TpccTxnKind::NewOrder => self
                .items
                .iter()
                .map(|(i_id, supply_w, _)| {
                    (
                        self.part(*supply_w),
                        STOCK,
                        self.cfg.stock_key(*supply_w, *i_id),
                    )
                })
                .collect(),
            TpccTxnKind::Payment => vec![(
                self.part(self.c_w_id),
                CUSTOMER,
                self.cfg.customer_key(self.c_w_id, self.c_d_id, self.c_id),
            )],
            _ => Vec::new(),
        }
    }

    fn is_read_only(&self) -> bool {
        matches!(
            self.kind,
            TpccTxnKind::OrderStatus | TpccTxnKind::StockLevel
        )
    }

    fn read_fraction_hint(&self) -> f64 {
        match self.kind {
            TpccTxnKind::NewOrder => 0.4,
            TpccTxnKind::Payment => 0.45,
            TpccTxnKind::OrderStatus | TpccTxnKind::StockLevel => 1.0,
            TpccTxnKind::Delivery => 0.5,
        }
    }

    fn label(&self) -> &'static str {
        match self.kind {
            TpccTxnKind::NewOrder => "new_order",
            TpccTxnKind::Payment => "payment",
            TpccTxnKind::OrderStatus => "order_status",
            TpccTxnKind::Delivery => "delivery",
            TpccTxnKind::StockLevel => "stock_level",
        }
    }
}

/// The TPC-C workload generator / loader.
#[derive(Debug)]
pub struct TpccWorkload {
    cfg: TpccConfig,
    unique: AtomicU64,
}

impl TpccWorkload {
    pub fn new(cfg: TpccConfig) -> Self {
        TpccWorkload {
            cfg,
            unique: AtomicU64::new(1),
        }
    }

    pub fn config(&self) -> &TpccConfig {
        &self.cfg
    }

    fn pick_kind(&self, rng: &mut FastRng) -> TpccTxnKind {
        let total: u32 = self.cfg.mix.iter().sum();
        let mut roll = rng.next_below(total as u64) as u32;
        for (i, w) in self.cfg.mix.iter().enumerate() {
            if roll < *w {
                return match i {
                    0 => TpccTxnKind::NewOrder,
                    1 => TpccTxnKind::Payment,
                    2 => TpccTxnKind::OrderStatus,
                    3 => TpccTxnKind::Delivery,
                    _ => TpccTxnKind::StockLevel,
                };
            }
            roll -= w;
        }
        TpccTxnKind::NewOrder
    }
}

impl Workload for TpccWorkload {
    fn name(&self) -> &'static str {
        "TPC-C"
    }

    fn load_partition(&self, store: &PartitionStore, partition: PartitionId) {
        let cfg = &self.cfg;
        let w_lo = partition.0 as u64 * cfg.warehouses_per_partition;
        let w_hi = w_lo + cfg.warehouses_per_partition;
        // Items are a read-only table replicated on every partition.
        let items = store.table(ITEM);
        for i in 0..cfg.items {
            items.insert(i, encode_fields(&[100 + i % 900], cfg.row_filler));
        }
        for w in w_lo..w_hi {
            store
                .table(WAREHOUSE)
                .insert(w, encode_fields(&[0, 10 + w % 10], cfg.row_filler));
            for d in 0..cfg.districts_per_warehouse {
                // next_o_id = 1, ytd = 0, tax, delivery cursor = 1.
                store.table(DISTRICT).insert(
                    cfg.district_key(w, d),
                    encode_fields(&[1, 0, 10 + d, 1], cfg.row_filler),
                );
                for c in 0..cfg.customers_per_district {
                    store.table(CUSTOMER).insert(
                        cfg.customer_key(w, d, c),
                        encode_fields(&[1_000, 0, 0, c % 50, 0], cfg.row_filler),
                    );
                }
            }
            let stock = store.table(STOCK);
            for i in 0..cfg.items {
                stock.insert(
                    cfg.stock_key(w, i),
                    encode_fields(&[50 + (i % 50), 0, 0, 0], cfg.row_filler),
                );
            }
        }
    }

    fn generate(&self, rng: &mut FastRng, home: PartitionId) -> Box<dyn TxnProgram> {
        Box::new(self.generate_txn(rng, home))
    }
}

impl TpccWorkload {
    /// Generate a concrete [`TpccTxn`] (the [`Workload::generate`] impl boxes
    /// this; tests and benches use it directly to inspect the inputs).
    pub fn generate_txn(&self, rng: &mut FastRng, home: PartitionId) -> TpccTxn {
        let cfg = self.cfg.clone();
        let w_lo = home.0 as u64 * cfg.warehouses_per_partition;
        let w_id = w_lo + rng.next_below(cfg.warehouses_per_partition);
        let d_id = rng.next_below(cfg.districts_per_warehouse);
        let c_id =
            rng.nurand(1023, 0, cfg.customers_per_district - 1, 259) % cfg.customers_per_district;
        let kind = self.pick_kind(rng);
        let unique = self.unique.fetch_add(1, Ordering::Relaxed)
            + (home.0 as u64) * 1_000_000_000
            + rng.next_below(1_000) * 1_000_000_000_000;

        let mut items = Vec::new();
        let mut c_w_id = w_id;
        let mut c_d_id = d_id;
        match kind {
            TpccTxnKind::NewOrder => {
                let ol_cnt = rng.next_range(5, 15);
                for _ in 0..ol_cnt {
                    let i_id = rng.nurand(8191, 0, cfg.items - 1, 7911) % cfg.items;
                    let supply_w = if cfg.total_warehouses() > 1 && rng.flip(cfg.remote_item_prob) {
                        let mut other = rng.next_below(cfg.total_warehouses());
                        while other == w_id {
                            other = rng.next_below(cfg.total_warehouses());
                        }
                        other
                    } else {
                        w_id
                    };
                    items.push((i_id, supply_w, rng.next_range(1, 10)));
                }
            }
            TpccTxnKind::Payment
                if cfg.total_warehouses() > 1 && rng.flip(cfg.remote_payment_prob) =>
            {
                let mut other = rng.next_below(cfg.total_warehouses());
                while other == w_id {
                    other = rng.next_below(cfg.total_warehouses());
                }
                c_w_id = other;
                c_d_id = rng.next_below(cfg.districts_per_warehouse);
            }
            _ => {}
        }

        TpccTxn {
            cfg,
            kind,
            home,
            w_id,
            d_id,
            c_id,
            items,
            amount: rng.next_range(1, 5_000),
            c_w_id,
            c_d_id,
            unique,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_core::PrimoProtocol;
    use primo_runtime::cluster::Cluster;
    use primo_runtime::worker::run_single_txn;

    #[test]
    fn loader_populates_all_tables() {
        let cfg = TpccConfig::small(2);
        let w = TpccWorkload::new(cfg.clone());
        let store = PartitionStore::new(PartitionId(0));
        w.load_partition(&store, PartitionId(0));
        assert_eq!(
            store.table(WAREHOUSE).len() as u64,
            cfg.warehouses_per_partition
        );
        assert_eq!(
            store.table(DISTRICT).len() as u64,
            cfg.warehouses_per_partition * cfg.districts_per_warehouse
        );
        assert_eq!(
            store.table(CUSTOMER).len() as u64,
            cfg.warehouses_per_partition * cfg.districts_per_warehouse * cfg.customers_per_district
        );
        assert_eq!(store.table(ITEM).len() as u64, cfg.items);
        assert_eq!(
            store.table(STOCK).len() as u64,
            cfg.warehouses_per_partition * cfg.items
        );
    }

    #[test]
    fn remote_ratios_follow_the_spec() {
        let cfg = TpccConfig::paper_default(4);
        let w = TpccWorkload::new(cfg.clone());
        let mut rng = FastRng::new(11);
        let mut neworder_remote = 0;
        let mut neworder_total = 0;
        let mut payment_remote = 0;
        let mut payment_total = 0;
        for _ in 0..4_000 {
            let t = w.generate_txn(&mut rng, PartitionId(0));
            match t.kind {
                TpccTxnKind::NewOrder => {
                    neworder_total += 1;
                    if t.items.iter().any(|(_, sw, _)| *sw != t.w_id) {
                        neworder_remote += 1;
                    }
                }
                TpccTxnKind::Payment => {
                    payment_total += 1;
                    if t.c_w_id != t.w_id {
                        payment_remote += 1;
                    }
                }
                _ => {}
            }
        }
        let no_ratio = neworder_remote as f64 / neworder_total as f64;
        let pay_ratio = payment_remote as f64 / payment_total as f64;
        assert!(
            (0.05..0.18).contains(&no_ratio),
            "NewOrder remote {no_ratio}"
        );
        assert!(
            (0.10..0.20).contains(&pay_ratio),
            "Payment remote {pay_ratio}"
        );
    }

    #[test]
    fn new_order_and_payment_run_under_primo() {
        let cfg = TpccConfig::small(2);
        let workload = TpccWorkload::new(cfg.clone());
        let cluster = Cluster::new(ClusterConfig::for_tests(2));
        for p in cluster.partition_ids() {
            workload.load_partition(&cluster.partition(p).store, p);
        }
        let protocol = PrimoProtocol::full();
        let mut rng = FastRng::new(5);
        let mut neworders = 0;
        for _ in 0..40 {
            let prog = workload.generate(&mut rng, PartitionId(0));
            run_single_txn(&cluster, &protocol, prog.as_ref()).unwrap();
            if prog.label() == "new_order" {
                neworders += 1;
            }
        }
        assert!(neworders > 0, "mix should contain NewOrder transactions");
        // The district next-order-id of at least one district advanced.
        let cfg2 = cfg;
        let advanced =
            (0..cfg2.warehouses_per_partition * cfg2.districts_per_warehouse).any(|dk| {
                cluster
                    .partition(PartitionId(0))
                    .store
                    .get(DISTRICT, dk)
                    .map(|r| field(&r.read().value, D_NEXT_O_ID) > 1)
                    .unwrap_or(false)
            });
        assert!(advanced, "NewOrder must advance some district's next_o_id");
        cluster.shutdown();
    }

    #[test]
    fn payment_conserves_money_flow() {
        let cfg = TpccConfig::small(1);
        let workload = TpccWorkload::new(cfg.clone());
        let cluster = Cluster::new(ClusterConfig::for_tests(1));
        for p in cluster.partition_ids() {
            workload.load_partition(&cluster.partition(p).store, p);
        }
        let protocol = PrimoProtocol::full();
        let txn = TpccTxn {
            cfg: cfg.clone(),
            kind: TpccTxnKind::Payment,
            home: PartitionId(0),
            w_id: 0,
            d_id: 0,
            c_id: 1,
            items: vec![],
            amount: 250,
            c_w_id: 0,
            c_d_id: 0,
            unique: 42,
        };
        run_single_txn(&cluster, &protocol, &txn).unwrap();
        let wh = cluster
            .partition(PartitionId(0))
            .store
            .get(WAREHOUSE, 0)
            .unwrap()
            .read()
            .value;
        assert_eq!(field(&wh, W_YTD), 250);
        let cust = cluster
            .partition(PartitionId(0))
            .store
            .get(CUSTOMER, cfg.customer_key(0, 0, 1))
            .unwrap()
            .read()
            .value;
        assert_eq!(field(&cust, C_PAYMENT_CNT), 1);
        assert_eq!(field(&cust, C_BALANCE), 1_000 - 250);
        cluster.shutdown();
    }

    #[test]
    fn delivery_deletes_the_new_order_row() {
        let cfg = TpccConfig::small(1);
        let workload = TpccWorkload::new(cfg.clone());
        let cluster = Cluster::new(ClusterConfig::for_tests(1));
        for p in cluster.partition_ids() {
            workload.load_partition(&cluster.partition(p).store, p);
        }
        let protocol = PrimoProtocol::full();
        let base = TpccTxn {
            cfg: cfg.clone(),
            kind: TpccTxnKind::NewOrder,
            home: PartitionId(0),
            w_id: 0,
            d_id: 0,
            c_id: 1,
            items: vec![(1, 0, 2), (2, 0, 1)],
            amount: 0,
            c_w_id: 0,
            c_d_id: 0,
            unique: 1,
        };
        run_single_txn(&cluster, &protocol, &base).unwrap();
        let store = &cluster.partition(PartitionId(0)).store;
        let ok = cfg.order_key(0, 0, 1);
        assert!(
            store.get(NEW_ORDER, ok).is_some(),
            "NewOrder must insert the NEW-ORDER row"
        );

        let delivery = TpccTxn {
            kind: TpccTxnKind::Delivery,
            ..base.clone()
        };
        run_single_txn(&cluster, &protocol, &delivery).unwrap();
        assert!(
            store.get(NEW_ORDER, ok).is_none(),
            "Delivery must remove the NEW-ORDER row via a real delete"
        );
        // The delivery cursor advanced and the ORDER row carries the carrier.
        let district = store.get(DISTRICT, cfg.district_key(0, 0)).unwrap().read();
        assert_eq!(field(&district.value, D_DELIV_O_ID), 2);
        let order = store.get(ORDER, ok).unwrap().read();
        assert_eq!(field(&order.value, O_CARRIER_ID), 7);
        // Running Delivery again finds nothing undelivered and commits as a
        // no-op for district 0.
        run_single_txn(&cluster, &protocol, &delivery).unwrap();
        assert_eq!(
            field(
                &store
                    .get(DISTRICT, cfg.district_key(0, 0))
                    .unwrap()
                    .read()
                    .value,
                D_DELIV_O_ID
            ),
            2
        );
        cluster.shutdown();
    }

    #[test]
    fn full_mix_generates_all_five_kinds() {
        let w = TpccWorkload::new(TpccConfig::full_mix(2));
        let mut rng = FastRng::new(21);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            seen.insert(w.generate_txn(&mut rng, PartitionId(1)).label());
        }
        for label in [
            "new_order",
            "payment",
            "order_status",
            "delivery",
            "stock_level",
        ] {
            assert!(seen.contains(label), "mix never produced {label}");
        }
    }

    #[test]
    fn key_encodings_do_not_collide_across_districts() {
        let cfg = TpccConfig::paper_default(2);
        let mut keys = std::collections::HashSet::new();
        for w in 0..cfg.total_warehouses() {
            for d in 0..cfg.districts_per_warehouse {
                assert!(keys.insert(cfg.district_key(w, d)));
            }
        }
        let mut ckeys = std::collections::HashSet::new();
        for w in 0..2 {
            for d in 0..cfg.districts_per_warehouse {
                for c in 0..cfg.customers_per_district {
                    assert!(ckeys.insert(cfg.customer_key(w, d, c)));
                }
            }
        }
    }
}
