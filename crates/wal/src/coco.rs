//! COCO-style epoch-based distributed group commit (§2.3).
//!
//! A designated coordinator (partition 0) advances the cluster epoch by
//! epoch. Within an epoch, transactions execute normally and buffer their
//! log records; at the epoch boundary the coordinator synchronously runs a
//! GROUP-PREPARE / GROUP-READY / GROUP-COMMIT exchange with every partition.
//! Execution of the *next* epoch cannot start until the previous epoch has
//! been confirmed — this global synchronization is exactly what limits COCO's
//! scalability and what Primo's watermark scheme removes.
//!
//! The synchronization cost charged per epoch is:
//! `2 × (control-message delay + slowest partition's extra lag) +
//!  log persist delay + per-partition coordinator processing + straggler
//!  stalls`. The probability that at least one partition straggles in a given
//! epoch grows with the partition count, which reproduces COCO's throughput
//! plateau beyond ~12 partitions (Fig 14).

use crate::group_commit::{CommitOutcome, CommitWaiter, GroupCommit, SeqTsSource, TxnTicket};
use crate::log::{LogPayload, ReplayBound};
use crate::replicated::ReplicatedLog;
use crate::snapshot::{Release, SnapshotTracker};
use parking_lot::{Condvar, Mutex};
use primo_common::config::WalConfig;
use primo_common::{FastRng, PartitionId, Ts, TxnId};
use primo_net::DelayedBus;
use primo_trace::{FlightRecorder, TraceEventKind};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-partition processing cost at the coordinator per epoch, microseconds.
const PER_PARTITION_COORD_US: u64 = 30;
/// Probability that a given partition straggles in a given epoch.
const STRAGGLER_PROB: f64 = 0.05;
/// Straggler stall range, microseconds.
const STRAGGLER_MIN_US: u64 = 2_000;
const STRAGGLER_MAX_US: u64 = 10_000;

#[derive(Debug, Default)]
struct EpochState {
    /// Last epoch whose group commit completed successfully.
    committed: u64,
    /// Epochs aborted because of a crash.
    aborted: HashSet<u64>,
    /// Whether new transactions may start (the gate is closed during the
    /// synchronous group-commit exchange).
    gate_open: bool,
    /// Number of transactions still executing, per epoch.
    active: HashMap<u64, u64>,
    /// A crash was observed and the current epoch must be aborted.
    crash_pending: bool,
}

/// Epoch-based group commit (COCO).
pub struct CocoCommit {
    cfg: WalConfig,
    num_partitions: usize,
    #[allow(dead_code)]
    bus: Arc<DelayedBus>,
    /// Current execution epoch.
    epoch: AtomicU64,
    state: Mutex<EpochState>,
    cond: Condvar,
    /// Per-partition replicated durable logs: a committed epoch appends an
    /// [`LogPayload::EpochBoundary`] marker to each of them, which is what
    /// bounds recovery replay (everything before the last quorum-durable
    /// boundary belongs to a committed epoch).
    wals: Vec<Arc<ReplicatedLog>>,
    /// Commit-timestamp sequence for protocols without logical timestamps.
    seq_ts: SeqTsSource,
    /// Cached worst-partition quorum-ack delay (immutable after
    /// construction): the floor of every epoch confirmation.
    ack_delay_us: u64,
    /// Extra one-way control-message delay per partition (Fig 13a lag).
    extra_delay_us: Vec<AtomicU64>,
    stop: Arc<AtomicBool>,
    coordinator: Mutex<Option<JoinHandle<()>>>,
    /// MVCC snapshot-horizon bookkeeping: commits release when their
    /// epoch's group commit seals a boundary.
    tracker: SnapshotTracker,
    /// Cluster flight recorder, injected after construction (the
    /// coordinator thread is already running by then).
    recorder: OnceLock<Arc<FlightRecorder>>,
}

impl std::fmt::Debug for CocoCommit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CocoCommit")
            .field("num_partitions", &self.num_partitions)
            .finish()
    }
}

impl CocoCommit {
    pub fn new(
        num_partitions: usize,
        cfg: WalConfig,
        bus: Arc<DelayedBus>,
        wals: Vec<Arc<ReplicatedLog>>,
    ) -> Arc<Self> {
        assert_eq!(wals.len(), num_partitions);
        let ack_delay_us = crate::max_quorum_ack_delay_us(&wals, cfg.persist_delay_us);
        let gc = Arc::new(CocoCommit {
            cfg,
            num_partitions,
            bus,
            wals,
            seq_ts: SeqTsSource::new(),
            ack_delay_us,
            epoch: AtomicU64::new(1),
            state: Mutex::new(EpochState {
                committed: 0,
                aborted: HashSet::new(),
                gate_open: true,
                active: HashMap::new(),
                crash_pending: false,
            }),
            cond: Condvar::new(),
            extra_delay_us: (0..num_partitions).map(|_| AtomicU64::new(0)).collect(),
            stop: Arc::new(AtomicBool::new(false)),
            coordinator: Mutex::new(None),
            tracker: SnapshotTracker::new(cfg.unsafe_latest_commit_horizon),
            recorder: OnceLock::new(),
        });
        let me = Arc::clone(&gc);
        let handle = std::thread::Builder::new()
            .name("coco-coordinator".into())
            .spawn(move || me.coordinator_loop())
            .expect("spawn coco coordinator");
        *gc.coordinator.lock() = Some(handle);
        gc
    }

    /// Simulate a lagging partition's epoch messages (Fig 13a).
    pub fn set_extra_delay_us(&self, p: PartitionId, us: u64) {
        self.extra_delay_us[p.idx()].store(us, Ordering::Relaxed);
    }

    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    pub fn committed_epoch(&self) -> u64 {
        self.state.lock().committed
    }

    fn coordinator_loop(self: &Arc<Self>) {
        let mut rng = FastRng::new(0xC0C0);
        let epoch_us = self.cfg.interval_ms * 1000;
        while !self.stop.load(Ordering::Relaxed) {
            // 1. Epoch execution window.
            let window = Duration::from_micros(epoch_us);
            let start = std::time::Instant::now();
            while start.elapsed() < window && !self.stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_micros(500.min(epoch_us)));
            }
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            let epoch = self.epoch.load(Ordering::Acquire);

            // 2. Close the gate: no new transactions while the epoch commits.
            {
                let mut st = self.state.lock();
                st.gate_open = false;
            }

            // 3. Wait for in-flight transactions of this epoch to drain.
            {
                let mut st = self.state.lock();
                let deadline = std::time::Instant::now() + Duration::from_millis(200);
                while st.active.get(&epoch).copied().unwrap_or(0) > 0
                    && std::time::Instant::now() < deadline
                {
                    self.cond.wait_for(&mut st, Duration::from_millis(1));
                }
            }

            // 4. Synchronous GROUP-PREPARE / GROUP-READY / GROUP-COMMIT.
            let max_extra = self
                .extra_delay_us
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0);
            // The epoch's log batch must be *quorum*-durable before the
            // coordinator can confirm it: under replication the slowest
            // quorum replica, not the local disk, sets the floor. (The
            // append pipeline keeps this floor exact — staged entries reach
            // the followers stamped with their original append instant, so
            // the ack delay measures replication, never pump scheduling.)
            let mut sync_us = 2 * max_extra
                + self.ack_delay_us
                + PER_PARTITION_COORD_US * self.num_partitions as u64;
            // Straggler model: each partition independently straggles with a
            // small probability; the coordinator waits for the slowest one.
            let mut straggle = 0;
            for _ in 0..self.num_partitions {
                if rng.flip(STRAGGLER_PROB) {
                    straggle = straggle.max(rng.next_range(STRAGGLER_MIN_US, STRAGGLER_MAX_US));
                }
            }
            sync_us += straggle;
            std::thread::sleep(Duration::from_micros(sync_us));

            // 5. Commit (or abort) the epoch and reopen the gate.
            {
                let mut st = self.state.lock();
                if st.crash_pending {
                    st.aborted.insert(epoch);
                    st.crash_pending = false;
                    self.tracker.doom_epoch(epoch);
                } else {
                    st.committed = epoch;
                    // The epoch's commits are quorum-durable and sealed:
                    // the snapshot horizon may advance over them.
                    self.tracker.release_epochs_through(epoch);
                    // Seal the epoch in every partition's log: all TxnWrites
                    // entries appended before this marker belong to committed
                    // epochs, which is exactly the replay bound recovery
                    // uses. (Workers append their write-set before reporting
                    // `txn_committed`, and the drain in step 3 waited for
                    // them, so the ordering holds.)
                    for wal in &self.wals {
                        wal.append(LogPayload::EpochBoundary { epoch });
                    }
                    if let Some(rec) = self.recorder.get() {
                        rec.emit(None, None, TraceEventKind::EpochSealed { epoch });
                    }
                }
                st.active.remove(&epoch);
                st.gate_open = true;
                self.epoch.store(epoch + 1, Ordering::Release);
                self.cond.notify_all();
            }
        }
        // Unblock anyone still waiting.
        let mut st = self.state.lock();
        st.gate_open = true;
        st.committed = self.epoch.load(Ordering::Acquire);
        self.cond.notify_all();
    }
}

impl GroupCommit for CocoCommit {
    fn begin_txn(&self, coord: PartitionId, txn: TxnId) -> Arc<TxnTicket> {
        let mut st = self.state.lock();
        let epoch = self.epoch.load(Ordering::Acquire);
        *st.active.entry(epoch).or_insert(0) += 1;
        drop(st);
        self.tracker.begin(txn);
        TxnTicket::new(txn, coord, epoch)
    }

    fn add_participant(&self, ticket: &TxnTicket, p: PartitionId, _lts: Ts) {
        let mut st = ticket.state.lock();
        if !st.participants.contains(&p) {
            st.participants.push(p);
        }
    }

    fn txn_aborted(&self, ticket: &TxnTicket) {
        let mut st = self.state.lock();
        if let Some(c) = st.active.get_mut(&ticket.epoch) {
            *c = c.saturating_sub(1);
        }
        self.cond.notify_all();
        drop(st);
        self.tracker.abort(ticket.txn);
    }

    fn txn_committed(&self, ticket: &TxnTicket, ts: Ts, _ops: usize) -> CommitWaiter {
        let mut st = self.state.lock();
        if let Some(c) = st.active.get_mut(&ticket.epoch) {
            *c = c.saturating_sub(1);
        }
        self.cond.notify_all();
        // A commit into an already-aborted epoch is doomed: it must never
        // enter the snapshot horizon.
        let doomed = st.aborted.contains(&ticket.epoch);
        drop(st);
        self.tracker
            .commit(ticket.txn, ts, Release::Epoch(ticket.epoch), doomed);
        CommitWaiter {
            txn: ticket.txn,
            coordinator: ticket.coordinator,
            ts,
            epoch: ticket.epoch,
            ready_at_us: None,
        }
    }

    fn try_outcome(&self, waiter: &CommitWaiter) -> Option<CommitOutcome> {
        let st = self.state.lock();
        if st.aborted.contains(&waiter.epoch) {
            return Some(CommitOutcome::CrashAborted);
        }
        if st.committed >= waiter.epoch {
            return Some(CommitOutcome::Committed);
        }
        None
    }

    fn wait_durable(&self, waiter: &CommitWaiter) -> CommitOutcome {
        let mut st = self.state.lock();
        loop {
            if st.aborted.contains(&waiter.epoch) {
                return CommitOutcome::CrashAborted;
            }
            if st.committed >= waiter.epoch {
                return CommitOutcome::Committed;
            }
            self.cond.wait_for(&mut st, Duration::from_millis(5));
            if self.stop.load(Ordering::Relaxed) {
                return CommitOutcome::Committed;
            }
        }
    }

    fn execution_gate(&self, _partition: PartitionId) {
        let mut st = self.state.lock();
        while !st.gate_open && !self.stop.load(Ordering::Relaxed) {
            self.cond.wait_for(&mut st, Duration::from_millis(1));
        }
    }

    fn ts_floor(&self, _partition: PartitionId) -> Ts {
        self.tracker.ts_floor()
    }

    fn finalize_commit_ts(&self, _ticket: &TxnTicket, hint: Ts) -> Ts {
        let ts = self.seq_ts.finalize_above(hint, self.tracker.ts_floor());
        self.tracker.note_finalized(ts);
        ts
    }

    fn snapshot_horizon(&self, _partition: PartitionId) -> Ts {
        // Commits release only when their epoch's boundary seals, so this is
        // exactly "everything up to the last sealed epoch" (minus anything a
        // crash doomed and compensation has not yet purged).
        self.tracker.horizon(0)
    }

    fn on_compensation_complete(&self) {
        self.tracker.compensation_complete();
    }

    fn on_partition_crash(&self, p: PartitionId) -> Ts {
        // The whole current epoch is aborted (§2.3): every transaction in it
        // is rolled back and the cluster moves on once the partition is
        // replaced / recovers.
        let mut st = self.state.lock();
        st.crash_pending = true;
        let epoch = self.epoch.load(Ordering::Acquire);
        st.aborted.insert(epoch);
        self.tracker.doom_epoch(epoch);
        self.tracker.drop_actives_of(p);
        // Close the gate and drain the aborted epoch's in-flight
        // transactions (bounded, like the coordinator's boundary drain): by
        // the time this returns, every write-set the epoch will ever log is
        // in the survivors' logs, so the compensation pass that follows the
        // agreement sees the complete rolled-back set. The coordinator
        // reopens the gate at the next boundary.
        st.gate_open = false;
        self.cond.notify_all();
        let deadline = std::time::Instant::now() + Duration::from_millis(200);
        while st.active.get(&epoch).copied().unwrap_or(0) > 0
            && std::time::Instant::now() < deadline
        {
            self.cond.wait_for(&mut st, Duration::from_millis(1));
        }
        epoch
    }

    fn replay_bound(
        &self,
        crash_token: Ts,
        log: &ReplicatedLog,
        cutoff_lsn: Option<u64>,
    ) -> ReplayBound {
        // `crash_token` is the aborted epoch: replay exactly the entries
        // sealed by a quorum-durable boundary of an *earlier* (committed)
        // epoch. The boundary is looked up at the crash-time quorum cutoff
        // so a quorum broken mid-recovery cannot erase it.
        let bound = crash_token.saturating_sub(1);
        ReplayBound::Lsn(
            log.latest_durable_epoch_boundary(bound, cutoff_lsn)
                .unwrap_or(0),
        )
    }

    fn survivor_rollback_bound(&self, crash_token: Ts, wal: &ReplicatedLog) -> ReplayBound {
        // `crash_token` is the aborted epoch. On a surviving partition
        // nothing was lost, so the boundary sealed by the last *committed*
        // epoch (durable or not) splits the log exactly: everything after it
        // belongs to the aborted epoch and is rolled back.
        let bound = crash_token.saturating_sub(1);
        ReplayBound::Lsn(wal.latest_epoch_boundary(bound).map_or(0, |l| l + 1))
    }

    fn checkpoint_bound(&self, _p: PartitionId, log: &ReplicatedLog) -> ReplayBound {
        let committed = self.committed_epoch();
        ReplayBound::Lsn(
            log.latest_durable_epoch_boundary(committed, None)
                .unwrap_or(0),
        )
    }

    fn set_recorder(&self, recorder: Arc<FlightRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    fn label(&self) -> &'static str {
        "COCO"
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.cond.notify_all();
        if let Some(h) = self.coordinator.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for CocoCommit {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.coordinator.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::LoggingScheme;

    fn make(interval_ms: u64) -> Arc<CocoCommit> {
        let bus = DelayedBus::new(2, 0);
        let cfg = WalConfig {
            scheme: LoggingScheme::CocoEpoch,
            interval_ms,
            persist_delay_us: 100,
            force_update: false,
            ..WalConfig::default()
        };
        CocoCommit::new(2, cfg, bus, crate::build_logs(2, cfg))
    }

    fn tid(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    #[test]
    fn epoch_advances_and_commits() {
        let gc = make(2);
        let ticket = gc.begin_txn(PartitionId(0), tid(1));
        let waiter = gc.txn_committed(&ticket, 1, 1);
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::Committed);
        assert!(gc.committed_epoch() >= waiter.epoch);
        gc.shutdown();
    }

    #[test]
    fn crash_aborts_current_epoch() {
        let gc = make(50);
        let ticket = gc.begin_txn(PartitionId(0), tid(2));
        let epoch = ticket.epoch;
        gc.on_partition_crash(PartitionId(1));
        let waiter = gc.txn_committed(&ticket, 1, 1);
        assert_eq!(waiter.epoch, epoch);
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::CrashAborted);
        gc.shutdown();
    }

    #[test]
    fn committed_epochs_seal_a_boundary_in_every_log() {
        let bus = DelayedBus::new(2, 0);
        let cfg = WalConfig {
            scheme: LoggingScheme::CocoEpoch,
            interval_ms: 2,
            persist_delay_us: 0,
            force_update: false,
            ..WalConfig::default()
        };
        let wals = crate::build_logs(2, cfg);
        let gc = CocoCommit::new(2, cfg, bus, wals.clone());
        let ticket = gc.begin_txn(PartitionId(0), tid(1));
        let waiter = gc.txn_committed(&ticket, 1, 1);
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::Committed);
        std::thread::sleep(Duration::from_millis(5));
        let committed = gc.committed_epoch();
        for wal in &wals {
            let lsn = wal
                .latest_durable_epoch_boundary(committed, None)
                .expect("boundary sealed");
            // The replay bound for a crash in the next epoch covers the
            // sealed prefix.
            match gc.replay_bound(committed + 1, wal, None) {
                crate::ReplayBound::Lsn(l) => assert!(l >= lsn),
                other => panic!("unexpected bound {other:?}"),
            }
        }
        gc.shutdown();
    }

    #[test]
    fn snapshot_horizon_follows_sealed_epochs() {
        let gc = make(2);
        let p = PartitionId(0);
        let ticket = gc.begin_txn(p, tid(5));
        let ts = gc.finalize_commit_ts(&ticket, 0);
        let waiter = gc.txn_committed(&ticket, ts, 1);
        assert!(
            gc.snapshot_horizon(p) < ts,
            "commit of an unsealed epoch must stay above the horizon"
        );
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::Committed);
        // The epoch boundary sealed: the horizon covers the commit.
        assert!(gc.snapshot_horizon(p) >= ts);
        gc.shutdown();
    }

    #[test]
    fn gate_reopens_after_epoch_boundary() {
        let gc = make(2);
        // The gate may close briefly at the boundary but must always reopen.
        for _ in 0..5 {
            gc.execution_gate(PartitionId(0));
            std::thread::sleep(Duration::from_millis(2));
        }
        gc.shutdown();
    }

    #[test]
    fn active_txn_is_waited_for_before_commit() {
        let gc = make(2);
        let ticket = gc.begin_txn(PartitionId(0), tid(3));
        std::thread::sleep(Duration::from_millis(10));
        // Even though epochs ticked, our epoch cannot have committed yet
        // because the transaction is still active (the coordinator waits, up
        // to a timeout).
        let committed_before = gc.committed_epoch();
        assert!(committed_before < ticket.epoch || committed_before == 0);
        let waiter = gc.txn_committed(&ticket, 1, 1);
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::Committed);
        gc.shutdown();
    }
}
