//! The [`GroupCommit`] trait: how protocols hand transactions over to the
//! durability layer, and how they learn the final (durable) outcome.
//!
//! The life-cycle, shared by every scheme:
//!
//! 1. [`GroupCommit::begin_txn`] — the worker registers a new transaction on
//!    its coordinator partition (needed for watermark generation rule R1).
//! 2. [`GroupCommit::add_participant`] — every remote partition the
//!    transaction touches is registered too.
//! 3. [`GroupCommit::update_ts`] — as soon as a logical timestamp (or a lower
//!    bound) is known it is reported, so partition watermarks never overtake
//!    active transactions.
//! 4. [`GroupCommit::txn_committed`] / [`GroupCommit::txn_aborted`] — the
//!    protocol finished installing the write-set (or gave up).
//! 5. [`GroupCommit::wait_durable`] — the worker blocks until the group commit
//!    confirms (or crash-aborts) the transaction. This is the `return` phase
//!    of the latency breakdown (Fig 4c).

use crate::log::ReplayBound;
use crate::replicated::ReplicatedLog;
use parking_lot::Mutex;
use primo_common::{PartitionId, Ts, TxnId};
use primo_trace::FlightRecorder;
use std::sync::Arc;

/// Final, durable outcome of a transaction that finished its commit phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The transaction is durable on every involved partition; its result may
    /// be returned to the client.
    Committed,
    /// A crash forced the transaction (or its whole epoch) to be rolled back
    /// before it became durable.
    CrashAborted,
}

/// Per-transaction registration handle.
///
/// Shared (via `Arc`) between the protocol and the group-commit scheme so the
/// scheme can observe timestamp updates and participants without extra maps.
#[derive(Debug)]
pub struct TxnTicket {
    pub txn: TxnId,
    pub coordinator: PartitionId,
    /// Epoch assigned at begin (COCO); 0 for schemes without epochs.
    pub epoch: u64,
    pub(crate) state: Mutex<TicketState>,
}

#[derive(Debug, Default)]
pub(crate) struct TicketState {
    /// Latest known logical timestamp or lower bound (`lts`).
    pub ts: Ts,
    /// Remote partitions involved so far.
    pub participants: Vec<PartitionId>,
}

impl TxnTicket {
    pub fn new(txn: TxnId, coordinator: PartitionId, epoch: u64) -> Arc<Self> {
        Arc::new(TxnTicket {
            txn,
            coordinator,
            epoch,
            state: Mutex::new(TicketState::default()),
        })
    }

    pub fn current_ts(&self) -> Ts {
        self.state.lock().ts
    }

    pub fn participants(&self) -> Vec<PartitionId> {
        self.state.lock().participants.clone()
    }

    /// All partitions involved (coordinator + participants).
    pub fn involved(&self) -> Vec<PartitionId> {
        let mut v = self.participants();
        if !v.contains(&self.coordinator) {
            v.push(self.coordinator);
        }
        v
    }
}

/// Monotonic commit-timestamp source shared by the schemes whose
/// [`GroupCommit::finalize_commit_ts`] has no watermark floor to respect
/// (COCO, CLV, sync): protocol-provided timestamps pass through, everything
/// else draws from one global sequence.
#[derive(Debug)]
pub(crate) struct SeqTsSource(std::sync::atomic::AtomicU64);

impl SeqTsSource {
    pub(crate) fn new() -> Self {
        SeqTsSource(std::sync::atomic::AtomicU64::new(1))
    }

    /// Finalize a commit timestamp with a floor: protocol-provided `hint`s
    /// pass through, everything else draws from the sequence but always
    /// exceeds `floor`. The floor matters once a snapshot horizon exists — a
    /// protocol timestamp (`hint`) from a different logical domain may have
    /// ratcheted the horizon above the plain sequence, and a later
    /// sequence-drawn commit must not land at or below the published horizon.
    pub(crate) fn finalize_above(&self, hint: Ts, floor: Ts) -> Ts {
        if hint > 0 {
            return hint;
        }
        use std::sync::atomic::Ordering;
        loop {
            let cur = self.0.load(Ordering::Relaxed);
            let next = cur.max(floor + 1);
            if self
                .0
                .compare_exchange_weak(cur, next + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return next;
            }
        }
    }
}

/// Handle the worker blocks on during the `return` phase.
#[derive(Debug)]
pub struct CommitWaiter {
    pub txn: TxnId,
    pub coordinator: PartitionId,
    pub ts: Ts,
    pub epoch: u64,
    /// Set for schemes that resolve the outcome immediately (e.g. CLV / sync
    /// compute a deadline instead of waiting on a watermark).
    pub ready_at_us: Option<u64>,
}

/// A distributed group-commit / durability scheme.
pub trait GroupCommit: Send + Sync {
    /// Register a new transaction starting on `coord`.
    fn begin_txn(&self, coord: PartitionId, txn: TxnId) -> Arc<TxnTicket>;

    /// Report the transaction's logical timestamp (or a lower bound `lts`).
    fn update_ts(&self, ticket: &TxnTicket, ts: Ts) {
        let mut st = ticket.state.lock();
        st.ts = st.ts.max(ts);
    }

    /// Register a remote participant; `lts` is the lower bound of the
    /// transaction's final timestamp as known by that participant (the `wts`
    /// of its first accessed record there, §5.1 R1).
    fn add_participant(&self, ticket: &TxnTicket, p: PartitionId, lts: Ts);

    /// The transaction aborted during execution; deregister it everywhere.
    fn txn_aborted(&self, ticket: &TxnTicket);

    /// The transaction finished installing its write-set with final timestamp
    /// `ts`; `ops` is the number of records it touched (used by CLV to model
    /// dependency-tracking cost). Returns the waiter for the `return` phase.
    fn txn_committed(&self, ticket: &TxnTicket, ts: Ts, ops: usize) -> CommitWaiter;

    /// Block until the outcome of the transaction is known.
    fn wait_durable(&self, waiter: &CommitWaiter) -> CommitOutcome;

    /// Non-blocking probe of the outcome. Workers use this to keep executing
    /// new transactions while earlier ones wait for the group commit (the
    /// paper's workers likewise never idle on durability; only the *client*
    /// response is delayed).
    fn try_outcome(&self, waiter: &CommitWaiter) -> Option<CommitOutcome>;

    /// The current timestamp floor new transactions must exceed on this
    /// partition (watermark rule R2). Zero for schemes without watermarks.
    fn ts_floor(&self, _partition: PartitionId) -> Ts {
        0
    }

    /// Atomically apply the coordinator's timestamp floor to a
    /// protocol-proposed commit timestamp, entering the commit critical
    /// section: from this call until [`GroupCommit::txn_committed`] /
    /// [`GroupCommit::txn_aborted`], the scheme must not let its durability
    /// horizon overtake the returned timestamp. The watermark scheme pins
    /// `Wp` by registering the transaction in the coordinator's active table
    /// under the same lock its generator uses — without the pin, a watermark
    /// generated between timestamp assignment and the log append could
    /// publish (and expose to snapshot readers) a commit whose log entry is
    /// not durable yet. Schemes without such a horizon just apply the floor.
    fn reserve_commit_ts(&self, ticket: &TxnTicket, proposed: Ts) -> Ts {
        proposed.max(self.ts_floor(ticket.coordinator) + 1)
    }

    /// The MVCC snapshot horizon for read-only transactions coordinated on
    /// `partition`: a commit timestamp `h` such that (1) every version with
    /// `cts <= h` is durable and will never be crash-rolled-back, and (2) no
    /// in-flight or future transaction can still install a version with
    /// `cts <= h`. Reading "as of `h`" therefore needs no locks, no
    /// validation and can never abort. Zero (nothing readable yet) by
    /// default — schemes opt in.
    fn snapshot_horizon(&self, _partition: PartitionId) -> Ts {
        0
    }

    /// Crash compensation finished undoing every rolled-back write on the
    /// surviving partitions: version chains no longer contain any version a
    /// pending rollback could still purge, so the scheme may release the
    /// snapshot-horizon cap it raised at [`GroupCommit::on_partition_crash`]
    /// time. Until this is called the horizon stays conservatively capped
    /// below the crash agreement point.
    fn on_compensation_complete(&self) {}

    /// Block while the scheme forbids starting new transactions (COCO closes
    /// this gate while it synchronously commits an epoch). Other schemes
    /// never block.
    fn execution_gate(&self, _partition: PartitionId) {}

    /// Assign the final commit timestamp of a transaction that is about to
    /// log + install its write-set. Protocols with logical timestamps pass
    /// them through (`hint > 0`); protocols without (plain 2PL, Silo, Aria)
    /// receive a monotonic sequence respecting the coordinator's watermark
    /// floor. Must be called **while the write locks are held** so that the
    /// per-key order of logged timestamps matches install order — recovery
    /// replays in commit-timestamp order and relies on this.
    fn finalize_commit_ts(&self, _ticket: &TxnTicket, hint: Ts) -> Ts {
        hint.max(1)
    }

    /// A partition crashed. The scheme agrees on a rollback point, resolves
    /// the affected pending waiters as [`CommitOutcome::CrashAborted`] and
    /// returns the agreed watermark / epoch for reporting.
    fn on_partition_crash(&self, p: PartitionId) -> Ts;

    /// Translate the token returned by [`GroupCommit::on_partition_crash`]
    /// into the bound recovery must respect when replaying `log`: the
    /// recovered watermark (Watermark), the last quorum-durable committed
    /// epoch boundary (COCO), or everything quorum-durable at crash time
    /// (CLV / sync, where the quorum-LSN cutoff captured at the crash
    /// instant is the only limit). `cutoff_lsn` is that crash-time quorum
    /// LSN — schemes whose bound reads durable log state must evaluate it
    /// at the cutoff, not against the live quorum, which may be broken by
    /// the time recovery (or a restarted recovery pass) runs.
    fn replay_bound(
        &self,
        _crash_token: Ts,
        _log: &ReplicatedLog,
        _cutoff_lsn: Option<u64>,
    ) -> ReplayBound {
        ReplayBound::Lsn(u64::MAX)
    }

    /// The bound separating still-committed from crash-rolled-back
    /// transactions on a *surviving* partition's log, for the crash that
    /// returned `crash_token` from [`GroupCommit::on_partition_crash`]:
    /// every `TxnWrites` entry the bound does **not** cover was (or will be)
    /// reported [`CommitOutcome::CrashAborted`], so its installed writes
    /// must be compensated with their before-images. The default covers
    /// everything — correct for schemes that never crash-abort a
    /// transaction whose commit call returned (synchronous flush).
    fn survivor_rollback_bound(&self, _crash_token: Ts, _log: &ReplicatedLog) -> ReplayBound {
        ReplayBound::Lsn(u64::MAX)
    }

    /// Crash compensation sealed these transactions with `TxnRolledBack`
    /// markers and is about to undo their installed writes on surviving
    /// partitions. Schemes whose per-waiter verdict could still report one
    /// of them `Committed` (a transaction that finalized a rolled-back
    /// timestamp but registered its waiter only after the crash agreement)
    /// must remember the set and report such waiters `CrashAborted`, so the
    /// verdict a client sees always matches what happened to the store.
    /// Called *before* the first before-image is restored.
    fn on_txns_rolled_back(&self, _txns: &[TxnId]) {}

    /// A bound below which every logged transaction on `p` is committed and
    /// durable *right now* — what the checkpoint writer may safely fold into
    /// an image. Default: the quorum-durable prefix of the replicated log.
    fn checkpoint_bound(&self, _p: PartitionId, log: &ReplicatedLog) -> ReplayBound {
        ReplayBound::Lsn(log.durable_lsn().map_or(0, |l| l + 1))
    }

    /// A crashed partition finished rebuilding its store from checkpoint +
    /// log replay: re-seed whatever per-partition state the scheme keeps
    /// (the watermark scheme re-seeds `Wp` from the recovered value) before
    /// the partition becomes reachable again.
    fn on_partition_recover(&self, _p: PartitionId, _recovered_wp: Ts) {}

    /// Attach the cluster flight recorder so the scheme's background agents
    /// (watermark generators, the COCO coordinator, CLV's dependency cutter)
    /// can trace their horizon decisions. Called once by the cluster right
    /// after construction, before any transaction traffic; schemes without
    /// background decisions may ignore it.
    fn set_recorder(&self, _recorder: Arc<FlightRecorder>) {}

    /// Scheme label (for figures).
    fn label(&self) -> &'static str;

    /// Stop background threads.
    fn shutdown(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_tracks_participants_and_ts() {
        let t = TxnTicket::new(TxnId::new(PartitionId(0), 1), PartitionId(0), 0);
        assert_eq!(t.current_ts(), 0);
        {
            let mut st = t.state.lock();
            st.ts = 42;
            st.participants.push(PartitionId(2));
        }
        assert_eq!(t.current_ts(), 42);
        assert_eq!(t.participants(), vec![PartitionId(2)]);
        let mut inv = t.involved();
        inv.sort();
        assert_eq!(inv, vec![PartitionId(0), PartitionId(2)]);
    }
}
