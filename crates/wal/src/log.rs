//! Per-partition write-ahead log with simulated asynchronous persistence.
//!
//! The paper's partitions replicate their log through Raft and persist it to
//! local SSD; here a record appended at time `t` becomes durable at
//! `t + persist_delay`. The log is the partition's durability story end to
//! end: protocols append committed write-sets ([`LogPayload::TxnWrites`]),
//! the group-commit schemes append their control records
//! ([`LogPayload::Watermark`] / [`LogPayload::EpochBoundary`]), the
//! checkpoint writer folds the durable prefix into
//! [`LogPayload::Checkpoint`] images so the log stops growing without bound,
//! and the recovery manager rebuilds a crashed partition's store from
//! `latest durable checkpoint + bounded replay` (see `primo-recovery`).

use parking_lot::Mutex;
use primo_common::sim_time::now_us;
use primo_common::{Key, PartitionId, TableId, Ts, TxnId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One operation inside a logged write-set.
#[derive(Debug, Clone)]
pub enum LoggedOp {
    /// Install this value (covers both updates and inserts — replay is
    /// create-if-absent either way, because the checkpoint image may or may
    /// not already contain the key).
    Put(Value),
    /// Remove the key.
    Delete,
}

/// One write of a committed transaction on one partition.
#[derive(Debug, Clone)]
pub struct LoggedWrite {
    pub table: TableId,
    pub key: Key,
    pub op: LoggedOp,
    /// Before-image: the committed value of the key right before this write
    /// installed, captured while the write locks were still held. `None`
    /// means the key had no committed value (the write is an insert into an
    /// absent or tombstoned slot). This is what cross-partition crash
    /// compensation restores when the group commit rolls the transaction
    /// back on a *surviving* partition (the crashed partition is instead
    /// rebuilt by bounded replay, which simply skips the transaction).
    pub prev: Option<Value>,
}

impl LoggedWrite {
    /// A put with no before-image (fresh key). Use
    /// [`LoggedWrite::with_prev`] to attach one.
    pub fn put(table: TableId, key: Key, value: Value) -> Self {
        LoggedWrite {
            table,
            key,
            op: LoggedOp::Put(value),
            prev: None,
        }
    }

    /// A delete with no before-image recorded.
    pub fn delete(table: TableId, key: Key) -> Self {
        LoggedWrite {
            table,
            key,
            op: LoggedOp::Delete,
            prev: None,
        }
    }

    /// Attach the committed before-image.
    pub fn with_prev(mut self, prev: Option<Value>) -> Self {
        self.prev = prev;
        self
    }
}

/// A materialised checkpoint: the state of one partition at `up_to_ts`,
/// equivalent to replaying every durable committed transaction below the
/// checkpoint bound into an empty store.
///
/// Images are built *from the log*, never from the live store (except the
/// quiescent base checkpoint taken right after loading): each image is the
/// previous image plus the covered durable log prefix, so it is consistent
/// by construction even while transactions keep installing concurrently.
#[derive(Debug, Clone, Default)]
pub struct CheckpointImage {
    /// Every logged transaction with a commit timestamp `<= up_to_ts` that
    /// was folded is reflected in `records`.
    pub up_to_ts: Ts,
    /// First LSN **not** folded into this image: recovery replays the
    /// retained log from here.
    pub base_lsn: u64,
    /// Committed records: `(table, key) -> (value, commit ts)`.
    pub records: BTreeMap<(TableId, Key), (Value, Ts)>,
}

impl CheckpointImage {
    /// Apply one committed transaction's writes at `ts` (delete removes the
    /// key). Applying the same transaction twice is idempotent.
    pub fn apply(&mut self, ts: Ts, writes: &[LoggedWrite]) {
        for w in writes {
            match &w.op {
                LoggedOp::Put(v) => {
                    self.records.insert((w.table, w.key), (v.clone(), ts));
                }
                LoggedOp::Delete => {
                    self.records.remove(&(w.table, w.key));
                }
            }
        }
        if ts > self.up_to_ts {
            self.up_to_ts = ts;
        }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// What a log entry describes.
#[derive(Debug, Clone)]
pub enum LogPayload {
    /// A committed transaction's write-set on this partition, appended while
    /// the write locks are still held so per-key log order equals install
    /// order.
    TxnWrites {
        txn: TxnId,
        ts: Ts,
        writes: Vec<LoggedWrite>,
    },
    /// A persisted partition watermark (§5.1: `Wp` is logged before being
    /// broadcast so the new leader can recover it).
    Watermark { wp: Ts },
    /// A committed epoch boundary (COCO): every `TxnWrites` entry before this
    /// marker belongs to a committed epoch.
    EpochBoundary { epoch: u64 },
    /// A periodic checkpoint with its attached image; recovery restores the
    /// newest durable image and replays from `image.base_lsn`.
    Checkpoint { image: Arc<CheckpointImage> },
    /// The cluster rolled `txn` back after a crash (the group commit reported
    /// it `CrashAborted`) and its installed writes on this partition were
    /// compensated with their before-images. Replay, checkpoint folding and
    /// log repair all skip the transaction's `TxnWrites` entries from then
    /// on, so a *later* crash of this partition cannot resurrect it. The
    /// marker always has a higher LSN than the entries it cancels, so
    /// checkpoint truncation can never drop the marker while the entries
    /// remain.
    TxnRolledBack { txn: TxnId },
    /// Paxos Commit: a prepare vote for `txn`, logged quorum-durably so the
    /// commit decision no longer depends on the coordinating worker staying
    /// alive — any replica holding a durable vote set can assemble (or, in
    /// doubt, terminate) the global verdict. `coordinator` is the home
    /// partition that ran the prepare round.
    CommitVote {
        txn: TxnId,
        coordinator: PartitionId,
        commit: bool,
    },
    /// Paxos Commit: the global verdict for `txn`. Written by the
    /// coordinator on the normal path, or by whoever resolved the
    /// transaction after the coordinator died in the in-doubt window
    /// (crash-time resolution always decides abort, the presumed-abort
    /// rule).
    CommitDecision { txn: TxnId, commit: bool },
}

/// One record in the log. The payload sits behind an `Arc` so the
/// replicated fan-out shares one allocation across every replica's entry
/// (only the per-replica metadata — LSN, append time, term — is owned).
#[derive(Debug, Clone)]
pub struct LogEntry {
    pub lsn: u64,
    pub appended_at_us: u64,
    /// Leadership term of the replicated log at append time (0 for a
    /// standalone single-copy log). Every crash bumps the term and moves
    /// leadership to the deterministic successor replica, so entries carry
    /// which leader produced them — the replicated-log equivalent of a Raft
    /// term on each record.
    pub term: u64,
    pub payload: Arc<LogPayload>,
}

#[derive(Debug, Default)]
struct WalInner {
    entries: Vec<LogEntry>,
    /// Replication segments received ([`PartitionWal::receive_segment`]) but
    /// not yet folded into `entries`. Delivery is O(1) per segment — the
    /// `Arc` is shared by every replica of the partition — and the copy into
    /// this replica's own `entries` happens lazily, on the first read that
    /// needs them ([`WalInner::fold_pending`]). `next_lsn` always accounts
    /// for pending segments, so appends and `end_lsn` stay exact without
    /// folding.
    pending: Vec<Arc<[LogEntry]>>,
    next_lsn: u64,
}

impl WalInner {
    /// Materialise received-but-unfolded segments into `entries`. Amortised
    /// O(1) per entry over the log's lifetime; the hot no-op case is one
    /// branch.
    #[inline]
    fn fold_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let total: usize = self.pending.iter().map(|s| s.len()).sum();
        self.entries.reserve(total);
        for seg in self.pending.drain(..) {
            self.entries.extend_from_slice(&seg);
        }
    }
}

/// One replayed transaction: its id, commit timestamp and write-set on this
/// partition.
pub type ReplayedTxn = (TxnId, Ts, Vec<LoggedWrite>);

/// How far a recovery (or checkpoint fold) may read into the log. Every
/// group-commit scheme translates its own agreement — recovered watermark,
/// last durable epoch boundary, durable LSN — into one of these (see
/// [`crate::GroupCommit::replay_bound`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayBound {
    /// Transactions with commit timestamp strictly below the bound (the
    /// watermark scheme's recovered `Wp`).
    Ts(Ts),
    /// Entries with LSN strictly below the bound (COCO: the LSN of the last
    /// durable committed epoch boundary; CLV / sync: one past the durable
    /// LSN).
    Lsn(u64),
    /// Entries whose persist window *spans* the given simulated instant are
    /// **not** covered (CLV's crash-rollback rule on *surviving*
    /// partitions): a transaction is acknowledged exactly when its log
    /// records are durable, so a crash rolls back precisely the commits
    /// still inside their persist window at the crash instant. Entries
    /// already durable by the instant — and entries appended *after* it,
    /// which belong to post-crash transactions the scheme reports
    /// `Committed` — are covered.
    PersistWindow(u64),
}

impl ReplayBound {
    /// Whether a `TxnWrites` entry at `(ts, lsn)`, appended at
    /// `appended_at_us` into a log with persist delay `persist_delay_us`,
    /// falls under this bound.
    #[inline]
    pub fn covers(&self, ts: Ts, lsn: u64, appended_at_us: u64, persist_delay_us: u64) -> bool {
        match self {
            ReplayBound::Ts(bound) => ts < *bound,
            ReplayBound::Lsn(bound) => lsn < *bound,
            ReplayBound::PersistWindow(instant) => {
                appended_at_us + persist_delay_us <= *instant || appended_at_us > *instant
            }
        }
    }
}

/// The write-ahead log of one partition — or, under replication, of **one
/// replica** of one partition (see [`crate::ReplicatedLog`]).
#[derive(Debug)]
pub struct PartitionWal {
    partition: PartitionId,
    persist_delay_us: u64,
    /// The delay after which an appended record counts as *acknowledged*
    /// for [`ReplayBound::PersistWindow`] coverage. Equals
    /// `persist_delay_us` for a standalone single-copy log; a replicated
    /// log sets it to the quorum-ack delay on every replica, so window
    /// checks agree with when the scheme actually acknowledged the commit.
    ack_delay_us: u64,
    inner: Mutex<WalInner>,
}

impl PartitionWal {
    pub fn new(partition: PartitionId, persist_delay_us: u64) -> Self {
        Self::with_ack_delay(partition, persist_delay_us, persist_delay_us)
    }

    /// A replica whose local persist delay and acknowledgement horizon
    /// differ (quorum replication: records are acknowledged at the quorum
    /// delay, not this replica's own).
    pub fn with_ack_delay(
        partition: PartitionId,
        persist_delay_us: u64,
        ack_delay_us: u64,
    ) -> Self {
        PartitionWal {
            partition,
            persist_delay_us,
            ack_delay_us,
            inner: Mutex::new(WalInner::default()),
        }
    }

    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Simulated persist delay of this log copy.
    pub fn persist_delay_us(&self) -> u64 {
        self.persist_delay_us
    }

    /// Append a record; returns its LSN. Appending never blocks on I/O —
    /// persistence happens in the background (that is the whole point of
    /// taking durability off the critical path).
    pub fn append(&self, payload: LogPayload) -> u64 {
        self.append_in_term(0, Arc::new(payload))
    }

    /// [`PartitionWal::append`] stamped with the replicated log's current
    /// leadership term. Takes the payload behind an `Arc` so a replicated
    /// fan-out appends the same allocation to every replica instead of
    /// deep-cloning the write-set per copy.
    pub fn append_in_term(&self, term: u64, payload: Arc<LogPayload>) -> u64 {
        self.append_entry_in_term(term, payload).lsn
    }

    /// [`PartitionWal::append_in_term`], returning the full entry (LSN,
    /// append timestamp, term) instead of just the LSN. The replicated
    /// log's sequencer stages this exact entry for the replication pump, so
    /// follower copies later receive the **same** `appended_at_us` — their
    /// durability clocks run from the original append instant, not from
    /// when the pump happened to drain.
    pub fn append_entry_in_term(&self, term: u64, payload: Arc<LogPayload>) -> LogEntry {
        let mut inner = self.folded();
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        let entry = LogEntry {
            lsn,
            appended_at_us: now_us(),
            term,
            payload,
        };
        inner.entries.push(entry.clone());
        entry
    }

    /// Deliver a batch of already-sequenced entries to this replica under
    /// **one** lock acquisition — stage 2 of the replicated append
    /// pipeline. Entries keep the LSN, append timestamp and term the
    /// sequencer stamped, so the copy is byte-identical to the leader's and
    /// durability timing is independent of when the pump ran. The batch
    /// must continue this replica's log (`entries` are the next LSNs in
    /// order); that invariant is upheld by the replicated log, which
    /// serializes sequencing, draining and every replica-set mutation.
    pub fn append_entries(&self, entries: &[LogEntry]) {
        if entries.is_empty() {
            return;
        }
        let mut inner = self.folded();
        debug_assert_eq!(
            entries[0].lsn, inner.next_lsn,
            "replication batch must continue the replica's log"
        );
        inner.entries.extend_from_slice(entries);
        inner.next_lsn = entries[entries.len() - 1].lsn + 1;
    }

    /// Receive one replication segment: O(1) — the segment `Arc` is shared
    /// by every replica of the partition, and the per-entry copy into this
    /// replica's own storage is deferred to the first read that needs it.
    /// The entries keep the LSN, append timestamp and term the sequencer
    /// stamped, so the folded copy is byte-identical to every peer's and
    /// durability timing is independent of when the replication pump ran.
    /// The segment must continue this replica's log; the replicated log's
    /// sequencer upholds that by serializing sequencing, draining and every
    /// replica-set mutation.
    pub fn receive_segment(&self, segment: Arc<[LogEntry]>) {
        let Some(last) = segment.last() else { return };
        let mut inner = self.inner.lock();
        debug_assert_eq!(
            segment[0].lsn, inner.next_lsn,
            "replication segment must continue the replica's log"
        );
        inner.next_lsn = last.lsn + 1;
        inner.pending.push(segment);
    }

    /// Lock the log and fold any pending replication segments first — every
    /// path that reads or rewrites `entries` goes through here, so readers
    /// always observe the fully delivered log.
    fn folded(&self) -> parking_lot::MutexGuard<'_, WalInner> {
        let mut inner = self.inner.lock();
        inner.fold_pending();
        inner
    }

    /// The LSN the next append will receive.
    pub fn end_lsn(&self) -> u64 {
        self.inner.lock().next_lsn
    }

    /// Number of entries in the durable prefix at `now`: `appended_at_us` is
    /// monotone per log (appends are serialized under the log lock and stamp
    /// a monotonic clock), so the durable boundary is found by binary search
    /// instead of a reverse scan over the whole log.
    #[inline]
    fn durable_prefix_len(entries: &[LogEntry], persist_delay_us: u64, now: u64) -> usize {
        entries.partition_point(|e| e.appended_at_us + persist_delay_us <= now)
    }

    /// Length of the prefix the durable scans may read. An explicit
    /// `cutoff_lsn` **is** a durability horizon the caller already computed
    /// (this log's — or, through [`crate::ReplicatedLog`], the quorum's —
    /// durable LSN): entries at or below it are durable by construction, so
    /// this copy's own disk delay must not filter further. Otherwise an
    /// elected leader with a disk slower than the quorum-ack delay would
    /// hide quorum-acknowledged entries from recovery. Without a cutoff,
    /// the copy's local persist delay decides.
    #[inline]
    fn durable_len(&self, entries: &[LogEntry], cutoff_lsn: Option<u64>, now: u64) -> usize {
        match cutoff_lsn {
            Some(_) => entries.len(),
            None => Self::durable_prefix_len(entries, self.persist_delay_us, now),
        }
    }

    /// Highest LSN that is durable "now" (append time + persist delay has
    /// elapsed). Returns `None` if nothing is durable yet.
    pub fn durable_lsn(&self) -> Option<u64> {
        let now = now_us();
        let inner = self.folded();
        let durable = Self::durable_prefix_len(&inner.entries, self.persist_delay_us, now);
        inner.entries[..durable].last().map(|e| e.lsn)
    }

    /// Whether a specific LSN is durable.
    pub fn is_durable(&self, lsn: u64) -> bool {
        self.durable_lsn().map(|d| d >= lsn).unwrap_or(false)
    }

    /// The latest durable watermark record, if any (recovery reads this —
    /// §5.2 "the new leader retrieves the latest Wp in its Raft log").
    pub fn latest_durable_watermark(&self) -> Option<Ts> {
        self.latest_durable_watermark_at(None)
    }

    /// [`PartitionWal::latest_durable_watermark`] restricted to entries at
    /// or below `cutoff_lsn` — recovery passes the durable LSN captured at
    /// crash time so a `Wp` record that was still volatile when the
    /// partition died (or was appended by the dead leader's agent during
    /// the outage) is never recovered from.
    pub fn latest_durable_watermark_at(&self, cutoff_lsn: Option<u64>) -> Option<Ts> {
        let now = now_us();
        let inner = self.folded();
        let durable = self.durable_len(&inner.entries, cutoff_lsn, now);
        inner.entries[..durable]
            .iter()
            .rev()
            .filter(|e| cutoff_lsn.is_none_or(|cut| e.lsn <= cut))
            .find_map(|e| match *e.payload {
                LogPayload::Watermark { wp } => Some(wp),
                _ => None,
            })
    }

    /// The newest durable checkpoint image whose entry LSN does not exceed
    /// `cutoff_lsn` (pass the durable LSN captured at crash time so recovery
    /// never restores an image that was still volatile when the partition
    /// died).
    pub fn latest_durable_checkpoint(
        &self,
        cutoff_lsn: Option<u64>,
    ) -> Option<Arc<CheckpointImage>> {
        let now = now_us();
        let inner = self.folded();
        let durable = self.durable_len(&inner.entries, cutoff_lsn, now);
        inner.entries[..durable]
            .iter()
            .rev()
            .filter(|e| cutoff_lsn.is_none_or(|cut| e.lsn <= cut))
            .find_map(|e| match e.payload.as_ref() {
                LogPayload::Checkpoint { image } => Some(Arc::clone(image)),
                _ => None,
            })
    }

    /// The latest (checkpoint-entry LSN, image) pair regardless of
    /// durability — the checkpoint writer folds forward from here.
    pub fn latest_checkpoint(&self) -> Option<(u64, Arc<CheckpointImage>)> {
        let inner = self.folded();
        inner
            .entries
            .iter()
            .rev()
            .find_map(|e| match e.payload.as_ref() {
                LogPayload::Checkpoint { image } => Some((e.lsn, Arc::clone(image))),
                _ => None,
            })
    }

    /// LSN of the newest durable [`LogPayload::EpochBoundary`] whose epoch is
    /// at most `max_epoch` and whose LSN does not exceed `cutoff_lsn` (COCO
    /// recovery / checkpoint bound; the replicated log passes its quorum
    /// LSN as the cutoff).
    pub fn latest_durable_epoch_boundary(
        &self,
        max_epoch: u64,
        cutoff_lsn: Option<u64>,
    ) -> Option<u64> {
        let now = now_us();
        let inner = self.folded();
        let durable = self.durable_len(&inner.entries, cutoff_lsn, now);
        inner.entries[..durable]
            .iter()
            .rev()
            .filter(|e| cutoff_lsn.is_none_or(|cut| e.lsn <= cut))
            .find_map(|e| match *e.payload {
                LogPayload::EpochBoundary { epoch } if epoch <= max_epoch => Some(e.lsn),
                _ => None,
            })
    }

    /// LSN of the newest [`LogPayload::EpochBoundary`] with epoch at most
    /// `max_epoch`, regardless of durability. A *surviving* partition's log
    /// lost nothing, so when COCO rolls back the crashed epoch the boundary
    /// of the last committed epoch separates committed write-sets from
    /// rolled-back ones even while it is still inside its persist window.
    pub fn latest_epoch_boundary(&self, max_epoch: u64) -> Option<u64> {
        let inner = self.folded();
        inner.entries.iter().rev().find_map(|e| match *e.payload {
            LogPayload::EpochBoundary { epoch } if epoch <= max_epoch => Some(e.lsn),
            _ => None,
        })
    }

    /// Replay all durable transaction writes with `ts < up_to`.
    ///
    /// The output is **commit-timestamp-sorted** (ties broken by LSN, i.e.
    /// append order) and **deduplicated by transaction id** (the entry with
    /// the highest LSN wins), so applying it left-to-right with last-writer-
    /// wins semantics is deterministic and replaying any prefix twice equals
    /// replaying it once. Everything at or above `up_to` is rolled back
    /// (i.e. simply not replayed).
    pub fn replay_prefix(&self, up_to: Ts) -> Vec<ReplayedTxn> {
        self.replay_range(0, &ReplayBound::Ts(up_to), None)
    }

    /// Replay durable transaction writes with `lsn >= from_lsn`, restricted
    /// to `bound` and (when given) to entries at or below `cutoff_lsn` — the
    /// durable LSN captured at crash time, so entries that were still
    /// volatile when the partition died are treated as lost.
    ///
    /// Transactions cancelled by a durable [`LogPayload::TxnRolledBack`]
    /// marker (a crash rolled them back and compensation undid their
    /// installed writes) are never replayed, whatever the bound says — the
    /// bound keeps advancing after the crash, the rollback decision does not.
    ///
    /// Sorted and deduplicated exactly like [`PartitionWal::replay_prefix`].
    pub fn replay_range(
        &self,
        from_lsn: u64,
        bound: &ReplayBound,
        cutoff_lsn: Option<u64>,
    ) -> Vec<ReplayedTxn> {
        let now = now_us();
        let picked: Vec<(Ts, u64, TxnId, Vec<LoggedWrite>)> = {
            let inner = self.folded();
            // Rollback markers cancel entries *behind* them (lower LSNs), so
            // they are collected over the whole log with the same durability
            // and crash-cutoff filters as the entries themselves. An
            // explicit cutoff is a durability horizon (see `durable_len`),
            // so the local age filter only applies without one.
            let marker_durability = match cutoff_lsn {
                Some(_) => None,
                None => Some((now, self.persist_delay_us)),
            };
            let rolled_back = Self::rolled_back_in(&inner, marker_durability, cutoff_lsn);
            inner
                .entries
                .iter()
                .filter(|e| e.lsn >= from_lsn)
                .filter(|e| match cutoff_lsn {
                    Some(cut) => e.lsn <= cut,
                    None => e.appended_at_us + self.persist_delay_us <= now,
                })
                .filter_map(|e| match e.payload.as_ref() {
                    LogPayload::TxnWrites { txn, ts, writes }
                        if bound.covers(*ts, e.lsn, e.appended_at_us, self.ack_delay_us)
                            && !rolled_back.contains(txn) =>
                    {
                        Some((*ts, e.lsn, *txn, writes.clone()))
                    }
                    _ => None,
                })
                .collect()
        };
        Self::sort_dedup_by_txn(picked)
    }

    /// Order picked entries by `(ts, lsn)` and deduplicate by transaction
    /// id, keeping the highest-LSN entry: a transaction logs one entry per
    /// partition, so later duplicates (if a caller ever re-appends)
    /// supersede earlier ones. Shared by [`PartitionWal::replay_range`] and
    /// [`PartitionWal::collect_rolled_back`] so the set of transactions
    /// replayed and the set compensated can never diverge on the
    /// ordering/dedup rule.
    fn sort_dedup_by_txn(mut picked: Vec<(Ts, u64, TxnId, Vec<LoggedWrite>)>) -> Vec<ReplayedTxn> {
        picked.sort_by_key(|(ts, lsn, _, _)| (*ts, *lsn));
        let mut out: Vec<ReplayedTxn> = Vec::with_capacity(picked.len());
        let mut seen: std::collections::HashMap<TxnId, usize> = std::collections::HashMap::new();
        for (ts, _lsn, txn, writes) in picked {
            match seen.get(&txn) {
                Some(&i) => out[i] = (txn, ts, writes),
                None => {
                    seen.insert(txn, out.len());
                    out.push((txn, ts, writes));
                }
            }
        }
        out
    }

    /// Collect the transaction ids cancelled by [`LogPayload::TxnRolledBack`]
    /// markers. `durability` is `Some((now, persist_delay))` to honour only
    /// markers that are durable at `now` (replay semantics: a marker still in
    /// its persist window at a crash is lost, exactly like a write-set);
    /// `None` trusts every marker in the log (live compensation, which runs
    /// on a partition that did not crash). `cutoff_lsn` restricts to markers
    /// at or below the crash-time durable LSN.
    fn rolled_back_in(
        inner: &WalInner,
        durability: Option<(u64, u64)>,
        cutoff_lsn: Option<u64>,
    ) -> std::collections::HashSet<TxnId> {
        inner
            .entries
            .iter()
            .filter(|e| {
                durability.is_none_or(|(now, delay)| e.appended_at_us + delay <= now)
                    && cutoff_lsn.is_none_or(|cut| e.lsn <= cut)
            })
            .filter_map(|e| match *e.payload {
                LogPayload::TxnRolledBack { txn } => Some(txn),
                _ => None,
            })
            .collect()
    }

    /// All transaction ids with a rollback marker in this log, regardless of
    /// durability (exposed for compensation and tests).
    pub fn rolled_back_txns(&self) -> std::collections::HashSet<TxnId> {
        Self::rolled_back_in(&self.folded(), None, None)
    }

    /// The `TxnWrites` entries `bound` does **not** cover and no rollback
    /// marker cancels yet: the transactions a crash just rolled back on this
    /// *surviving* partition, whose installed writes compensation must undo.
    /// No durability filter — this partition did not crash, so nothing in
    /// its log is lost. Entries at or past `upper_cutoff` (the survivor's
    /// log end captured right after the crash agreement) are excluded: they
    /// belong to transactions that committed *after* the agreement, which
    /// every scheme reports `Committed`. Sorted by `(ts, lsn)` and
    /// deduplicated by transaction exactly like
    /// [`PartitionWal::replay_range`], so undoing the result in reverse
    /// restores the pre-transaction state.
    pub fn collect_rolled_back(
        &self,
        bound: &ReplayBound,
        upper_cutoff: Option<u64>,
    ) -> Vec<ReplayedTxn> {
        let picked: Vec<(Ts, u64, TxnId, Vec<LoggedWrite>)> = {
            let inner = self.folded();
            let already = Self::rolled_back_in(&inner, None, None);
            inner
                .entries
                .iter()
                .filter(|e| upper_cutoff.is_none_or(|cut| e.lsn < cut))
                .filter_map(|e| match e.payload.as_ref() {
                    LogPayload::TxnWrites { txn, ts, writes }
                        if !bound.covers(*ts, e.lsn, e.appended_at_us, self.ack_delay_us)
                            && !already.contains(txn) =>
                    {
                        Some((*ts, e.lsn, *txn, writes.clone()))
                    }
                    _ => None,
                })
                .collect()
        };
        Self::sort_dedup_by_txn(picked)
    }

    /// The newest durable [`LogPayload::CommitDecision`] verdict for `txn`
    /// at or below `cutoff_lsn`, if any.
    pub fn commit_decision_for(&self, txn: TxnId, cutoff_lsn: Option<u64>) -> Option<bool> {
        let now = now_us();
        let inner = self.folded();
        let durable = self.durable_len(&inner.entries, cutoff_lsn, now);
        inner.entries[..durable]
            .iter()
            .rev()
            .filter(|e| cutoff_lsn.is_none_or(|cut| e.lsn <= cut))
            .find_map(|e| match *e.payload {
                LogPayload::CommitDecision { txn: t, commit } if t == txn => Some(commit),
                _ => None,
            })
    }

    /// The durable [`LogPayload::CommitVote`] for `txn` at or below
    /// `cutoff_lsn`, if any (verdict assembly and tests).
    pub fn commit_vote_for(&self, txn: TxnId, cutoff_lsn: Option<u64>) -> Option<bool> {
        let now = now_us();
        let inner = self.folded();
        let durable = self.durable_len(&inner.entries, cutoff_lsn, now);
        inner.entries[..durable]
            .iter()
            .rev()
            .filter(|e| cutoff_lsn.is_none_or(|cut| e.lsn <= cut))
            .find_map(|e| match *e.payload {
                LogPayload::CommitVote { txn: t, commit, .. } if t == txn => Some(commit),
                _ => None,
            })
    }

    /// Transaction ids with a durable [`LogPayload::CommitVote`] at or below
    /// `cutoff_lsn` but no resolution: no durable [`LogPayload::CommitDecision`],
    /// no installed [`LogPayload::TxnWrites`] (evidence the commit round ran
    /// to completion on this partition) and no [`LogPayload::TxnRolledBack`]
    /// marker. These are the in-doubt transactions recovery must terminate;
    /// it seals each with a global abort decision (presumed abort). Returned
    /// in first-vote order.
    pub fn unresolved_commit_votes(&self, cutoff_lsn: Option<u64>) -> Vec<TxnId> {
        let now = now_us();
        let inner = self.folded();
        let durable = self.durable_len(&inner.entries, cutoff_lsn, now);
        let mut voted: Vec<TxnId> = Vec::new();
        let mut resolved: std::collections::HashSet<TxnId> = std::collections::HashSet::new();
        for e in inner.entries[..durable]
            .iter()
            .filter(|e| cutoff_lsn.is_none_or(|cut| e.lsn <= cut))
        {
            match e.payload.as_ref() {
                LogPayload::CommitVote { txn, .. } if !voted.contains(txn) => {
                    voted.push(*txn);
                }
                LogPayload::CommitDecision { txn, .. }
                | LogPayload::TxnWrites { txn, .. }
                | LogPayload::TxnRolledBack { txn } => {
                    resolved.insert(*txn);
                }
                _ => {}
            }
        }
        voted.retain(|t| !resolved.contains(t));
        voted
    }

    /// Clone the suffix of the log starting at `from_lsn`.
    pub fn entries_from(&self, from_lsn: u64) -> Vec<LogEntry> {
        let inner = self.folded();
        inner
            .entries
            .iter()
            .filter(|e| e.lsn >= from_lsn)
            .cloned()
            .collect()
    }

    /// The first LSN at or after `from_lsn` that may **not** be folded into
    /// a checkpoint: the first entry that is not yet durable, or a
    /// transaction write-set `bound` does not cover. Control entries inside
    /// the folded prefix are folded past, and so are write-sets cancelled by
    /// a durable rollback marker (the fold's `replay_range` skips them, so
    /// they never reach the image). A metadata-only scan under the log lock
    /// — no entry is cloned.
    pub fn fold_stop_lsn(&self, from_lsn: u64, bound: &ReplayBound) -> u64 {
        let now = now_us();
        let inner = self.folded();
        let rolled_back = Self::rolled_back_in(&inner, Some((now, self.persist_delay_us)), None);
        let mut stop = from_lsn;
        for entry in inner.entries.iter().filter(|e| e.lsn >= from_lsn) {
            if entry.appended_at_us + self.persist_delay_us > now {
                break;
            }
            if let LogPayload::TxnWrites { txn, ts, .. } = entry.payload.as_ref() {
                if !rolled_back.contains(txn)
                    && !bound.covers(*ts, entry.lsn, entry.appended_at_us, self.ack_delay_us)
                {
                    break;
                }
            }
            stop = entry.lsn + 1;
        }
        stop
    }

    /// Recovery-time log repair: remove every `TxnWrites` entry at or after
    /// `from_lsn` that replay did **not** apply — entries past the
    /// crash-time durable LSN (the lost volatile tail), durable entries
    /// above the rollback bound (transactions reported `CrashAborted`), and
    /// entries cancelled by a durable rollback marker (compensated after an
    /// earlier crash of *another* partition). Without this, a later
    /// checkpoint fold — whose bound keeps advancing after recovery — would
    /// resurrect rolled-back transactions. Returns the number of entries
    /// removed.
    pub fn retain_replayable(
        &self,
        from_lsn: u64,
        bound: &ReplayBound,
        cutoff_lsn: Option<u64>,
    ) -> usize {
        let rolled_back = self.durable_rolled_back(cutoff_lsn);
        self.retain_replayable_with(from_lsn, bound, cutoff_lsn, &rolled_back)
    }

    /// The transaction ids cancelled by a marker that is durable on *this*
    /// log copy right now, restricted to markers at or below `cutoff_lsn`.
    pub(crate) fn durable_rolled_back(
        &self,
        cutoff_lsn: Option<u64>,
    ) -> std::collections::HashSet<TxnId> {
        let durability = match cutoff_lsn {
            // The cutoff is a durability horizon (see `durable_len`).
            Some(_) => None,
            None => Some((now_us(), self.persist_delay_us)),
        };
        Self::rolled_back_in(&self.folded(), durability, cutoff_lsn)
    }

    /// [`PartitionWal::retain_replayable`] with the cancelled-transaction
    /// set supplied by the caller. The replicated log computes the set once
    /// from the leader and applies it to every replica, so replicas with
    /// different persist delays cannot diverge on which markers count as
    /// durable (and therefore on which entries the purge drops).
    pub(crate) fn retain_replayable_with(
        &self,
        from_lsn: u64,
        bound: &ReplayBound,
        cutoff_lsn: Option<u64>,
        rolled_back: &std::collections::HashSet<TxnId>,
    ) -> usize {
        let mut inner = self.folded();
        let before = inner.entries.len();
        let delay = self.ack_delay_us;
        inner.entries.retain(|e| {
            if e.lsn < from_lsn {
                return true;
            }
            match e.payload.as_ref() {
                LogPayload::TxnWrites { txn, ts, .. } => {
                    cutoff_lsn.is_some_and(|cut| e.lsn <= cut)
                        && bound.covers(*ts, e.lsn, e.appended_at_us, delay)
                        && !rolled_back.contains(txn)
                }
                _ => true,
            }
        });
        before - inner.entries.len()
    }

    /// Number of entries appended so far.
    pub fn len(&self) -> usize {
        self.folded().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard this log copy's entries (a lost disk). The LSN counter is
    /// preserved so the replica can keep receiving new appends aligned with
    /// its peers; the history itself is gone until a repair pass copies it
    /// back from the leader.
    pub(crate) fn wipe_log(&self) -> usize {
        let mut inner = self.inner.lock();
        let dropped = inner.entries.len() + inner.pending.iter().map(|s| s.len()).sum::<usize>();
        inner.entries.clear();
        // Pending segments are received-but-unfolded disk contents: the disk
        // is gone, so they go with it (never resurrected by a later fold).
        inner.pending.clear();
        dropped
    }

    /// Replace this replica's entries wholesale with an authoritative copy
    /// (repair after a wipe: the elected leader's log is the authority; see
    /// [`crate::ReplicatedLog::repair_replicas`]). Entries keep their
    /// original LSNs and append times, so durability checks still reflect
    /// when the record was originally written.
    pub(crate) fn replace_entries(&self, entries: Vec<LogEntry>, next_lsn: u64) {
        let mut inner = self.inner.lock();
        inner.entries = entries;
        // The authoritative copy supersedes anything still unfolded.
        inner.pending.clear();
        inner.next_lsn = next_lsn.max(inner.next_lsn);
    }

    /// Truncate the log up to (and excluding) `lsn` after a checkpoint.
    /// Returns the number of entries removed.
    pub fn truncate_before(&self, lsn: u64) -> usize {
        let mut inner = self.folded();
        let before = inner.entries.len();
        inner.entries.retain(|e| e.lsn >= lsn);
        before - inner.entries.len()
    }

    /// Truncate everything already folded into the newest **durable**
    /// checkpoint. Entries folded into a checkpoint that is still within its
    /// persist delay are retained, so a crash immediately after a checkpoint
    /// can always fall back to the previous durable image plus the log.
    pub fn truncate_to_durable_checkpoint(&self) -> usize {
        match self.latest_durable_checkpoint(None) {
            Some(image) => self.truncate_before(image.base_lsn),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    fn writes(k: Key) -> Vec<LoggedWrite> {
        vec![LoggedWrite::put(TableId(0), k, Value::from_u64(k))]
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        let a = wal.append(LogPayload::Watermark { wp: 1 });
        let b = wal.append(LogPayload::Watermark { wp: 2 });
        assert!(b > a);
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.end_lsn(), 2);
    }

    #[test]
    fn durability_respects_persist_delay() {
        let wal = PartitionWal::new(PartitionId(0), 20_000); // 20 ms
        let lsn = wal.append(LogPayload::Watermark { wp: 5 });
        assert!(!wal.is_durable(lsn));
        assert!(wal.latest_durable_watermark().is_none());
        std::thread::sleep(Duration::from_millis(30));
        assert!(wal.is_durable(lsn));
        assert_eq!(wal.latest_durable_watermark(), Some(5));
        assert_eq!(wal.persist_delay_us(), 20_000);
    }

    #[test]
    fn replay_prefix_excludes_rolled_back_txns() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        for (seq, ts) in [(1, 5u64), (2, 9), (3, 15)] {
            wal.append(LogPayload::TxnWrites {
                txn: txn(seq),
                ts,
                writes: writes(seq),
            });
        }
        std::thread::sleep(Duration::from_millis(1));
        let replayed = wal.replay_prefix(10);
        assert_eq!(replayed.len(), 2);
        assert!(replayed.iter().all(|(_, ts, _)| *ts < 10));
    }

    #[test]
    fn replay_is_ts_sorted_and_deduplicated() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        // Out-of-ts-order appends (two workers interleaving) plus a duplicate
        // entry for txn 1.
        wal.append(LogPayload::TxnWrites {
            txn: txn(2),
            ts: 9,
            writes: writes(2),
        });
        wal.append(LogPayload::TxnWrites {
            txn: txn(1),
            ts: 5,
            writes: writes(1),
        });
        wal.append(LogPayload::TxnWrites {
            txn: txn(1),
            ts: 5,
            writes: writes(7),
        });
        std::thread::sleep(Duration::from_millis(1));
        let replayed = wal.replay_prefix(100);
        assert_eq!(replayed.len(), 2, "duplicate txn entries are merged");
        assert_eq!(replayed[0].1, 5);
        assert_eq!(replayed[1].1, 9);
        // The duplicate with the higher LSN wins.
        assert_eq!(replayed[0].2[0].key, 7);
    }

    #[test]
    fn replay_range_respects_lsn_cutoff_and_base() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        for seq in 0..6u64 {
            wal.append(LogPayload::TxnWrites {
                txn: txn(seq),
                ts: seq + 1,
                writes: writes(seq),
            });
        }
        std::thread::sleep(Duration::from_millis(1));
        // Entries with lsn in [2, 4] only.
        let replayed = wal.replay_range(2, &ReplayBound::Ts(u64::MAX), Some(4));
        assert_eq!(replayed.len(), 3);
        assert!(replayed.iter().all(|(t, _, _)| (2..=4).contains(&t.seq)));
        // Lsn bound is exclusive.
        let replayed = wal.replay_range(0, &ReplayBound::Lsn(2), None);
        assert_eq!(replayed.len(), 2);
    }

    #[test]
    fn truncate_drops_old_entries() {
        let wal = PartitionWal::new(PartitionId(1), 0);
        for i in 0..10u64 {
            wal.append(LogPayload::Watermark { wp: i });
        }
        assert_eq!(wal.truncate_before(5), 5);
        assert_eq!(wal.len(), 5);
        assert_eq!(wal.partition(), PartitionId(1));
    }

    #[test]
    fn latest_durable_watermark_takes_newest() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        wal.append(LogPayload::Watermark { wp: 3 });
        wal.append(LogPayload::TxnWrites {
            txn: txn(1),
            ts: 4,
            writes: writes(1),
        });
        wal.append(LogPayload::Watermark { wp: 8 });
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(wal.latest_durable_watermark(), Some(8));
    }

    #[test]
    fn checkpoint_image_apply_is_idempotent() {
        let mut image = CheckpointImage::default();
        let ws = vec![
            LoggedWrite::put(TableId(0), 1, Value::from_u64(10)),
            LoggedWrite::delete(TableId(0), 2).with_prev(Some(Value::from_u64(2))),
        ];
        image
            .records
            .insert((TableId(0), 2), (Value::from_u64(2), 1));
        image.apply(5, &ws);
        let once = image.clone();
        image.apply(5, &ws);
        assert_eq!(once.records.len(), image.records.len());
        assert_eq!(image.up_to_ts, 5);
        assert!(image.records.contains_key(&(TableId(0), 1)));
        assert!(!image.records.contains_key(&(TableId(0), 2)));
        assert_eq!(image.len(), 1);
        assert!(!image.is_empty());
    }

    #[test]
    fn latest_durable_checkpoint_respects_cutoff() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        let old = Arc::new(CheckpointImage {
            up_to_ts: 1,
            base_lsn: 0,
            records: BTreeMap::new(),
        });
        let new = Arc::new(CheckpointImage {
            up_to_ts: 9,
            base_lsn: 1,
            records: BTreeMap::new(),
        });
        let old_lsn = wal.append(LogPayload::Checkpoint {
            image: Arc::clone(&old),
        });
        wal.append(LogPayload::Checkpoint {
            image: Arc::clone(&new),
        });
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(wal.latest_durable_checkpoint(None).unwrap().up_to_ts, 9);
        // A cutoff below the newer checkpoint falls back to the older image.
        assert_eq!(
            wal.latest_durable_checkpoint(Some(old_lsn))
                .unwrap()
                .up_to_ts,
            1
        );
        assert_eq!(wal.latest_checkpoint().unwrap().1.up_to_ts, 9);
    }

    #[test]
    fn retain_replayable_purges_rolled_back_write_sets() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        let a = wal.append(LogPayload::TxnWrites {
            txn: txn(1),
            ts: 5,
            writes: writes(1),
        });
        wal.append(LogPayload::Watermark { wp: 6 });
        let b = wal.append(LogPayload::TxnWrites {
            txn: txn(2),
            ts: 9, // above the rollback bound: reported CrashAborted
            writes: writes(2),
        });
        let c = wal.append(LogPayload::TxnWrites {
            txn: txn(3),
            ts: 5, // covered, but past the durable cutoff: volatile, lost
            writes: writes(3),
        });
        std::thread::sleep(Duration::from_millis(1));
        let removed = wal.retain_replayable(0, &ReplayBound::Ts(8), Some(b));
        assert_eq!(removed, 2);
        let left = wal.replay_range(0, &ReplayBound::Ts(u64::MAX), None);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].0, txn(1));
        // Control entries survive the purge.
        assert_eq!(wal.latest_durable_watermark(), Some(6));
        let _ = (a, c);
    }

    #[test]
    fn watermark_lookup_respects_the_crash_cutoff() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        let early = wal.append(LogPayload::Watermark { wp: 3 });
        wal.append(LogPayload::Watermark { wp: 8 });
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(wal.latest_durable_watermark_at(None), Some(8));
        // A Wp appended after the crash-time durable LSN is never recovered.
        assert_eq!(wal.latest_durable_watermark_at(Some(early)), Some(3));
    }

    #[test]
    fn fold_stop_lsn_matches_the_cloneful_scan() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        wal.append(LogPayload::TxnWrites {
            txn: txn(1),
            ts: 2,
            writes: writes(1),
        });
        wal.append(LogPayload::Watermark { wp: 3 });
        let uncovered = wal.append(LogPayload::TxnWrites {
            txn: txn(2),
            ts: 50,
            writes: writes(2),
        });
        wal.append(LogPayload::Watermark { wp: 60 });
        std::thread::sleep(Duration::from_millis(1));
        // Stops at the first uncovered TxnWrites, folding past control
        // entries before it.
        assert_eq!(wal.fold_stop_lsn(0, &ReplayBound::Ts(10)), uncovered);
        assert_eq!(wal.fold_stop_lsn(0, &ReplayBound::Ts(100)), wal.end_lsn());
    }

    #[test]
    fn rollback_markers_cancel_entries_everywhere() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        wal.append(LogPayload::TxnWrites {
            txn: txn(1),
            ts: 5,
            writes: writes(1),
        });
        wal.append(LogPayload::TxnWrites {
            txn: txn(2),
            ts: 6,
            writes: writes(2),
        });
        wal.append(LogPayload::TxnRolledBack { txn: txn(2) });
        std::thread::sleep(Duration::from_millis(1));
        // Replay skips the cancelled transaction whatever the bound says.
        let replayed = wal.replay_range(0, &ReplayBound::Ts(u64::MAX), None);
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].0, txn(1));
        // The fold scan advances past the cancelled entry instead of
        // stopping on it, even under a bound that does not cover it.
        assert_eq!(wal.fold_stop_lsn(0, &ReplayBound::Ts(6)), wal.end_lsn());
        // Log repair drops the cancelled entry but keeps the marker.
        let removed = wal.retain_replayable(0, &ReplayBound::Ts(u64::MAX), Some(wal.end_lsn()));
        assert_eq!(removed, 1);
        assert!(wal.rolled_back_txns().contains(&txn(2)));
    }

    #[test]
    fn collect_rolled_back_returns_uncovered_unmarked_entries() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        wal.append(LogPayload::TxnWrites {
            txn: txn(1),
            ts: 5,
            writes: writes(1),
        });
        wal.append(LogPayload::TxnWrites {
            txn: txn(2),
            ts: 9,
            writes: writes(2),
        });
        wal.append(LogPayload::TxnWrites {
            txn: txn(3),
            ts: 12,
            writes: writes(3),
        });
        wal.append(LogPayload::TxnRolledBack { txn: txn(3) });
        // ts >= 8 is rolled back; txn 3 was already compensated earlier.
        let doomed = wal.collect_rolled_back(&ReplayBound::Ts(8), None);
        assert_eq!(doomed.len(), 1);
        assert_eq!(doomed[0].0, txn(2));
        // An upper cutoff (the log end captured at the crash agreement)
        // excludes entries of transactions that committed afterwards.
        assert!(wal
            .collect_rolled_back(&ReplayBound::Ts(8), Some(1))
            .is_empty());
        // No durability filter: a volatile entry on a survivor still counts.
        let wal = PartitionWal::new(PartitionId(0), 60_000);
        wal.append(LogPayload::TxnWrites {
            txn: txn(7),
            ts: 9,
            writes: writes(7),
        });
        assert_eq!(wal.collect_rolled_back(&ReplayBound::Ts(8), None).len(), 1);
    }

    #[test]
    fn persist_window_bound_rolls_back_only_window_spanning_entries() {
        let wal = PartitionWal::new(PartitionId(0), 30_000); // 30 ms persist
        wal.append(LogPayload::TxnWrites {
            txn: txn(1),
            ts: 1,
            writes: writes(1),
        });
        std::thread::sleep(Duration::from_millis(40));
        // Entry 1 is durable now; entry 2 is inside its window at the crash
        // instant; entry 3 is appended after the crash (a post-crash commit
        // the scheme reports Committed).
        wal.append(LogPayload::TxnWrites {
            txn: txn(2),
            ts: 2,
            writes: writes(2),
        });
        std::thread::sleep(Duration::from_millis(2));
        let crash_instant = now_us();
        std::thread::sleep(Duration::from_millis(2));
        wal.append(LogPayload::TxnWrites {
            txn: txn(3),
            ts: 3,
            writes: writes(3),
        });
        let doomed = wal.collect_rolled_back(&ReplayBound::PersistWindow(crash_instant), None);
        assert_eq!(doomed.len(), 1);
        assert_eq!(doomed[0].0, txn(2));
    }

    #[test]
    fn unresolved_commit_votes_track_decisions_installs_and_rollbacks() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        let vote = |t: TxnId, commit: bool| LogPayload::CommitVote {
            txn: t,
            coordinator: PartitionId(0),
            commit,
        };
        // txn 1: voted, decided — resolved.
        wal.append(vote(txn(1), true));
        wal.append(LogPayload::CommitDecision {
            txn: txn(1),
            commit: true,
        });
        // txn 2: voted, writes installed — resolved (commit completed).
        wal.append(vote(txn(2), true));
        wal.append(LogPayload::TxnWrites {
            txn: txn(2),
            ts: 5,
            writes: writes(2),
        });
        // txn 3: voted, rolled back by compensation — resolved.
        wal.append(vote(txn(3), true));
        wal.append(LogPayload::TxnRolledBack { txn: txn(3) });
        // txn 4: voted, nothing else — in doubt.
        let in_doubt_lsn = wal.append(vote(txn(4), true));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(wal.unresolved_commit_votes(None), vec![txn(4)]);
        assert_eq!(wal.commit_vote_for(txn(4), None), Some(true));
        assert_eq!(wal.commit_decision_for(txn(4), None), None);
        assert_eq!(wal.commit_decision_for(txn(1), None), Some(true));
        // Sealing the in-doubt vote with an abort decision resolves it.
        wal.append(LogPayload::CommitDecision {
            txn: txn(4),
            commit: false,
        });
        std::thread::sleep(Duration::from_millis(1));
        assert!(wal.unresolved_commit_votes(None).is_empty());
        assert_eq!(wal.commit_decision_for(txn(4), None), Some(false));
        // A cutoff below the seal re-exposes the in-doubt vote (crash-time
        // durable horizon), and one below the vote hides it entirely.
        assert_eq!(
            wal.unresolved_commit_votes(Some(in_doubt_lsn)),
            vec![txn(4)]
        );
        assert!(wal
            .unresolved_commit_votes(Some(in_doubt_lsn - 1))
            .is_empty());
    }

    #[test]
    fn commit_votes_survive_log_repair() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        wal.append(LogPayload::CommitVote {
            txn: txn(1),
            coordinator: PartitionId(0),
            commit: true,
        });
        wal.append(LogPayload::CommitDecision {
            txn: txn(1),
            commit: false,
        });
        std::thread::sleep(Duration::from_millis(1));
        // Votes and decisions are control entries: the recovery-time purge
        // never drops them, whatever the bound.
        let removed = wal.retain_replayable(0, &ReplayBound::Ts(0), Some(wal.end_lsn()));
        assert_eq!(removed, 0);
        assert_eq!(wal.commit_decision_for(txn(1), None), Some(false));
    }

    #[test]
    fn epoch_boundary_lookup_filters_by_epoch() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        let b1 = wal.append(LogPayload::EpochBoundary { epoch: 1 });
        let b2 = wal.append(LogPayload::EpochBoundary { epoch: 2 });
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(wal.latest_durable_epoch_boundary(2, None), Some(b2));
        assert_eq!(wal.latest_durable_epoch_boundary(1, None), Some(b1));
        assert_eq!(wal.latest_durable_epoch_boundary(0, None), None);
        // A cutoff below the newer boundary falls back to the older one.
        assert_eq!(wal.latest_durable_epoch_boundary(2, Some(b1)), Some(b1));
        // The durability-blind variant (survivor-side rollback bound) agrees
        // here and also sees boundaries still inside their persist window.
        assert_eq!(wal.latest_epoch_boundary(2), Some(b2));
        let slow = PartitionWal::new(PartitionId(0), 60_000);
        let b = slow.append(LogPayload::EpochBoundary { epoch: 1 });
        assert_eq!(slow.latest_durable_epoch_boundary(1, None), None);
        assert_eq!(slow.latest_epoch_boundary(1), Some(b));
    }
}
