//! Per-partition write-ahead log with simulated asynchronous persistence.
//!
//! The paper's partitions replicate their log through Raft and persist it to
//! local SSD; here a record appended at time `t` becomes durable at
//! `t + persist_delay`. The log retains entries so recovery tests can replay
//! a prefix bounded by a watermark.

use parking_lot::Mutex;
use primo_common::sim_time::now_us;
use primo_common::{Key, PartitionId, TableId, Ts, TxnId, Value};

/// What a log entry describes.
#[derive(Debug, Clone)]
pub enum LogPayload {
    /// A committed transaction's write-set on this partition.
    TxnWrites {
        txn: TxnId,
        ts: Ts,
        writes: Vec<(TableId, Key, Value)>,
    },
    /// A persisted partition watermark (§5.1: `Wp` is logged before being
    /// broadcast so the new leader can recover it).
    Watermark { wp: Ts },
    /// An epoch boundary (COCO).
    EpochBoundary { epoch: u64 },
    /// A periodic checkpoint marker.
    Checkpoint { up_to_ts: Ts },
}

/// One record in the log.
#[derive(Debug, Clone)]
pub struct LogEntry {
    pub lsn: u64,
    pub appended_at_us: u64,
    pub payload: LogPayload,
}

#[derive(Debug, Default)]
struct WalInner {
    entries: Vec<LogEntry>,
    next_lsn: u64,
}

/// One replayed transaction: its id, commit timestamp and write set
/// (table, key, value per write).
pub type ReplayedTxn = (TxnId, Ts, Vec<(TableId, Key, Value)>);

/// The write-ahead log of one partition.
#[derive(Debug)]
pub struct PartitionWal {
    partition: PartitionId,
    persist_delay_us: u64,
    inner: Mutex<WalInner>,
}

impl PartitionWal {
    pub fn new(partition: PartitionId, persist_delay_us: u64) -> Self {
        PartitionWal {
            partition,
            persist_delay_us,
            inner: Mutex::new(WalInner::default()),
        }
    }

    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Append a record; returns its LSN. Appending never blocks on I/O —
    /// persistence happens in the background (that is the whole point of
    /// taking durability off the critical path).
    pub fn append(&self, payload: LogPayload) -> u64 {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.entries.push(LogEntry {
            lsn,
            appended_at_us: now_us(),
            payload,
        });
        lsn
    }

    /// Highest LSN that is durable "now" (append time + persist delay has
    /// elapsed). Returns `None` if nothing is durable yet.
    pub fn durable_lsn(&self) -> Option<u64> {
        let now = now_us();
        let inner = self.inner.lock();
        inner
            .entries
            .iter()
            .rev()
            .find(|e| e.appended_at_us + self.persist_delay_us <= now)
            .map(|e| e.lsn)
    }

    /// Whether a specific LSN is durable.
    pub fn is_durable(&self, lsn: u64) -> bool {
        self.durable_lsn().map(|d| d >= lsn).unwrap_or(false)
    }

    /// The latest durable watermark record, if any (recovery reads this —
    /// §5.2 "the new leader retrieves the latest Wp in its Raft log").
    pub fn latest_durable_watermark(&self) -> Option<Ts> {
        let now = now_us();
        let inner = self.inner.lock();
        inner
            .entries
            .iter()
            .rev()
            .filter(|e| e.appended_at_us + self.persist_delay_us <= now)
            .find_map(|e| match e.payload {
                LogPayload::Watermark { wp } => Some(wp),
                _ => None,
            })
    }

    /// Replay all durable transaction writes with `ts < up_to`, in log order.
    /// This is what recovery applies after a crash; everything at or above
    /// `up_to` is rolled back (i.e. simply not replayed).
    pub fn replay_prefix(&self, up_to: Ts) -> Vec<ReplayedTxn> {
        let now = now_us();
        let inner = self.inner.lock();
        inner
            .entries
            .iter()
            .filter(|e| e.appended_at_us + self.persist_delay_us <= now)
            .filter_map(|e| match &e.payload {
                LogPayload::TxnWrites { txn, ts, writes } if *ts < up_to => {
                    Some((*txn, *ts, writes.clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// Number of entries appended so far.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Truncate the log up to (and excluding) `lsn` after a checkpoint.
    pub fn truncate_before(&self, lsn: u64) {
        let mut inner = self.inner.lock();
        inner.entries.retain(|e| e.lsn >= lsn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    fn writes(k: Key) -> Vec<(TableId, Key, Value)> {
        vec![(TableId(0), k, Value::from_u64(k))]
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        let a = wal.append(LogPayload::Watermark { wp: 1 });
        let b = wal.append(LogPayload::Watermark { wp: 2 });
        assert!(b > a);
        assert_eq!(wal.len(), 2);
    }

    #[test]
    fn durability_respects_persist_delay() {
        let wal = PartitionWal::new(PartitionId(0), 20_000); // 20 ms
        let lsn = wal.append(LogPayload::Watermark { wp: 5 });
        assert!(!wal.is_durable(lsn));
        assert!(wal.latest_durable_watermark().is_none());
        std::thread::sleep(Duration::from_millis(30));
        assert!(wal.is_durable(lsn));
        assert_eq!(wal.latest_durable_watermark(), Some(5));
    }

    #[test]
    fn replay_prefix_excludes_rolled_back_txns() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        wal.append(LogPayload::TxnWrites {
            txn: txn(1),
            ts: 5,
            writes: writes(1),
        });
        wal.append(LogPayload::TxnWrites {
            txn: txn(2),
            ts: 9,
            writes: writes(2),
        });
        wal.append(LogPayload::TxnWrites {
            txn: txn(3),
            ts: 15,
            writes: writes(3),
        });
        std::thread::sleep(Duration::from_millis(1));
        let replayed = wal.replay_prefix(10);
        assert_eq!(replayed.len(), 2);
        assert!(replayed.iter().all(|(_, ts, _)| *ts < 10));
    }

    #[test]
    fn truncate_drops_old_entries() {
        let wal = PartitionWal::new(PartitionId(1), 0);
        for i in 0..10u64 {
            wal.append(LogPayload::Watermark { wp: i });
        }
        wal.truncate_before(5);
        assert_eq!(wal.len(), 5);
        assert_eq!(wal.partition(), PartitionId(1));
    }

    #[test]
    fn latest_durable_watermark_takes_newest() {
        let wal = PartitionWal::new(PartitionId(0), 0);
        wal.append(LogPayload::Watermark { wp: 3 });
        wal.append(LogPayload::TxnWrites {
            txn: txn(1),
            ts: 4,
            writes: writes(1),
        });
        wal.append(LogPayload::Watermark { wp: 8 });
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(wal.latest_durable_watermark(), Some(8));
    }
}
