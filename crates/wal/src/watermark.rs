//! Primo's watermark-based asynchronous distributed group commit (§5).
//!
//! Each partition leader runs a lightweight agent that
//!
//! 1. every `t_m` generates a partition watermark `Wp` — the minimum logical
//!    timestamp (or lower bound `lts`) of the transactions still active on
//!    that partition (rule R1);
//! 2. publishes `Wp` only after the simulated log-persist/replication delay,
//!    so `Wp` never claims durability it does not have;
//! 3. receives other partitions' watermarks over the (delayed, asynchronous)
//!    control bus, maintains the global watermark `Wg = min(all Wp)` and wakes
//!    transactions waiting for their result to become returnable.
//!
//! Rule R2 (new transactions must exceed the freshly generated `Wp`) is
//! exposed through [`GroupCommit::ts_floor`]; Primo's coordinator adds the
//! floor as a timestamp constraint and participants raise the floor of the
//! records they serve (`Record::raise_watermark_floor`).
//!
//! The force-update mechanism (§5.1) keeps a lagging partition's watermark
//! close to the cluster average so that it does not detain `Wg` (Fig 13b).

use crate::group_commit::{CommitOutcome, CommitWaiter, GroupCommit, TxnTicket};
use crate::log::{LogPayload, ReplayBound};
use crate::replicated::ReplicatedLog;
use parking_lot::{Condvar, Mutex};
use primo_common::config::WalConfig;
use primo_common::sim_time::now_us;
use primo_common::{PartitionId, Ts, TxnId};
use primo_net::{BusMessage, DelayedBus};
use primo_trace::{FlightRecorder, TraceEventKind};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often each agent drains the bus and re-evaluates `Wg`, independent of
/// the (much larger) watermark generation interval `t_m`.
const AGENT_TICK_US: u64 = 500;

#[derive(Debug, Default)]
struct WgState {
    /// This partition's view of the global watermark.
    wg: Ts,
    /// Rollback thresholds of past recoveries: pending transactions with
    /// `ts >= threshold` at recovery time were crash-aborted.
    rollbacks: Vec<Ts>,
}

#[derive(Debug)]
struct PartitionWm {
    id: PartitionId,
    /// Active transactions on this partition -> current ts (or lts); 0 means
    /// "not known yet", which pins the watermark.
    active: Mutex<HashMap<TxnId, Ts>>,
    /// Latest *generated* watermark (rule R2 floor).
    wp_generated: AtomicU64,
    /// Latest *published* (durable + broadcast) watermark.
    wp_published: AtomicU64,
    /// Additional floor pushed by the force-update mechanism.
    force_floor: AtomicU64,
    /// Generated watermarks waiting for the persist delay before publication.
    pending_publish: Mutex<VecDeque<(u64, Ts)>>,
    /// Highest logical timestamp this partition has seen being committed —
    /// lets an idle partition's watermark jump straight past everything it
    /// has already processed instead of creeping one tick at a time.
    max_seen_ts: AtomicU64,
    /// Latest watermark received from every partition (including self).
    table: Mutex<Vec<Ts>>,
    /// Global-watermark view and crash-rollback bookkeeping.
    wg: Mutex<WgState>,
    wg_cond: Condvar,
    /// Time of the last watermark generation.
    last_generate_us: AtomicU64,
}

impl PartitionWm {
    fn new(id: PartitionId, n: usize) -> Self {
        PartitionWm {
            id,
            active: Mutex::new(HashMap::new()),
            wp_generated: AtomicU64::new(0),
            wp_published: AtomicU64::new(0),
            force_floor: AtomicU64::new(0),
            max_seen_ts: AtomicU64::new(0),
            pending_publish: Mutex::new(VecDeque::new()),
            table: Mutex::new(vec![0; n]),
            wg: Mutex::new(WgState::default()),
            wg_cond: Condvar::new(),
            last_generate_us: AtomicU64::new(0),
        }
    }

    fn floor(&self) -> Ts {
        // New transactions must exceed (a) the latest generated watermark
        // (rule R2), (b) the force-update floor for lagging partitions and
        // (c) the highest timestamp this partition has already processed —
        // (c) keeps the logical-timestamp domain and the watermark domain
        // aligned so the watermark can track committed work closely.
        self.wp_generated
            .load(Ordering::Acquire)
            .max(self.force_floor.load(Ordering::Acquire))
            .max(self.max_seen_ts.load(Ordering::Acquire))
    }
}

/// Watermark-based group commit (the paper's WM scheme).
pub struct WatermarkCommit {
    cfg: WalConfig,
    num_partitions: usize,
    bus: Arc<DelayedBus>,
    parts: Vec<Arc<PartitionWm>>,
    /// Per-partition replicated durable logs: published watermarks are
    /// appended here (§5.1 — `Wp` is itself a log record) so a replacement
    /// leader can retrieve them from the surviving quorum.
    wals: Vec<Arc<ReplicatedLog>>,
    /// Sequence source for protocols that do not maintain logical timestamps
    /// themselves (2PL / Silo under WM in Fig 11).
    seq_ts: AtomicU64,
    stop: Arc<AtomicBool>,
    agents: Mutex<Vec<JoinHandle<()>>>,
    /// Counts crash recoveries (used by waiters to detect rollbacks that
    /// happened after they registered).
    crash_seq: AtomicU64,
    /// Transactions crash compensation sealed and undid. A waiter that
    /// registered only *after* the crash agreement (its epoch index is past
    /// the rollback entry) but whose write-set was logged *before* it — and
    /// therefore compensated — must still be reported `CrashAborted`, or
    /// the client would be told `Committed` about undone writes.
    rolled_back_txns: Mutex<HashSet<TxnId>>,
    /// Open crash agreements: each entry is the agreed rollback watermark of
    /// a crash whose survivor compensation has not completed yet. While one
    /// is open, version chains may still hold rolled-back versions with
    /// `ts >= agreed`, so the snapshot horizon stays capped below it.
    snapshot_caps: Mutex<Vec<Ts>>,
    /// Highest finalized commit timestamp — only used by the deliberately
    /// unsound `unsafe_latest_commit_horizon` ablation.
    max_finalized: AtomicU64,
    /// Cluster flight recorder, injected after construction. `Arc`-wrapped
    /// because the agent threads are already running by then — they share
    /// the cell and see the recorder as soon as it is set.
    recorder: Arc<OnceLock<Arc<FlightRecorder>>>,
}

impl std::fmt::Debug for WatermarkCommit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatermarkCommit")
            .field("num_partitions", &self.num_partitions)
            .finish()
    }
}

impl WatermarkCommit {
    pub fn new(
        num_partitions: usize,
        cfg: WalConfig,
        bus: Arc<DelayedBus>,
        wals: Vec<Arc<ReplicatedLog>>,
    ) -> Self {
        assert_eq!(wals.len(), num_partitions);
        let parts: Vec<_> = (0..num_partitions)
            .map(|p| Arc::new(PartitionWm::new(PartitionId(p as u32), num_partitions)))
            .collect();
        let wm = WatermarkCommit {
            cfg,
            num_partitions,
            bus,
            parts,
            wals,
            seq_ts: AtomicU64::new(1),
            stop: Arc::new(AtomicBool::new(false)),
            agents: Mutex::new(Vec::new()),
            crash_seq: AtomicU64::new(0),
            rolled_back_txns: Mutex::new(HashSet::new()),
            snapshot_caps: Mutex::new(Vec::new()),
            max_finalized: AtomicU64::new(0),
            recorder: Arc::new(OnceLock::new()),
        };
        wm.start_agents();
        wm
    }

    fn start_agents(&self) {
        let mut agents = self.agents.lock();
        for p in 0..self.num_partitions {
            let part = Arc::clone(&self.parts[p]);
            let bus = Arc::clone(&self.bus);
            let stop = Arc::clone(&self.stop);
            let cfg = self.cfg;
            let all: Vec<Arc<PartitionWm>> = self.parts.clone();
            let wal = Arc::clone(&self.wals[p]);
            let recorder = Arc::clone(&self.recorder);
            let handle = std::thread::Builder::new()
                .name(format!("wm-agent-{p}"))
                .spawn(move || agent_loop(part, all, bus, wal, cfg, stop, recorder))
                .expect("spawn watermark agent");
            agents.push(handle);
        }
    }

    /// Assign a commit sequence timestamp for protocols without logical
    /// timestamps, respecting the watermark floor of the coordinator.
    pub fn assign_seq_ts(&self, coord: PartitionId) -> Ts {
        let floor = self.parts[coord.idx()].floor();
        let v = self.seq_ts.fetch_add(1, Ordering::Relaxed);
        v.max(floor + 1)
    }

    /// Current partition watermark (published) — exposed for tests/benches.
    pub fn partition_watermark(&self, p: PartitionId) -> Ts {
        self.parts[p.idx()].wp_published.load(Ordering::Acquire)
    }

    /// Current global watermark as seen by a partition.
    pub fn global_watermark(&self, p: PartitionId) -> Ts {
        self.parts[p.idx()].wg.lock().wg
    }
}

fn agent_loop(
    me: Arc<PartitionWm>,
    all: Vec<Arc<PartitionWm>>,
    bus: Arc<DelayedBus>,
    wal: Arc<ReplicatedLog>,
    cfg: WalConfig,
    stop: Arc<AtomicBool>,
    recorder: Arc<OnceLock<Arc<FlightRecorder>>>,
) {
    let interval_us = cfg.interval_ms * 1000;
    while !stop.load(Ordering::Relaxed) {
        let now = now_us();

        // 1. Drain control messages and update the watermark table.
        let msgs = bus.drain(me.id);
        if !msgs.is_empty() {
            let mut table = me.table.lock();
            for m in msgs {
                if let BusMessage::PartitionWatermark { from, wp } = m {
                    let slot = &mut table[from.idx()];
                    if *slot < wp {
                        *slot = wp;
                    }
                }
            }
        }

        // 2. Recompute this partition's view of the global watermark.
        {
            let table = me.table.lock();
            let min = table.iter().copied().min().unwrap_or(0);
            drop(table);
            let mut wg = me.wg.lock();
            if min > wg.wg {
                wg.wg = min;
                me.wg_cond.notify_all();
            }
        }

        // 3. Generate a new partition watermark every t_m.
        if now.saturating_sub(me.last_generate_us.load(Ordering::Relaxed)) >= interval_us {
            me.last_generate_us.store(now, Ordering::Relaxed);
            let prev = me.wp_generated.load(Ordering::Acquire);
            // Cluster average for the force-update rule, computed before the
            // active-table lock so the two locks never nest.
            let force_avg = if cfg.force_update && all.len() > 1 {
                let table = me.table.lock();
                let others: Vec<Ts> = (0..all.len())
                    .filter(|i| *i != me.id.idx())
                    .map(|i| table[i])
                    .collect();
                drop(table);
                Some(others.iter().sum::<Ts>() / others.len().max(1) as Ts)
            } else {
                None
            };
            let candidate = {
                // The watermark chases the highest timestamp this partition
                // has processed. Soundness rests on the commit critical
                // section: every transaction that will still log a write-set
                // at `ts <= candidate` is registered in the active table —
                // remote participants from `add_participant` (rule R1, their
                // timestamps are decided by another coordinator's floor) and
                // coordinator-side commits from `reserve_commit_ts` — and
                // caps the candidate. Everything else either appended its
                // log entry before this generation (durable by publication
                // time, one quorum-ack delay later) or reserves its
                // timestamp after it and is forced above the candidate by
                // the floor (rule R2). Candidate selection, the
                // `wp_generated` store and `reserve_commit_ts` all run under
                // the active-table lock, so no reservation can slip between
                // the cap check and the floor becoming visible.
                let target = (prev + 1).max(me.max_seen_ts.load(Ordering::Acquire));
                let active = me.active.lock();
                let mut candidate = match active.values().copied().min() {
                    Some(min_active) => prev.max(target.min(min_active)),
                    None => target,
                };
                // Force-update: if we lag behind the average of the other
                // partitions, push the floor so future transactions (and
                // hence the next watermark) catch up (§5.1, Fig 13b).
                if let Some(avg) = force_avg {
                    if candidate < avg {
                        let delta = avg - candidate;
                        if active.is_empty() {
                            candidate += delta;
                        } else {
                            me.force_floor
                                .fetch_max(candidate + delta, Ordering::AcqRel);
                        }
                    }
                }
                if candidate > prev {
                    me.wp_generated.store(candidate, Ordering::Release);
                }
                candidate
            };
            // The watermark becomes publishable only once its log record is
            // quorum-durable (it is itself a log record, §5.1) — under
            // replication that is the quorum-ack delay, not the leader's
            // local persist delay, so replication cost shows up directly in
            // commit latency. The pipelined append changes none of this:
            // follower copies inherit the sequencer's append timestamp, so
            // quorum durability elapses on the same clock whether the pump
            // has shipped the record yet or not.
            me.pending_publish
                .lock()
                .push_back((now + wal.quorum_ack_delay_us(), candidate));
        }

        // 4. Publish watermarks whose persist delay has elapsed.
        {
            let mut pending = me.pending_publish.lock();
            while let Some((ready_at, wp)) = pending.front().copied() {
                if ready_at > now {
                    break;
                }
                pending.pop_front();
                if wp > me.wp_published.load(Ordering::Acquire) {
                    me.wp_published.store(wp, Ordering::Release);
                    me.table.lock()[me.id.idx()] = wp;
                    // The watermark is itself a log record (§5.1): append it
                    // so a recovering leader can retrieve the latest Wp.
                    wal.append(LogPayload::Watermark { wp });
                    bus.broadcast(me.id, BusMessage::PartitionWatermark { from: me.id, wp });
                    if let Some(rec) = recorder.get() {
                        rec.emit(
                            None,
                            Some(me.id),
                            TraceEventKind::WatermarkPublish { wg: wp },
                        );
                    }
                }
            }
        }

        std::thread::sleep(Duration::from_micros(AGENT_TICK_US));
    }
}

impl GroupCommit for WatermarkCommit {
    fn begin_txn(&self, coord: PartitionId, txn: TxnId) -> Arc<TxnTicket> {
        // Coordinator-side transactions are not registered for their whole
        // lifetime: rule R2 (the `ts_floor` constraint applied atomically in
        // `reserve_commit_ts`) forces their final timestamp above whatever
        // watermark the coordinator generated before they reserved, so the
        // active table only has to pin them for the short commit critical
        // section — reservation to `txn_committed`. *Participants* are
        // registered for the full run (see `add_participant`), because their
        // remote transaction's timestamp is chosen by a different
        // partition's floor.
        TxnTicket::new(txn, coord, 0)
    }

    fn update_ts(&self, ticket: &TxnTicket, ts: Ts) {
        {
            let mut st = ticket.state.lock();
            st.ts = st.ts.max(ts);
        }
        let ts = ticket.current_ts();
        // Propagate to every partition where the transaction is registered.
        let mut involved = ticket.participants();
        involved.push(ticket.coordinator);
        for p in involved {
            let part = &self.parts[p.idx()];
            part.max_seen_ts.fetch_max(ts, Ordering::AcqRel);
            if let Some(slot) = part.active.lock().get_mut(&ticket.txn) {
                if *slot < ts {
                    *slot = ts;
                }
            }
        }
    }

    fn add_participant(&self, ticket: &TxnTicket, p: PartitionId, lts: Ts) {
        {
            let mut st = ticket.state.lock();
            if !st.participants.contains(&p) {
                st.participants.push(p);
            }
        }
        let known = ticket.current_ts().max(lts);
        self.parts[p.idx()].active.lock().insert(ticket.txn, known);
    }

    fn txn_aborted(&self, ticket: &TxnTicket) {
        for p in ticket.involved() {
            self.parts[p.idx()].active.lock().remove(&ticket.txn);
        }
    }

    fn txn_committed(&self, ticket: &TxnTicket, ts: Ts, ops: usize) -> CommitWaiter {
        let _ = ops;
        let final_ts = if ts > 0 {
            ts
        } else if ticket.current_ts() > 0 {
            ticket.current_ts()
        } else {
            self.assign_seq_ts(ticket.coordinator)
        };
        self.max_finalized.fetch_max(final_ts, Ordering::AcqRel);
        let crash_idx = self.parts[ticket.coordinator.idx()]
            .wg
            .lock()
            .rollbacks
            .len();
        for p in ticket.involved() {
            let part = &self.parts[p.idx()];
            part.max_seen_ts.fetch_max(final_ts, Ordering::AcqRel);
            part.active.lock().remove(&ticket.txn);
        }
        CommitWaiter {
            txn: ticket.txn,
            coordinator: ticket.coordinator,
            ts: final_ts,
            epoch: crash_idx as u64,
            ready_at_us: None,
        }
    }

    fn try_outcome(&self, waiter: &CommitWaiter) -> Option<CommitOutcome> {
        if self.rolled_back_txns.lock().contains(&waiter.txn) {
            return Some(CommitOutcome::CrashAborted);
        }
        let part = &self.parts[waiter.coordinator.idx()];
        let wg = part.wg.lock();
        if wg.rollbacks[waiter.epoch as usize..]
            .iter()
            .any(|thr| waiter.ts >= *thr)
        {
            return Some(CommitOutcome::CrashAborted);
        }
        if wg.wg > waiter.ts {
            return Some(CommitOutcome::Committed);
        }
        None
    }

    fn wait_durable(&self, waiter: &CommitWaiter) -> CommitOutcome {
        let part = &self.parts[waiter.coordinator.idx()];
        let mut wg = part.wg.lock();
        loop {
            // Compensation undid this transaction's installed writes: the
            // verdict must say so even if the waiter registered after the
            // crash agreement was recorded.
            if self.rolled_back_txns.lock().contains(&waiter.txn) {
                return CommitOutcome::CrashAborted;
            }
            // Crash rollbacks that happened after this transaction committed.
            if wg.rollbacks[waiter.epoch as usize..]
                .iter()
                .any(|thr| waiter.ts >= *thr)
            {
                return CommitOutcome::CrashAborted;
            }
            if wg.wg > waiter.ts {
                return CommitOutcome::Committed;
            }
            part.wg_cond.wait_for(&mut wg, Duration::from_millis(5));
        }
    }

    fn on_txns_rolled_back(&self, txns: &[TxnId]) {
        self.rolled_back_txns.lock().extend(txns.iter().copied());
    }

    fn ts_floor(&self, partition: PartitionId) -> Ts {
        self.parts[partition.idx()].floor()
    }

    fn reserve_commit_ts(&self, ticket: &TxnTicket, proposed: Ts) -> Ts {
        // Commit critical section (see the trait docs): apply the floor and
        // register the transaction in the coordinator's active table under
        // ONE lock acquisition. The generator computes its candidate and
        // stores `wp_generated` under the same lock, so either this
        // reservation lands first and caps the candidate at `ts`, or the
        // generation lands first and `floor()` already reflects it — in both
        // cases no watermark above `ts` can publish before `txn_committed`
        // (which runs after the write-set is appended) releases the pin.
        // Without this, a thread descheduled between timestamp assignment
        // and `log_txn_writes` lets the watermark expose — to clients and to
        // MVCC snapshot readers — a commit whose log entry a crash would
        // silently drop.
        //
        // The floor is taken over EVERY involved partition, not just the
        // coordinator: a distributed write-set is appended to each
        // participant's log, and an entry timestamped below a watermark that
        // participant already published is (a) instantly snapshot-visible
        // while still inside its persist window and (b) replayed out of
        // order after a crash (replay sorts by `ts`), either of which lets a
        // reader observe a value recovery then takes back. Participants were
        // registered by `add_participant` before the commit point, so their
        // published watermarks are pinned and their floors only rise — the
        // lock-free reads below cannot race a publication past `ts`.
        //
        // `max_seen_ts` is raised on every involved partition here, at
        // reservation, rather than only at `txn_committed` (which the worker
        // runs after the protocol released its locks): the bump must be
        // visible before any conflicting transaction can read this one's
        // writes and reserve its own timestamp, so that per-key timestamp
        // order always matches install order and crash replay — which
        // applies entries in `ts` order — reconstructs exactly the state the
        // live run exposed.
        let part = &self.parts[ticket.coordinator.idx()];
        let mut active = part.active.lock();
        let mut ts = proposed.max(part.floor() + 1);
        for p in ticket.participants() {
            if p != ticket.coordinator {
                ts = ts.max(self.parts[p.idx()].floor() + 1);
            }
        }
        for p in ticket.involved() {
            self.parts[p.idx()]
                .max_seen_ts
                .fetch_max(ts, Ordering::AcqRel);
        }
        active.insert(ticket.txn, ts);
        ts
    }

    fn finalize_commit_ts(&self, ticket: &TxnTicket, hint: Ts) -> Ts {
        let ts = if hint > 0 {
            // The protocol's timestamp is already fixed (it must match what
            // gets installed), so only pin it: future watermarks must not
            // overtake the entry this transaction is about to append.
            self.parts[ticket.coordinator.idx()]
                .active
                .lock()
                .insert(ticket.txn, hint);
            hint
        } else {
            let seq = self.seq_ts.fetch_add(1, Ordering::Relaxed);
            self.reserve_commit_ts(ticket, seq)
        };
        self.max_finalized.fetch_max(ts, Ordering::AcqRel);
        ts
    }

    fn snapshot_horizon(&self, p: PartitionId) -> Ts {
        if self.cfg.unsafe_latest_commit_horizon {
            // Deliberately unsound ablation: expose the newest finalized
            // commit timestamp regardless of durability or crash agreement.
            return self.max_finalized.load(Ordering::Acquire);
        }
        // Everything with `ts < Wg` (this partition's view) has been reported
        // `Committed` — durable on every participant and below every possible
        // future crash agreement *once compensation for open crashes is
        // done*. While a crash agreement is still compensating, survivors may
        // hold to-be-undone versions with `ts >= agreed`, so the horizon is
        // capped at `agreed - 1` until `on_compensation_complete`.
        let mut h = self.parts[p.idx()].wg.lock().wg.saturating_sub(1);
        if let Some(cap) = self.snapshot_caps.lock().iter().min() {
            h = h.min(cap.saturating_sub(1));
        }
        h
    }

    fn on_compensation_complete(&self) {
        // Survivor compensation for the oldest open crash finished: no
        // rolled-back version above that agreement survives in any chain.
        let mut caps = self.snapshot_caps.lock();
        if let Some(idx) = caps
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
        {
            caps.swap_remove(idx);
        }
    }

    fn replay_bound(
        &self,
        crash_token: Ts,
        _log: &ReplicatedLog,
        _cutoff_lsn: Option<u64>,
    ) -> ReplayBound {
        // The agreed watermark from `on_partition_crash` separates durable
        // results (ts < Wp, already returned to clients) from rolled-back
        // ones (§5.2).
        ReplayBound::Ts(crash_token)
    }

    fn survivor_rollback_bound(&self, crash_token: Ts, _log: &ReplicatedLog) -> ReplayBound {
        // The agreement (§5.2) applies cluster-wide: every transaction with
        // `ts >= agreed` is reported `CrashAborted`, wherever it installed —
        // surviving partitions must undo exactly the entries above the token.
        ReplayBound::Ts(crash_token)
    }

    fn checkpoint_bound(&self, p: PartitionId, _log: &ReplicatedLog) -> ReplayBound {
        // Fold only below this partition's view of the *global* watermark: a
        // crash rolls the cluster back to the agreed watermark, which is the
        // maximum of all `Wg` views — at least this partition's own view, but
        // possibly *below* its published `Wp`. Folding up to `Wp` could bake
        // a transaction into an image that a later crash still rolls back;
        // a transaction below our `Wg` view can never be rolled back again.
        ReplayBound::Ts(self.parts[p.idx()].wg.lock().wg)
    }

    fn on_partition_recover(&self, p: PartitionId, recovered_wp: Ts) {
        // Re-seed the recovered leader's watermark state from the recovered
        // `Wp` (§5.2): its next generated watermark continues from there
        // instead of restarting at zero and dragging `Wg` backwards.
        let part = &self.parts[p.idx()];
        part.wp_generated.fetch_max(recovered_wp, Ordering::AcqRel);
        part.wp_published.fetch_max(recovered_wp, Ordering::AcqRel);
        part.max_seen_ts.fetch_max(recovered_wp, Ordering::AcqRel);
        part.active.lock().clear();
        for other in &self.parts {
            let mut table = other.table.lock();
            if table[p.idx()] < recovered_wp {
                table[p.idx()] = recovered_wp;
            }
        }
        part.wg_cond.notify_all();
    }

    fn on_partition_crash(&self, p: PartitionId) -> Ts {
        self.crash_seq.fetch_add(1, Ordering::SeqCst);
        // Agreement (§5.2): every leader publishes its current view of the
        // global watermark; the maximum of those views is adopted. It is
        // >= every view ever used to report results (safe for clients) and
        // <= every partition's durable watermark (safe for durability).
        let agreed = self
            .parts
            .iter()
            .map(|part| part.wg.lock().wg)
            .max()
            .unwrap_or(0);
        for part in &self.parts {
            let mut wg = part.wg.lock();
            wg.rollbacks.push(agreed);
            // The crashed partition recovers from its durable log; the whole
            // cluster resumes from the agreed watermark.
            if wg.wg < agreed {
                wg.wg = agreed;
            }
            part.wg_cond.notify_all();
            {
                let mut table = part.table.lock();
                if table[p.idx()] < agreed {
                    table[p.idx()] = agreed;
                }
            }
            part.wp_generated.fetch_max(agreed, Ordering::AcqRel);
            part.force_floor.fetch_max(agreed, Ordering::AcqRel);
        }
        // Abort every transaction still active on the crashed partition.
        self.parts[p.idx()].active.lock().clear();
        // Snapshot readers must not observe versions the survivor
        // compensation is about to undo (`ts >= agreed`): cap the horizon
        // until `on_compensation_complete`.
        self.snapshot_caps.lock().push(agreed);
        agreed
    }

    fn set_recorder(&self, recorder: Arc<FlightRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    fn label(&self) -> &'static str {
        "Watermark"
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let mut agents = self.agents.lock();
        for h in agents.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WatermarkCommit {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize, interval_ms: u64) -> (WatermarkCommit, Arc<DelayedBus>) {
        let bus = DelayedBus::new(n, 100);
        let cfg = WalConfig {
            scheme: primo_common::config::LoggingScheme::Watermark,
            interval_ms,
            persist_delay_us: 100,
            force_update: true,
            ..WalConfig::default()
        };
        let wals = crate::build_logs(n, cfg);
        (WatermarkCommit::new(n, cfg, Arc::clone(&bus), wals), bus)
    }

    fn tid(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    #[test]
    fn idle_cluster_watermark_advances() {
        let (wm, _bus) = make(2, 1);
        std::thread::sleep(Duration::from_millis(50));
        assert!(wm.partition_watermark(PartitionId(0)) > 0);
        assert!(wm.global_watermark(PartitionId(0)) > 0);
        wm.shutdown();
    }

    #[test]
    fn committed_txn_becomes_durable() {
        let (wm, _bus) = make(2, 1);
        let ticket = wm.begin_txn(PartitionId(0), tid(1));
        wm.update_ts(&ticket, 5);
        let waiter = wm.txn_committed(&ticket, 5, 4);
        let outcome = wm.wait_durable(&waiter);
        assert_eq!(outcome, CommitOutcome::Committed);
        wm.shutdown();
    }

    #[test]
    fn in_flight_remote_txn_pins_participant_watermark() {
        let (wm, _bus) = make(2, 1);
        // A transaction coordinated by P0 remote-reads on P1 with a lower
        // bound of 3: P1's watermark must not overtake it while it is active.
        let ticket = wm.begin_txn(PartitionId(0), tid(1));
        wm.add_participant(&ticket, PartitionId(1), 3);
        std::thread::sleep(Duration::from_millis(40));
        assert!(wm.partition_watermark(PartitionId(1)) <= 3);
        // Finishing the transaction unpins it.
        let waiter = wm.txn_committed(&ticket, 3, 1);
        assert_eq!(wm.wait_durable(&waiter), CommitOutcome::Committed);
        std::thread::sleep(Duration::from_millis(40));
        assert!(wm.partition_watermark(PartitionId(1)) > 3);
        wm.shutdown();
    }

    #[test]
    fn reserved_commit_ts_pins_the_coordinator_watermark() {
        let (wm, _bus) = make(2, 1);
        std::thread::sleep(Duration::from_millis(30));
        // Reservation = the commit critical section: the returned timestamp
        // exceeds every published watermark, and until `txn_committed` (which
        // runs after the write-set is appended) no watermark above it may be
        // generated — a published `Wp > ts` claims the entry is durable,
        // while it is still on its way to the log. Regression for the crash
        // race where a thread descheduled between timestamp assignment and
        // the log append let the watermark expose an undurable commit.
        let ticket = wm.begin_txn(PartitionId(0), tid(9));
        let ts = wm.reserve_commit_ts(&ticket, 0);
        assert!(ts > wm.partition_watermark(PartitionId(0)));
        std::thread::sleep(Duration::from_millis(40));
        assert!(
            wm.partition_watermark(PartitionId(0)) <= ts,
            "the watermark overtook a reserved, not-yet-logged commit"
        );
        // Completing the commit releases the pin.
        let waiter = wm.txn_committed(&ticket, ts, 1);
        assert_eq!(wm.wait_durable(&waiter), CommitOutcome::Committed);
        std::thread::sleep(Duration::from_millis(40));
        assert!(wm.partition_watermark(PartitionId(0)) > ts);
        wm.shutdown();
    }

    #[test]
    fn ts_floor_grows_over_time() {
        let (wm, _bus) = make(2, 1);
        std::thread::sleep(Duration::from_millis(30));
        let f1 = wm.ts_floor(PartitionId(0));
        std::thread::sleep(Duration::from_millis(30));
        let f2 = wm.ts_floor(PartitionId(0));
        assert!(f2 >= f1);
        assert!(f2 > 0);
        wm.shutdown();
    }

    #[test]
    fn crash_aborts_pending_transaction() {
        let (wm, _bus) = make(2, 200); // long interval: Wg will not advance
        let ticket = wm.begin_txn(PartitionId(0), tid(7));
        wm.update_ts(&ticket, 1_000_000);
        let waiter = wm.txn_committed(&ticket, 1_000_000, 2);
        // Crash partition 1 before the watermark can cover ts=1_000_000.
        let agreed = wm.on_partition_crash(PartitionId(1));
        assert!(agreed < 1_000_000);
        assert_eq!(wm.wait_durable(&waiter), CommitOutcome::CrashAborted);
        wm.shutdown();
    }

    #[test]
    fn published_watermarks_are_logged_and_recovery_reseeds() {
        let bus = DelayedBus::new(2, 100);
        let cfg = WalConfig {
            scheme: primo_common::config::LoggingScheme::Watermark,
            interval_ms: 1,
            persist_delay_us: 100,
            force_update: true,
            ..WalConfig::default()
        };
        let wals = crate::build_logs(2, cfg);
        let wm = WatermarkCommit::new(2, cfg, bus, wals.clone());
        std::thread::sleep(Duration::from_millis(50));
        // Published watermarks land in the partition's durable log (§5.1).
        let logged = wals[0].latest_durable_watermark().expect("Wp logged");
        assert!(logged > 0);
        assert!(logged <= wm.partition_watermark(PartitionId(0)));
        // Crash + recover: the partition watermark continues from the
        // recovered Wp instead of restarting below it.
        let agreed = wm.on_partition_crash(PartitionId(1));
        let recovered = agreed.max(1_000);
        wm.on_partition_recover(PartitionId(1), recovered);
        assert!(wm.partition_watermark(PartitionId(1)) >= recovered);
        assert_eq!(
            wm.replay_bound(agreed, &wals[1], None),
            crate::ReplayBound::Ts(agreed)
        );
        wm.shutdown();
    }

    #[test]
    fn finalize_commit_ts_passes_hints_and_sequences_zero() {
        let (wm, _bus) = make(2, 1);
        let ticket = wm.begin_txn(PartitionId(0), tid(1));
        assert_eq!(wm.finalize_commit_ts(&ticket, 77), 77);
        let a = wm.finalize_commit_ts(&ticket, 0);
        let b = wm.finalize_commit_ts(&ticket, 0);
        assert!(a > 0 && b > 0);
        wm.shutdown();
    }

    #[test]
    fn snapshot_horizon_trails_the_global_watermark() {
        let (wm, _bus) = make(2, 1);
        std::thread::sleep(Duration::from_millis(50));
        let p = PartitionId(0);
        let h = wm.snapshot_horizon(p);
        let wg = wm.global_watermark(p);
        assert!(h > 0, "idle cluster horizon should advance");
        assert!(h < wg, "horizon must stay strictly below the Wg view");
        wm.shutdown();
    }

    #[test]
    fn crash_caps_the_horizon_until_compensation_completes() {
        let (wm, _bus) = make(2, 1);
        std::thread::sleep(Duration::from_millis(40));
        let p = PartitionId(0);
        let agreed = wm.on_partition_crash(PartitionId(1));
        // While survivors still hold to-be-compensated versions with
        // ts >= agreed, no snapshot may include them.
        assert!(wm.snapshot_horizon(p) < agreed.max(1));
        wm.on_compensation_complete();
        // Wg was bumped to at least `agreed` by the crash agreement, so the
        // uncapped horizon reaches past it again.
        std::thread::sleep(Duration::from_millis(40));
        assert!(wm.snapshot_horizon(p) >= agreed);
        wm.shutdown();
    }

    #[test]
    fn unsafe_horizon_knob_exposes_undurable_commits() {
        let bus = DelayedBus::new(2, 100);
        let cfg = WalConfig {
            scheme: primo_common::config::LoggingScheme::Watermark,
            interval_ms: 200, // Wg will not catch up during the test
            persist_delay_us: 100,
            force_update: true,
            unsafe_latest_commit_horizon: true,
            ..WalConfig::default()
        };
        let wals = crate::build_logs(2, cfg);
        let wm = WatermarkCommit::new(2, cfg, bus, wals);
        let ticket = wm.begin_txn(PartitionId(0), tid(3));
        wm.update_ts(&ticket, 500_000);
        let _ = wm.txn_committed(&ticket, 500_000, 1);
        // The ablation horizon races ahead of durability: it reports the
        // freshly committed (but not yet watermark-covered) timestamp.
        assert_eq!(wm.snapshot_horizon(PartitionId(0)), 500_000);
        assert!(wm.global_watermark(PartitionId(0)) < 500_000);
        wm.shutdown();
    }

    #[test]
    fn seq_ts_is_monotonic_and_above_floor() {
        let (wm, _bus) = make(2, 1);
        std::thread::sleep(Duration::from_millis(20));
        let a = wm.assign_seq_ts(PartitionId(0));
        let b = wm.assign_seq_ts(PartitionId(0));
        assert!(b > 0);
        assert!(a > wm.partition_watermark(PartitionId(0)).saturating_sub(1));
        // Not necessarily a < b when the floor jumps, but both exceed 0.
        wm.shutdown();
    }
}
