//! Controlled Lock Violation (CLV) — Graefe et al., SIGMOD '13.
//!
//! CLV releases locks before the log is durable (like group commit) but
//! acknowledges each transaction individually as soon as *its* log records
//! and those of the transactions it depends on are durable. The price is
//! fine-grained dependency tracking on every record access, which the paper
//! finds makes CLV slower than either COCO or the watermark scheme (Fig 11).
//!
//! Model: a per-record-access tracking cost is charged on the critical path
//! at commit time; the commit is acknowledged once the per-transaction
//! persist delay has elapsed (dependencies are older, hence durable by then).

use crate::group_commit::{CommitOutcome, CommitWaiter, GroupCommit, SeqTsSource, TxnTicket};
use crate::replicated::ReplicatedLog;
use crate::snapshot::{Release, SnapshotTracker};
use parking_lot::Mutex;
use primo_common::config::WalConfig;
use primo_common::sim_time::{charge_latency_us, now_us};
use primo_common::{PartitionId, Ts, TxnId};
use primo_trace::{FlightRecorder, TraceEventKind};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

// Replay under CLV is bounded purely by the quorum-durable LSN captured at
// crash time (the trait default): a transaction is acknowledged exactly when
// its log records are quorum-durable, so "quorum-durable at crash" and
// "acknowledged" coincide.

/// Cost of maintaining the dependency graph, per record accessed,
/// microseconds (charged in the transaction's critical path).
const TRACK_COST_PER_OP_US: u64 = 2;

/// Controlled-Lock-Violation durability scheme.
#[derive(Debug)]
pub struct ClvCommit {
    num_partitions: usize,
    /// Time of the last injected crash (0 = never).
    crash_at_us: AtomicU64,
    /// Commit-timestamp sequence for protocols without logical timestamps.
    seq_ts: SeqTsSource,
    /// Acknowledgement delay: the time until a transaction's log records
    /// are *quorum*-durable (the worst partition's quorum-ack delay —
    /// equals the plain persist delay when the log is single-copy).
    ack_delay_us: u64,
    /// Transactions crash compensation sealed and undid (their verdict must
    /// be `CrashAborted` even if the commit-time window check would let
    /// them through — see [`GroupCommit::on_txns_rolled_back`]).
    rolled_back_txns: Mutex<HashSet<TxnId>>,
    /// MVCC snapshot-horizon bookkeeping: the quorum-acked durable horizon.
    tracker: SnapshotTracker,
    /// Cluster flight recorder, injected after construction.
    recorder: OnceLock<Arc<FlightRecorder>>,
}

impl ClvCommit {
    pub fn new(num_partitions: usize, cfg: WalConfig, logs: Vec<Arc<ReplicatedLog>>) -> Self {
        // CLV acknowledges a commit when its log records (and its
        // dependencies') are quorum-durable. The delay is a property of the
        // replica set's disks and hops — the append pipeline's pump stamps
        // followers with the sequencer's append instant, so this constant
        // is exact regardless of when staged entries actually ship.
        let ack_delay_us = crate::max_quorum_ack_delay_us(&logs, cfg.persist_delay_us);
        ClvCommit {
            num_partitions,
            crash_at_us: AtomicU64::new(0),
            seq_ts: SeqTsSource::new(),
            ack_delay_us,
            rolled_back_txns: Mutex::new(HashSet::new()),
            tracker: SnapshotTracker::new(cfg.unsafe_latest_commit_horizon),
            recorder: OnceLock::new(),
        }
    }

    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Whether a transaction acknowledged at `ready_at` is rolled back by
    /// the last crash: its persist window — `[ready_at - ack_delay,
    /// ready_at)`, i.e. from its commit call to its quorum-durability point
    /// — must *span* the crash instant. Commits that were durable before
    /// the crash keep their acknowledgement; commits *started* after the
    /// crash instant lose nothing (their log records live on surviving
    /// partitions and become durable normally), so they are committed, not
    /// rolled back — otherwise every commit during the whole outage would
    /// be falsely crash-aborted without ever being compensated.
    fn crash_rolled_back(&self, ready_at: u64) -> bool {
        let crash = self.crash_at_us.load(Ordering::Acquire);
        crash != 0 && crash < ready_at && ready_at.saturating_sub(self.ack_delay_us) <= crash
    }
}

impl GroupCommit for ClvCommit {
    fn begin_txn(&self, coord: PartitionId, txn: TxnId) -> std::sync::Arc<TxnTicket> {
        self.tracker.begin(txn);
        TxnTicket::new(txn, coord, 0)
    }

    fn add_participant(&self, ticket: &TxnTicket, p: PartitionId, _lts: Ts) {
        let mut st = ticket.state.lock();
        if !st.participants.contains(&p) {
            st.participants.push(p);
        }
    }

    fn txn_aborted(&self, ticket: &TxnTicket) {
        self.tracker.abort(ticket.txn);
    }

    fn txn_committed(&self, ticket: &TxnTicket, ts: Ts, ops: usize) -> CommitWaiter {
        // Dependency tracking: every accessed record's last-writer tag must be
        // recorded and checked. This happens while the transaction is still
        // on a worker, i.e. on the critical path.
        charge_latency_us(TRACK_COST_PER_OP_US * ops as u64);
        let ready_at = now_us() + self.ack_delay_us;
        // The snapshot horizon may pass this commit only once its quorum-ack
        // deadline has elapsed; a commit whose persist window the crash
        // already spans is doomed and caps the horizon until compensation.
        self.tracker.commit(
            ticket.txn,
            ts,
            Release::AtUs(ready_at),
            self.crash_rolled_back(ready_at),
        );
        // CLV's per-transaction durability decision: the cut after which this
        // commit (and its dependencies, older and hence durable first) is
        // acknowledgeable.
        if let Some(rec) = self.recorder.get() {
            rec.emit(
                Some(ticket.txn),
                Some(ticket.coordinator),
                TraceEventKind::ClvCut { ts },
            );
        }
        CommitWaiter {
            txn: ticket.txn,
            coordinator: ticket.coordinator,
            ts,
            epoch: 0,
            ready_at_us: Some(ready_at),
        }
    }

    fn try_outcome(&self, waiter: &CommitWaiter) -> Option<CommitOutcome> {
        if self.rolled_back_txns.lock().contains(&waiter.txn) {
            return Some(CommitOutcome::CrashAborted);
        }
        let ready_at = waiter.ready_at_us.unwrap_or(0);
        if self.crash_rolled_back(ready_at) {
            return Some(CommitOutcome::CrashAborted);
        }
        if now_us() >= ready_at {
            Some(CommitOutcome::Committed)
        } else {
            None
        }
    }

    fn wait_durable(&self, waiter: &CommitWaiter) -> CommitOutcome {
        let ready_at = waiter.ready_at_us.unwrap_or(0);
        // A crash whose instant falls inside this transaction's persist
        // window rolls it back — checked before and after the durability
        // wait, since the crash may be injected while we sleep.
        if self.rolled_back_txns.lock().contains(&waiter.txn) || self.crash_rolled_back(ready_at) {
            return CommitOutcome::CrashAborted;
        }
        let now = now_us();
        if ready_at > now {
            charge_latency_us(ready_at - now);
        }
        if self.rolled_back_txns.lock().contains(&waiter.txn) || self.crash_rolled_back(ready_at) {
            return CommitOutcome::CrashAborted;
        }
        CommitOutcome::Committed
    }

    fn on_txns_rolled_back(&self, txns: &[TxnId]) {
        self.rolled_back_txns.lock().extend(txns.iter().copied());
    }

    fn ts_floor(&self, _partition: PartitionId) -> Ts {
        // Every new commit timestamp must exceed the highest finalized one,
        // or a straggler could install a version at or below the published
        // snapshot horizon (stability property of the horizon).
        self.tracker.ts_floor()
    }

    fn finalize_commit_ts(&self, _ticket: &TxnTicket, hint: Ts) -> Ts {
        let ts = self.seq_ts.finalize_above(hint, self.tracker.ts_floor());
        self.tracker.note_finalized(ts);
        ts
    }

    fn snapshot_horizon(&self, _partition: PartitionId) -> Ts {
        self.tracker.horizon(now_us())
    }

    fn on_compensation_complete(&self) {
        self.tracker.compensation_complete();
    }

    fn survivor_rollback_bound(
        &self,
        crash_token: Ts,
        _log: &crate::ReplicatedLog,
    ) -> crate::ReplayBound {
        // `crash_token` is the crash instant. A transaction is acknowledged
        // exactly when its log records are durable, so the commits rolled
        // back are precisely those whose persist window spans the crash (see
        // `crash_rolled_back`) — on every partition, survivors included.
        // Entries durable before the crash, and entries appended after it
        // (post-crash commits), stay committed.
        crate::ReplayBound::PersistWindow(crash_token)
    }

    fn on_partition_crash(&self, p: PartitionId) -> Ts {
        let t = now_us();
        self.crash_at_us.store(t, Ordering::Release);
        // Pending commits whose persist window spans the crash will be
        // rolled back: keep them capping the snapshot horizon until
        // compensation has purged their versions. The crashed partition's
        // in-flight transactions will never report back.
        self.tracker.doom_window(t, self.ack_delay_us);
        self.tracker.drop_actives_of(p);
        t
    }

    fn on_partition_recover(&self, _p: PartitionId, _recovered_wp: Ts) {
        // The crash is resolved: transactions committing from now on are no
        // longer rolled back against the old crash instant. (Without this,
        // every post-recovery commit would compare its fresh `ready_at`
        // against the stale crash time and abort forever.)
        self.crash_at_us.store(0, Ordering::Release);
    }

    fn set_recorder(&self, recorder: Arc<FlightRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    fn label(&self) -> &'static str {
        "CLV"
    }

    fn shutdown(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::LoggingScheme;

    fn make() -> ClvCommit {
        let cfg = WalConfig {
            scheme: LoggingScheme::Clv,
            interval_ms: 10,
            persist_delay_us: 300,
            force_update: false,
            ..WalConfig::default()
        };
        ClvCommit::new(2, cfg, crate::build_logs(2, cfg))
    }

    fn tid(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    #[test]
    fn commit_waits_for_persist_delay() {
        let gc = make();
        let ticket = gc.begin_txn(PartitionId(0), tid(1));
        let start = std::time::Instant::now();
        let waiter = gc.txn_committed(&ticket, 1, 5);
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::Committed);
        let us = start.elapsed().as_micros() as u64;
        assert!(us >= 300, "waited only {us}us");
    }

    #[test]
    fn tracking_cost_scales_with_ops() {
        let gc = make();
        let ticket = gc.begin_txn(PartitionId(0), tid(2));
        let start = std::time::Instant::now();
        let _ = gc.txn_committed(&ticket, 1, 50);
        assert!(start.elapsed().as_micros() >= 90);
    }

    #[test]
    fn replication_raises_the_acknowledgement_delay() {
        // Leader disk 100us, remote replicas 900us: CLV may only acknowledge
        // once a quorum (leader + one remote) persisted, so the wait is the
        // remote's delay, not the local disk's.
        let cfg = WalConfig {
            scheme: LoggingScheme::Clv,
            interval_ms: 10,
            persist_delay_us: 100,
            force_update: false,
            replication_factor: 3,
            replica_persist_delay_us: Some(900),
            ..WalConfig::default()
        };
        let gc = ClvCommit::new(1, cfg, crate::build_logs(1, cfg));
        let ticket = gc.begin_txn(PartitionId(0), tid(9));
        let start = std::time::Instant::now();
        let waiter = gc.txn_committed(&ticket, 1, 1);
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::Committed);
        let us = start.elapsed().as_micros() as u64;
        assert!(us >= 850, "quorum ack must gate the return, waited {us}us");
    }

    #[test]
    fn crash_before_durability_aborts() {
        let gc = make();
        let ticket = gc.begin_txn(PartitionId(0), tid(3));
        let waiter = gc.txn_committed(&ticket, 1, 1);
        gc.on_partition_crash(PartitionId(1));
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::CrashAborted);
        assert_eq!(gc.num_partitions(), 2);
    }

    #[test]
    fn snapshot_horizon_trails_quorum_ack() {
        let gc = make();
        let p = PartitionId(0);
        let ticket = gc.begin_txn(p, tid(7));
        let ts = gc.finalize_commit_ts(&ticket, 0);
        let waiter = gc.txn_committed(&ticket, ts, 1);
        assert!(
            gc.snapshot_horizon(p) < ts,
            "an unacknowledged commit must stay above the horizon"
        );
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::Committed);
        assert_eq!(gc.snapshot_horizon(p), ts);
        // New transactions start above everything finalized.
        assert!(gc.ts_floor(p) >= ts);
    }

    #[test]
    fn crash_doomed_commit_never_enters_the_horizon() {
        let gc = make();
        let p = PartitionId(0);
        let ticket = gc.begin_txn(p, tid(8));
        let ts = gc.finalize_commit_ts(&ticket, 0);
        let waiter = gc.txn_committed(&ticket, ts, 1);
        gc.on_partition_crash(PartitionId(1));
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::CrashAborted);
        // Long after the ack deadline the rolled-back commit still caps the
        // horizon — until compensation reports the chains clean.
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(gc.snapshot_horizon(p) < ts);
        gc.on_compensation_complete();
        assert!(
            gc.snapshot_horizon(p) < ts,
            "rolled-back ts is never readable"
        );
    }
}
