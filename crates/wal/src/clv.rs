//! Controlled Lock Violation (CLV) — Graefe et al., SIGMOD '13.
//!
//! CLV releases locks before the log is durable (like group commit) but
//! acknowledges each transaction individually as soon as *its* log records
//! and those of the transactions it depends on are durable. The price is
//! fine-grained dependency tracking on every record access, which the paper
//! finds makes CLV slower than either COCO or the watermark scheme (Fig 11).
//!
//! Model: a per-record-access tracking cost is charged on the critical path
//! at commit time; the commit is acknowledged once the per-transaction
//! persist delay has elapsed (dependencies are older, hence durable by then).

use crate::group_commit::{CommitOutcome, CommitWaiter, GroupCommit, SeqTsSource, TxnTicket};
use primo_common::config::WalConfig;
use primo_common::sim_time::{charge_latency_us, now_us};
use primo_common::{PartitionId, Ts, TxnId};
use std::sync::atomic::{AtomicU64, Ordering};

// Replay under CLV is bounded purely by the durable LSN captured at crash
// time (the trait default): a transaction is acknowledged exactly when its
// log records are durable, so "durable at crash" and "acknowledged" coincide.

/// Cost of maintaining the dependency graph, per record accessed,
/// microseconds (charged in the transaction's critical path).
const TRACK_COST_PER_OP_US: u64 = 2;

/// Controlled-Lock-Violation durability scheme.
#[derive(Debug)]
pub struct ClvCommit {
    cfg: WalConfig,
    num_partitions: usize,
    /// Time of the last injected crash (0 = never).
    crash_at_us: AtomicU64,
    /// Commit-timestamp sequence for protocols without logical timestamps.
    seq_ts: SeqTsSource,
}

impl ClvCommit {
    pub fn new(num_partitions: usize, cfg: WalConfig) -> Self {
        ClvCommit {
            cfg,
            num_partitions,
            crash_at_us: AtomicU64::new(0),
            seq_ts: SeqTsSource::new(),
        }
    }

    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }
}

impl GroupCommit for ClvCommit {
    fn begin_txn(&self, coord: PartitionId, txn: TxnId) -> std::sync::Arc<TxnTicket> {
        TxnTicket::new(txn, coord, 0)
    }

    fn add_participant(&self, ticket: &TxnTicket, p: PartitionId, _lts: Ts) {
        let mut st = ticket.state.lock();
        if !st.participants.contains(&p) {
            st.participants.push(p);
        }
    }

    fn txn_aborted(&self, _ticket: &TxnTicket) {}

    fn txn_committed(&self, ticket: &TxnTicket, ts: Ts, ops: usize) -> CommitWaiter {
        // Dependency tracking: every accessed record's last-writer tag must be
        // recorded and checked. This happens while the transaction is still
        // on a worker, i.e. on the critical path.
        charge_latency_us(TRACK_COST_PER_OP_US * ops as u64);
        CommitWaiter {
            txn: ticket.txn,
            coordinator: ticket.coordinator,
            ts,
            epoch: 0,
            ready_at_us: Some(now_us() + self.cfg.persist_delay_us),
        }
    }

    fn try_outcome(&self, waiter: &CommitWaiter) -> Option<CommitOutcome> {
        let ready_at = waiter.ready_at_us.unwrap_or(0);
        let crash = self.crash_at_us.load(Ordering::Acquire);
        if crash != 0 && crash < ready_at {
            return Some(CommitOutcome::CrashAborted);
        }
        if now_us() >= ready_at {
            Some(CommitOutcome::Committed)
        } else {
            None
        }
    }

    fn wait_durable(&self, waiter: &CommitWaiter) -> CommitOutcome {
        let ready_at = waiter.ready_at_us.unwrap_or(0);
        let crash = self.crash_at_us.load(Ordering::Acquire);
        // A crash that happened before this transaction's log became durable
        // rolls it back.
        if crash != 0 && crash < ready_at {
            return CommitOutcome::CrashAborted;
        }
        let now = now_us();
        if ready_at > now {
            charge_latency_us(ready_at - now);
        }
        let crash = self.crash_at_us.load(Ordering::Acquire);
        if crash != 0 && crash >= now && crash < ready_at {
            return CommitOutcome::CrashAborted;
        }
        CommitOutcome::Committed
    }

    fn finalize_commit_ts(&self, _ticket: &TxnTicket, hint: Ts) -> Ts {
        self.seq_ts.finalize(hint)
    }

    fn on_partition_crash(&self, _p: PartitionId) -> Ts {
        let t = now_us();
        self.crash_at_us.store(t, Ordering::Release);
        t
    }

    fn on_partition_recover(&self, _p: PartitionId, _recovered_wp: Ts) {
        // The crash is resolved: transactions committing from now on are no
        // longer rolled back against the old crash instant. (Without this,
        // every post-recovery commit would compare its fresh `ready_at`
        // against the stale crash time and abort forever.)
        self.crash_at_us.store(0, Ordering::Release);
    }

    fn label(&self) -> &'static str {
        "CLV"
    }

    fn shutdown(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::LoggingScheme;

    fn make() -> ClvCommit {
        ClvCommit::new(
            2,
            WalConfig {
                scheme: LoggingScheme::Clv,
                interval_ms: 10,
                persist_delay_us: 300,
                force_update: false,
            },
        )
    }

    fn tid(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    #[test]
    fn commit_waits_for_persist_delay() {
        let gc = make();
        let ticket = gc.begin_txn(PartitionId(0), tid(1));
        let start = std::time::Instant::now();
        let waiter = gc.txn_committed(&ticket, 1, 5);
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::Committed);
        let us = start.elapsed().as_micros() as u64;
        assert!(us >= 300, "waited only {us}us");
    }

    #[test]
    fn tracking_cost_scales_with_ops() {
        let gc = make();
        let ticket = gc.begin_txn(PartitionId(0), tid(2));
        let start = std::time::Instant::now();
        let _ = gc.txn_committed(&ticket, 1, 50);
        assert!(start.elapsed().as_micros() >= 90);
    }

    #[test]
    fn crash_before_durability_aborts() {
        let gc = make();
        let ticket = gc.begin_txn(PartitionId(0), tid(3));
        let waiter = gc.txn_committed(&ticket, 1, 1);
        gc.on_partition_crash(PartitionId(1));
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::CrashAborted);
        assert_eq!(gc.num_partitions(), 2);
    }
}
