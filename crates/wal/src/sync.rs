//! Classic synchronous per-transaction durability.
//!
//! Not used in the paper's figures (all baselines get group commit for
//! fairness, §6.1.3) but kept as a reference point and for ablation
//! experiments: it shows what the durability delay costs when it sits on the
//! transaction's critical path.

use crate::group_commit::{CommitOutcome, CommitWaiter, GroupCommit, SeqTsSource, TxnTicket};
use crate::replicated::ReplicatedLog;
use crate::snapshot::{Release, SnapshotTracker};
use primo_common::config::WalConfig;
use primo_common::sim_time::{charge_latency_us, now_us};
use primo_common::{PartitionId, Ts, TxnId};
use std::sync::Arc;
// Replay after a crash is bounded purely by the quorum-durable LSN captured
// at the crash instant (the trait default): the synchronous flush means
// every acknowledged transaction's log records are quorum-durable by
// construction.

/// Synchronous per-transaction flush.
#[derive(Debug)]
pub struct SyncCommit {
    num_partitions: usize,
    /// Synchronous flush cost: the transaction waits until its log records
    /// are *quorum*-durable (the worst partition's quorum-ack delay).
    ack_delay_us: u64,
    /// Commit-timestamp sequence for protocols without logical timestamps.
    seq_ts: SeqTsSource,
    /// MVCC snapshot-horizon bookkeeping: a synchronously flushed commit is
    /// durable-forever the moment its commit call returns.
    tracker: SnapshotTracker,
}

impl SyncCommit {
    pub fn new(num_partitions: usize, cfg: WalConfig, logs: Vec<Arc<ReplicatedLog>>) -> Self {
        // A sync commit stalls the caller for the full quorum-ack window.
        // Replication itself still runs through the append pipeline's
        // background pump; since followers inherit the sequencer's append
        // timestamp, waiting out this constant is exactly equivalent to
        // waiting for the slowest quorum replica's persist.
        let ack_delay_us = crate::max_quorum_ack_delay_us(&logs, cfg.persist_delay_us);
        SyncCommit {
            num_partitions,
            ack_delay_us,
            seq_ts: SeqTsSource::new(),
            tracker: SnapshotTracker::new(cfg.unsafe_latest_commit_horizon),
        }
    }

    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }
}

impl GroupCommit for SyncCommit {
    fn begin_txn(&self, coord: PartitionId, txn: TxnId) -> std::sync::Arc<TxnTicket> {
        self.tracker.begin(txn);
        TxnTicket::new(txn, coord, 0)
    }

    fn add_participant(&self, ticket: &TxnTicket, p: PartitionId, _lts: Ts) {
        let mut st = ticket.state.lock();
        if !st.participants.contains(&p) {
            st.participants.push(p);
        }
    }

    fn txn_aborted(&self, ticket: &TxnTicket) {
        self.tracker.abort(ticket.txn);
    }

    fn txn_committed(&self, ticket: &TxnTicket, ts: Ts, _ops: usize) -> CommitWaiter {
        // The flush happens right here, synchronously, while the worker (and
        // in a 2PC protocol, the prepare/commit handling) is still pending.
        charge_latency_us(self.ack_delay_us);
        // Quorum-durable before the commit call returns: the snapshot
        // horizon may include it immediately.
        self.tracker.commit(ticket.txn, ts, Release::Now, false);
        CommitWaiter {
            txn: ticket.txn,
            coordinator: ticket.coordinator,
            ts,
            epoch: 0,
            ready_at_us: None,
        }
    }

    fn wait_durable(&self, _waiter: &CommitWaiter) -> CommitOutcome {
        CommitOutcome::Committed
    }

    fn try_outcome(&self, _waiter: &CommitWaiter) -> Option<CommitOutcome> {
        Some(CommitOutcome::Committed)
    }

    fn ts_floor(&self, _partition: PartitionId) -> Ts {
        self.tracker.ts_floor()
    }

    fn finalize_commit_ts(&self, _ticket: &TxnTicket, hint: Ts) -> Ts {
        let ts = self.seq_ts.finalize_above(hint, self.tracker.ts_floor());
        self.tracker.note_finalized(ts);
        ts
    }

    fn snapshot_horizon(&self, _partition: PartitionId) -> Ts {
        self.tracker.horizon(now_us())
    }

    fn on_partition_crash(&self, p: PartitionId) -> Ts {
        // A synchronously flushed commit is never rolled back, so nothing is
        // doomed; only the crashed partition's in-flight registrations die.
        self.tracker.drop_actives_of(p);
        0
    }

    // `survivor_rollback_bound` keeps the trait default (everything
    // covered): the synchronous flush means a transaction whose commit call
    // returned is durable on every participant, so a crash never rolls a
    // reported commit back and survivors have nothing to compensate.

    fn label(&self) -> &'static str {
        "Sync"
    }

    fn shutdown(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::LoggingScheme;

    #[test]
    fn sync_commit_charges_flush_on_critical_path() {
        let cfg = WalConfig {
            scheme: LoggingScheme::SyncPerTxn,
            interval_ms: 10,
            persist_delay_us: 400,
            force_update: false,
            ..WalConfig::default()
        };
        let gc = SyncCommit::new(1, cfg, crate::build_logs(1, cfg));
        let ticket = gc.begin_txn(PartitionId(0), TxnId::new(PartitionId(0), 1));
        let start = std::time::Instant::now();
        let waiter = gc.txn_committed(&ticket, 1, 1);
        assert!(start.elapsed().as_micros() >= 380);
        assert_eq!(gc.wait_durable(&waiter), CommitOutcome::Committed);
        assert_eq!(gc.num_partitions(), 1);
    }

    #[test]
    fn snapshot_horizon_follows_the_flush() {
        let cfg = WalConfig {
            scheme: LoggingScheme::SyncPerTxn,
            interval_ms: 10,
            persist_delay_us: 10,
            force_update: false,
            ..WalConfig::default()
        };
        let gc = SyncCommit::new(1, cfg, crate::build_logs(1, cfg));
        let p = PartitionId(0);
        assert_eq!(gc.snapshot_horizon(p), 0);
        let ticket = gc.begin_txn(p, TxnId::new(p, 1));
        let ts = gc.finalize_commit_ts(&ticket, 0);
        let _ = gc.txn_committed(&ticket, ts, 1);
        assert_eq!(gc.snapshot_horizon(p), ts);
        assert!(gc.ts_floor(p) >= ts);
    }
}
