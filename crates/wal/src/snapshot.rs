//! Snapshot-horizon tracking for the schemes without watermarks (CLV, sync,
//! COCO).
//!
//! The MVCC read path serves a read-only transaction "as of" a commit-time
//! horizon `h`. For `h` to need no locks, no validation and no aborts, two
//! properties must hold:
//!
//! 1. **Stability** — no in-flight or future transaction can still install a
//!    version with `cts <= h`. The tracker guarantees this by (a) feeding
//!    `GroupCommit::ts_floor` with the maximum finalized commit timestamp, so
//!    every later transaction commits strictly above it, and (b) keeping `h`
//!    at or below the floor each still-active transaction observed when it
//!    began.
//! 2. **Durability** — every version with `cts <= h` is durable and will
//!    never be crash-rolled-back. The tracker holds each committed
//!    transaction in a *pending* state (capping `h` below its `cts`) until
//!    the owning scheme's durability rule releases it: immediately for the
//!    synchronous flush, when the quorum-ack deadline passes for CLV, when
//!    the epoch's group commit seals for COCO. Transactions a crash dooms
//!    keep capping the horizon until crash compensation has purged their
//!    versions from the chains.
//!
//! The published horizon is monotone (a `fetch_max`-updated atomic), so a
//! snapshot timestamp can be compared across partitions and over time.

use parking_lot::Mutex;
use primo_common::{PartitionId, Ts, TxnId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// When a committed-but-pending transaction becomes durable-forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Release {
    /// Durable before `txn_committed` returned (synchronous flush).
    Now,
    /// Durable once the simulated clock passes this instant (CLV quorum-ack
    /// deadline).
    AtUs(u64),
    /// Durable once this epoch's group commit seals (COCO).
    Epoch(u64),
}

#[derive(Debug)]
struct Pending {
    cts: Ts,
    release: Release,
    /// A crash rolled this transaction back: never release it; keep capping
    /// the horizon until compensation has purged its versions.
    doomed: bool,
}

#[derive(Debug, Default)]
struct Inner {
    /// Active transactions and the `ts_floor` each observed at begin. Their
    /// eventual commit timestamps all exceed their floor, so the horizon may
    /// not pass the smallest one.
    active: HashMap<TxnId, Ts>,
    /// Committed transactions whose durability is not yet unconditional.
    pending: HashMap<TxnId, Pending>,
    /// Largest commit timestamp among released (durable-forever) txns.
    max_released: Ts,
    /// A crash happened and compensation has not completed yet.
    crash_open: bool,
}

/// Shared horizon bookkeeping for CLV / sync / COCO (see module docs).
#[derive(Debug)]
pub struct SnapshotTracker {
    inner: Mutex<Inner>,
    /// Published monotone horizon.
    horizon: AtomicU64,
    /// Maximum finalized commit timestamp — the `ts_floor` source.
    max_finalized: AtomicU64,
    /// Ablation: report the latest finalized commit as the horizon
    /// (unsound; the crash-consistency suite proves it).
    unsafe_latest: bool,
}

impl SnapshotTracker {
    pub fn new(unsafe_latest: bool) -> Self {
        SnapshotTracker {
            inner: Mutex::new(Inner::default()),
            horizon: AtomicU64::new(0),
            max_finalized: AtomicU64::new(0),
            unsafe_latest,
        }
    }

    /// The floor every new transaction's commit timestamp must exceed.
    pub fn ts_floor(&self) -> Ts {
        self.max_finalized.load(Ordering::Acquire)
    }

    /// A transaction finalized its commit timestamp (while holding its write
    /// locks).
    pub fn note_finalized(&self, cts: Ts) {
        self.max_finalized.fetch_max(cts, Ordering::AcqRel);
    }

    /// Register a transaction at begin.
    pub fn begin(&self, txn: TxnId) {
        let floor = self.ts_floor();
        self.inner.lock().active.insert(txn, floor);
    }

    /// Deregister an aborted transaction.
    pub fn abort(&self, txn: TxnId) {
        self.inner.lock().active.remove(&txn);
        self.publish();
    }

    /// Move a committed transaction from active to pending. `doomed` marks a
    /// commit the scheme already knows a crash will roll back.
    pub fn commit(&self, txn: TxnId, cts: Ts, release: Release, doomed: bool) {
        // Not every protocol routes its timestamp through
        // `finalize_commit_ts` (Primo computes it from record metadata), so
        // the floor must also learn it here: a transaction beginning after
        // this commit must record a floor at or above `cts`, or it could
        // later install below a horizon that already passed `cts`.
        self.note_finalized(cts);
        let mut inner = self.inner.lock();
        inner.active.remove(&txn);
        if doomed && !inner.crash_open {
            // Straggler commit doomed by a crash whose compensation already
            // completed: nothing left to protect, drop it outright.
            drop(inner);
            self.publish();
            return;
        }
        if !doomed && release == Release::Now {
            inner.max_released = inner.max_released.max(cts);
        } else {
            inner.pending.insert(
                txn,
                Pending {
                    cts,
                    release,
                    doomed,
                },
            );
        }
        drop(inner);
        self.publish();
    }

    /// Release every pending transaction whose CLV quorum-ack deadline has
    /// passed.
    pub fn release_due(&self, now_us: u64) {
        let mut inner = self.inner.lock();
        let mut released = inner.max_released;
        inner.pending.retain(|_, p| {
            let due = !p.doomed && matches!(p.release, Release::AtUs(at) if at <= now_us);
            if due {
                released = released.max(p.cts);
            }
            !due
        });
        inner.max_released = released;
        drop(inner);
        self.publish();
    }

    /// Release every pending transaction of epochs up to and including
    /// `epoch` (its group commit sealed).
    pub fn release_epochs_through(&self, epoch: u64) {
        let mut inner = self.inner.lock();
        let mut released = inner.max_released;
        inner.pending.retain(|_, p| {
            let due = !p.doomed && matches!(p.release, Release::Epoch(e) if e <= epoch);
            if due {
                released = released.max(p.cts);
            }
            !due
        });
        inner.max_released = released;
        drop(inner);
        self.publish();
    }

    /// A crash rolled back every pending CLV transaction whose persist
    /// window spans `crash_us`: doom them (release the rest as usual later).
    pub fn doom_window(&self, crash_us: u64, ack_delay_us: u64) {
        let mut inner = self.inner.lock();
        inner.crash_open = true;
        for p in inner.pending.values_mut() {
            if let Release::AtUs(ready_at) = p.release {
                if crash_us < ready_at && ready_at.saturating_sub(ack_delay_us) <= crash_us {
                    p.doomed = true;
                }
            }
        }
    }

    /// A crash aborted this COCO epoch: doom its pending transactions.
    pub fn doom_epoch(&self, epoch: u64) {
        let mut inner = self.inner.lock();
        inner.crash_open = true;
        for p in inner.pending.values_mut() {
            if p.release == Release::Epoch(epoch) {
                p.doomed = true;
            }
        }
    }

    /// The crashed partition's in-flight transactions will never report
    /// back; drop their active entries so the horizon is not pinned forever.
    pub fn drop_actives_of(&self, partition: PartitionId) {
        let mut inner = self.inner.lock();
        inner.active.retain(|txn, _| txn.coordinator() != partition);
        drop(inner);
        self.publish();
    }

    /// Crash compensation purged every rolled-back version from the chains:
    /// doomed transactions no longer need to cap the horizon.
    pub fn compensation_complete(&self) {
        let mut inner = self.inner.lock();
        inner.crash_open = false;
        inner.pending.retain(|_, p| !p.doomed);
        drop(inner);
        self.publish();
    }

    /// Recompute and publish the horizon (monotone).
    fn publish(&self) {
        let inner = self.inner.lock();
        let mut h = Ts::MAX;
        for floor in inner.active.values() {
            h = h.min(*floor);
        }
        for p in inner.pending.values() {
            h = h.min(p.cts.saturating_sub(1));
        }
        if h == Ts::MAX {
            h = inner.max_released;
        }
        drop(inner);
        self.horizon.fetch_max(h, Ordering::AcqRel);
    }

    /// The current snapshot horizon. `now_us` lets CLV-style deadlines
    /// release lazily on the read path.
    pub fn horizon(&self, now_us: u64) -> Ts {
        if self.unsafe_latest {
            return self.max_finalized.load(Ordering::Acquire);
        }
        self.release_due(now_us);
        self.horizon.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    #[test]
    fn horizon_trails_active_transactions() {
        let t = SnapshotTracker::new(false);
        assert_eq!(t.horizon(0), 0);
        t.begin(tid(1));
        t.note_finalized(10);
        t.commit(tid(1), 10, Release::Now, false);
        assert_eq!(t.horizon(0), 10);
        // A transaction that began at floor 10 pins the horizon there even
        // after newer commits release.
        t.begin(tid(2));
        t.begin(tid(3));
        t.note_finalized(20);
        t.commit(tid(3), 20, Release::Now, false);
        assert_eq!(t.horizon(0), 10, "tid(2) began at floor 10");
        t.abort(tid(2));
        assert_eq!(t.horizon(0), 20);
    }

    #[test]
    fn pending_caps_until_released() {
        let t = SnapshotTracker::new(false);
        t.begin(tid(1));
        t.note_finalized(7);
        t.commit(tid(1), 7, Release::AtUs(100), false);
        assert_eq!(t.horizon(50), 6, "undurable commit caps the horizon");
        assert_eq!(t.horizon(100), 7, "released at its quorum-ack deadline");
    }

    #[test]
    fn epochs_release_in_bulk() {
        let t = SnapshotTracker::new(false);
        for (seq, cts) in [(1u64, 5u64), (2, 6)] {
            t.begin(tid(seq));
            t.note_finalized(cts);
            t.commit(tid(seq), cts, Release::Epoch(3), false);
        }
        assert_eq!(t.horizon(0), 4);
        t.release_epochs_through(2);
        assert_eq!(t.horizon(0), 4);
        t.release_epochs_through(3);
        assert_eq!(t.horizon(0), 6);
    }

    #[test]
    fn doomed_transactions_cap_until_compensation() {
        let t = SnapshotTracker::new(false);
        t.begin(tid(1));
        t.note_finalized(9);
        // Persist window [60, 100] spans the crash at 80.
        t.commit(tid(1), 9, Release::AtUs(100), false);
        t.doom_window(80, 40);
        assert_eq!(
            t.horizon(1_000),
            8,
            "doomed txn still caps after its deadline"
        );
        t.compensation_complete();
        t.begin(tid(2));
        t.note_finalized(12);
        t.commit(tid(2), 12, Release::Now, false);
        assert_eq!(t.horizon(1_000), 12, "doomed txn never releases");
    }

    #[test]
    fn crashed_partition_actives_are_dropped() {
        let t = SnapshotTracker::new(false);
        t.note_finalized(5);
        let dead = TxnId::new(PartitionId(1), 1);
        t.begin(dead);
        t.begin(tid(2));
        t.note_finalized(8);
        t.commit(tid(2), 8, Release::Now, false);
        assert_eq!(t.horizon(0), 5);
        t.drop_actives_of(PartitionId(1));
        assert_eq!(t.horizon(0), 8);
    }

    #[test]
    fn unsafe_mode_reports_latest_commit() {
        let t = SnapshotTracker::new(true);
        t.begin(tid(1));
        t.note_finalized(42);
        assert_eq!(t.horizon(0), 42, "ablation ignores durability entirely");
    }
}
