//! Durability layer: write-ahead logging and the distributed group-commit
//! schemes compared in the paper.
//!
//! * [`watermark`] — Primo's **watermark-based asynchronous group commit**
//!   (§5): partitions persist logs independently, publish partition
//!   watermarks `Wp`, and a transaction's result is returned once the global
//!   watermark `Wg = min(Wp)` passes its logical timestamp.
//! * [`coco`] — **COCO-style epoch group commit** (§2.3): a global
//!   coordinator synchronously runs GROUP-PREPARE / GROUP-READY /
//!   GROUP-COMMIT rounds per epoch.
//! * [`clv`] — **Controlled Lock Violation**: locks are released early and a
//!   commit is acknowledged once the transaction's log (and its dependencies)
//!   are durable; models CLV's fine-grained dependency-tracking overhead.
//! * [`sync`] — classic synchronous per-transaction flush (reference point).
//!
//! All schemes implement the [`GroupCommit`] trait so every protocol can be
//! paired with every durability scheme (Fig 11).

pub mod clv;
pub mod coco;
pub mod group_commit;
pub mod log;
pub mod sync;
pub mod watermark;

pub use group_commit::{CommitOutcome, CommitWaiter, GroupCommit, TxnTicket};
pub use log::{
    CheckpointImage, LogEntry, LogPayload, LoggedOp, LoggedWrite, PartitionWal, ReplayBound,
    ReplayedTxn,
};
pub use watermark::WatermarkCommit;

use primo_common::config::{LoggingScheme, WalConfig};
use primo_common::PartitionId;
use primo_net::DelayedBus;
use std::sync::Arc;

/// Construct the configured group-commit scheme for a cluster of
/// `num_partitions` partitions. `wals` are the partitions' durable logs —
/// the watermark scheme appends its published `Wp` records and COCO appends
/// committed epoch boundaries, which is what bounds recovery replay.
pub fn build_group_commit(
    num_partitions: usize,
    cfg: WalConfig,
    bus: Arc<DelayedBus>,
    wals: Vec<Arc<PartitionWal>>,
) -> Arc<dyn GroupCommit> {
    match cfg.scheme {
        LoggingScheme::Watermark => Arc::new(WatermarkCommit::new(num_partitions, cfg, bus, wals)),
        LoggingScheme::CocoEpoch => coco::CocoCommit::new(num_partitions, cfg, bus, wals),
        LoggingScheme::Clv => Arc::new(clv::ClvCommit::new(num_partitions, cfg)),
        LoggingScheme::SyncPerTxn => Arc::new(sync::SyncCommit::new(num_partitions, cfg)),
    }
}

/// Convenience used by tests: build the WALs for every partition.
pub fn build_wals(num_partitions: usize, cfg: WalConfig) -> Vec<Arc<PartitionWal>> {
    (0..num_partitions)
        .map(|p| {
            Arc::new(PartitionWal::new(
                PartitionId(p as u32),
                cfg.persist_delay_us,
            ))
        })
        .collect()
}
