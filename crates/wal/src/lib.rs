//! Durability layer: replicated write-ahead logging and the distributed
//! group-commit schemes compared in the paper.
//!
//! * [`replicated`] — the [`ReplicatedLog`]: a per-partition replica set of
//!   [`PartitionWal`] copies where durability means a **majority quorum**
//!   persisted the record, with leadership terms and deterministic leader
//!   hand-off (the paper replicates each partition's log through Raft,
//!   §5.2).
//!
//! * [`watermark`] — Primo's **watermark-based asynchronous group commit**
//!   (§5): partitions persist logs independently, publish partition
//!   watermarks `Wp`, and a transaction's result is returned once the global
//!   watermark `Wg = min(Wp)` passes its logical timestamp.
//! * [`coco`] — **COCO-style epoch group commit** (§2.3): a global
//!   coordinator synchronously runs GROUP-PREPARE / GROUP-READY /
//!   GROUP-COMMIT rounds per epoch.
//! * [`clv`] — **Controlled Lock Violation**: locks are released early and a
//!   commit is acknowledged once the transaction's log (and its dependencies)
//!   are durable; models CLV's fine-grained dependency-tracking overhead.
//! * [`sync`] — classic synchronous per-transaction flush (reference point).
//!
//! All schemes implement the [`GroupCommit`] trait so every protocol can be
//! paired with every durability scheme (Fig 11).

pub mod clv;
pub mod coco;
pub mod group_commit;
pub mod log;
pub mod replicated;
pub mod snapshot;
pub mod sync;
pub mod watermark;

pub use group_commit::{CommitOutcome, CommitWaiter, GroupCommit, TxnTicket};
pub use log::{
    CheckpointImage, LogEntry, LogPayload, LoggedOp, LoggedWrite, PartitionWal, ReplayBound,
    ReplayedTxn,
};
pub use replicated::ReplicatedLog;
pub use watermark::WatermarkCommit;

use primo_common::config::{LoggingScheme, WalConfig};
use primo_common::PartitionId;
use primo_net::DelayedBus;
use std::sync::Arc;

/// Construct the configured group-commit scheme for a cluster of
/// `num_partitions` partitions. `logs` are the partitions' replicated
/// durable logs — the watermark scheme appends its published `Wp` records
/// and COCO appends committed epoch boundaries, which is what bounds
/// recovery replay; every scheme derives its acknowledgement delay from the
/// logs' quorum-ack delay, so replication cost shows up in commit latency.
pub fn build_group_commit(
    num_partitions: usize,
    cfg: WalConfig,
    bus: Arc<DelayedBus>,
    logs: Vec<Arc<ReplicatedLog>>,
) -> Arc<dyn GroupCommit> {
    match cfg.scheme {
        LoggingScheme::Watermark => Arc::new(WatermarkCommit::new(num_partitions, cfg, bus, logs)),
        LoggingScheme::CocoEpoch => coco::CocoCommit::new(num_partitions, cfg, bus, logs),
        LoggingScheme::Clv => Arc::new(clv::ClvCommit::new(num_partitions, cfg, logs)),
        LoggingScheme::SyncPerTxn => Arc::new(sync::SyncCommit::new(num_partitions, cfg, logs)),
    }
}

/// The worst partition's append-to-quorum-ack delay — what a scheme that
/// acknowledges cluster-wide durability must wait out. Falls back to
/// `fallback` (the configured local persist delay) for an empty set.
pub(crate) fn max_quorum_ack_delay_us(logs: &[Arc<ReplicatedLog>], fallback: u64) -> u64 {
    logs.iter()
        .map(|l| l.quorum_ack_delay_us())
        .max()
        .unwrap_or(fallback)
}

/// Convenience used by tests: build the replicated logs for every partition
/// (replication factor and delays from `cfg`, no replication hop).
pub fn build_logs(num_partitions: usize, cfg: WalConfig) -> Vec<Arc<ReplicatedLog>> {
    (0..num_partitions)
        .map(|p| Arc::new(ReplicatedLog::new(PartitionId(p as u32), cfg, 0, None)))
        .collect()
}
