//! The replicated per-partition log: a replica set of [`PartitionWal`]s with
//! quorum durability and deterministic leader hand-off.
//!
//! The paper's partitions replicate their log through Raft (§5.2: "the new
//! leader retrieves the latest `Wp` in its Raft log"); the single-copy
//! `PartitionWal` of earlier revisions could only survive losing a leader's
//! *memory*, not its disk. [`ReplicatedLog`] closes that gap:
//!
//! * **Replica set.** Each partition owns `replication_factor` log copies.
//!   Replica 0 is the initial leader's local disk (persist delay
//!   `persist_delay_us`); every other replica persists after the one-way
//!   replication hop plus its own disk delay. Appends fan out to every
//!   replica under one lock, so all copies assign identical LSNs; the
//!   sender never waits for acknowledgements (replication is off the
//!   critical path, like every other durability cost here).
//! * **Quorum durability.** `append` returns an LSN immediately, but
//!   [`ReplicatedLog::durable_lsn`] is the **quorum-acked** LSN: the highest
//!   LSN persisted by a majority of replicas (the median replica for RF 3).
//!   Every durable read — watermark lookup, checkpoint restore, bounded
//!   replay, checkpoint folding, truncation — is clamped to that horizon,
//!   so nothing is ever treated as durable that a quorum could not
//!   reproduce. With RF 1 the quorum is the single copy and behaviour is
//!   identical to the old `PartitionWal`.
//! * **Terms and leader hand-off.** The log carries a leadership term,
//!   stamped on every entry. A crash bumps the term and moves leadership to
//!   the **deterministic successor**: the first replica after the failed
//!   leader in ring order among the replicas holding the longest intact
//!   log. A crash that also discards the leader's disk wipes that replica
//!   first, so the successor is always a surviving copy — and recovery
//!   rebuilds the store from it. A second crash landing mid-replay bumps
//!   the term again; the recovery loop notices and restarts from the next
//!   successor (see `RecoveryManager`).
//! * **Repair.** After recovery, lagging or wiped replicas are re-seeded
//!   from the elected leader's log ([`ReplicatedLog::repair_replicas`]), so
//!   the replica set returns to full strength and can absorb further
//!   crashes.

use crate::log::{CheckpointImage, LogEntry, LogPayload, PartitionWal, ReplayBound, ReplayedTxn};
use parking_lot::Mutex;
use primo_common::config::WalConfig;
use primo_common::{PartitionId, Ts, TxnId};
use primo_net::SimNetwork;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Quorum-durable replicated log of one partition. See the module docs.
pub struct ReplicatedLog {
    partition: PartitionId,
    /// The replica set; index 0 is the initial leader's local copy.
    replicas: Vec<Arc<PartitionWal>>,
    /// Replicas whose disk was discarded and not yet repaired. A wiped
    /// replica keeps receiving new appends (LSN-aligned with its peers) but
    /// has a hole in its history, so it must not vote on quorum durability
    /// or stand for election until [`ReplicatedLog::repair_replicas`] runs.
    wiped: Vec<AtomicBool>,
    /// Majority size: `replication_factor / 2 + 1`.
    quorum: usize,
    /// Delay between appending a record and its quorum acknowledgement: the
    /// k-th smallest replica persist delay (k = quorum). This is what the
    /// group-commit schemes wait for before acknowledging anything.
    quorum_ack_delay_us: u64,
    leader: AtomicUsize,
    term: AtomicU64,
    leader_changes: AtomicU64,
    /// Serializes appends (and leadership changes) so every replica assigns
    /// the same LSN to the same record.
    append_lock: Mutex<()>,
    /// Message accounting for the replication fan-out (latency is never
    /// charged to the appender — the cost shows up as quorum-ack delay).
    net: Option<Arc<SimNetwork>>,
}

impl std::fmt::Debug for ReplicatedLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedLog")
            .field("partition", &self.partition)
            .field("replicas", &self.replicas.len())
            .field("leader", &self.leader.load(Ordering::Relaxed))
            .field("term", &self.term.load(Ordering::Relaxed))
            .finish()
    }
}

impl ReplicatedLog {
    /// Build the replica set for one partition. `replication_hop_us` is the
    /// one-way network latency a record pays to reach a non-leader replica
    /// (derived from the cluster's `NetConfig`); `net` receives message
    /// accounting for the replication fan-out.
    pub fn new(
        partition: PartitionId,
        cfg: WalConfig,
        replication_hop_us: u64,
        net: Option<Arc<SimNetwork>>,
    ) -> Self {
        let rf = cfg.replication_factor.max(1);
        let replica_delay =
            replication_hop_us + cfg.replica_persist_delay_us.unwrap_or(cfg.persist_delay_us);
        let mut delays = vec![cfg.persist_delay_us];
        delays.resize(rf, replica_delay);
        let quorum = rf / 2 + 1;
        let quorum_ack_delay_us = {
            let mut sorted = delays.clone();
            sorted.sort_unstable();
            sorted[quorum - 1]
        };
        let replicas = delays
            .iter()
            .map(|&d| {
                Arc::new(PartitionWal::with_ack_delay(
                    partition,
                    d,
                    quorum_ack_delay_us,
                ))
            })
            .collect();
        ReplicatedLog {
            partition,
            replicas,
            wiped: (0..rf).map(|_| AtomicBool::new(false)).collect(),
            quorum,
            quorum_ack_delay_us,
            leader: AtomicUsize::new(0),
            term: AtomicU64::new(0),
            leader_changes: AtomicU64::new(0),
            append_lock: Mutex::new(()),
            net,
        }
    }

    /// A single-copy log (replication factor 1, no hop): the old
    /// `PartitionWal` semantics, used by unit tests and RF-1 clusters.
    pub fn single(partition: PartitionId, persist_delay_us: u64) -> Self {
        ReplicatedLog::new(
            partition,
            WalConfig {
                persist_delay_us,
                ..WalConfig::default()
            },
            0,
            None,
        )
    }

    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    pub fn replication_factor(&self) -> usize {
        self.replicas.len()
    }

    /// Majority size of the replica set.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Time between appending a record and its quorum acknowledgement — what
    /// the group-commit schemes wait out before acknowledging a commit, and
    /// what `MetricsSnapshot::replication_lag_us` reports.
    pub fn quorum_ack_delay_us(&self) -> u64 {
        self.quorum_ack_delay_us
    }

    /// Current leadership term (bumped on every crash / hand-off).
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::Acquire)
    }

    /// Index of the current leader replica.
    pub fn leader_index(&self) -> usize {
        self.leader.load(Ordering::Acquire)
    }

    /// How many times leadership moved to a different replica.
    pub fn leader_changes(&self) -> u64 {
        self.leader_changes.load(Ordering::Relaxed)
    }

    /// Direct access to one replica (tests and white-box assertions).
    pub fn replica(&self, idx: usize) -> &Arc<PartitionWal> {
        &self.replicas[idx]
    }

    fn leader_replica(&self) -> &Arc<PartitionWal> {
        &self.replicas[self.leader.load(Ordering::Acquire)]
    }

    /// Append a record to every replica; returns its LSN (identical on all
    /// copies). Never blocks on I/O or the network — replica disks persist
    /// in the background, and the appender does not wait for quorum.
    pub fn append(&self, payload: LogPayload) -> u64 {
        let payload = Arc::new(payload);
        let _guard = self.append_lock.lock();
        let term = self.term.load(Ordering::Acquire);
        for replica in &self.replicas[1..] {
            replica.append_in_term(term, Arc::clone(&payload));
        }
        if let Some(net) = &self.net {
            net.note_background_messages(self.replicas.len() as u64 - 1);
        }
        self.replicas[0].append_in_term(term, payload)
    }

    /// The LSN the next append will receive.
    pub fn end_lsn(&self) -> u64 {
        self.leader_replica().end_lsn()
    }

    pub fn len(&self) -> usize {
        self.leader_replica().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The **quorum-acked** LSN: the highest LSN durable on a majority of
    /// replicas right now (`None` until a quorum persisted anything).
    /// Replicas with a discarded, not-yet-repaired disk do not vote — their
    /// history has a hole, so their highest durable entry says nothing
    /// about the prefix below it.
    pub fn durable_lsn(&self) -> Option<u64> {
        let mut votes: Vec<Option<u64>> = self
            .replicas
            .iter()
            .zip(&self.wiped)
            .map(|(r, wiped)| {
                if wiped.load(Ordering::Acquire) {
                    None
                } else {
                    r.durable_lsn()
                }
            })
            .collect();
        votes.sort_by(|a, b| b.cmp(a)); // descending; None sorts last
        votes[self.quorum - 1]
    }

    /// Whether a specific LSN is quorum-durable.
    pub fn is_durable(&self, lsn: u64) -> bool {
        self.durable_lsn().map(|d| d >= lsn).unwrap_or(false)
    }

    /// Clamp a caller-supplied cutoff to the quorum horizon. `None` result
    /// means nothing is quorum-durable at all. A caller-supplied cutoff is
    /// itself a quorum LSN captured earlier (recovery passes the crash-time
    /// horizon), so when the *live* quorum is broken — e.g. a second disk
    /// loss mid-recovery left only one intact replica — the cutoff is
    /// trusted as-is: every entry below it reached a majority when it was
    /// captured, and the elected leader (the longest intact replica) still
    /// holds them. Without this, a below-quorum recovery would rebuild an
    /// empty store while the intact leader's log provably contains the
    /// acknowledged history.
    fn quorum_cutoff(&self, cutoff_lsn: Option<u64>) -> Option<u64> {
        match (self.durable_lsn(), cutoff_lsn) {
            (Some(q), Some(c)) => Some(c.min(q)),
            (Some(q), None) => Some(q),
            (None, Some(c)) => Some(c),
            (None, None) => None,
        }
    }

    /// The latest quorum-durable watermark record (§5.2 — what the new
    /// leader retrieves from its replicated log).
    pub fn latest_durable_watermark(&self) -> Option<Ts> {
        self.latest_durable_watermark_at(None)
    }

    /// [`ReplicatedLog::latest_durable_watermark`] restricted to entries at
    /// or below `cutoff_lsn` (recovery passes the quorum LSN captured at
    /// crash time).
    pub fn latest_durable_watermark_at(&self, cutoff_lsn: Option<u64>) -> Option<Ts> {
        let cut = self.quorum_cutoff(cutoff_lsn)?;
        self.leader_replica().latest_durable_watermark_at(Some(cut))
    }

    /// The newest checkpoint image that is quorum-durable and at or below
    /// `cutoff_lsn`.
    pub fn latest_durable_checkpoint(
        &self,
        cutoff_lsn: Option<u64>,
    ) -> Option<Arc<CheckpointImage>> {
        let cut = self.quorum_cutoff(cutoff_lsn)?;
        self.leader_replica().latest_durable_checkpoint(Some(cut))
    }

    /// The latest (checkpoint-entry LSN, image) pair regardless of
    /// durability — the checkpoint writer folds forward from here.
    pub fn latest_checkpoint(&self) -> Option<(u64, Arc<CheckpointImage>)> {
        self.leader_replica().latest_checkpoint()
    }

    /// LSN of the newest quorum-durable epoch boundary with epoch at most
    /// `max_epoch`, at or below `cutoff_lsn` (COCO recovery / checkpoint
    /// bound — recovery passes the crash-time quorum LSN so the lookup
    /// stays valid even when the live quorum broke mid-recovery, exactly
    /// like [`ReplicatedLog::replay_range`]).
    pub fn latest_durable_epoch_boundary(
        &self,
        max_epoch: u64,
        cutoff_lsn: Option<u64>,
    ) -> Option<u64> {
        let cut = self.quorum_cutoff(cutoff_lsn)?;
        self.leader_replica()
            .latest_durable_epoch_boundary(max_epoch, Some(cut))
    }

    /// Durability-blind epoch-boundary lookup (survivor-side rollback
    /// bound: a surviving partition's log lost nothing).
    pub fn latest_epoch_boundary(&self, max_epoch: u64) -> Option<u64> {
        self.leader_replica().latest_epoch_boundary(max_epoch)
    }

    /// Replay all quorum-durable transaction writes with `ts < up_to`.
    pub fn replay_prefix(&self, up_to: Ts) -> Vec<ReplayedTxn> {
        self.replay_range(0, &ReplayBound::Ts(up_to), None)
    }

    /// Quorum-bounded replay: like `PartitionWal::replay_range`, but only
    /// entries at or below the quorum-acked LSN count as durable — an entry
    /// the old leader persisted locally that never reached a majority is
    /// honestly lost.
    pub fn replay_range(
        &self,
        from_lsn: u64,
        bound: &ReplayBound,
        cutoff_lsn: Option<u64>,
    ) -> Vec<ReplayedTxn> {
        match self.quorum_cutoff(cutoff_lsn) {
            Some(cut) => self
                .leader_replica()
                .replay_range(from_lsn, bound, Some(cut)),
            None => Vec::new(),
        }
    }

    /// Transaction ids with a rollback marker anywhere in the log,
    /// regardless of durability.
    pub fn rolled_back_txns(&self) -> HashSet<TxnId> {
        self.leader_replica().rolled_back_txns()
    }

    /// The `TxnWrites` entries `bound` does not cover and no marker cancels
    /// yet — survivor-side compensation input. No durability filter (this
    /// partition did not crash, so every replica holds the full log).
    pub fn collect_rolled_back(
        &self,
        bound: &ReplayBound,
        upper_cutoff: Option<u64>,
    ) -> Vec<ReplayedTxn> {
        self.leader_replica()
            .collect_rolled_back(bound, upper_cutoff)
    }

    /// Clone the suffix of the (leader's) log starting at `from_lsn`.
    pub fn entries_from(&self, from_lsn: u64) -> Vec<LogEntry> {
        self.leader_replica().entries_from(from_lsn)
    }

    /// First LSN at or after `from_lsn` that a checkpoint fold may **not**
    /// absorb — bounded additionally by the quorum horizon, so images never
    /// bake in an entry a quorum could not reproduce.
    pub fn fold_stop_lsn(&self, from_lsn: u64, bound: &ReplayBound) -> u64 {
        match self.durable_lsn() {
            Some(q) => self
                .leader_replica()
                .fold_stop_lsn(from_lsn, bound)
                .min(q + 1)
                .max(from_lsn),
            None => from_lsn,
        }
    }

    /// Recovery-time log repair on **every replica**: drop the write-sets
    /// replay did not apply so no later fold can resurrect them. The
    /// cancelled-transaction set is computed once, from the leader's view
    /// of marker durability, and applied uniformly — replicas with slower
    /// disks must not keep entries the leader purged (they would end up
    /// *longer* than the leader, confusing the longest-log election and
    /// un-healable by repair). Returns the number of entries removed from
    /// the leader's copy.
    pub fn retain_replayable(
        &self,
        from_lsn: u64,
        bound: &ReplayBound,
        cutoff_lsn: Option<u64>,
    ) -> usize {
        let leader = self.leader.load(Ordering::Acquire);
        let rolled_back = self.replicas[leader].durable_rolled_back(cutoff_lsn);
        let mut removed = 0;
        for (i, replica) in self.replicas.iter().enumerate() {
            let n = replica.retain_replayable_with(from_lsn, bound, cutoff_lsn, &rolled_back);
            if i == leader {
                removed = n;
            }
        }
        removed
    }

    /// Truncate every replica up to (and excluding) `lsn`. Returns the
    /// number of entries removed from the leader's copy.
    pub fn truncate_before(&self, lsn: u64) -> usize {
        let leader = self.leader.load(Ordering::Acquire);
        let mut removed = 0;
        for (i, replica) in self.replicas.iter().enumerate() {
            let n = replica.truncate_before(lsn);
            if i == leader {
                removed = n;
            }
        }
        removed
    }

    /// Truncate everything covered by the newest **quorum-durable**
    /// checkpoint, on every replica.
    pub fn truncate_to_durable_checkpoint(&self) -> usize {
        match self.latest_durable_checkpoint(None) {
            Some(image) => self.truncate_before(image.base_lsn),
            None => 0,
        }
    }

    /// Discard one replica's disk (entries dropped, LSN counter kept so the
    /// replica stays aligned for future appends). It stops voting on quorum
    /// durability and standing for election until repaired.
    pub fn wipe_replica(&self, idx: usize) -> usize {
        self.wiped[idx].store(true, Ordering::Release);
        self.replicas[idx].wipe_log()
    }

    /// Bump the leadership term and hand leadership to the deterministic
    /// successor: the first replica after the failed leader in ring order
    /// among the non-wiped replicas holding the longest log. With
    /// `discard_leader_disk` the failed leader's replica is wiped first
    /// (the crash lost its disk, not just its memory), so the successor is
    /// always a surviving copy. Returns the new leader index.
    pub fn fail_over(&self, discard_leader_disk: bool) -> usize {
        let _guard = self.append_lock.lock();
        let old = self.leader.load(Ordering::Acquire);
        if discard_leader_disk {
            self.wipe_replica(old);
        }
        self.term.fetch_add(1, Ordering::AcqRel);
        let new = self.elect_successor(old);
        if new != old {
            self.leader.store(new, Ordering::Release);
            self.leader_changes.fetch_add(1, Ordering::Relaxed);
        }
        new
    }

    /// Deterministic successor rule: candidates are the non-wiped replicas
    /// with the maximum entry count ("the longest quorum-consistent
    /// replica"); the winner is the first candidate encountered walking the
    /// ring from `failed + 1`. Falls back to the failed leader itself when
    /// every replica is wiped (nothing better exists — RF 1 disk loss).
    fn elect_successor(&self, failed: usize) -> usize {
        let n = self.replicas.len();
        let longest = self
            .replicas
            .iter()
            .zip(&self.wiped)
            .filter(|(_, w)| !w.load(Ordering::Acquire))
            .map(|(r, _)| r.len())
            .max();
        let Some(longest) = longest else {
            return failed;
        };
        for step in 1..=n {
            let i = (failed + step) % n;
            if !self.wiped[i].load(Ordering::Acquire) && self.replicas[i].len() == longest {
                return i;
            }
        }
        failed
    }

    /// Re-seed wiped or lagging replicas from the elected leader's log (the
    /// authority after an election — replicas never diverge here, they can
    /// only lose their disk wholesale). Returns how many replicas were
    /// repaired. Run at the end of recovery so the replica set is back to
    /// full strength before the partition serves again.
    pub fn repair_replicas(&self) -> usize {
        let _guard = self.append_lock.lock();
        let leader = self.leader.load(Ordering::Acquire);
        let authority = self.replicas[leader].entries_from(0);
        let next_lsn = self.replicas[leader].end_lsn();
        let mut repaired = 0;
        for (i, replica) in self.replicas.iter().enumerate() {
            if i == leader {
                // The elected leader's content is the authority by
                // definition. Clearing its wiped flag is only sound because
                // repair runs at the end of recovery, *after* the store and
                // the retained log were reconciled against this very copy —
                // if the leader itself was wiped (every replica lost its
                // disk), the missing history has just been adjudicated as
                // lost, and the flag must clear or the partition could
                // never acknowledge anything again.
                self.wiped[i].store(false, Ordering::Release);
                continue;
            }
            // Heal any divergence from the authority — shorter (wiped or
            // lagging) and longer (a copy that somehow kept entries the
            // leader dropped) alike.
            if self.wiped[i].load(Ordering::Acquire) || replica.len() != authority.len() {
                replica.replace_entries(authority.clone(), next_lsn);
                self.wiped[i].store(false, Ordering::Release);
                repaired += 1;
            }
        }
        repaired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::LoggingScheme;
    use primo_common::{TableId, Value};
    use std::time::Duration;

    fn rf3(persist_us: u64, replica_us: u64, hop_us: u64) -> ReplicatedLog {
        ReplicatedLog::new(
            PartitionId(0),
            WalConfig {
                scheme: LoggingScheme::Watermark,
                interval_ms: 1,
                persist_delay_us: persist_us,
                force_update: true,
                replication_factor: 3,
                replica_persist_delay_us: Some(replica_us),
                ..WalConfig::default()
            },
            hop_us,
            None,
        )
    }

    fn txn(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    fn put(seq: u64, ts: Ts) -> LogPayload {
        LogPayload::TxnWrites {
            txn: txn(seq),
            ts,
            writes: vec![crate::LoggedWrite::put(
                TableId(0),
                seq,
                Value::from_u64(seq),
            )],
        }
    }

    #[test]
    fn appends_fan_out_with_aligned_lsns() {
        let log = rf3(0, 0, 0);
        let a = log.append(put(1, 5));
        let b = log.append(put(2, 6));
        assert_eq!((a, b), (0, 1));
        for i in 0..3 {
            assert_eq!(log.replica(i).len(), 2, "replica {i}");
            assert_eq!(log.replica(i).end_lsn(), 2, "replica {i}");
        }
        assert_eq!(log.replication_factor(), 3);
        assert_eq!(log.quorum(), 2);
    }

    #[test]
    fn quorum_ack_delay_is_the_majority_replicas_delay() {
        // Leader persists in 100us; remotes in 300 (hop) + 500 = 800us. The
        // quorum (2 of 3) is only reached once one remote persisted.
        let log = rf3(100, 500, 300);
        assert_eq!(log.quorum_ack_delay_us(), 800);
        // RF 1: quorum ack == local persist.
        let single = ReplicatedLog::single(PartitionId(0), 100);
        assert_eq!(single.quorum_ack_delay_us(), 100);
    }

    #[test]
    fn durable_lsn_is_quorum_acked_not_leader_local() {
        let log = rf3(0, 30_000, 0); // leader durable instantly, remotes 30ms
        log.append(put(1, 5));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(log.replica(0).durable_lsn(), Some(0), "leader persisted");
        assert_eq!(
            log.durable_lsn(),
            None,
            "no quorum until a second replica persists"
        );
        assert!(!log.is_durable(0));
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(log.durable_lsn(), Some(0), "majority reached");
        assert!(log.is_durable(0));
    }

    #[test]
    fn durable_reads_are_clamped_to_the_quorum_horizon() {
        let log = rf3(0, 30_000, 0);
        log.append(LogPayload::Watermark { wp: 7 });
        std::thread::sleep(Duration::from_millis(2));
        // Locally durable on the leader, but no quorum yet.
        assert_eq!(log.latest_durable_watermark(), None);
        assert!(log.replay_prefix(u64::MAX).is_empty());
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(log.latest_durable_watermark(), Some(7));
    }

    #[test]
    fn fail_over_elects_the_ring_successor_and_bumps_the_term() {
        let log = rf3(0, 0, 0);
        log.append(put(1, 5));
        assert_eq!(log.leader_index(), 0);
        assert_eq!(log.term(), 0);
        let new = log.fail_over(true);
        assert_eq!(new, 1, "deterministic ring successor");
        assert_eq!(log.term(), 1);
        assert_eq!(log.leader_changes(), 1);
        // A second hand-off (replacement leader dies too, memory only).
        assert_eq!(log.fail_over(false), 2);
        assert_eq!(log.term(), 2);
        // Entries appended now carry the new term.
        let lsn = log.append(put(2, 6));
        let entry = log
            .entries_from(lsn)
            .into_iter()
            .next()
            .expect("appended entry");
        assert_eq!(entry.term, 2);
    }

    #[test]
    fn disk_loss_leaves_history_readable_from_survivors() {
        let log = rf3(0, 0, 0);
        log.append(put(1, 5));
        log.append(LogPayload::Watermark { wp: 9 });
        std::thread::sleep(Duration::from_millis(2));
        log.fail_over(true); // leader disk discarded
        assert_eq!(log.replica(0).len(), 0, "the wiped copy is gone");
        assert_eq!(
            log.latest_durable_watermark(),
            Some(9),
            "the surviving quorum still serves the history"
        );
        assert_eq!(log.replay_prefix(u64::MAX).len(), 1);
        // Repair re-seeds the wiped replica from the new leader.
        assert_eq!(log.repair_replicas(), 1);
        assert_eq!(log.replica(0).len(), 2);
        // New appends continue LSN-aligned on all replicas.
        let lsn = log.append(put(2, 12));
        assert_eq!(lsn, 2);
        for i in 0..3 {
            assert_eq!(log.replica(i).end_lsn(), 3, "replica {i}");
        }
    }

    #[test]
    fn wiped_replicas_do_not_vote_on_quorum_durability() {
        let log = rf3(0, 30_000, 0);
        log.append(put(1, 5));
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(log.durable_lsn(), Some(0));
        // Wipe both remotes: the leader alone is no quorum, and the wiped
        // copies' post-wipe appends must not fake one.
        log.wipe_replica(1);
        log.wipe_replica(2);
        log.append(put(2, 6));
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(
            log.durable_lsn(),
            None,
            "a majority of intact copies is required"
        );
    }

    #[test]
    fn slow_leader_disk_does_not_hide_quorum_acked_entries() {
        // The leader's own disk is far slower than the quorum: the two fast
        // remotes acknowledge an entry long before the leader persists it
        // locally. Quorum-bounded reads go through the leader replica, so
        // the cutoff must act as the durability horizon — the leader's disk
        // delay must not filter out what the quorum acknowledged.
        let log = rf3(500_000, 50, 0);
        assert_eq!(log.quorum_ack_delay_us(), 50);
        log.append(put(1, 5));
        log.append(LogPayload::Watermark { wp: 9 });
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(
            log.durable_lsn(),
            Some(1),
            "the two fast replicas form the quorum"
        );
        assert_eq!(
            log.replay_prefix(u64::MAX).len(),
            1,
            "the quorum-acked write-set must be replayable through the slow leader"
        );
        assert_eq!(log.latest_durable_watermark(), Some(9));
    }

    #[test]
    fn explicit_cutoff_survives_a_broken_live_quorum() {
        let log = rf3(0, 0, 0);
        log.append(put(1, 5));
        std::thread::sleep(Duration::from_millis(2));
        let cutoff = log.durable_lsn();
        assert_eq!(cutoff, Some(0));
        // Lose two of three disks: the live quorum is gone…
        log.fail_over(true); // leader 0 wiped, leadership -> 1
        log.fail_over(true); // leader 1 wiped, leadership -> 2
        assert_eq!(log.leader_index(), 2);
        assert_eq!(log.durable_lsn(), None);
        // …but reads bounded by a cutoff captured from a real quorum still
        // serve the acknowledged history from the intact leader (recovery
        // passes the crash-time quorum LSN exactly like this).
        assert_eq!(
            log.replay_range(0, &ReplayBound::Ts(u64::MAX), cutoff)
                .len(),
            1,
            "the intact replica must serve everything below the old quorum"
        );
        // Unbounded durable reads stay honest about the broken quorum.
        assert!(log.replay_prefix(u64::MAX).is_empty());
    }

    #[test]
    fn single_replica_log_behaves_like_the_old_partition_wal() {
        let log = ReplicatedLog::single(PartitionId(3), 0);
        assert_eq!(log.partition(), PartitionId(3));
        let lsn = log.append(put(1, 5));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(log.durable_lsn(), Some(lsn));
        assert_eq!(log.replay_prefix(10).len(), 1);
        assert_eq!(log.fail_over(false), 0, "a ring of one elects itself");
        assert_eq!(log.leader_changes(), 0);
        assert!(!log.is_empty());
        assert_eq!(log.truncate_before(1), 1);
    }
}
