//! The replicated per-partition log: a replica set of [`PartitionWal`]s with
//! quorum durability and deterministic leader hand-off.
//!
//! The paper's partitions replicate their log through Raft (§5.2: "the new
//! leader retrieves the latest `Wp` in its Raft log"); the single-copy
//! `PartitionWal` of earlier revisions could only survive losing a leader's
//! *memory*, not its disk. [`ReplicatedLog`] closes that gap:
//!
//! * **Replica set.** Each partition owns `replication_factor` log copies.
//!   Replica 0 is the initial leader's local disk (persist delay
//!   `persist_delay_us`); every other replica persists after the one-way
//!   replication hop plus its own disk delay.
//! * **Pipelined appends.** [`ReplicatedLog::append`] is a two-stage
//!   pipeline. Stage 1 — the *sequencer*, the only part a committer pays
//!   for while still holding its write locks — reserves the LSN, stamps
//!   `appended_at_us` and pushes the entry into a staging ring, all under
//!   one short lock and without touching any replica. Stage 2 — the
//!   *replication pump*, a per-partition background thread — drains the
//!   ring and ships the staged tail to **every** replica (leader included)
//!   as one shared batch segment: O(1) delivery per replica per **batch**,
//!   one batched message charge for the follower hops. Each replica folds
//!   received segments into its own log storage lazily, on its next read.
//!   Entries keep the sequencer's `appended_at_us` on every copy, so
//!   durability clocks run from the original append instant and the
//!   quorum math below is independent of when the pump ran. Every durable
//!   read and every replica-set mutation drains the ring first, so the
//!   pipeline is invisible outside this module (see ARCHITECTURE.md,
//!   "Append pipeline"). A single-copy log (RF 1) skips the pipeline and
//!   appends synchronously, exactly like the old `PartitionWal`.
//! * **Quorum durability.** `append` returns an LSN immediately, but
//!   [`ReplicatedLog::durable_lsn`] is the **quorum-acked** LSN: the highest
//!   LSN persisted by a majority of replicas (the median replica for RF 3).
//!   Every durable read — watermark lookup, checkpoint restore, bounded
//!   replay, checkpoint folding, truncation — is clamped to that horizon,
//!   so nothing is ever treated as durable that a quorum could not
//!   reproduce. With RF 1 the quorum is the single copy and behaviour is
//!   identical to the old `PartitionWal`.
//! * **Terms and leader hand-off.** The log carries a leadership term,
//!   stamped on every entry. A crash bumps the term and moves leadership to
//!   the **deterministic successor**: the first replica after the failed
//!   leader in ring order among the replicas holding the longest intact
//!   log. A crash that also discards the leader's disk first flushes the
//!   staging ring (the tail is physically on the survivors, exactly as
//!   under the old synchronous fan-out — "lost" means *not quorum-acked*,
//!   never *dropped from surviving disks*) and then wipes that replica, so
//!   the successor is always a surviving copy — and recovery rebuilds the
//!   store from it. A second crash landing mid-replay bumps the term again;
//!   the recovery loop notices and restarts from the next successor (see
//!   `RecoveryManager`).
//! * **Repair.** After recovery, lagging or wiped replicas are re-seeded
//!   from the elected leader's log ([`ReplicatedLog::repair_replicas`]), so
//!   the replica set returns to full strength and can absorb further
//!   crashes.

use crate::log::{CheckpointImage, LogEntry, LogPayload, PartitionWal, ReplayBound, ReplayedTxn};
use parking_lot::{Condvar, Mutex};
use primo_common::config::WalConfig;
use primo_common::sim_time::now_us;
use primo_common::{PartitionId, Ts, TxnId};
use primo_net::SimNetwork;
use primo_trace::{FlightRecorder, TraceEventKind};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// How often the replication pump polls the staging ring. Appends never
/// signal the pump — a wake-up per append would put a futex syscall back on
/// the commit critical section and shrink every batch to one entry; instead
/// the pump self-schedules on this tick and drains whatever accumulated.
/// The tick bounds pump lag, which is invisible anyway: follower durability
/// clocks run from the sequencer's `appended_at_us`, and every durable read
/// drains the ring inline. Only shutdown notifies the condvar (prompt exit).
const PUMP_TICK: Duration = Duration::from_millis(2);

/// Replica counts up to this size collect quorum votes on the stack
/// ([`ReplicatedLog::durable_lsn`] runs on every watermark lookup and
/// snapshot-horizon read — it must not allocate).
const INLINE_VOTES: usize = 16;

/// Quorum-durable replicated log of one partition. See the module docs.
pub struct ReplicatedLog {
    core: Arc<LogCore>,
    /// Stage-2 drainer; `None` for single-copy logs (nothing to replicate).
    pump: Option<std::thread::JoinHandle<()>>,
}

/// Shared state of the replica set — everything both the callers (through
/// [`ReplicatedLog`]'s delegating methods) and the replication pump touch.
///
/// Lock order: `ship_lock` → `ring` → a replica's inner log lock. The
/// sequencer (stage 1) takes only `ring`; the pump and every drain-before-
/// read path take `ship_lock` first, so a drain observed by one caller is
/// complete before the next begins and batches reach the followers in LSN
/// order.
struct LogCore {
    partition: PartitionId,
    /// The replica set; index 0 is the initial leader's local copy.
    replicas: Vec<Arc<PartitionWal>>,
    /// Replicas whose disk was discarded and not yet repaired. A wiped
    /// replica keeps receiving new appends (LSN-aligned with its peers) but
    /// has a hole in its history, so it must not vote on quorum durability
    /// or stand for election until [`ReplicatedLog::repair_replicas`] runs.
    wiped: Vec<AtomicBool>,
    /// Majority size: `replication_factor / 2 + 1`.
    quorum: usize,
    /// Delay between appending a record and its quorum acknowledgement: the
    /// k-th smallest replica persist delay (k = quorum). This is what the
    /// group-commit schemes wait for before acknowledging anything.
    quorum_ack_delay_us: u64,
    leader: AtomicUsize,
    term: AtomicU64,
    leader_changes: AtomicU64,
    /// The stage-1 sequencer lock **and** staging ring in one: appenders
    /// serialize on this mutex, reserve the next LSN, stamp the append
    /// instant and push the sequenced entry here — touching **no replica**;
    /// the pump swaps the vector out wholesale and ships it as one shared
    /// segment. One lock covers sequencing and staging, so the commit
    /// critical section pays a single acquisition and no per-replica work.
    /// (A single-copy log skips staging and appends straight to its one
    /// replica under this same lock.)
    ring: Mutex<Sequencer>,
    /// Wakes the pump for shutdown only — appends never signal it (see
    /// [`PUMP_TICK`]).
    signal: Condvar,
    /// Serializes stage-2 ships (pump drains, drain-before-read paths,
    /// replica-set mutations) without blocking stage-1 appends.
    ship_lock: Mutex<()>,
    shutdown: AtomicBool,
    /// Message accounting for the replication fan-out (latency is never
    /// charged to the appender — the cost shows up as quorum-ack delay).
    net: Option<Arc<SimNetwork>>,
    /// Total microseconds appenders spent blocked on the sequencer lock
    /// (`MetricsSnapshot::wal_append_wait_us`). Only contended acquisitions
    /// pay the two clock reads.
    append_wait_us: AtomicU64,
    /// Stage-2 batches shipped / entries shipped — their ratio is the mean
    /// replication batch length (`MetricsSnapshot::replication_batch_len`).
    shipped_batches: AtomicU64,
    shipped_entries: AtomicU64,
    /// Cluster flight recorder, injected once right after construction
    /// ([`ReplicatedLog::set_recorder`]). A `OnceLock` keeps the hot paths
    /// at one relaxed atomic load when tracing is wired and avoids
    /// threading the recorder through every constructor.
    recorder: OnceLock<Arc<FlightRecorder>>,
}

/// Stage-1 state under the ring lock: the staged tail plus the partition's
/// LSN counter. The counter — not any replica — is the allocation
/// authority while replication runs pipelined; replica-set mutations
/// (fail-over, truncation, repair) resynchronize it from the leader's log
/// inside [`LogCore::with_sequencer_flushed`].
#[derive(Default)]
struct Sequencer {
    staged: Vec<LogEntry>,
    next_lsn: u64,
}

impl std::fmt::Debug for ReplicatedLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedLog")
            .field("partition", &self.core.partition)
            .field("replicas", &self.core.replicas.len())
            .field("leader", &self.core.leader.load(Ordering::Relaxed))
            .field("term", &self.core.term.load(Ordering::Relaxed))
            .finish()
    }
}

impl Drop for ReplicatedLog {
    fn drop(&mut self) {
        if let Some(pump) = self.pump.take() {
            self.core.shutdown.store(true, Ordering::Release);
            // Lock the ring before notifying so the pump is either inside
            // the wait (and receives the notification) or past its next
            // shutdown check — never between the check and the wait.
            drop(self.core.ring.lock());
            self.core.signal.notify_all();
            let _ = pump.join();
        }
    }
}

impl ReplicatedLog {
    /// Build the replica set for one partition. `replication_hop_us` is the
    /// one-way network latency a record pays to reach a non-leader replica
    /// (derived from the cluster's `NetConfig`); `net` receives message
    /// accounting for the replication fan-out.
    pub fn new(
        partition: PartitionId,
        cfg: WalConfig,
        replication_hop_us: u64,
        net: Option<Arc<SimNetwork>>,
    ) -> Self {
        let rf = cfg.replication_factor.max(1);
        let replica_delay =
            replication_hop_us + cfg.replica_persist_delay_us.unwrap_or(cfg.persist_delay_us);
        let mut delays = vec![cfg.persist_delay_us];
        delays.resize(rf, replica_delay);
        let quorum = rf / 2 + 1;
        let quorum_ack_delay_us = {
            let mut sorted = delays.clone();
            sorted.sort_unstable();
            sorted[quorum - 1]
        };
        let replicas = delays
            .iter()
            .map(|&d| {
                Arc::new(PartitionWal::with_ack_delay(
                    partition,
                    d,
                    quorum_ack_delay_us,
                ))
            })
            .collect();
        let core = Arc::new(LogCore {
            partition,
            replicas,
            wiped: (0..rf).map(|_| AtomicBool::new(false)).collect(),
            quorum,
            quorum_ack_delay_us,
            leader: AtomicUsize::new(0),
            term: AtomicU64::new(0),
            leader_changes: AtomicU64::new(0),
            ring: Mutex::new(Sequencer::default()),
            signal: Condvar::new(),
            ship_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            net,
            append_wait_us: AtomicU64::new(0),
            shipped_batches: AtomicU64::new(0),
            shipped_entries: AtomicU64::new(0),
            recorder: OnceLock::new(),
        });
        let pump = (rf > 1).then(|| {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name(format!("wal-pump-p{}", partition.0))
                .spawn(move || core.pump_loop())
                .expect("spawn replication pump")
        });
        ReplicatedLog { core, pump }
    }

    /// A single-copy log (replication factor 1, no hop): the old
    /// `PartitionWal` semantics, used by unit tests and RF-1 clusters.
    pub fn single(partition: PartitionId, persist_delay_us: u64) -> Self {
        ReplicatedLog::new(
            partition,
            WalConfig {
                persist_delay_us,
                ..WalConfig::default()
            },
            0,
            None,
        )
    }

    pub fn partition(&self) -> PartitionId {
        self.core.partition
    }

    /// Attach the cluster flight recorder (sequencer waits, replication
    /// quorum acks and leader changes become trace events). Idempotent;
    /// later calls are ignored.
    pub fn set_recorder(&self, recorder: Arc<FlightRecorder>) {
        let _ = self.core.recorder.set(recorder);
    }

    pub fn replication_factor(&self) -> usize {
        self.core.replicas.len()
    }

    /// Majority size of the replica set.
    pub fn quorum(&self) -> usize {
        self.core.quorum
    }

    /// Time between appending a record and its quorum acknowledgement — what
    /// the group-commit schemes wait out before acknowledging a commit, and
    /// what `MetricsSnapshot::replication_lag_us` reports.
    pub fn quorum_ack_delay_us(&self) -> u64 {
        self.core.quorum_ack_delay_us
    }

    /// Current leadership term (bumped on every crash / hand-off).
    pub fn term(&self) -> u64 {
        self.core.term.load(Ordering::Acquire)
    }

    /// Index of the current leader replica.
    pub fn leader_index(&self) -> usize {
        self.core.leader.load(Ordering::Acquire)
    }

    /// How many times leadership moved to a different replica.
    pub fn leader_changes(&self) -> u64 {
        self.core.leader_changes.load(Ordering::Relaxed)
    }

    /// Total microseconds appenders spent blocked on the stage-1 sequencer
    /// lock (commit-critical-section contention; 0 when every append found
    /// the sequencer free).
    pub fn append_wait_us(&self) -> u64 {
        self.core.append_wait_us.load(Ordering::Relaxed)
    }

    /// Stage-2 batches shipped to the follower replicas so far.
    pub fn replication_batches(&self) -> u64 {
        self.core.shipped_batches.load(Ordering::Relaxed)
    }

    /// Log entries shipped to the follower replicas so far (each batch
    /// carries one or more).
    pub fn replicated_entries(&self) -> u64 {
        self.core.shipped_entries.load(Ordering::Relaxed)
    }

    /// Direct access to one replica (tests and white-box assertions). The
    /// staging ring is drained first, so the copy observed is exactly what
    /// the old synchronous fan-out would have produced.
    pub fn replica(&self, idx: usize) -> &Arc<PartitionWal> {
        self.core.sync_replicas();
        &self.core.replicas[idx]
    }

    /// Append a record; returns its LSN (identical on all copies). Never
    /// blocks on I/O or the network — stage 1 of the pipeline reserves the
    /// LSN, stamps the append instant and stages the entry under one short
    /// lock; the background replication pump later ships the staged tail to
    /// every replica as one shared batch segment.
    pub fn append(&self, payload: LogPayload) -> u64 {
        self.core.append(payload)
    }

    /// Append a batch of records under **one** sequencer acquisition;
    /// returns the LSN of the first (`None` for an empty batch). LSNs are
    /// dense and in payload order — equivalent to calling
    /// [`ReplicatedLog::append`] per payload with no other appender
    /// interleaving, at a fraction of the critical-section cost.
    pub fn append_batch(&self, payloads: Vec<LogPayload>) -> Option<u64> {
        self.core.append_batch(payloads)
    }

    /// The LSN the next append will receive. Exact without a drain: the
    /// sequencer's counter is the allocation authority.
    pub fn end_lsn(&self) -> u64 {
        self.core.end_lsn()
    }

    pub fn len(&self) -> usize {
        self.core.sync_replicas();
        self.core.leader_replica().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The **quorum-acked** LSN: the highest LSN durable on a majority of
    /// replicas right now (`None` until a quorum persisted anything).
    /// Replicas with a discarded, not-yet-repaired disk do not vote — their
    /// history has a hole, so their highest durable entry says nothing
    /// about the prefix below it.
    pub fn durable_lsn(&self) -> Option<u64> {
        self.core.durable_lsn()
    }

    /// Whether a specific LSN is quorum-durable.
    pub fn is_durable(&self, lsn: u64) -> bool {
        self.durable_lsn().map(|d| d >= lsn).unwrap_or(false)
    }

    /// The latest quorum-durable watermark record (§5.2 — what the new
    /// leader retrieves from its replicated log).
    pub fn latest_durable_watermark(&self) -> Option<Ts> {
        self.latest_durable_watermark_at(None)
    }

    /// [`ReplicatedLog::latest_durable_watermark`] restricted to entries at
    /// or below `cutoff_lsn` (recovery passes the quorum LSN captured at
    /// crash time).
    pub fn latest_durable_watermark_at(&self, cutoff_lsn: Option<u64>) -> Option<Ts> {
        let cut = self.core.quorum_cutoff(cutoff_lsn)?;
        self.core
            .leader_replica()
            .latest_durable_watermark_at(Some(cut))
    }

    /// The newest checkpoint image that is quorum-durable and at or below
    /// `cutoff_lsn`.
    pub fn latest_durable_checkpoint(
        &self,
        cutoff_lsn: Option<u64>,
    ) -> Option<Arc<CheckpointImage>> {
        let cut = self.core.quorum_cutoff(cutoff_lsn)?;
        self.core
            .leader_replica()
            .latest_durable_checkpoint(Some(cut))
    }

    /// The latest (checkpoint-entry LSN, image) pair regardless of
    /// durability — the checkpoint writer folds forward from here.
    pub fn latest_checkpoint(&self) -> Option<(u64, Arc<CheckpointImage>)> {
        self.core.sync_replicas();
        self.core.leader_replica().latest_checkpoint()
    }

    /// LSN of the newest quorum-durable epoch boundary with epoch at most
    /// `max_epoch`, at or below `cutoff_lsn` (COCO recovery / checkpoint
    /// bound — recovery passes the crash-time quorum LSN so the lookup
    /// stays valid even when the live quorum broke mid-recovery, exactly
    /// like [`ReplicatedLog::replay_range`]).
    pub fn latest_durable_epoch_boundary(
        &self,
        max_epoch: u64,
        cutoff_lsn: Option<u64>,
    ) -> Option<u64> {
        let cut = self.core.quorum_cutoff(cutoff_lsn)?;
        self.core
            .leader_replica()
            .latest_durable_epoch_boundary(max_epoch, Some(cut))
    }

    /// Durability-blind epoch-boundary lookup (survivor-side rollback
    /// bound: a surviving partition's log lost nothing).
    pub fn latest_epoch_boundary(&self, max_epoch: u64) -> Option<u64> {
        self.core.sync_replicas();
        self.core.leader_replica().latest_epoch_boundary(max_epoch)
    }

    /// Replay all quorum-durable transaction writes with `ts < up_to`.
    pub fn replay_prefix(&self, up_to: Ts) -> Vec<ReplayedTxn> {
        self.replay_range(0, &ReplayBound::Ts(up_to), None)
    }

    /// Quorum-bounded replay: like `PartitionWal::replay_range`, but only
    /// entries at or below the quorum-acked LSN count as durable — an entry
    /// the old leader persisted locally that never reached a majority is
    /// honestly lost.
    pub fn replay_range(
        &self,
        from_lsn: u64,
        bound: &ReplayBound,
        cutoff_lsn: Option<u64>,
    ) -> Vec<ReplayedTxn> {
        match self.core.quorum_cutoff(cutoff_lsn) {
            Some(cut) => self
                .core
                .leader_replica()
                .replay_range(from_lsn, bound, Some(cut)),
            None => Vec::new(),
        }
    }

    /// The newest quorum-durable [`LogPayload::CommitDecision`] verdict for
    /// `txn` at or below `cutoff_lsn` (Paxos Commit verdict assembly).
    pub fn commit_decision_for(&self, txn: TxnId, cutoff_lsn: Option<u64>) -> Option<bool> {
        let cut = self.core.quorum_cutoff(cutoff_lsn)?;
        self.core
            .leader_replica()
            .commit_decision_for(txn, Some(cut))
    }

    /// The quorum-durable [`LogPayload::CommitVote`] for `txn` at or below
    /// `cutoff_lsn`, if any.
    pub fn commit_vote_for(&self, txn: TxnId, cutoff_lsn: Option<u64>) -> Option<bool> {
        let cut = self.core.quorum_cutoff(cutoff_lsn)?;
        self.core.leader_replica().commit_vote_for(txn, Some(cut))
    }

    /// Transaction ids with a quorum-durable prepare vote but no resolution
    /// at or below `cutoff_lsn` — the in-doubt set recovery terminates (see
    /// [`PartitionWal::unresolved_commit_votes`]).
    pub fn unresolved_commit_votes(&self, cutoff_lsn: Option<u64>) -> Vec<TxnId> {
        match self.core.quorum_cutoff(cutoff_lsn) {
            Some(cut) => self
                .core
                .leader_replica()
                .unresolved_commit_votes(Some(cut)),
            None => Vec::new(),
        }
    }

    /// Transaction ids with a rollback marker anywhere in the log,
    /// regardless of durability.
    pub fn rolled_back_txns(&self) -> HashSet<TxnId> {
        self.core.sync_replicas();
        self.core.leader_replica().rolled_back_txns()
    }

    /// The `TxnWrites` entries `bound` does not cover and no marker cancels
    /// yet — survivor-side compensation input. No durability filter (this
    /// partition did not crash, so every replica holds the full log).
    pub fn collect_rolled_back(
        &self,
        bound: &ReplayBound,
        upper_cutoff: Option<u64>,
    ) -> Vec<ReplayedTxn> {
        self.core.sync_replicas();
        self.core
            .leader_replica()
            .collect_rolled_back(bound, upper_cutoff)
    }

    /// Clone the suffix of the (leader's) log starting at `from_lsn`.
    pub fn entries_from(&self, from_lsn: u64) -> Vec<LogEntry> {
        self.core.sync_replicas();
        self.core.leader_replica().entries_from(from_lsn)
    }

    /// First LSN at or after `from_lsn` that a checkpoint fold may **not**
    /// absorb — bounded additionally by the quorum horizon, so images never
    /// bake in an entry a quorum could not reproduce.
    pub fn fold_stop_lsn(&self, from_lsn: u64, bound: &ReplayBound) -> u64 {
        match self.durable_lsn() {
            Some(q) => self
                .core
                .leader_replica()
                .fold_stop_lsn(from_lsn, bound)
                .min(q + 1)
                .max(from_lsn),
            None => from_lsn,
        }
    }

    /// Recovery-time log repair on **every replica**: drop the write-sets
    /// replay did not apply so no later fold can resurrect them. The
    /// cancelled-transaction set is computed once, from the leader's view
    /// of marker durability, and applied uniformly — replicas with slower
    /// disks must not keep entries the leader purged (they would end up
    /// *longer* than the leader, confusing the longest-log election and
    /// un-healable by repair). Returns the number of entries removed from
    /// the leader's copy.
    pub fn retain_replayable(
        &self,
        from_lsn: u64,
        bound: &ReplayBound,
        cutoff_lsn: Option<u64>,
    ) -> usize {
        self.core.with_sequencer_flushed(|core| {
            let leader = core.leader.load(Ordering::Acquire);
            let rolled_back = core.replicas[leader].durable_rolled_back(cutoff_lsn);
            let mut removed = 0;
            for (i, replica) in core.replicas.iter().enumerate() {
                let n = replica.retain_replayable_with(from_lsn, bound, cutoff_lsn, &rolled_back);
                if i == leader {
                    removed = n;
                }
            }
            removed
        })
    }

    /// Truncate every replica up to (and excluding) `lsn`. Returns the
    /// number of entries removed from the leader's copy.
    pub fn truncate_before(&self, lsn: u64) -> usize {
        self.core.with_sequencer_flushed(|core| {
            let leader = core.leader.load(Ordering::Acquire);
            let mut removed = 0;
            for (i, replica) in core.replicas.iter().enumerate() {
                let n = replica.truncate_before(lsn);
                if i == leader {
                    removed = n;
                }
            }
            removed
        })
    }

    /// Truncate everything covered by the newest **quorum-durable**
    /// checkpoint, on every replica.
    pub fn truncate_to_durable_checkpoint(&self) -> usize {
        match self.latest_durable_checkpoint(None) {
            Some(image) => self.truncate_before(image.base_lsn),
            None => 0,
        }
    }

    /// Discard one replica's disk (entries dropped, LSN counter kept so the
    /// replica stays aligned for future appends). It stops voting on quorum
    /// durability and standing for election until repaired. The staging
    /// ring is flushed first: a staged entry was physically delivered (and
    /// is then dropped with the rest of the disk), never resurrected by a
    /// later drain.
    pub fn wipe_replica(&self, idx: usize) -> usize {
        self.core
            .with_sequencer_flushed(|core| core.wipe_replica(idx))
    }

    /// Bump the leadership term and hand leadership to the deterministic
    /// successor: the first replica after the failed leader in ring order
    /// among the non-wiped replicas holding the longest log. The staging
    /// ring is flushed first — under the old synchronous fan-out the
    /// not-yet-quorum-acked tail was physically present on every replica at
    /// crash time, and the flush reproduces exactly that state (the tail
    /// stays "lost" in the only sense that matters: below no quorum
    /// horizon). With `discard_leader_disk` the failed leader's replica is
    /// then wiped (the crash lost its disk, not just its memory), so the
    /// successor is always a surviving copy. Returns the new leader index.
    pub fn fail_over(&self, discard_leader_disk: bool) -> usize {
        self.core.with_sequencer_flushed(|core| {
            let old = core.leader.load(Ordering::Acquire);
            if discard_leader_disk {
                core.wipe_replica(old);
            }
            let term = core.term.fetch_add(1, Ordering::AcqRel) + 1;
            let new = core.elect_successor(old);
            if new != old {
                core.leader.store(new, Ordering::Release);
                core.leader_changes.fetch_add(1, Ordering::Relaxed);
            }
            core.trace(TraceEventKind::LeaderChange {
                term,
                leader: new as u32,
            });
            new
        })
    }

    /// Re-seed wiped or lagging replicas from the elected leader's log (the
    /// authority after an election — replicas never diverge here, they can
    /// only lose their disk wholesale). Returns how many replicas were
    /// repaired. Run at the end of recovery so the replica set is back to
    /// full strength before the partition serves again.
    pub fn repair_replicas(&self) -> usize {
        self.core.with_sequencer_flushed(|core| {
            let leader = core.leader.load(Ordering::Acquire);
            let authority = core.replicas[leader].entries_from(0);
            let next_lsn = core.replicas[leader].end_lsn();
            let mut repaired = 0;
            for (i, replica) in core.replicas.iter().enumerate() {
                if i == leader {
                    // The elected leader's content is the authority by
                    // definition. Clearing its wiped flag is only sound because
                    // repair runs at the end of recovery, *after* the store and
                    // the retained log were reconciled against this very copy —
                    // if the leader itself was wiped (every replica lost its
                    // disk), the missing history has just been adjudicated as
                    // lost, and the flag must clear or the partition could
                    // never acknowledge anything again.
                    core.wiped[i].store(false, Ordering::Release);
                    continue;
                }
                // Heal any divergence from the authority — shorter (wiped or
                // lagging) and longer (a copy that somehow kept entries the
                // leader dropped) alike.
                if core.wiped[i].load(Ordering::Acquire) || replica.len() != authority.len() {
                    replica.replace_entries(authority.clone(), next_lsn);
                    core.wiped[i].store(false, Ordering::Release);
                    repaired += 1;
                }
            }
            repaired
        })
    }
}

impl LogCore {
    fn leader_replica(&self) -> &Arc<PartitionWal> {
        &self.replicas[self.leader.load(Ordering::Acquire)]
    }

    /// Record a partition-scoped (no transaction) trace event, if a
    /// recorder is attached.
    fn trace(&self, kind: TraceEventKind) {
        if let Some(rec) = self.recorder.get() {
            rec.emit(None, Some(self.partition), kind);
        }
    }

    /// [`LogCore::trace`] with the timestamp supplied by the caller — for
    /// hot paths that already hold a fresh clock reading.
    fn trace_at(&self, at_us: u64, kind: TraceEventKind) {
        if let Some(rec) = self.recorder.get() {
            rec.emit_at(at_us, None, Some(self.partition), kind);
        }
    }

    /// Next LSN to be assigned. The sequencer counter is authoritative
    /// while replication runs pipelined; a single-copy log delegates to its
    /// one replica (whose appends are synchronous).
    fn end_lsn(&self) -> u64 {
        let seq = self.ring.lock();
        if self.replicas.len() == 1 {
            self.leader_replica().end_lsn()
        } else {
            seq.next_lsn
        }
    }

    /// Stage 1: sequence one payload under the ring lock — reserve the LSN,
    /// stamp `appended_at_us`, stage the entry. No replica is touched: the
    /// pump later ships the staged tail to **every** copy (leader included)
    /// as one shared segment, carrying exactly this LSN, timestamp and
    /// term, so durability clocks run from this instant regardless of when
    /// the pump ran. A single-copy log appends straight to its one replica
    /// instead (the old `PartitionWal` fast path).
    fn append(&self, payload: LogPayload) -> u64 {
        let payload = Arc::new(payload);
        let mut seq = self.lock_sequencer();
        let term = self.term.load(Ordering::Acquire);
        if self.replicas.len() == 1 {
            let leader = self.leader.load(Ordering::Acquire);
            return self.replicas[leader].append_in_term(term, payload);
        }
        let entry = LogEntry {
            lsn: seq.next_lsn,
            appended_at_us: now_us(),
            term,
            payload,
        };
        seq.next_lsn += 1;
        let lsn = entry.lsn;
        // Stage only; the pump picks the entry up on its next tick. No
        // signal — a wake-up here costs a syscall on the commit path.
        seq.staged.push(entry);
        lsn
    }

    /// Stage 1, batched: sequence every payload under **one** ring-lock
    /// acquisition (dense LSNs, payload order preserved).
    fn append_batch(&self, payloads: Vec<LogPayload>) -> Option<u64> {
        if payloads.is_empty() {
            return None;
        }
        let mut seq = self.lock_sequencer();
        let term = self.term.load(Ordering::Acquire);
        let mut first = None;
        if self.replicas.len() == 1 {
            let leader = self.leader.load(Ordering::Acquire);
            for payload in payloads {
                let lsn = self.replicas[leader].append_in_term(term, Arc::new(payload));
                first.get_or_insert(lsn);
            }
            return first;
        }
        seq.staged.reserve(payloads.len());
        for payload in payloads {
            let entry = LogEntry {
                lsn: seq.next_lsn,
                appended_at_us: now_us(),
                term,
                payload: Arc::new(payload),
            };
            seq.next_lsn += 1;
            first.get_or_insert(entry.lsn);
            seq.staged.push(entry);
        }
        first
    }

    /// Take the sequencer lock, accounting contended waits (the metric the
    /// pipeline exists to shrink). The uncontended fast path costs no clock
    /// reads. A contended acquisition yields and retries instead of parking
    /// outright: the critical section is a couple hundred nanoseconds, so a
    /// yield usually hands the holder the time it needs and the next try
    /// succeeds — without registering a waiter, which would also put a
    /// futex wake on the holder's unlock path (the commit critical
    /// section). After a bounded number of yields it parks for real.
    fn lock_sequencer(&self) -> parking_lot::MutexGuard<'_, Sequencer> {
        if let Some(guard) = self.ring.try_lock() {
            return guard;
        }
        let blocked_at = now_us();
        let mut attempts = 0u32;
        let guard = loop {
            std::thread::yield_now();
            if let Some(guard) = self.ring.try_lock() {
                break guard;
            }
            attempts += 1;
            if attempts >= 64 {
                break self.ring.lock();
            }
        };
        let waited = now_us().saturating_sub(blocked_at);
        if waited > 0 {
            // Sub-microsecond waits truncate to zero anyway; skipping the
            // add keeps the shared counter line cold under heavy append
            // traffic.
            self.append_wait_us.fetch_add(waited, Ordering::Relaxed);
            // Stamped with `blocked_at` (when the wait began — its causal
            // time), which also spares the emit a third clock read on the
            // commit critical section.
            self.trace_at(
                blocked_at,
                TraceEventKind::SequencerWait { wait_us: waited },
            );
        }
        guard
    }

    /// Stage 2: drain the staging ring and ship the batch to the follower
    /// replicas. Called by the pump and by every drain-before-read path;
    /// `ship_lock` serializes them so batches land in LSN order.
    fn drain_staged(&self) {
        if self.replicas.len() == 1 {
            return;
        }
        let _ship = self.ship_lock.lock();
        let batch = std::mem::take(&mut self.ring.lock().staged);
        self.ship(batch);
    }

    /// Deliver a drained batch to the replica set as **one shared segment**:
    /// the batch is frozen into an `Arc<[LogEntry]>` (a move, not a clone)
    /// and handed to every replica in O(1) each — replicas fold it into
    /// their own storage lazily, on their next read. The leader's hand-off
    /// is local; only the follower deliveries count as network messages,
    /// charged once per batch. Caller holds `ship_lock` (directly or via
    /// [`LogCore::with_sequencer_flushed`]), so the leader cannot change
    /// mid-ship and segments arrive in LSN order.
    fn ship(&self, batch: Vec<LogEntry>) {
        if batch.is_empty() {
            return;
        }
        let shipped = batch.len() as u64;
        let segment: Arc<[LogEntry]> = batch.into();
        for replica in &self.replicas {
            replica.receive_segment(Arc::clone(&segment));
        }
        if let Some(net) = &self.net {
            net.note_background_messages(shipped * (self.replicas.len() as u64 - 1));
        }
        self.shipped_batches.fetch_add(1, Ordering::Relaxed);
        self.shipped_entries.fetch_add(shipped, Ordering::Relaxed);
        // The segment's own last LSN, deliberately not `durable_lsn()`:
        // that read drains the ring, which needs the `ship_lock` this very
        // caller is holding. The shipped tail bounds quorum durability for
        // this batch anyway.
        self.trace(TraceEventKind::QuorumAck {
            entries: shipped,
            durable_lsn: segment.last().map(|e| e.lsn).unwrap_or(0),
        });
    }

    /// Make every replica current before a read that consults one (quorum
    /// votes, durable scans, white-box replica access). No-op for RF 1,
    /// whose appends are synchronous.
    fn sync_replicas(&self) {
        if self.replicas.len() > 1 {
            self.drain_staged();
        }
    }

    /// Flush the staging ring and run `f` while holding both the ship lock
    /// and the ring lock: no append can interleave and no pump drain is in
    /// flight, so `f` sees (and may mutate) a fully consistent replica set.
    /// Every replica-set mutation — fail-over, wipe, repair, retention,
    /// truncation — goes through here; afterwards the sequencer's LSN
    /// counter is resynchronized from the (possibly re-elected, possibly
    /// truncated) leader's log.
    fn with_sequencer_flushed<R>(&self, f: impl FnOnce(&Self) -> R) -> R {
        let _ship = self.ship_lock.lock();
        let mut seq = self.ring.lock();
        let batch = std::mem::take(&mut seq.staged);
        self.ship(batch);
        let result = f(self);
        seq.next_lsn = self.leader_replica().end_lsn();
        result
    }

    fn wipe_replica(&self, idx: usize) -> usize {
        self.wiped[idx].store(true, Ordering::Release);
        self.replicas[idx].wipe_log()
    }

    /// The quorum-acked LSN (see [`ReplicatedLog::durable_lsn`]).
    /// Allocation-free for replica sets up to [`INLINE_VOTES`]: votes are
    /// collected and partially sorted on the stack — this runs on every
    /// watermark lookup, snapshot-horizon read and replay bound.
    fn durable_lsn(&self) -> Option<u64> {
        self.sync_replicas();
        let n = self.replicas.len();
        if n <= INLINE_VOTES {
            let mut votes = [None; INLINE_VOTES];
            for (i, (replica, wiped)) in self.replicas.iter().zip(&self.wiped).enumerate() {
                if !wiped.load(Ordering::Acquire) {
                    votes[i] = replica.durable_lsn();
                }
            }
            let votes = &mut votes[..n];
            votes.sort_unstable_by(|a, b| b.cmp(a)); // descending; None sorts last
            votes[self.quorum - 1]
        } else {
            let mut votes: Vec<Option<u64>> = self
                .replicas
                .iter()
                .zip(&self.wiped)
                .map(|(r, wiped)| {
                    if wiped.load(Ordering::Acquire) {
                        None
                    } else {
                        r.durable_lsn()
                    }
                })
                .collect();
            votes.sort_by(|a, b| b.cmp(a));
            votes[self.quorum - 1]
        }
    }

    /// Clamp a caller-supplied cutoff to the quorum horizon. `None` result
    /// means nothing is quorum-durable at all. A caller-supplied cutoff is
    /// itself a quorum LSN captured earlier (recovery passes the crash-time
    /// horizon), so when the *live* quorum is broken — e.g. a second disk
    /// loss mid-recovery left only one intact replica — the cutoff is
    /// trusted as-is: every entry below it reached a majority when it was
    /// captured, and the elected leader (the longest intact replica) still
    /// holds them. Without this, a below-quorum recovery would rebuild an
    /// empty store while the intact leader's log provably contains the
    /// acknowledged history.
    fn quorum_cutoff(&self, cutoff_lsn: Option<u64>) -> Option<u64> {
        match (self.durable_lsn(), cutoff_lsn) {
            (Some(q), Some(c)) => Some(c.min(q)),
            (Some(q), None) => Some(q),
            (None, Some(c)) => Some(c),
            (None, None) => None,
        }
    }

    /// Deterministic successor rule: candidates are the non-wiped replicas
    /// with the maximum entry count ("the longest quorum-consistent
    /// replica"); the winner is the first candidate encountered walking the
    /// ring from `failed + 1`. Falls back to the failed leader itself when
    /// every replica is wiped (nothing better exists — RF 1 disk loss).
    fn elect_successor(&self, failed: usize) -> usize {
        let n = self.replicas.len();
        let longest = self
            .replicas
            .iter()
            .zip(&self.wiped)
            .filter(|(_, w)| !w.load(Ordering::Acquire))
            .map(|(r, _)| r.len())
            .max();
        let Some(longest) = longest else {
            return failed;
        };
        for step in 1..=n {
            let i = (failed + step) % n;
            if !self.wiped[i].load(Ordering::Acquire) && self.replicas[i].len() == longest {
                return i;
            }
        }
        failed
    }

    /// Stage-2 drainer: poll the ring every [`PUMP_TICK`] (appends stage
    /// silently; only shutdown signals), drain whatever accumulated — the
    /// tick is what turns a stream of appends into a batch. On shutdown the
    /// ring is drained one final
    /// time — by then the owning [`ReplicatedLog`] is being dropped, so no
    /// appender can race the flush.
    fn pump_loop(&self) {
        loop {
            {
                let mut ring = self.ring.lock();
                if !self.shutdown.load(Ordering::Acquire) {
                    // Sleep a full tick even when entries are already
                    // staged: the tick is what turns a stream of appends
                    // into a batch, and an always-ready pump would spin on
                    // the sequencer lock against the committers it exists
                    // to unburden. (The shutdown check happens under the
                    // ring lock; `Drop` stores the flag before taking it,
                    // so the pump is either warned here or already waiting
                    // when the notification fires — never in between.)
                    self.signal.wait_for(&mut ring, PUMP_TICK);
                }
            }
            self.drain_staged();
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::LoggingScheme;
    use primo_common::{FastRng, TableId, Value};
    use std::time::Duration;

    fn rf3(persist_us: u64, replica_us: u64, hop_us: u64) -> ReplicatedLog {
        ReplicatedLog::new(
            PartitionId(0),
            WalConfig {
                scheme: LoggingScheme::Watermark,
                interval_ms: 1,
                persist_delay_us: persist_us,
                force_update: true,
                replication_factor: 3,
                replica_persist_delay_us: Some(replica_us),
                ..WalConfig::default()
            },
            hop_us,
            None,
        )
    }

    fn txn(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    fn put(seq: u64, ts: Ts) -> LogPayload {
        LogPayload::TxnWrites {
            txn: txn(seq),
            ts,
            writes: vec![crate::LoggedWrite::put(
                TableId(0),
                seq,
                Value::from_u64(seq),
            )],
        }
    }

    #[test]
    fn appends_fan_out_with_aligned_lsns() {
        let log = rf3(0, 0, 0);
        let a = log.append(put(1, 5));
        let b = log.append(put(2, 6));
        assert_eq!((a, b), (0, 1));
        for i in 0..3 {
            assert_eq!(log.replica(i).len(), 2, "replica {i}");
            assert_eq!(log.replica(i).end_lsn(), 2, "replica {i}");
        }
        assert_eq!(log.replication_factor(), 3);
        assert_eq!(log.quorum(), 2);
    }

    #[test]
    fn quorum_ack_delay_is_the_majority_replicas_delay() {
        // Leader persists in 100us; remotes in 300 (hop) + 500 = 800us. The
        // quorum (2 of 3) is only reached once one remote persisted.
        let log = rf3(100, 500, 300);
        assert_eq!(log.quorum_ack_delay_us(), 800);
        // RF 1: quorum ack == local persist.
        let single = ReplicatedLog::single(PartitionId(0), 100);
        assert_eq!(single.quorum_ack_delay_us(), 100);
    }

    #[test]
    fn durable_lsn_is_quorum_acked_not_leader_local() {
        let log = rf3(0, 30_000, 0); // leader durable instantly, remotes 30ms
        log.append(put(1, 5));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(log.replica(0).durable_lsn(), Some(0), "leader persisted");
        assert_eq!(
            log.durable_lsn(),
            None,
            "no quorum until a second replica persists"
        );
        assert!(!log.is_durable(0));
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(log.durable_lsn(), Some(0), "majority reached");
        assert!(log.is_durable(0));
    }

    #[test]
    fn durable_reads_are_clamped_to_the_quorum_horizon() {
        let log = rf3(0, 30_000, 0);
        log.append(LogPayload::Watermark { wp: 7 });
        std::thread::sleep(Duration::from_millis(2));
        // Locally durable on the leader, but no quorum yet.
        assert_eq!(log.latest_durable_watermark(), None);
        assert!(log.replay_prefix(u64::MAX).is_empty());
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(log.latest_durable_watermark(), Some(7));
    }

    #[test]
    fn fail_over_elects_the_ring_successor_and_bumps_the_term() {
        let log = rf3(0, 0, 0);
        log.append(put(1, 5));
        assert_eq!(log.leader_index(), 0);
        assert_eq!(log.term(), 0);
        let new = log.fail_over(true);
        assert_eq!(new, 1, "deterministic ring successor");
        assert_eq!(log.term(), 1);
        assert_eq!(log.leader_changes(), 1);
        // A second hand-off (replacement leader dies too, memory only).
        assert_eq!(log.fail_over(false), 2);
        assert_eq!(log.term(), 2);
        // Entries appended now carry the new term.
        let lsn = log.append(put(2, 6));
        let entry = log
            .entries_from(lsn)
            .into_iter()
            .next()
            .expect("appended entry");
        assert_eq!(entry.term, 2);
    }

    #[test]
    fn disk_loss_leaves_history_readable_from_survivors() {
        let log = rf3(0, 0, 0);
        log.append(put(1, 5));
        log.append(LogPayload::Watermark { wp: 9 });
        std::thread::sleep(Duration::from_millis(2));
        log.fail_over(true); // leader disk discarded
        assert_eq!(log.replica(0).len(), 0, "the wiped copy is gone");
        assert_eq!(
            log.latest_durable_watermark(),
            Some(9),
            "the surviving quorum still serves the history"
        );
        assert_eq!(log.replay_prefix(u64::MAX).len(), 1);
        // Repair re-seeds the wiped replica from the new leader.
        assert_eq!(log.repair_replicas(), 1);
        assert_eq!(log.replica(0).len(), 2);
        // New appends continue LSN-aligned on all replicas.
        let lsn = log.append(put(2, 12));
        assert_eq!(lsn, 2);
        for i in 0..3 {
            assert_eq!(log.replica(i).end_lsn(), 3, "replica {i}");
        }
    }

    #[test]
    fn wiped_replicas_do_not_vote_on_quorum_durability() {
        let log = rf3(0, 30_000, 0);
        log.append(put(1, 5));
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(log.durable_lsn(), Some(0));
        // Wipe both remotes: the leader alone is no quorum, and the wiped
        // copies' post-wipe appends must not fake one.
        log.wipe_replica(1);
        log.wipe_replica(2);
        log.append(put(2, 6));
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(
            log.durable_lsn(),
            None,
            "a majority of intact copies is required"
        );
    }

    #[test]
    fn slow_leader_disk_does_not_hide_quorum_acked_entries() {
        // The leader's own disk is far slower than the quorum: the two fast
        // remotes acknowledge an entry long before the leader persists it
        // locally. Quorum-bounded reads go through the leader replica, so
        // the cutoff must act as the durability horizon — the leader's disk
        // delay must not filter out what the quorum acknowledged.
        let log = rf3(500_000, 50, 0);
        assert_eq!(log.quorum_ack_delay_us(), 50);
        log.append(put(1, 5));
        log.append(LogPayload::Watermark { wp: 9 });
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(
            log.durable_lsn(),
            Some(1),
            "the two fast replicas form the quorum"
        );
        assert_eq!(
            log.replay_prefix(u64::MAX).len(),
            1,
            "the quorum-acked write-set must be replayable through the slow leader"
        );
        assert_eq!(log.latest_durable_watermark(), Some(9));
    }

    #[test]
    fn explicit_cutoff_survives_a_broken_live_quorum() {
        let log = rf3(0, 0, 0);
        log.append(put(1, 5));
        std::thread::sleep(Duration::from_millis(2));
        let cutoff = log.durable_lsn();
        assert_eq!(cutoff, Some(0));
        // Lose two of three disks: the live quorum is gone…
        log.fail_over(true); // leader 0 wiped, leadership -> 1
        log.fail_over(true); // leader 1 wiped, leadership -> 2
        assert_eq!(log.leader_index(), 2);
        assert_eq!(log.durable_lsn(), None);
        // …but reads bounded by a cutoff captured from a real quorum still
        // serve the acknowledged history from the intact leader (recovery
        // passes the crash-time quorum LSN exactly like this).
        assert_eq!(
            log.replay_range(0, &ReplayBound::Ts(u64::MAX), cutoff)
                .len(),
            1,
            "the intact replica must serve everything below the old quorum"
        );
        // Unbounded durable reads stay honest about the broken quorum.
        assert!(log.replay_prefix(u64::MAX).is_empty());
    }

    #[test]
    fn single_replica_log_behaves_like_the_old_partition_wal() {
        let log = ReplicatedLog::single(PartitionId(3), 0);
        assert_eq!(log.partition(), PartitionId(3));
        let lsn = log.append(put(1, 5));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(log.durable_lsn(), Some(lsn));
        assert_eq!(log.replay_prefix(10).len(), 1);
        assert_eq!(log.fail_over(false), 0, "a ring of one elects itself");
        assert_eq!(log.leader_changes(), 0);
        assert!(!log.is_empty());
        assert_eq!(log.truncate_before(1), 1);
    }

    #[test]
    fn pump_ships_staged_entries_without_a_reader_drain() {
        // The background pump alone must replicate — no durable read or
        // white-box accessor forcing a drain. Poll the shipped-entry
        // counter (a pure observer) until the pump has delivered.
        let log = rf3(0, 0, 0);
        log.append(put(1, 5));
        log.append(put(2, 6));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while log.replicated_entries() < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "pump never drained the staging ring"
            );
            std::thread::yield_now();
        }
        assert!(log.replication_batches() >= 1);
        for i in 0..3 {
            assert_eq!(log.replica(i).len(), 2, "replica {i}");
        }
    }

    #[test]
    fn concurrent_appends_sequence_densely_and_replicate_identically() {
        // Seeded multi-threaded append property test: with T threads
        // appending concurrently (each yielding pseudo-randomly to vary the
        // interleaving), the pipeline must still produce (1) dense gap-free
        // LSNs, (2) per-key commit-ts order = log order, and (3) follower
        // copies byte-identical to the leader after a drain.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 200;
        let seed: u64 = std::env::var("PRIMO_APPEND_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(7);
        let log = Arc::new(rf3(0, 0, 0));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    let mut rng = FastRng::new(seed.wrapping_add(t));
                    for i in 0..PER_THREAD {
                        // Key = thread id, commit ts strictly increasing per
                        // key: exactly the per-key install order the
                        // durability invariant promises to preserve.
                        log.append(LogPayload::TxnWrites {
                            txn: TxnId::new(PartitionId(0), t * PER_THREAD + i + 1),
                            ts: i + 1,
                            writes: vec![crate::LoggedWrite::put(
                                TableId(0),
                                t,
                                Value::from_u64(i),
                            )],
                        });
                        if rng.next_u64().is_multiple_of(4) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = THREADS * PER_THREAD;
        assert_eq!(log.end_lsn(), total);
        let leader_entries = log.entries_from(0);
        assert_eq!(leader_entries.len(), total as usize);
        // Dense gap-free LSNs, monotone append timestamps.
        let mut last_ts_per_key = vec![0u64; THREADS as usize];
        for (i, e) in leader_entries.iter().enumerate() {
            assert_eq!(e.lsn, i as u64, "gap in the LSN sequence");
            if let LogPayload::TxnWrites { ts, writes, .. } = e.payload.as_ref() {
                let key = writes[0].key as usize;
                assert!(
                    *ts > last_ts_per_key[key],
                    "per-key commit-ts order violated at lsn {i}"
                );
                last_ts_per_key[key] = *ts;
            } else {
                panic!("unexpected payload");
            }
        }
        // Followers byte-identical to the leader once drained (the
        // `replica` accessor drains): same LSN, timestamp, term, and the
        // very same shared payload allocation.
        for r in 0..3 {
            let copy = log.replica(r).entries_from(0);
            assert_eq!(copy.len(), leader_entries.len(), "replica {r} length");
            for (a, b) in copy.iter().zip(&leader_entries) {
                assert_eq!(a.lsn, b.lsn);
                assert_eq!(a.appended_at_us, b.appended_at_us);
                assert_eq!(a.term, b.term);
                assert!(
                    Arc::ptr_eq(&a.payload, &b.payload),
                    "replica {r} holds a different payload at lsn {}",
                    a.lsn
                );
            }
        }
    }

    #[test]
    fn staged_tail_is_flushed_on_fail_over_and_stays_below_the_quorum_horizon() {
        // Entries sequenced but not yet quorum-replicated must be rolled
        // back by a crash exactly like the old volatile tail: physically
        // flushed to the survivors (so follower LSN counters stay aligned
        // and repair works), but below no quorum horizon — bounded replay
        // with the crash-time cutoff reproduces nothing.
        let log = rf3(0, 300_000, 0); // leader instant, followers 300ms out
        log.append(put(1, 5));
        log.append(put(2, 6));
        let cutoff = log.durable_lsn();
        assert_eq!(cutoff, None, "no quorum inside the replication window");
        let new_leader = log.fail_over(true); // crash + disk loss
        assert_eq!(new_leader, 1);
        // The staged tail was flushed before the wipe: both survivors
        // physically hold the whole log…
        assert_eq!(log.replica(1).len(), 2);
        assert_eq!(log.replica(2).len(), 2);
        assert_eq!(log.replica(0).len(), 0, "the wiped disk lost everything");
        // …but the crash-time horizon says nothing was acknowledged, so
        // recovery-style bounded replay loses the tail honestly.
        assert!(log
            .replay_range(0, &ReplayBound::Ts(u64::MAX), cutoff)
            .is_empty());
        assert_eq!(log.durable_lsn(), None);
    }

    #[test]
    fn append_batch_is_one_sequencer_acquisition_with_dense_lsns() {
        let log = rf3(0, 0, 0);
        log.append(put(1, 5));
        let first = log.append_batch(vec![put(2, 6), put(3, 7), put(4, 8)]);
        assert_eq!(first, Some(1));
        assert_eq!(log.append_batch(Vec::new()), None);
        assert_eq!(log.end_lsn(), 4);
        for i in 0..3 {
            assert_eq!(log.replica(i).len(), 4, "replica {i}");
        }
        // Batch order = LSN order.
        let entries = log.entries_from(1);
        let ts: Vec<Ts> = entries
            .iter()
            .map(|e| match e.payload.as_ref() {
                LogPayload::TxnWrites { ts, .. } => *ts,
                _ => panic!("unexpected payload"),
            })
            .collect();
        assert_eq!(ts, vec![6, 7, 8]);
    }

    #[test]
    fn commit_votes_and_decisions_survive_leader_disk_loss() {
        let log = rf3(0, 0, 0);
        let t = txn(1);
        log.append(LogPayload::CommitVote {
            txn: t,
            coordinator: PartitionId(0),
            commit: true,
        });
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(log.commit_vote_for(t, None), Some(true));
        assert_eq!(log.unresolved_commit_votes(None), vec![t]);
        // The coordinator's replica loses its disk: the quorum still holds
        // the vote, so any survivor can terminate the in-doubt transaction.
        let cutoff = log.durable_lsn();
        log.fail_over(true);
        assert_eq!(log.commit_vote_for(t, cutoff), Some(true));
        assert_eq!(log.unresolved_commit_votes(cutoff), vec![t]);
        log.append(LogPayload::CommitDecision {
            txn: t,
            commit: false,
        });
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(log.commit_decision_for(t, None), Some(false));
        assert!(log.unresolved_commit_votes(None).is_empty());
    }

    #[test]
    fn append_wait_accounts_contended_sequencer_acquisitions_only() {
        let log = Arc::new(rf3(0, 0, 0));
        log.append(put(1, 5));
        assert_eq!(
            log.append_wait_us(),
            0,
            "uncontended appends never touch the clock"
        );
    }
}
