//! Sundial (Yu et al., VLDB '18): TicToc-style logical leases harmonised with
//! caching, plus 2PC for distributed transactions. The paper uses it as the
//! strongest OCC baseline (it usually is the best of the five competitors).
//!
//! Compared with Silo, Sundial validates by *renewing leases* (extending a
//! record's `rts`) instead of insisting the version is unchanged, so fewer
//! read-validation aborts occur; but it still needs the 2PC prepare/commit
//! rounds that Primo eliminates.

use crate::common::{
    abort_round, commit_round, install_locked_writes, lock_write_set, prepare_round,
    reclaim_deletes, BaselineCtx, ReadGuard,
};
use primo_common::{AbortReason, Phase, PhaseTimers, Ts, TxnError, TxnId, TxnResult};
use primo_runtime::cluster::Cluster;
use primo_runtime::prefetch::ReadFanout;
use primo_runtime::protocol::{CommittedTxn, Protocol};
use primo_runtime::txn::TxnProgram;
use primo_storage::LockPolicy;
use primo_wal::TxnTicket;

/// Sundial: TicToc leases + 2PC.
#[derive(Debug, Clone, Default)]
pub struct SundialProtocol;

impl SundialProtocol {
    pub fn new() -> Self {
        SundialProtocol
    }
}

impl Protocol for SundialProtocol {
    fn name(&self) -> &'static str {
        "Sundial"
    }

    fn execute_once(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        program: &dyn TxnProgram,
        ticket: &TxnTicket,
        timers: &mut PhaseTimers,
        fanout: &ReadFanout,
    ) -> TxnResult<CommittedTxn> {
        let home = program.home_partition();
        let mut ctx =
            BaselineCtx::new(cluster, txn, home, ReadGuard::Optimistic).with_fanout(fanout);

        // Execution: lease-based reads (no locks), buffered writes.
        let exec = timers.time(Phase::Execute, || program.execute(&mut ctx));
        if let Err(e) = exec {
            let reason = ctx.dead.unwrap_or(e.reason());
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }
        let distributed = ctx.access.is_distributed(home);

        // Prepare round (write-set shipping + lease renewal requests).
        let parts = match timers.time(Phase::TwoPc, || prepare_round(&ctx, ticket)) {
            Ok(p) => p,
            Err(reason) => {
                ctx.abort_cleanup();
                return Err(TxnError::Aborted(reason));
            }
        };

        // Lock the write set.
        let locked = match timers.time(Phase::Commit, || lock_write_set(&ctx, LockPolicy::NoWait)) {
            Ok(l) => l,
            Err(reason) => {
                abort_round(&ctx, &parts);
                ctx.abort_cleanup();
                return Err(TxnError::Aborted(reason));
            }
        };

        // Compute the commit timestamp from the observed leases and the
        // current state of the write records (TicToc rules), then reserve it
        // with the group-commit scheme: the reservation applies the
        // coordinator's watermark floor atomically and pins the watermark
        // below `ts` until `txn_committed`, so the write-set logged below
        // can never land under an already-published (durability-claiming)
        // watermark.
        let ts = timers.time(Phase::Timestamp, || {
            let mut ts: Ts = 0;
            for r in &ctx.access.reads {
                ts = ts.max(r.wts);
            }
            for (_, record) in &locked.records {
                let (_, rts) = record.timestamps();
                ts = ts.max(rts + 1);
            }
            cluster.group_commit.reserve_commit_ts(ticket, ts)
        });
        cluster.group_commit.update_ts(ticket, ts);

        // Validate by lease renewal: every read record must be extensible to
        // cover `ts` (version unchanged, or already valid at ts; foreign
        // exclusive locks block renewal).
        let validation = timers.time(Phase::Commit, || {
            for r in &ctx.access.reads {
                if r.rts >= ts {
                    continue;
                }
                let in_write_set = ctx.access.find_write(r.partition, r.table, r.key).is_some();
                let (wts_now, _) = r.record.timestamps();
                if wts_now != r.wts {
                    return Err(AbortReason::Validation);
                }
                if !in_write_set && r.record.lock().exclusively_locked_by_other(txn) {
                    return Err(AbortReason::Validation);
                }
                r.record.extend_rts(ts);
            }
            Ok(())
        });
        if let Err(reason) = validation {
            // Unwind materialised insert records before their locks drop so
            // no other transaction can claim the slot in between.
            ctx.access.undo.unwind();
            locked.release(txn);
            abort_round(&ctx, &parts);
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }

        // Log the write-set under the locks, then install at ts (deletes
        // tombstone at ts).
        let ops = ctx.access.ops();
        timers.time(Phase::Commit, || {
            install_locked_writes(&ctx, ticket, &locked, Some(ts));
        });

        // Decision round, release, reclaim installed tombstones.
        timers.time(Phase::TwoPc, || commit_round(&ctx, &parts));
        locked.release(txn);
        ctx.access.release_all_locks(txn);
        reclaim_deletes(&ctx);

        Ok(CommittedTxn {
            ts,
            ops,
            distributed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_common::{PartitionId, TableId, Value};
    use primo_runtime::txn::IncrementProgram;
    use primo_runtime::worker::run_single_txn;
    use std::sync::Arc;

    fn loaded(n: usize) -> Arc<Cluster> {
        let cluster = Cluster::new(ClusterConfig::for_tests(n));
        for p in 0..n as u32 {
            for k in 0..32u64 {
                cluster
                    .partition(PartitionId(p))
                    .store
                    .insert(TableId(0), k, Value::from_u64(0));
            }
        }
        cluster
    }

    #[test]
    fn sundial_commits_and_tags_timestamps() {
        let cluster = loaded(2);
        let protocol = SundialProtocol::new();
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![
                (PartitionId(0), TableId(0), 1),
                (PartitionId(1), TableId(0), 2),
            ],
        };
        run_single_txn(&cluster, &protocol, &prog).unwrap();
        let (wts, rts) = cluster
            .partition(PartitionId(1))
            .store
            .get(TableId(0), 2)
            .unwrap()
            .timestamps();
        assert!(wts > 0);
        assert_eq!(wts, rts);
        cluster.shutdown();
    }

    #[test]
    fn sundial_lease_renewal_tolerates_rts_extension_by_others() {
        // A record whose rts was extended (but not overwritten) since we read
        // it must still validate — this is Sundial's advantage over Silo.
        let cluster = loaded(1);
        let protocol = SundialProtocol::new();
        let rec = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 5)
            .unwrap();
        rec.install(Value::from_u64(7), 3);
        // A reader extends the lease concurrently.
        rec.extend_rts(50);
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![(PartitionId(0), TableId(0), 5)],
        };
        run_single_txn(&cluster, &protocol, &prog).unwrap();
        assert_eq!(rec.read().value.as_u64(), 8);
        cluster.shutdown();
    }

    #[test]
    fn sundial_distributed_needs_2pc_rounds() {
        let cluster = loaded(2);
        let protocol = SundialProtocol::new();
        let before = cluster.net.round_trips_charged();
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![(PartitionId(1), TableId(0), 8)],
        };
        run_single_txn(&cluster, &protocol, &prog).unwrap();
        assert_eq!(cluster.net.round_trips_charged() - before, 3);
        cluster.shutdown();
    }
}
