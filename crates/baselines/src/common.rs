//! Shared building blocks for the baseline protocols: an OCC-style execution
//! context (reads without locks or with shared locks, buffered writes) and
//! helpers for the 2PC commit rounds.

use primo_common::{AbortReason, Key, PartitionId, TableId, Ts, TxnError, TxnId, TxnResult, Value};
use primo_runtime::access::{
    check_visible, recheck_locked_record, resolve_write_record, AccessSet, ReadEntry, WriteEntry,
    WriteKind,
};
use primo_runtime::cluster::Cluster;
use primo_runtime::commit::{PrepareOutcome, PreparedAt};
use primo_runtime::durability::log_txn_writes;
use primo_runtime::prefetch::{PrefetchOutcome, ReadFanout};
use primo_runtime::txn::TxnContext;
use primo_storage::{LockMode, LockPolicy, LockRequestResult, Record};
use primo_trace::TraceEventKind;
use std::sync::Arc;

/// How the execution phase guards reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadGuard {
    /// No lock; remember the observed version/timestamps (Silo, Sundial,
    /// TAPIR, Aria).
    Optimistic,
    /// Shared lock for the whole transaction (2PL).
    SharedLock(LockPolicy),
}

/// Execution context shared by every baseline.
pub struct BaselineCtx<'a> {
    pub cluster: &'a Cluster,
    pub txn: TxnId,
    pub home: PartitionId,
    pub guard: ReadGuard,
    pub access: AccessSet,
    pub dead: Option<AbortReason>,
    /// Set when the commit layer orphaned this transaction (coordinator
    /// crash under classic 2PC): cleanup must NOT run — the locks leak and
    /// the participants stay blocked, which is the observable failure mode.
    orphaned: std::cell::Cell<bool>,
    /// The attempt's batched-prefetch buffer, when the worker resolved one
    /// (see [`primo_runtime::prefetch`]): consulted before paying a
    /// per-record remote round trip.
    fanout: Option<&'a ReadFanout>,
}

impl<'a> BaselineCtx<'a> {
    pub fn new(cluster: &'a Cluster, txn: TxnId, home: PartitionId, guard: ReadGuard) -> Self {
        BaselineCtx {
            cluster,
            txn,
            home,
            guard,
            access: AccessSet::new(),
            dead: None,
            orphaned: std::cell::Cell::new(false),
            fanout: None,
        }
    }

    /// Attach the attempt's prefetch buffer. Without it every remote read
    /// pays the sequential per-record round trip, as before.
    pub fn with_fanout(mut self, fanout: &'a ReadFanout) -> Self {
        self.fanout = Some(fanout);
        self
    }

    fn fail(&mut self, reason: AbortReason) -> TxnError {
        self.dead = Some(reason);
        TxnError::Aborted(reason)
    }

    /// Pay the network cost of a remote read — unless the attempt's batched
    /// fan-out already covers the key at the record's current version. A
    /// stale or missing entry falls back to the per-record round trip; a hit
    /// on a partition that crashed since the fan-out still fails, exactly as
    /// the round trip would.
    fn charge_remote_read(&mut self, p: PartitionId, table: TableId, key: Key) -> TxnResult<()> {
        let outcome = match self.fanout {
            None => PrefetchOutcome::Miss,
            Some(f) => {
                f.observe(p, table, key);
                f.check_value(self.cluster, p, table, key)
            }
        };
        match outcome {
            PrefetchOutcome::Hit => {
                if self.cluster.net.is_crashed(p) {
                    return Err(self.fail(AbortReason::RemoteUnavailable));
                }
                self.cluster.note_prefetch_hit();
                self.cluster.recorder.emit(
                    Some(self.txn),
                    Some(self.home),
                    TraceEventKind::PrefetchHit,
                );
                Ok(())
            }
            outcome => {
                if self.fanout.is_some() {
                    if outcome == PrefetchOutcome::Stale {
                        self.cluster.note_prefetch_stale();
                        self.cluster.recorder.emit(
                            Some(self.txn),
                            Some(self.home),
                            TraceEventKind::PrefetchStale,
                        );
                    } else {
                        self.cluster.note_prefetch_miss();
                    }
                }
                if !self.cluster.net.round_trip(self.home, p) {
                    return Err(self.fail(AbortReason::RemoteUnavailable));
                }
                Ok(())
            }
        }
    }

    /// Unwind every record this attempt materialised for an insert, release
    /// all locks and notify participants of the abort.
    ///
    /// A no-op for an orphaned transaction: nobody is left alive to clean
    /// up after a coordinator crash under classic 2PC.
    pub fn abort_cleanup(&mut self) {
        if self.orphaned.get() {
            return;
        }
        let parts = self.access.participants(self.home);
        if !parts.is_empty() {
            self.cluster.net.one_way_multi(self.home, &parts);
        }
        self.access.abort_unwind(self.txn);
    }

    /// Fetch the record for a key, applying the lifecycle visibility rules
    /// (a tombstone or another transaction's uncommitted insert reads as
    /// absent, see [`check_visible`]).
    pub fn record_visible(
        &self,
        p: PartitionId,
        table: TableId,
        key: Key,
    ) -> Result<Arc<Record>, AbortReason> {
        match self.cluster.partition(p).store.get(table, key) {
            Some(r) => check_visible(&r, self.txn).map(|()| r),
            None => Err(AbortReason::NotFound),
        }
    }
}

impl TxnContext for BaselineCtx<'_> {
    fn read(&mut self, p: PartitionId, table: TableId, key: Key) -> TxnResult<Value> {
        if let Some(reason) = self.dead {
            return Err(TxnError::Aborted(reason));
        }
        if let Some(i) = self.access.find_write(p, table, key) {
            if self.access.writes[i].kind == WriteKind::Delete {
                return Err(self.fail(AbortReason::NotFound));
            }
            return Ok(self.access.writes[i].value.clone());
        }
        if let Some(i) = self.access.find_read(p, table, key) {
            return Ok(self.access.reads[i].record.read().value);
        }
        let remote = p != self.home;
        if remote {
            self.charge_remote_read(p, table, key)?;
        } else if self.cluster.net.is_crashed(p) {
            return Err(self.fail(AbortReason::RemoteUnavailable));
        }
        let record = match self.record_visible(p, table, key) {
            Ok(r) => r,
            Err(reason) => return Err(self.fail(reason)),
        };
        let locked = match self.guard {
            ReadGuard::Optimistic => None,
            ReadGuard::SharedLock(policy) => {
                if record.acquire(self.txn, LockMode::Shared, policy) != LockRequestResult::Granted
                {
                    if let Some(owner) = record.lock().holder() {
                        self.cluster.recorder.emit(
                            Some(self.txn),
                            Some(p),
                            TraceEventKind::LockWait { owner },
                        );
                    }
                    let reason = match policy {
                        LockPolicy::NoWait => AbortReason::LockConflict,
                        LockPolicy::WaitDie => AbortReason::WaitDie,
                    };
                    return Err(self.fail(reason));
                }
                // A delete may have committed between resolution and lock
                // acquisition; the lock pins the state, so re-check it (the
                // helper also reclaims the tombstone our lock pinned).
                if let Err(reason) = recheck_locked_record(
                    &record,
                    self.txn,
                    WriteKind::Put,
                    &self.cluster.partition(p).store.table(table),
                    key,
                ) {
                    return Err(self.fail(reason));
                }
                Some(LockMode::Shared)
            }
        };
        let row = record.read();
        let value = row.value.clone();
        self.access.reads.push(ReadEntry {
            partition: p,
            table,
            key,
            record,
            wts: row.wts,
            rts: row.rts,
            locked,
            dummy: false,
        });
        Ok(value)
    }

    fn write(&mut self, p: PartitionId, table: TableId, key: Key, value: Value) -> TxnResult<()> {
        if let Some(reason) = self.dead {
            return Err(TxnError::Aborted(reason));
        }
        // A plain write after a same-transaction delete updates a key that
        // no longer exists.
        if let Some(i) = self.access.find_write(p, table, key) {
            if self.access.writes[i].kind == WriteKind::Delete {
                return Err(self.fail(AbortReason::NotFound));
            }
        }
        self.access
            .buffer_write(WriteEntry::put(p, table, key, value));
        Ok(())
    }

    fn insert(&mut self, p: PartitionId, table: TableId, key: Key, value: Value) -> TxnResult<()> {
        if let Some(reason) = self.dead {
            return Err(TxnError::Aborted(reason));
        }
        self.access
            .buffer_write(WriteEntry::insert(p, table, key, value));
        Ok(())
    }

    fn delete(&mut self, p: PartitionId, table: TableId, key: Key) -> TxnResult<()> {
        if let Some(reason) = self.dead {
            return Err(TxnError::Aborted(reason));
        }
        if let Some(i) = self.access.find_write(p, table, key) {
            match self.access.writes[i].kind {
                // Deleting a key this transaction inserted cancels the
                // insert outright (baselines materialise insert records only
                // at commit time, so there is nothing to unlink yet).
                WriteKind::Insert => {
                    self.access.writes.remove(i);
                    return Ok(());
                }
                WriteKind::Delete => return Err(self.fail(AbortReason::NotFound)),
                WriteKind::Put => {
                    self.access.writes[i] = WriteEntry::delete(p, table, key);
                    return Ok(());
                }
            }
        }
        self.access.buffer_write(WriteEntry::delete(p, table, key));
        Ok(())
    }
}

/// Outcome of locking the write set during a prepare phase.
#[derive(Debug)]
pub struct LockedWriteSet {
    pub records: Vec<(usize, Arc<Record>)>,
}

impl LockedWriteSet {
    pub fn release(&self, txn: TxnId) {
        for (_, r) in &self.records {
            r.release(txn);
        }
    }
}

/// Lock every write record with the given policy, materialising records only
/// for `insert`-kind writes (in `UncommittedInsert` state, undo-logged in the
/// context's access set so an abort unlinks them again). A plain write or
/// delete whose record does not exist — or was deleted — aborts with
/// [`AbortReason::NotFound`]. Returns the locked set or the abort reason.
pub fn lock_write_set(
    ctx: &BaselineCtx<'_>,
    policy: LockPolicy,
) -> Result<LockedWriteSet, AbortReason> {
    let mut locked = LockedWriteSet {
        records: Vec::with_capacity(ctx.access.writes.len()),
    };
    // On any failure below: unwind the records this phase materialised
    // *before* releasing their locks, so no other transaction can claim a
    // created record's slot in between.
    for (i, w) in ctx.access.writes.iter().enumerate() {
        let store = &ctx.cluster.partition(w.partition).store;
        let record = match resolve_write_record(store, w, ctx.txn, &ctx.access.undo) {
            Ok(r) => r,
            Err(reason) => {
                ctx.access.undo.unwind();
                locked.release(ctx.txn);
                return Err(reason);
            }
        };
        if record.acquire(ctx.txn, LockMode::Exclusive, policy) != LockRequestResult::Granted {
            if let Some(owner) = record.lock().holder() {
                ctx.cluster.recorder.emit(
                    Some(ctx.txn),
                    Some(w.partition),
                    TraceEventKind::LockWait { owner },
                );
            }
            ctx.access.undo.unwind();
            locked.release(ctx.txn);
            return Err(match policy {
                LockPolicy::NoWait => AbortReason::LockConflict,
                LockPolicy::WaitDie => AbortReason::WaitDie,
            });
        }
        locked.records.push((i, Arc::clone(&record)));
        // A concurrent delete may have tombstoned (or reclaimed) the record
        // between resolution and lock acquisition; re-check under the lock
        // (an insert bounces retryably; the helper reclaims the tombstone).
        if let Err(reason) =
            recheck_locked_record(&record, ctx.txn, w.kind, &store.table(w.table), w.key)
        {
            ctx.access.undo.unwind();
            locked.release(ctx.txn);
            return Err(reason);
        }
    }
    Ok(locked)
}

/// Install every locked write: puts/inserts install their buffered value
/// (with `wts = rts = ts`, or a version bump when `ts` is `None`); deletes
/// install a tombstone. Shared by the 2PL, Silo, Sundial and TAPIR commit
/// paths so delete semantics cannot drift between baselines.
///
/// The write-set is appended to every involved partition's WAL **before**
/// the installs, while the exclusive locks are still held — so the log is
/// ahead of the store and per-key log order equals install order. `ts` is
/// finalized through the group-commit scheme (protocols without logical
/// timestamps get a sequence above the coordinator's floor) and returned so
/// the caller reports the same timestamp in its
/// [`CommittedTxn`](primo_runtime::protocol::CommittedTxn) — recovery's replay bound relies
/// on the logged and reported timestamps agreeing.
pub fn install_locked_writes(
    ctx: &BaselineCtx<'_>,
    ticket: &primo_wal::TxnTicket,
    locked: &LockedWriteSet,
    ts: Option<Ts>,
) -> Ts {
    let final_ts = ctx
        .cluster
        .group_commit
        .finalize_commit_ts(ticket, ts.unwrap_or(0));
    ctx.cluster.recorder.emit(
        Some(ctx.txn),
        Some(ctx.home),
        TraceEventKind::CommitTsReserved { ts: final_ts },
    );
    log_txn_writes(ctx.cluster, ctx.txn, final_ts, &ctx.access.writes);
    for (i, record) in &locked.records {
        let w = &ctx.access.writes[*i];
        match (w.kind, ts) {
            (WriteKind::Delete, Some(ts)) => record.install_tombstone(ts),
            (WriteKind::Delete, None) => {
                record.install_tombstone_next_version_at(final_ts);
            }
            (_, Some(ts)) => record.install(w.value.clone(), ts),
            (_, None) => {
                record.install_next_version_at(w.value.clone(), final_ts);
            }
        }
    }
    final_ts
}

/// Post-commit deferred reclamation: physically unlink the tombstones this
/// transaction installed. Must run after every lock is released.
pub fn reclaim_deletes(ctx: &BaselineCtx<'_>) {
    for w in &ctx.access.writes {
        if w.kind == WriteKind::Delete {
            ctx.cluster
                .partition(w.partition)
                .store
                .table(w.table)
                .reclaim(w.key);
        }
    }
}

/// A successful prepare phase: the participant set plus the commit layer's
/// proof of preparation (fed back to the decide helpers for latency
/// accounting).
pub struct PreparedRound {
    pub parts: Vec<PartitionId>,
    pub at: PreparedAt,
}

/// Run the prepare phase through the cluster's atomic-commit layer
/// (write-set shipping + vote collection; under Paxos Commit the votes are
/// additionally logged quorum-durably) and register the participants with
/// the group-commit scheme.
pub fn prepare_round(
    ctx: &BaselineCtx<'_>,
    ticket: &primo_wal::TxnTicket,
) -> Result<PreparedRound, AbortReason> {
    let parts = ctx.access.participants(ctx.home);
    for p in &parts {
        ctx.cluster.group_commit.add_participant(ticket, *p, 0);
    }
    match ctx
        .cluster
        .atomic_commit()
        .prepare(ctx.cluster, ctx.txn, ctx.home, &parts)
    {
        PrepareOutcome::Prepared(at) => Ok(PreparedRound { parts, at }),
        PrepareOutcome::Aborted(reason) => Err(reason),
        PrepareOutcome::Orphaned => {
            // Classic 2PC's blocking failure: mark the context so
            // `abort_cleanup` leaves the attempt's locks held — the
            // participants stay blocked until retries exhaust.
            ctx.orphaned.set(true);
            Err(AbortReason::CoordinatorCrash)
        }
    }
}

/// Propagate the global COMMIT verdict through the commit layer (a round
/// trip under classic 2PC; durable decision entries plus a one-way
/// notification under Paxos Commit).
pub fn commit_round(ctx: &BaselineCtx<'_>, prepared: &PreparedRound) {
    ctx.cluster.atomic_commit().decide_commit(
        ctx.cluster,
        ctx.txn,
        ctx.home,
        &prepared.parts,
        prepared.at,
    );
}

/// Propagate the global ABORT verdict through the commit layer.
pub fn abort_round(ctx: &BaselineCtx<'_>, prepared: &PreparedRound) {
    ctx.cluster
        .atomic_commit()
        .decide_abort(ctx.cluster, ctx.txn, ctx.home, &prepared.parts);
}

/// Seal a commit verdict that was decided *inside* the prepare round itself
/// (consolidated-round protocols like TAPIR): no further messages are
/// charged, but under Paxos Commit the logged votes must still be resolved
/// with durable decision entries.
pub fn seal_consolidated_commit(ctx: &BaselineCtx<'_>, prepared: &PreparedRound) {
    ctx.cluster.atomic_commit().seal_commit(
        ctx.cluster,
        ctx.txn,
        ctx.home,
        &prepared.parts,
        prepared.at,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;

    fn setup() -> (Arc<Cluster>, TxnId) {
        let cluster = Cluster::new(ClusterConfig::for_tests(2));
        for p in 0..2u32 {
            for k in 0..32u64 {
                cluster
                    .partition(PartitionId(p))
                    .store
                    .insert(TableId(0), k, Value::from_u64(k));
            }
        }
        let txn = cluster.next_txn_id(PartitionId(0));
        (cluster, txn)
    }

    #[test]
    fn optimistic_reads_take_no_locks() {
        let (cluster, txn) = setup();
        let mut ctx = BaselineCtx::new(&cluster, txn, PartitionId(0), ReadGuard::Optimistic);
        ctx.read(PartitionId(0), TableId(0), 1).unwrap();
        ctx.read(PartitionId(1), TableId(0), 2).unwrap();
        assert!(ctx.access.reads.iter().all(|r| r.locked.is_none()));
        assert!(ctx.access.is_distributed(PartitionId(0)));
        cluster.shutdown();
    }

    #[test]
    fn shared_lock_reads_hold_locks() {
        let (cluster, txn) = setup();
        let mut ctx = BaselineCtx::new(
            &cluster,
            txn,
            PartitionId(0),
            ReadGuard::SharedLock(LockPolicy::NoWait),
        );
        ctx.read(PartitionId(0), TableId(0), 1).unwrap();
        let rec = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 1)
            .unwrap();
        assert!(rec.lock().held_by(txn));
        ctx.abort_cleanup();
        assert!(!rec.lock().is_locked());
        cluster.shutdown();
    }

    #[test]
    fn lock_write_set_rolls_back_on_conflict() {
        let (cluster, txn) = setup();
        let other = cluster.next_txn_id(PartitionId(0));
        // `other` exclusively locks key 3.
        let rec3 = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 3)
            .unwrap();
        rec3.acquire(other, LockMode::Exclusive, LockPolicy::NoWait);
        let mut ctx = BaselineCtx::new(&cluster, txn, PartitionId(0), ReadGuard::Optimistic);
        ctx.write(PartitionId(0), TableId(0), 2, Value::from_u64(1))
            .unwrap();
        ctx.write(PartitionId(0), TableId(0), 3, Value::from_u64(1))
            .unwrap();
        let err = lock_write_set(&ctx, LockPolicy::NoWait).unwrap_err();
        assert_eq!(err, AbortReason::LockConflict);
        // Key 2's lock (acquired before the failure) was rolled back.
        let rec2 = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 2)
            .unwrap();
        assert!(!rec2.lock().is_locked());
        rec3.release(other);
        cluster.shutdown();
    }

    #[test]
    fn failed_lock_phase_unlinks_created_insert_records() {
        let (cluster, txn) = setup();
        // An older transaction holds key 3 exclusively, so the write-set lock
        // phase fails *after* the insert's record was already materialised.
        let blocker = TxnId::new(PartitionId(0), 0);
        let rec3 = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 3)
            .unwrap();
        rec3.acquire(blocker, LockMode::Exclusive, LockPolicy::NoWait);
        let mut ctx = BaselineCtx::new(&cluster, txn, PartitionId(0), ReadGuard::Optimistic);
        ctx.insert(PartitionId(0), TableId(0), 5_000, Value::from_u64(1))
            .unwrap();
        ctx.write(PartitionId(0), TableId(0), 3, Value::from_u64(1))
            .unwrap();
        let err = lock_write_set(&ctx, LockPolicy::NoWait).unwrap_err();
        assert_eq!(err, AbortReason::LockConflict);
        // The failed lock phase unwinds its own materialised records before
        // releasing any lock — the phantom never outlives the attempt.
        assert!(
            cluster
                .partition(PartitionId(0))
                .store
                .get(TableId(0), 5_000)
                .is_none(),
            "aborted insert must leave no record behind"
        );
        ctx.abort_cleanup();
        rec3.release(blocker);
        cluster.shutdown();
    }

    #[test]
    fn tombstone_bounce_aborts_and_reclaims_the_record() {
        // The delete-vs-writer race: a writer resolves the record while it
        // is still visible, then blocks on the deleter's lock (WAIT_DIE,
        // older waits); the delete commits its tombstone and releases; the
        // writer's lock finally lands on a tombstone. The post-lock re-check
        // must bounce the writer with NotFound, and — since the writer's
        // wait is exactly what a deleter's inline reclaim would have skipped
        // over — the writer reclaims the record after releasing.
        let (cluster, _) = setup();
        let older = TxnId::new(PartitionId(0), 1);
        let deleter = TxnId::new(PartitionId(0), 2);
        let rec = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 6)
            .unwrap();
        assert_eq!(
            rec.acquire(deleter, LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Granted
        );
        // The deleter commits its tombstone and releases while the writer
        // (spawned below) is blocked waiting for the lock.
        let rec2 = Arc::clone(&rec);
        let release = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            rec2.install_tombstone(9);
            rec2.release(deleter);
        });
        let mut ctx = BaselineCtx::new(&cluster, older, PartitionId(0), ReadGuard::Optimistic);
        ctx.write(PartitionId(0), TableId(0), 6, Value::from_u64(1))
            .unwrap();
        let err = lock_write_set(&ctx, LockPolicy::WaitDie).unwrap_err();
        assert_eq!(err, AbortReason::NotFound);
        release.join().unwrap();
        ctx.abort_cleanup();
        assert!(
            cluster
                .partition(PartitionId(0))
                .store
                .get(TableId(0), 6)
                .is_none(),
            "the bounced tombstone must be physically reclaimed"
        );
        cluster.shutdown();
    }

    #[test]
    fn delete_cancels_buffered_insert_and_marks_puts() {
        let (cluster, txn) = setup();
        let mut ctx = BaselineCtx::new(&cluster, txn, PartitionId(0), ReadGuard::Optimistic);
        // insert then delete: the entry disappears entirely.
        ctx.insert(PartitionId(0), TableId(0), 40, Value::from_u64(1))
            .unwrap();
        ctx.delete(PartitionId(0), TableId(0), 40).unwrap();
        assert!(ctx.access.writes.is_empty());
        // put then delete: the entry becomes a delete; reads and writes of
        // the key now see NotFound.
        ctx.write(PartitionId(0), TableId(0), 41, Value::from_u64(1))
            .unwrap();
        ctx.delete(PartitionId(0), TableId(0), 41).unwrap();
        assert_eq!(ctx.access.writes[0].kind, WriteKind::Delete);
        assert_eq!(
            ctx.read(PartitionId(0), TableId(0), 41)
                .unwrap_err()
                .reason(),
            AbortReason::NotFound
        );
        cluster.shutdown();
    }

    #[test]
    fn read_your_writes_in_baseline_ctx() {
        let (cluster, txn) = setup();
        let mut ctx = BaselineCtx::new(&cluster, txn, PartitionId(0), ReadGuard::Optimistic);
        ctx.write(PartitionId(0), TableId(0), 9, Value::from_u64(77))
            .unwrap();
        assert_eq!(
            ctx.read(PartitionId(0), TableId(0), 9).unwrap().as_u64(),
            77
        );
        cluster.shutdown();
    }
}
