//! Shared building blocks for the baseline protocols: an OCC-style execution
//! context (reads without locks or with shared locks, buffered writes) and
//! helpers for the 2PC commit rounds.

use primo_common::{AbortReason, Key, PartitionId, TableId, TxnError, TxnId, TxnResult, Value};
use primo_runtime::access::{resolve_write_record, AccessSet, ReadEntry, WriteEntry};
use primo_runtime::cluster::Cluster;
use primo_runtime::txn::TxnContext;
use primo_storage::{LockMode, LockPolicy, LockRequestResult, Record};
use std::sync::Arc;

/// How the execution phase guards reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadGuard {
    /// No lock; remember the observed version/timestamps (Silo, Sundial,
    /// TAPIR, Aria).
    Optimistic,
    /// Shared lock for the whole transaction (2PL).
    SharedLock(LockPolicy),
}

/// Execution context shared by every baseline.
pub struct BaselineCtx<'a> {
    pub cluster: &'a Cluster,
    pub txn: TxnId,
    pub home: PartitionId,
    pub guard: ReadGuard,
    pub access: AccessSet,
    pub dead: Option<AbortReason>,
}

impl<'a> BaselineCtx<'a> {
    pub fn new(cluster: &'a Cluster, txn: TxnId, home: PartitionId, guard: ReadGuard) -> Self {
        BaselineCtx {
            cluster,
            txn,
            home,
            guard,
            access: AccessSet::new(),
            dead: None,
        }
    }

    fn fail(&mut self, reason: AbortReason) -> TxnError {
        self.dead = Some(reason);
        TxnError::Aborted(reason)
    }

    /// Release all locks and notify participants of the abort.
    pub fn abort_cleanup(&mut self) {
        let parts = self.access.participants(self.home);
        if !parts.is_empty() {
            self.cluster.net.one_way_multi(self.home, &parts);
        }
        self.access.release_all_locks(self.txn);
    }

    /// Fetch (creating if requested) the record for a key.
    pub fn record_at(
        &self,
        p: PartitionId,
        table: TableId,
        key: Key,
        create: bool,
    ) -> Option<Arc<Record>> {
        let store = &self.cluster.partition(p).store;
        match store.get(table, key) {
            Some(r) => Some(r),
            None if create => Some(store.table(table).insert_if_absent(key, Value::zeroed(0)).0),
            None => None,
        }
    }
}

impl TxnContext for BaselineCtx<'_> {
    fn read(&mut self, p: PartitionId, table: TableId, key: Key) -> TxnResult<Value> {
        if let Some(reason) = self.dead {
            return Err(TxnError::Aborted(reason));
        }
        if let Some(i) = self.access.find_write(p, table, key) {
            return Ok(self.access.writes[i].value.clone());
        }
        if let Some(i) = self.access.find_read(p, table, key) {
            return Ok(self.access.reads[i].record.read().value);
        }
        let remote = p != self.home;
        if remote {
            if !self.cluster.net.round_trip(self.home, p) {
                return Err(self.fail(AbortReason::RemoteUnavailable));
            }
        } else if self.cluster.net.is_crashed(p) {
            return Err(self.fail(AbortReason::RemoteUnavailable));
        }
        let record = self
            .record_at(p, table, key, false)
            .ok_or_else(|| self.fail(AbortReason::NotFound))?;
        let locked = match self.guard {
            ReadGuard::Optimistic => None,
            ReadGuard::SharedLock(policy) => {
                if record.acquire(self.txn, LockMode::Shared, policy) != LockRequestResult::Granted
                {
                    let reason = match policy {
                        LockPolicy::NoWait => AbortReason::LockConflict,
                        LockPolicy::WaitDie => AbortReason::WaitDie,
                    };
                    return Err(self.fail(reason));
                }
                Some(LockMode::Shared)
            }
        };
        let row = record.read();
        let value = row.value.clone();
        self.access.reads.push(ReadEntry {
            partition: p,
            table,
            key,
            record,
            wts: row.wts,
            rts: row.rts,
            locked,
            dummy: false,
        });
        Ok(value)
    }

    fn write(&mut self, p: PartitionId, table: TableId, key: Key, value: Value) -> TxnResult<()> {
        if let Some(reason) = self.dead {
            return Err(TxnError::Aborted(reason));
        }
        self.access
            .buffer_write(WriteEntry::put(p, table, key, value));
        Ok(())
    }

    fn insert(&mut self, p: PartitionId, table: TableId, key: Key, value: Value) -> TxnResult<()> {
        if let Some(reason) = self.dead {
            return Err(TxnError::Aborted(reason));
        }
        self.access
            .buffer_write(WriteEntry::insert(p, table, key, value));
        Ok(())
    }
}

/// Outcome of locking the write set during a prepare phase.
#[derive(Debug)]
pub struct LockedWriteSet {
    pub records: Vec<(usize, Arc<Record>)>,
}

impl LockedWriteSet {
    pub fn release(&self, txn: TxnId) {
        for (_, r) in &self.records {
            r.release(txn);
        }
    }
}

/// Lock every write record with the given policy, creating records only for
/// `insert`-kind writes. A plain write whose record does not exist aborts
/// with [`AbortReason::NotFound`]. Returns the locked set or the abort
/// reason.
pub fn lock_write_set(
    ctx: &BaselineCtx<'_>,
    policy: LockPolicy,
) -> Result<LockedWriteSet, AbortReason> {
    let mut locked = LockedWriteSet {
        records: Vec::with_capacity(ctx.access.writes.len()),
    };
    for (i, w) in ctx.access.writes.iter().enumerate() {
        let store = &ctx.cluster.partition(w.partition).store;
        let record = match resolve_write_record(store, w) {
            Ok(r) => r,
            Err(reason) => {
                locked.release(ctx.txn);
                return Err(reason);
            }
        };
        if record.acquire(ctx.txn, LockMode::Exclusive, policy) != LockRequestResult::Granted {
            locked.release(ctx.txn);
            return Err(match policy {
                LockPolicy::NoWait => AbortReason::LockConflict,
                LockPolicy::WaitDie => AbortReason::WaitDie,
            });
        }
        locked.records.push((i, record));
    }
    Ok(locked)
}

/// Charge the 2PC prepare round (write-set shipping + vote collection) and
/// register the participants with the group-commit scheme.
pub fn prepare_round(
    ctx: &BaselineCtx<'_>,
    ticket: &primo_wal::TxnTicket,
) -> Result<Vec<PartitionId>, AbortReason> {
    let parts = ctx.access.participants(ctx.home);
    for p in &parts {
        ctx.cluster.group_commit.add_participant(ticket, *p, 0);
    }
    if !parts.is_empty() && !ctx.cluster.net.round_trip_multi(ctx.home, &parts) {
        return Err(AbortReason::RemoteUnavailable);
    }
    Ok(parts)
}

/// Charge the 2PC commit (decision) round.
pub fn commit_round(ctx: &BaselineCtx<'_>, parts: &[PartitionId]) {
    if !parts.is_empty() {
        ctx.cluster.net.round_trip_multi(ctx.home, parts);
    }
}

/// Charge a one-way abort notification.
pub fn abort_round(ctx: &BaselineCtx<'_>, parts: &[PartitionId]) {
    if !parts.is_empty() {
        ctx.cluster.net.one_way_multi(ctx.home, parts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;

    fn setup() -> (Arc<Cluster>, TxnId) {
        let cluster = Cluster::new(ClusterConfig::for_tests(2));
        for p in 0..2u32 {
            for k in 0..32u64 {
                cluster
                    .partition(PartitionId(p))
                    .store
                    .insert(TableId(0), k, Value::from_u64(k));
            }
        }
        let txn = cluster.next_txn_id(PartitionId(0));
        (cluster, txn)
    }

    #[test]
    fn optimistic_reads_take_no_locks() {
        let (cluster, txn) = setup();
        let mut ctx = BaselineCtx::new(&cluster, txn, PartitionId(0), ReadGuard::Optimistic);
        ctx.read(PartitionId(0), TableId(0), 1).unwrap();
        ctx.read(PartitionId(1), TableId(0), 2).unwrap();
        assert!(ctx.access.reads.iter().all(|r| r.locked.is_none()));
        assert!(ctx.access.is_distributed(PartitionId(0)));
        cluster.shutdown();
    }

    #[test]
    fn shared_lock_reads_hold_locks() {
        let (cluster, txn) = setup();
        let mut ctx = BaselineCtx::new(
            &cluster,
            txn,
            PartitionId(0),
            ReadGuard::SharedLock(LockPolicy::NoWait),
        );
        ctx.read(PartitionId(0), TableId(0), 1).unwrap();
        let rec = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 1)
            .unwrap();
        assert!(rec.lock().held_by(txn));
        ctx.abort_cleanup();
        assert!(!rec.lock().is_locked());
        cluster.shutdown();
    }

    #[test]
    fn lock_write_set_rolls_back_on_conflict() {
        let (cluster, txn) = setup();
        let other = cluster.next_txn_id(PartitionId(0));
        // `other` exclusively locks key 3.
        let rec3 = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 3)
            .unwrap();
        rec3.acquire(other, LockMode::Exclusive, LockPolicy::NoWait);
        let mut ctx = BaselineCtx::new(&cluster, txn, PartitionId(0), ReadGuard::Optimistic);
        ctx.write(PartitionId(0), TableId(0), 2, Value::from_u64(1))
            .unwrap();
        ctx.write(PartitionId(0), TableId(0), 3, Value::from_u64(1))
            .unwrap();
        let err = lock_write_set(&ctx, LockPolicy::NoWait).unwrap_err();
        assert_eq!(err, AbortReason::LockConflict);
        // Key 2's lock (acquired before the failure) was rolled back.
        let rec2 = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 2)
            .unwrap();
        assert!(!rec2.lock().is_locked());
        rec3.release(other);
        cluster.shutdown();
    }

    #[test]
    fn read_your_writes_in_baseline_ctx() {
        let (cluster, txn) = setup();
        let mut ctx = BaselineCtx::new(&cluster, txn, PartitionId(0), ReadGuard::Optimistic);
        ctx.write(PartitionId(0), TableId(0), 9, Value::from_u64(77))
            .unwrap();
        assert_eq!(
            ctx.read(PartitionId(0), TableId(0), 9).unwrap().as_u64(),
            77
        );
        cluster.shutdown();
    }
}
