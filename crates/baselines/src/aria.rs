//! Aria (Lu et al., VLDB '20): a deterministic database that does **not**
//! need read/write sets in advance. Transactions are grouped into batches by
//! a sequencing layer; every partition executes the whole batch against the
//! same snapshot while recording write *reservations*; after a cluster-wide
//! barrier each transaction commits only if no smaller-sequence transaction
//! reserved a conflicting write (WAW / RAW checks). Conflicting transactions
//! are aborted deterministically and retried in a later batch.
//!
//! Durability comes from logging the *inputs* in the sequencing layer before
//! execution, so there is no group-commit wait at the end — but the batch
//! barriers (`wait_batch`) and the sequencing delay (`sequence`) sit squarely
//! on the latency path, which is what Fig 4c/5c show.

use crate::common::{BaselineCtx, ReadGuard};
use parking_lot::{Condvar, Mutex};
use primo_common::sim_time::{charge_latency_us, now_us};
use primo_common::{
    AbortReason, Key, PartitionId, Phase, PhaseTimers, TableId, TxnError, TxnId, TxnResult,
};
use primo_runtime::access::WriteKind;
use primo_runtime::cluster::Cluster;
use primo_runtime::durability::log_txn_writes;
use primo_runtime::prefetch::ReadFanout;
use primo_runtime::protocol::{CommittedTxn, Protocol};
use primo_runtime::txn::TxnProgram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Aria tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct AriaConfig {
    /// How long a batch stays open collecting transactions (the sequencing
    /// epoch; the paper's setup uses a 10 ms Calvin-style sequencer).
    pub batch_window_us: u64,
    /// Upper bound on barrier waits (safety valve only).
    pub barrier_timeout: Duration,
}

impl Default for AriaConfig {
    fn default() -> Self {
        AriaConfig {
            batch_window_us: 5_000,
            barrier_timeout: Duration::from_millis(100),
        }
    }
}

#[derive(Debug, Default)]
struct BatchState {
    joined: usize,
    executed: usize,
    decided: usize,
}

#[derive(Debug)]
struct Batch {
    id: u64,
    open_until_us: u64,
    state: Mutex<BatchState>,
    cond: Condvar,
    /// Write reservations: key -> smallest transaction priority that wants to
    /// write it in this batch.
    reservations: Mutex<HashMap<(u32, u32, Key), u64>>,
}

impl Batch {
    fn new(id: u64, open_until_us: u64) -> Self {
        Batch {
            id,
            open_until_us,
            state: Mutex::new(BatchState::default()),
            cond: Condvar::new(),
            reservations: Mutex::new(HashMap::new()),
        }
    }
}

/// The Aria protocol.
pub struct AriaProtocol {
    cfg: AriaConfig,
    current: Mutex<Option<Arc<Batch>>>,
    next_batch_id: AtomicU64,
}

impl std::fmt::Debug for AriaProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AriaProtocol")
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl AriaProtocol {
    pub fn new(cfg: AriaConfig) -> Self {
        AriaProtocol {
            cfg,
            current: Mutex::new(None),
            next_batch_id: AtomicU64::new(1),
        }
    }

    /// Join (or open) the current batch; returns the batch and this
    /// transaction's join index within it.
    fn join_batch(&self) -> (Arc<Batch>, usize) {
        let mut cur = self.current.lock();
        let now = now_us();
        let need_new = match cur.as_ref() {
            Some(b) => now >= b.open_until_us,
            None => true,
        };
        if need_new {
            let id = self.next_batch_id.fetch_add(1, Ordering::Relaxed);
            *cur = Some(Arc::new(Batch::new(id, now + self.cfg.batch_window_us)));
        }
        let batch = Arc::clone(cur.as_ref().unwrap());
        let mut st = batch.state.lock();
        st.joined += 1;
        let idx = st.joined - 1;
        drop(st);
        (batch, idx)
    }

    fn barrier(
        &self,
        batch: &Batch,
        advance: impl FnOnce(&mut BatchState),
        reached: impl Fn(&BatchState) -> bool,
    ) {
        let mut st = batch.state.lock();
        advance(&mut st);
        batch.cond.notify_all();
        let deadline = std::time::Instant::now() + self.cfg.barrier_timeout;
        while !reached(&st) && std::time::Instant::now() < deadline {
            batch.cond.wait_for(&mut st, Duration::from_millis(1));
        }
    }

    fn reservation_key(p: PartitionId, t: TableId, k: Key) -> (u32, u32, Key) {
        (p.0, t.0, k)
    }
}

impl Protocol for AriaProtocol {
    fn name(&self) -> &'static str {
        "Aria"
    }

    fn manages_durability(&self) -> bool {
        // Inputs are logged by the sequencing layer before execution.
        true
    }

    fn execute_once(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        program: &dyn TxnProgram,
        ticket: &primo_wal::TxnTicket,
        timers: &mut PhaseTimers,
        fanout: &ReadFanout,
    ) -> TxnResult<CommittedTxn> {
        let home = program.home_partition();
        let priority = txn.pack();

        // ---- Sequencing: wait for the batch to close. ----
        let (batch, join_idx) = self.join_batch();
        timers.time(Phase::Sequence, || {
            let now = now_us();
            if batch.open_until_us > now {
                charge_latency_us(batch.open_until_us - now);
            }
        });

        // ---- Execution phase: run against the current snapshot, no locks. ----
        let mut ctx =
            BaselineCtx::new(cluster, txn, home, ReadGuard::Optimistic).with_fanout(fanout);
        let exec = timers.time(Phase::Execute, || program.execute(&mut ctx));
        let exec_failed = exec.is_err() || ctx.dead.is_some();
        if !exec_failed {
            // Record write reservations (smallest priority wins).
            let mut res = batch.reservations.lock();
            for w in &ctx.access.writes {
                let entry = res
                    .entry(Self::reservation_key(w.partition, w.table, w.key))
                    .or_insert(priority);
                if *entry > priority {
                    *entry = priority;
                }
            }
        }

        // ---- Barrier 1: everyone finished execution & reservations. ----
        timers.time(Phase::WaitBatch, || {
            self.barrier(&batch, |st| st.executed += 1, |st| st.executed >= st.joined);
        });
        // One cross-partition synchronization per batch (charged by the first
        // member so the cost is per-batch, not per-transaction).
        if join_idx == 0 && cluster.num_partitions() > 1 {
            timers.time(Phase::TwoPc, || {
                let others: Vec<PartitionId> = cluster
                    .partition_ids()
                    .into_iter()
                    .filter(|p| *p != home)
                    .collect();
                cluster.net.round_trip_multi(home, &others);
            });
        }

        // ---- Commit phase: deterministic conflict checks, then install. ----
        let decision: TxnResult<CommittedTxn> = if exec_failed {
            let reason = ctx
                .dead
                .or(exec.err().map(|e| e.reason()))
                .unwrap_or(AbortReason::UserAbort);
            Err(TxnError::Aborted(reason))
        } else {
            let conflict = timers.time(Phase::Commit, || {
                let res = batch.reservations.lock();
                // WAW: a smaller-priority transaction reserved one of our writes.
                for w in &ctx.access.writes {
                    if let Some(p) = res.get(&Self::reservation_key(w.partition, w.table, w.key)) {
                        if *p < priority {
                            return Err(AbortReason::DeterministicConflict);
                        }
                    }
                }
                // RAW: a smaller-priority transaction writes something we read.
                for r in &ctx.access.reads {
                    if let Some(p) = res.get(&Self::reservation_key(r.partition, r.table, r.key)) {
                        if *p < priority {
                            return Err(AbortReason::DeterministicConflict);
                        }
                    }
                }
                // Put/insert/delete contract (checked at the decision point —
                // after it, Aria's deterministic install cannot abort): a
                // plain write or a delete of a record that does not exist —
                // or is an invisible tombstone — is an error, matching every
                // other protocol's NotFound behaviour. Checked *after* the
                // reservation checks so a same-batch insert of the same key
                // deterministically wins as a WAW conflict (retryable)
                // instead of racing install order into a permanent NotFound.
                for w in &ctx.access.writes {
                    if matches!(w.kind, WriteKind::Put | WriteKind::Delete)
                        && ctx.record_visible(w.partition, w.table, w.key).is_err()
                    {
                        return Err(AbortReason::NotFound);
                    }
                }
                Ok(())
            });
            match conflict {
                Err(reason) => Err(TxnError::Aborted(reason)),
                Ok(()) => {
                    let ops = ctx.access.ops();
                    let distributed = ctx.access.is_distributed(home);
                    // The sequencing layer logged the *inputs* before
                    // execution; the write-set is additionally appended to
                    // each partition's WAL so partition recovery can replay
                    // state without re-executing batches. Within a batch at
                    // most one transaction wins any given key (the WAW
                    // check), so log order per key matches install order.
                    //
                    // Aria has no prepare round, so remote write partitions
                    // are registered here, before the timestamp is
                    // finalized: the reservation's watermark floor must
                    // cover every log this write-set lands on, and each
                    // participant's watermark must stay pinned until
                    // `txn_committed` confirms the entries are appended.
                    for p in ctx.access.participants(home) {
                        cluster.group_commit.add_participant(ticket, p, 0);
                    }
                    let ts = cluster.group_commit.finalize_commit_ts(ticket, 0);
                    timers.time(Phase::Commit, || {
                        log_txn_writes(cluster, txn, ts, &ctx.access.writes);
                        for w in &ctx.access.writes {
                            // The commit decision is already made, so inserts
                            // create their record directly (install flips it
                            // Visible) and deletes tombstone + reclaim. The
                            // slot is claimed in uncommitted state first so a
                            // concurrent snapshot reader never observes a
                            // placeholder value, and every install carries
                            // the finalized commit timestamp for the version
                            // chain.
                            let table = cluster.partition(w.partition).store.table(w.table);
                            match w.kind {
                                WriteKind::Delete => {
                                    if let Some(record) = table.get(w.key) {
                                        record.install_tombstone_next_version_at(ts);
                                        table.reclaim(w.key);
                                    }
                                }
                                _ => {
                                    let record = match table.insert_slot(w.key, txn) {
                                        primo_storage::InsertSlot::Existing(r)
                                        | primo_storage::InsertSlot::Created(r)
                                        | primo_storage::InsertSlot::Revived(r) => r,
                                        // Unreachable within Aria (the WAW
                                        // check admits one writer per key per
                                        // batch), but stay safe: replace the
                                        // slot with a record born at `ts`.
                                        primo_storage::InsertSlot::Busy => {
                                            table.restore(w.key, w.value.clone(), ts);
                                            continue;
                                        }
                                    };
                                    record.install_next_version_at(w.value.clone(), ts);
                                }
                            }
                        }
                    });
                    Ok(CommittedTxn {
                        ts,
                        ops,
                        distributed,
                    })
                }
            }
        };

        // ---- Barrier 2: everyone decided; the batch is finished. ----
        timers.time(Phase::WaitBatch, || {
            self.barrier(&batch, |st| st.decided += 1, |st| st.decided >= st.joined);
        });
        let _ = batch.id;

        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_common::Value;
    use primo_runtime::txn::IncrementProgram;
    use primo_runtime::worker::run_single_txn;

    fn loaded(n: usize) -> Arc<Cluster> {
        let cluster = Cluster::new(ClusterConfig::for_tests(n));
        for p in 0..n as u32 {
            for k in 0..32u64 {
                cluster
                    .partition(PartitionId(p))
                    .store
                    .insert(TableId(0), k, Value::from_u64(0));
            }
        }
        cluster
    }

    fn quick_cfg() -> AriaConfig {
        AriaConfig {
            batch_window_us: 500,
            barrier_timeout: Duration::from_millis(50),
        }
    }

    #[test]
    fn single_transaction_commits_in_its_own_batch() {
        let cluster = loaded(2);
        let protocol = AriaProtocol::new(quick_cfg());
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![
                (PartitionId(0), TableId(0), 1),
                (PartitionId(1), TableId(0), 1),
            ],
        };
        run_single_txn(&cluster, &protocol, &prog).unwrap();
        assert_eq!(
            cluster
                .partition(PartitionId(1))
                .store
                .get(TableId(0), 1)
                .unwrap()
                .read()
                .value
                .as_u64(),
            1
        );
        cluster.shutdown();
    }

    #[test]
    fn conflicting_batch_members_abort_deterministically() {
        // Two transactions in the same batch writing the same key: the one
        // with the larger TID must abort with a deterministic conflict.
        let cluster = loaded(1);
        let protocol = Arc::new(AriaProtocol::new(AriaConfig {
            batch_window_us: 20_000,
            barrier_timeout: Duration::from_millis(200),
        }));
        let t_old = cluster.next_txn_id(PartitionId(0));
        let t_new = cluster.next_txn_id(PartitionId(0));
        let mut handles = Vec::new();
        for txn in [t_old, t_new] {
            let cluster = Arc::clone(&cluster);
            let protocol = Arc::clone(&protocol);
            handles.push(std::thread::spawn(move || {
                let prog = IncrementProgram {
                    home: PartitionId(0),
                    accesses: vec![(PartitionId(0), TableId(0), 7)],
                };
                let ticket = cluster.group_commit.begin_txn(PartitionId(0), txn);
                let mut timers = PhaseTimers::new();
                protocol
                    .execute_once(
                        &cluster,
                        txn,
                        &prog,
                        &ticket,
                        &mut timers,
                        &ReadFanout::empty(),
                    )
                    .map(|c| c.ops)
                    .map_err(|e| e.reason())
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let commits = results.iter().filter(|r| r.is_ok()).count();
        let det_aborts = results
            .iter()
            .filter(|r| matches!(r, Err(AbortReason::DeterministicConflict)))
            .count();
        assert_eq!(commits, 1, "exactly one of the two may commit: {results:?}");
        assert_eq!(det_aborts, 1, "the other aborts deterministically");
        cluster.shutdown();
    }

    #[test]
    fn aria_manages_its_own_durability() {
        let protocol = AriaProtocol::new(quick_cfg());
        assert!(protocol.manages_durability());
        assert_eq!(protocol.name(), "Aria");
    }
}
