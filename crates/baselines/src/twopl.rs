//! 2PL + 2PC (§2.1): shared locks for reads during execution, exclusive
//! locks + write installation during the 2PC prepare round, decision in the
//! commit round, locks held until the decision is propagated.
//!
//! Two deadlock-handling variants, as in the paper: NO_WAIT (abort on any
//! conflict) and WAIT_DIE (older transactions wait).

use crate::common::{
    abort_round, commit_round, install_locked_writes, lock_write_set, prepare_round,
    reclaim_deletes, BaselineCtx, ReadGuard,
};
use primo_common::{Phase, PhaseTimers, TxnError, TxnId, TxnResult};
use primo_runtime::cluster::Cluster;
use primo_runtime::prefetch::ReadFanout;
use primo_runtime::protocol::{CommittedTxn, Protocol};
use primo_runtime::txn::TxnProgram;
use primo_storage::LockPolicy;
use primo_wal::TxnTicket;

/// 2PL + 2PC.
#[derive(Debug, Clone)]
pub struct TwoPlProtocol {
    policy: LockPolicy,
    label: &'static str,
}

impl TwoPlProtocol {
    pub fn no_wait() -> Self {
        TwoPlProtocol {
            policy: LockPolicy::NoWait,
            label: "2PL(NW)",
        }
    }

    pub fn wait_die() -> Self {
        TwoPlProtocol {
            policy: LockPolicy::WaitDie,
            label: "2PL(WD)",
        }
    }

    pub fn policy(&self) -> LockPolicy {
        self.policy
    }
}

impl Protocol for TwoPlProtocol {
    fn name(&self) -> &'static str {
        self.label
    }

    fn execute_once(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        program: &dyn TxnProgram,
        ticket: &TxnTicket,
        timers: &mut PhaseTimers,
        fanout: &ReadFanout,
    ) -> TxnResult<CommittedTxn> {
        let home = program.home_partition();
        let mut ctx = BaselineCtx::new(cluster, txn, home, ReadGuard::SharedLock(self.policy))
            .with_fanout(fanout);

        // Execution phase: shared-lock reads, buffered writes.
        let exec = timers.time(Phase::Execute, || program.execute(&mut ctx));
        if let Err(e) = exec {
            let reason = ctx.dead.unwrap_or(e.reason());
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }
        // Remote participants were contacted during execution; the group
        // commit needs to know about them for watermark bookkeeping.
        let distributed = ctx.access.is_distributed(home);

        // Commit phase = 2PC.
        // Prepare: ship write-sets, upgrade to exclusive locks, install.
        let parts = match timers.time(Phase::TwoPc, || prepare_round(&ctx, ticket)) {
            Ok(p) => p,
            Err(reason) => {
                ctx.abort_cleanup();
                return Err(TxnError::Aborted(reason));
            }
        };
        let locked = match timers.time(Phase::TwoPc, || lock_write_set(&ctx, self.policy)) {
            Ok(l) => l,
            Err(reason) => {
                abort_round(&ctx, &parts);
                ctx.abort_cleanup();
                return Err(TxnError::Aborted(reason));
            }
        };

        // Install the writes (participants do the same when they vote YES);
        // deletes become tombstones. The write-set is logged first, under
        // the locks, at the finalized commit timestamp.
        let ops = ctx.access.ops();
        let ts = timers.time(Phase::Commit, || {
            install_locked_writes(&ctx, ticket, &locked, None)
        });

        // Commit round: propagate the decision, then release every lock and
        // reclaim the tombstones this transaction installed.
        timers.time(Phase::TwoPc, || commit_round(&ctx, &parts));
        locked.release(txn);
        ctx.access.release_all_locks(txn);
        reclaim_deletes(&ctx);

        Ok(CommittedTxn {
            ts,
            ops,
            distributed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_common::{PartitionId, TableId, Value};
    use primo_runtime::txn::IncrementProgram;
    use primo_runtime::worker::run_single_txn;
    use std::sync::Arc;

    fn loaded(n: usize) -> Arc<Cluster> {
        let cluster = Cluster::new(ClusterConfig::for_tests(n));
        for p in 0..n as u32 {
            for k in 0..32u64 {
                cluster
                    .partition(PartitionId(p))
                    .store
                    .insert(TableId(0), k, Value::from_u64(0));
            }
        }
        cluster
    }

    #[test]
    fn two_pl_commits_local_and_distributed() {
        for protocol in [TwoPlProtocol::no_wait(), TwoPlProtocol::wait_die()] {
            let cluster = loaded(2);
            let local = IncrementProgram {
                home: PartitionId(0),
                accesses: vec![(PartitionId(0), TableId(0), 1)],
            };
            let dist = IncrementProgram {
                home: PartitionId(0),
                accesses: vec![
                    (PartitionId(0), TableId(0), 2),
                    (PartitionId(1), TableId(0), 2),
                ],
            };
            run_single_txn(&cluster, &protocol, &local).unwrap();
            run_single_txn(&cluster, &protocol, &dist).unwrap();
            assert_eq!(
                cluster
                    .partition(PartitionId(1))
                    .store
                    .get(TableId(0), 2)
                    .unwrap()
                    .read()
                    .value
                    .as_u64(),
                1
            );
            cluster.shutdown();
        }
    }

    #[test]
    fn two_pl_distributed_pays_prepare_and_commit_rounds() {
        let cluster = loaded(2);
        let protocol = TwoPlProtocol::no_wait();
        let before = cluster.net.round_trips_charged();
        let dist = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![(PartitionId(1), TableId(0), 5)],
        };
        run_single_txn(&cluster, &protocol, &dist).unwrap();
        // 1 remote read + prepare + commit.
        assert_eq!(cluster.net.round_trips_charged() - before, 3);
        cluster.shutdown();
    }

    #[test]
    fn no_wait_aborts_on_conflict_rather_than_blocking() {
        let cluster = loaded(1);
        let protocol = TwoPlProtocol::no_wait();
        // Hold an exclusive lock from a fake older transaction.
        let blocker = cluster.next_txn_id(PartitionId(0));
        let rec = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 7)
            .unwrap();
        rec.acquire(
            blocker,
            primo_storage::LockMode::Exclusive,
            LockPolicy::NoWait,
        );
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![(PartitionId(0), TableId(0), 7)],
        };
        let ticket = cluster
            .group_commit
            .begin_txn(PartitionId(0), cluster.next_txn_id(PartitionId(0)));
        let mut timers = PhaseTimers::new();
        let txn = cluster.next_txn_id(PartitionId(0));
        let err = protocol
            .execute_once(
                &cluster,
                txn,
                &prog,
                &ticket,
                &mut timers,
                &ReadFanout::empty(),
            )
            .unwrap_err();
        assert!(err.reason().is_conflict());
        rec.release(blocker);
        cluster.shutdown();
    }
}
