//! TAPIR-style protocol (Zhang et al., TOCS '18): transactional application
//! protocol over inconsistent replication.
//!
//! The real TAPIR co-designs OCC commit with a weak (inconsistent)
//! replication layer so that a transaction can prepare at all participant
//! replica groups in a *single* wide-area round trip and needs no separate
//! durable group commit. We keep that shape: optimistic execution, one
//! consolidated prepare round that validates and installs, no group-commit
//! wait (`manages_durability`). Under contention, OCC validation fails and
//! the client retries — which is exactly the behaviour §6.6 contrasts with
//! Primo (TAPIR has the lower latency, Primo the higher throughput).

use crate::common::{
    abort_round, install_locked_writes, lock_write_set, prepare_round, reclaim_deletes,
    seal_consolidated_commit, BaselineCtx, ReadGuard,
};
use primo_common::{AbortReason, Phase, PhaseTimers, TxnError, TxnId, TxnResult};
use primo_runtime::cluster::Cluster;
use primo_runtime::prefetch::ReadFanout;
use primo_runtime::protocol::{CommittedTxn, Protocol};
use primo_runtime::txn::TxnProgram;
use primo_storage::LockPolicy;
use primo_wal::TxnTicket;

/// TAPIR-style OCC with inconsistent replication.
#[derive(Debug, Clone, Default)]
pub struct TapirProtocol;

impl TapirProtocol {
    pub fn new() -> Self {
        TapirProtocol
    }
}

impl Protocol for TapirProtocol {
    fn name(&self) -> &'static str {
        "TAPIR"
    }

    fn manages_durability(&self) -> bool {
        // The single prepare round already reaches a quorum of replicas.
        true
    }

    fn execute_once(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        program: &dyn TxnProgram,
        ticket: &TxnTicket,
        timers: &mut PhaseTimers,
        fanout: &ReadFanout,
    ) -> TxnResult<CommittedTxn> {
        let home = program.home_partition();
        let mut ctx =
            BaselineCtx::new(cluster, txn, home, ReadGuard::Optimistic).with_fanout(fanout);

        // Execution: optimistic reads, buffered writes.
        let exec = timers.time(Phase::Execute, || program.execute(&mut ctx));
        if let Err(e) = exec {
            let reason = ctx.dead.unwrap_or(e.reason());
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }
        let distributed = ctx.access.is_distributed(home);

        // One consolidated prepare round to every participant's replica group
        // (the fast path of inconsistent replication). The same round also
        // covers durability, so nothing else is charged afterwards.
        let parts = match timers.time(Phase::TwoPc, || prepare_round(&ctx, ticket)) {
            Ok(p) => p,
            Err(reason) => {
                ctx.abort_cleanup();
                return Err(TxnError::Aborted(reason));
            }
        };

        // OCC validation at the participants: lock write set, verify read
        // versions, install.
        let locked = match timers.time(Phase::Commit, || lock_write_set(&ctx, LockPolicy::NoWait)) {
            Ok(l) => l,
            Err(reason) => {
                abort_round(&ctx, &parts);
                ctx.abort_cleanup();
                return Err(TxnError::Aborted(reason));
            }
        };
        let validation = timers.time(Phase::Commit, || {
            for r in &ctx.access.reads {
                let in_write_set = ctx.access.find_write(r.partition, r.table, r.key).is_some();
                let (wts_now, _) = r.record.timestamps();
                if wts_now != r.wts {
                    return Err(AbortReason::Validation);
                }
                if !in_write_set && r.record.lock().exclusively_locked_by_other(txn) {
                    return Err(AbortReason::Validation);
                }
            }
            Ok(())
        });
        if let Err(reason) = validation {
            // Unwind materialised insert records before their locks drop so
            // no other transaction can claim the slot in between.
            ctx.access.undo.unwind();
            locked.release(txn);
            abort_round(&ctx, &parts);
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }

        let ops = ctx.access.ops();
        let ts = timers.time(Phase::Commit, || {
            install_locked_writes(&ctx, ticket, &locked, None)
        });

        // The commit decision reaches participants asynchronously; the client
        // considers the transaction committed after the single round. The
        // commit layer still seals the verdict it decided inside that round
        // (durable decision entries under Paxos Commit, a no-op under 2PC).
        seal_consolidated_commit(&ctx, &parts);
        locked.release(txn);
        ctx.access.release_all_locks(txn);
        reclaim_deletes(&ctx);

        Ok(CommittedTxn {
            ts,
            ops,
            distributed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_common::{PartitionId, TableId, Value};
    use primo_runtime::txn::IncrementProgram;
    use primo_runtime::worker::run_single_txn;
    use std::sync::Arc;

    fn loaded(n: usize) -> Arc<Cluster> {
        let cluster = Cluster::new(ClusterConfig::for_tests(n));
        for p in 0..n as u32 {
            for k in 0..32u64 {
                cluster
                    .partition(PartitionId(p))
                    .store
                    .insert(TableId(0), k, Value::from_u64(0));
            }
        }
        cluster
    }

    #[test]
    fn tapir_commits_with_a_single_extra_round() {
        let cluster = loaded(2);
        let protocol = TapirProtocol::new();
        let before = cluster.net.round_trips_charged();
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![(PartitionId(1), TableId(0), 1)],
        };
        run_single_txn(&cluster, &protocol, &prog).unwrap();
        // 1 remote read + 1 consolidated prepare round (no commit round, no
        // group-commit wait).
        assert_eq!(cluster.net.round_trips_charged() - before, 2);
        assert!(protocol.manages_durability());
        cluster.shutdown();
    }

    #[test]
    fn tapir_retries_resolve_conflicts() {
        let cluster = loaded(1);
        let protocol = TapirProtocol::new();
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![(PartitionId(0), TableId(0), 3)],
        };
        for _ in 0..5 {
            run_single_txn(&cluster, &protocol, &prog).unwrap();
        }
        assert_eq!(
            cluster
                .partition(PartitionId(0))
                .store
                .get(TableId(0), 3)
                .unwrap()
                .read()
                .value
                .as_u64(),
            5
        );
        cluster.shutdown();
    }
}
