//! Baseline distributed transaction protocols the paper compares against
//! (§6.1.1), all implemented on the same substrate as Primo:
//!
//! * [`twopl`]  — 2PL + 2PC with NO_WAIT or WAIT_DIE deadlock handling
//!   (Spanner-like, §2.1).
//! * [`silo`]   — Silo-style OCC with COCO's distributed commit protocol.
//! * [`sundial`] — Sundial: TicToc-based OCC with logical leases + 2PC.
//! * [`aria`]   — Aria: deterministic batched execution without read/write-set
//!   knowledge; 2PC-like barriers per batch, durability via input logging.
//! * [`tapir`]  — TAPIR-style: OCC with inconsistent replication; one
//!   consolidated prepare round, no group-commit wait.
//!
//! All of them pair with the group-commit schemes in `primo-wal` exactly like
//! Primo does, which is what Figs 4, 5, 11 and 14 measure.

pub mod aria;
pub mod common;
pub mod silo;
pub mod sundial;
pub mod tapir;
pub mod twopl;

pub use aria::AriaProtocol;
pub use silo::SiloProtocol;
pub use sundial::SundialProtocol;
pub use tapir::TapirProtocol;
pub use twopl::TwoPlProtocol;

use primo_common::config::ProtocolKind;
use primo_runtime::protocol::Protocol;
use std::sync::Arc;

/// Build a protocol instance by [`ProtocolKind`]. The Primo variants are
/// constructed in `primo-core`; this helper covers the baselines and panics
/// for the Primo kinds to avoid a dependency cycle (use the bench crate's
/// `build_protocol` for the full set).
pub fn build_baseline(kind: ProtocolKind) -> Arc<dyn Protocol> {
    match kind {
        ProtocolKind::TwoPlNoWait => Arc::new(TwoPlProtocol::no_wait()),
        ProtocolKind::TwoPlWaitDie => Arc::new(TwoPlProtocol::wait_die()),
        ProtocolKind::Silo => Arc::new(SiloProtocol::new()),
        ProtocolKind::Sundial => Arc::new(SundialProtocol::new()),
        ProtocolKind::Aria => Arc::new(AriaProtocol::new(Default::default())),
        ProtocolKind::Tapir => Arc::new(TapirProtocol::new()),
        ProtocolKind::Primo | ProtocolKind::PrimoNoWm | ProtocolKind::PrimoNoWcfNoWm => {
            panic!("Primo variants are built by primo-core, not primo-baselines")
        }
    }
}
