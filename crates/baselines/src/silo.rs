//! Silo-style OCC (Tu et al., SOSP '13) in its distributed variant from COCO:
//! reads record versions without locks; at commit the write set is locked and
//! the read set validated (unchanged versions, no foreign locks) as part of
//! the 2PC prepare round; the decision round releases the locks.

use crate::common::{
    abort_round, commit_round, install_locked_writes, lock_write_set, prepare_round,
    reclaim_deletes, BaselineCtx, ReadGuard,
};
use primo_common::{AbortReason, Phase, PhaseTimers, TxnError, TxnId, TxnResult};
use primo_runtime::cluster::Cluster;
use primo_runtime::prefetch::ReadFanout;
use primo_runtime::protocol::{CommittedTxn, Protocol};
use primo_runtime::txn::TxnProgram;
use primo_storage::LockPolicy;
use primo_wal::TxnTicket;

/// Distributed Silo (OCC).
#[derive(Debug, Clone, Default)]
pub struct SiloProtocol;

impl SiloProtocol {
    pub fn new() -> Self {
        SiloProtocol
    }
}

impl Protocol for SiloProtocol {
    fn name(&self) -> &'static str {
        "Silo"
    }

    fn execute_once(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        program: &dyn TxnProgram,
        ticket: &TxnTicket,
        timers: &mut PhaseTimers,
        fanout: &ReadFanout,
    ) -> TxnResult<CommittedTxn> {
        let home = program.home_partition();
        let mut ctx =
            BaselineCtx::new(cluster, txn, home, ReadGuard::Optimistic).with_fanout(fanout);

        // Execution phase: optimistic reads, buffered writes.
        let exec = timers.time(Phase::Execute, || program.execute(&mut ctx));
        if let Err(e) = exec {
            let reason = ctx.dead.unwrap_or(e.reason());
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }
        let distributed = ctx.access.is_distributed(home);

        // Prepare round: ship write-sets + validation requests.
        let parts = match timers.time(Phase::TwoPc, || prepare_round(&ctx, ticket)) {
            Ok(p) => p,
            Err(reason) => {
                ctx.abort_cleanup();
                return Err(TxnError::Aborted(reason));
            }
        };

        // Phase 1 of Silo's commit: lock the write set.
        let locked = match timers.time(Phase::Commit, || lock_write_set(&ctx, LockPolicy::NoWait)) {
            Ok(l) => l,
            Err(reason) => {
                abort_round(&ctx, &parts);
                ctx.abort_cleanup();
                return Err(TxnError::Aborted(reason));
            }
        };

        // Phase 2: validate the read set — every read record must still carry
        // the observed version and must not be locked by another transaction.
        let validation = timers.time(Phase::Commit, || {
            for r in &ctx.access.reads {
                let in_write_set = ctx.access.find_write(r.partition, r.table, r.key).is_some();
                let (wts_now, _) = r.record.timestamps();
                if wts_now != r.wts {
                    return Err(AbortReason::Validation);
                }
                if !in_write_set && r.record.lock().exclusively_locked_by_other(txn) {
                    return Err(AbortReason::Validation);
                }
            }
            Ok(())
        });
        if let Err(reason) = validation {
            // Unwind materialised insert records before their locks drop so
            // no other transaction can claim the slot in between.
            ctx.access.undo.unwind();
            locked.release(txn);
            abort_round(&ctx, &parts);
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }

        // Phase 3: log the write-set under the locks, then install (version
        // bump; deletes tombstone).
        let ops = ctx.access.ops();
        let ts = timers.time(Phase::Commit, || {
            install_locked_writes(&ctx, ticket, &locked, None)
        });

        // Decision round, then unlock and reclaim installed tombstones.
        timers.time(Phase::TwoPc, || commit_round(&ctx, &parts));
        locked.release(txn);
        ctx.access.release_all_locks(txn);
        reclaim_deletes(&ctx);

        Ok(CommittedTxn {
            ts,
            ops,
            distributed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_common::{PartitionId, TableId, Value};
    use primo_runtime::txn::{IncrementProgram, TxnContext};
    use primo_runtime::worker::run_single_txn;
    use std::sync::Arc;

    fn loaded(n: usize) -> Arc<Cluster> {
        let cluster = Cluster::new(ClusterConfig::for_tests(n));
        for p in 0..n as u32 {
            for k in 0..32u64 {
                cluster
                    .partition(PartitionId(p))
                    .store
                    .insert(TableId(0), k, Value::from_u64(0));
            }
        }
        cluster
    }

    #[test]
    fn silo_commits_read_modify_writes() {
        let cluster = loaded(2);
        let protocol = SiloProtocol::new();
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![
                (PartitionId(0), TableId(0), 1),
                (PartitionId(1), TableId(0), 1),
            ],
        };
        run_single_txn(&cluster, &protocol, &prog).unwrap();
        for p in 0..2u32 {
            assert_eq!(
                cluster
                    .partition(PartitionId(p))
                    .store
                    .get(TableId(0), 1)
                    .unwrap()
                    .read()
                    .value
                    .as_u64(),
                1
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn silo_validation_detects_stale_read() {
        struct StaleRead;
        impl TxnProgram for StaleRead {
            fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                let v = ctx.read(PartitionId(0), TableId(0), 3)?;
                // Simulate a long computation during which another txn
                // overwrites the record — done by the test below between
                // execute and commit is impossible here, so instead the test
                // mutates the record via a second protocol run. This program
                // just does a plain RMW.
                ctx.write(
                    PartitionId(0),
                    TableId(0),
                    3,
                    Value::from_u64(v.as_u64() + 1),
                )
            }
            fn home_partition(&self) -> PartitionId {
                PartitionId(0)
            }
        }
        let cluster = loaded(1);
        let protocol = SiloProtocol::new();
        // Warm-up commit to bump the version.
        run_single_txn(&cluster, &protocol, &StaleRead).unwrap();
        // Direct validation check: read then externally modify then commit.
        let txn = cluster.next_txn_id(PartitionId(0));
        let ticket = cluster.group_commit.begin_txn(PartitionId(0), txn);
        let mut ctx = BaselineCtx::new(&cluster, txn, PartitionId(0), ReadGuard::Optimistic);
        ctx.read(PartitionId(0), TableId(0), 3).unwrap();
        ctx.write(PartitionId(0), TableId(0), 3, Value::from_u64(99))
            .unwrap();
        // External writer changes the record's version under us.
        cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 3)
            .unwrap()
            .install_next_version(Value::from_u64(1000));
        // Now finish the attempt through the protocol's commit logic by
        // replaying the same accesses in a fresh attempt — the stale ctx is
        // validated manually here.
        let locked = lock_write_set(&ctx, LockPolicy::NoWait).unwrap();
        let stale = ctx.access.reads[0].wts
            != cluster
                .partition(PartitionId(0))
                .store
                .get(TableId(0), 3)
                .unwrap()
                .wts();
        assert!(stale, "version must have changed");
        locked.release(txn);
        ctx.abort_cleanup();
        let _ = ticket;
        cluster.shutdown();
    }

    #[test]
    fn silo_distributed_txn_charges_two_commit_rounds() {
        let cluster = loaded(2);
        let protocol = SiloProtocol::new();
        let before = cluster.net.round_trips_charged();
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![(PartitionId(1), TableId(0), 9)],
        };
        run_single_txn(&cluster, &protocol, &prog).unwrap();
        assert_eq!(cluster.net.round_trips_charged() - before, 3);
        cluster.shutdown();
    }
}
