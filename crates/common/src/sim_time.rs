//! Helpers for charging simulated latency to the calling thread.
//!
//! The paper measures a real cluster; this reproduction runs every partition
//! in one process and charges network / disk latency by making the calling
//! thread wait. Short waits (< ~200 µs) are spin-waits so that the scheduler
//! does not add millisecond-level noise; longer waits sleep.

use std::time::{Duration, Instant};

/// Threshold below which we spin instead of sleeping.
const SPIN_THRESHOLD_US: u64 = 200;

/// Block the calling thread for `us` microseconds of simulated latency.
pub fn charge_latency_us(us: u64) {
    if us == 0 {
        return;
    }
    if us <= SPIN_THRESHOLD_US {
        spin_us(us);
    } else {
        std::thread::sleep(Duration::from_micros(us));
    }
}

/// Busy-wait for `us` microseconds.
pub fn spin_us(us: u64) {
    let start = Instant::now();
    let target = Duration::from_micros(us);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

/// Monotonic microseconds since an arbitrary process-wide origin.
pub fn now_us() -> u64 {
    use std::sync::OnceLock;
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    let origin = ORIGIN.get_or_init(Instant::now);
    origin.elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_latency_waits_roughly_right() {
        let start = Instant::now();
        charge_latency_us(100);
        let el = start.elapsed();
        assert!(el >= Duration::from_micros(95), "waited only {el:?}");
        assert!(el < Duration::from_millis(20), "waited far too long {el:?}");
    }

    #[test]
    fn zero_latency_is_free() {
        let start = Instant::now();
        for _ in 0..1000 {
            charge_latency_us(0);
        }
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn now_us_is_monotonic() {
        let a = now_us();
        spin_us(10);
        let b = now_us();
        assert!(b >= a);
    }
}
