//! Fast per-thread random number generation and the Zipf key distribution
//! used by YCSB (Gray et al., "Quickly generating billion-record synthetic
//! databases", SIGMOD '94 — the same generator the paper cites \[31\]).

/// A small, fast xorshift* PRNG. Each worker thread owns one, seeded from the
/// thread id so experiments are reproducible yet threads are decorrelated.
#[derive(Debug, Clone)]
pub struct FastRng {
    state: u64,
}

impl FastRng {
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero state which xorshift cannot leave.
        FastRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Seed from a partition id and thread id for reproducible experiments.
    pub fn for_worker(partition: u32, thread: u32, salt: u64) -> Self {
        FastRng::new(((partition as u64) << 40) ^ ((thread as u64) << 20) ^ salt ^ 0xC0FFEE)
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi >= lo);
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn flip(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Non-uniform random value per the TPC-C specification (clause 2.1.6).
    pub fn nurand(&mut self, a: u64, x: u64, y: u64, c: u64) -> u64 {
        (((self.next_range(0, a) | self.next_range(x, y)) + c) % (y - x + 1)) + x
    }
}

/// Zipfian generator over `[0, n)` with skew parameter `theta`.
///
/// `theta = 0` degenerates to uniform; the paper sweeps `theta` from 0 to
/// 0.99 in Fig 6. Precomputes `zeta(n, theta)` once, so construction is
/// `O(n)` but each sample is `O(1)`.
#[derive(Debug, Clone)]
pub struct ZipfGen {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfGen {
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            (0.0..1.0).contains(&theta) || theta < 1.0001,
            "theta must be < 1"
        );
        if theta <= f64::EPSILON {
            return ZipfGen {
                n,
                theta: 0.0,
                alpha: 0.0,
                zetan: 0.0,
                eta: 0.0,
            };
        }
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfGen {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    pub fn domain(&self) -> u64 {
        self.n
    }

    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw a key in `[0, n)`.
    pub fn sample(&self, rng: &mut FastRng) -> u64 {
        if self.theta <= f64::EPSILON {
            return rng.next_below(self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = FastRng::new(42);
        let mut b = FastRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_range_respects_bounds() {
        let mut r = FastRng::new(7);
        for _ in 0..10_000 {
            let v = r.next_range(10, 20);
            assert!((10..=20).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn nurand_is_in_range() {
        let mut r = FastRng::new(3);
        for _ in 0..10_000 {
            let v = r.nurand(255, 0, 999, 123);
            assert!(v <= 999);
        }
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let g = ZipfGen::new(1000, 0.0);
        let mut r = FastRng::new(1);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[(g.sample(&mut r) / 100) as usize] += 1;
        }
        // Each decile should hold roughly 10% of the samples.
        for c in counts {
            assert!((7_000..13_000).contains(&c), "decile count {c} not uniform");
        }
    }

    #[test]
    fn zipf_skews_towards_small_keys() {
        let g = ZipfGen::new(1_000_000, 0.9);
        let mut r = FastRng::new(2);
        let mut hot = 0u32;
        let total = 100_000;
        for _ in 0..total {
            if g.sample(&mut r) < 1_000 {
                hot += 1;
            }
        }
        // With theta=0.9 the hottest 0.1% of keys receive far more than 0.1%
        // of the accesses.
        assert!(hot as f64 / total as f64 > 0.2, "hot fraction {hot}");
    }

    #[test]
    fn zipf_samples_stay_in_domain() {
        for theta in [0.0, 0.2, 0.6, 0.8, 0.99] {
            let g = ZipfGen::new(100, theta);
            let mut r = FastRng::new(5);
            for _ in 0..10_000 {
                assert!(g.sample(&mut r) < 100);
            }
        }
    }
}
