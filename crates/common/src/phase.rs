//! Per-transaction phase breakdown timers.
//!
//! Figures 4c and 5c of the paper break transaction latency into phases
//! (`execute`, `2PC`, `timestamp`, `commit`, `backoff`, `return`,
//! `wait_batch`, `sequence`). Each protocol implementation stamps these
//! phases through [`PhaseTimers`]; the experiment driver aggregates them.

use std::time::{Duration, Instant};

/// Latency-breakdown phases, matching Fig 4c/5c legends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Executing transaction logic (reads, computation, buffering writes).
    Execute,
    /// Two-phase-commit rounds (prepare + commit messages).
    TwoPc,
    /// Maintaining logical timestamps (TicToc / Sundial / Primo).
    Timestamp,
    /// Installing the write-set and releasing locks.
    Commit,
    /// Exponential back-off between aborted attempts.
    Backoff,
    /// Waiting for the group commit (watermark / epoch) to return results.
    Return,
    /// Aria only: waiting for the rest of the batch to finish execution.
    WaitBatch,
    /// Aria only: time spent in the sequencing layer.
    Sequence,
}

impl Phase {
    pub const ALL: [Phase; 8] = [
        Phase::Execute,
        Phase::TwoPc,
        Phase::Timestamp,
        Phase::Commit,
        Phase::Backoff,
        Phase::Return,
        Phase::WaitBatch,
        Phase::Sequence,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Phase::Execute => "execute",
            Phase::TwoPc => "2PC",
            Phase::Timestamp => "timestamp",
            Phase::Commit => "commit",
            Phase::Backoff => "backoff",
            Phase::Return => "return",
            Phase::WaitBatch => "wait_batch",
            Phase::Sequence => "sequence",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Execute => 0,
            Phase::TwoPc => 1,
            Phase::Timestamp => 2,
            Phase::Commit => 3,
            Phase::Backoff => 4,
            Phase::Return => 5,
            Phase::WaitBatch => 6,
            Phase::Sequence => 7,
        }
    }
}

/// Accumulates time per phase for one transaction (across retries).
#[derive(Debug, Clone, Default)]
pub struct PhaseTimers {
    nanos: [u64; 8],
}

impl PhaseTimers {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an explicit duration to a phase.
    #[inline]
    pub fn add(&mut self, phase: Phase, d: Duration) {
        self.nanos[phase.index()] += d.as_nanos() as u64;
    }

    /// Time a closure and charge it to `phase`.
    #[inline]
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.add(phase, start.elapsed());
        r
    }

    /// Nanoseconds recorded for a phase.
    pub fn get(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Total recorded nanoseconds over all phases.
    pub fn total(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &PhaseTimers) {
        for i in 0..self.nanos.len() {
            self.nanos[i] += other.nanos[i];
        }
    }

    /// Raw nanosecond array in [`Phase::ALL`] order.
    pub fn as_array(&self) -> [u64; 8] {
        self.nanos
    }
}

/// RAII helper: charges the elapsed time to a phase when dropped.
pub struct PhaseGuard<'a> {
    timers: &'a mut PhaseTimers,
    phase: Phase,
    start: Instant,
}

impl<'a> PhaseGuard<'a> {
    pub fn new(timers: &'a mut PhaseTimers, phase: Phase) -> Self {
        PhaseGuard {
            timers,
            phase,
            start: Instant::now(),
        }
    }
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.timers.add(self.phase, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut t = PhaseTimers::new();
        t.add(Phase::Execute, Duration::from_micros(5));
        t.add(Phase::Execute, Duration::from_micros(7));
        t.add(Phase::TwoPc, Duration::from_micros(3));
        assert_eq!(t.get(Phase::Execute), 12_000);
        assert_eq!(t.get(Phase::TwoPc), 3_000);
        assert_eq!(t.total(), 15_000);
    }

    #[test]
    fn time_closure_records_something() {
        let mut t = PhaseTimers::new();
        let v = t.time(Phase::Commit, || {
            std::thread::sleep(Duration::from_millis(1));
            42
        });
        assert_eq!(v, 42);
        assert!(t.get(Phase::Commit) >= 500_000);
    }

    #[test]
    fn merge_sums_all_phases() {
        let mut a = PhaseTimers::new();
        let mut b = PhaseTimers::new();
        a.add(Phase::Backoff, Duration::from_nanos(10));
        b.add(Phase::Backoff, Duration::from_nanos(15));
        b.add(Phase::Return, Duration::from_nanos(5));
        a.merge(&b);
        assert_eq!(a.get(Phase::Backoff), 25);
        assert_eq!(a.get(Phase::Return), 5);
    }

    #[test]
    fn all_phases_have_distinct_indices_and_labels() {
        let mut seen = std::collections::HashSet::new();
        for p in Phase::ALL {
            assert!(seen.insert(p.label()));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn guard_charges_on_drop() {
        let mut t = PhaseTimers::new();
        {
            let _g = PhaseGuard::new(&mut t, Phase::Return);
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(t.get(Phase::Return) > 0);
    }
}
