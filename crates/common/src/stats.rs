//! Experiment metrics: throughput counters, latency histograms, abort
//! accounting and per-phase breakdowns.

use crate::error::AbortReason;
use crate::phase::{Phase, PhaseTimers};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A log-scale latency histogram (microsecond resolution, ~4% relative error)
/// supporting percentile queries. Cheap enough to update on every commit.
#[derive(Debug)]
pub struct Histogram {
    /// buckets[i] counts samples whose value rounds into bucket i.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

const BUCKETS_PER_OCTAVE: usize = 16;
const NUM_OCTAVES: usize = 40; // covers up to ~2^40 us

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let n = BUCKETS_PER_OCTAVE * NUM_OCTAVES;
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(AtomicU64::new(0));
        }
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket_index(us: u64) -> usize {
        if us < 2 {
            return us as usize;
        }
        let octave = 63 - us.leading_zeros() as usize; // floor(log2(us))
        let base = 1u64 << octave;
        let frac = ((us - base) * BUCKETS_PER_OCTAVE as u64 / base) as usize;
        (octave * BUCKETS_PER_OCTAVE + frac).min(BUCKETS_PER_OCTAVE * NUM_OCTAVES - 1)
    }

    fn bucket_value(idx: usize) -> u64 {
        if idx < 2 {
            return idx as u64;
        }
        let octave = idx / BUCKETS_PER_OCTAVE;
        let frac = idx % BUCKETS_PER_OCTAVE;
        let base = 1u64 << octave;
        base + base * frac as u64 / BUCKETS_PER_OCTAVE as u64
    }

    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn mean_us(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / c as f64
        }
    }

    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Latency at the given percentile (0.0–1.0).
    pub fn percentile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Clamp to >= 1 sample: ceil(total * 0.0) is 0, and "0 samples seen"
        // is satisfied by the empty bucket 0, which made percentile_us(0.0)
        // report 0 regardless of the data instead of the minimum sample.
        let target = (((total as f64) * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_value(i);
            }
        }
        self.max_us()
    }

    /// A point-in-time copy of the bucket counters, for windowed percentile
    /// queries over a *delta* of a live histogram (the metrics timeline
    /// samples this every window and diffs consecutive snapshots).
    pub fn counts(&self) -> HistogramCounts {
        HistogramCounts {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_us
            .fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_us
            .fetch_max(other.max_us.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Frozen bucket counters of a [`Histogram`] at one instant.
#[derive(Debug, Clone)]
pub struct HistogramCounts {
    buckets: Vec<u64>,
}

impl HistogramCounts {
    /// Number of samples recorded between `earlier` and this snapshot.
    pub fn count_since(&self, earlier: &HistogramCounts) -> u64 {
        self.buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(now, then)| now - then)
            .sum()
    }

    /// Percentile over only the samples recorded between `earlier` and this
    /// snapshot (both taken from the same live histogram). 0 when the delta
    /// is empty.
    pub fn percentile_us_since(&self, earlier: &HistogramCounts, q: f64) -> u64 {
        let total = self.count_since(earlier);
        if total == 0 {
            return 0;
        }
        let target = (((total as f64) * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, (now, then)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            seen += now - then;
            if seen >= target {
                return Histogram::bucket_value(i);
            }
        }
        0
    }
}

/// One ~100 ms window of the live metrics timeline the experiment driver
/// samples while the workload runs (TPS dips around crashes, recovery and —
/// eventually — elastic cutovers show up here instead of being averaged
/// away).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineWindow {
    /// Window start, microseconds since the run started.
    pub start_us: u64,
    /// Window length, microseconds.
    pub len_us: u64,
    /// Commits inside the window.
    pub committed: u64,
    /// Aborted attempts inside the window.
    pub aborted: u64,
    /// Commit throughput over the window, transactions/second.
    pub tps: f64,
    /// Aborted attempts / total attempts inside the window.
    pub abort_rate: f64,
    /// p99 commit latency over only the window's commits, milliseconds.
    pub p99_latency_ms: f64,
}

/// Cluster-level counters the experiment driver collects *after* the run
/// and hands to [`Metrics::snapshot`]. Deliberately no `Default` and
/// constructed by struct literal: adding a field here breaks the driver at
/// compile time instead of silently reporting 0 in every figure.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Superseded record versions garbage-collected at checkpoints.
    pub pruned_versions: u64,
    /// Throughput between recovery completion and the measurement end.
    pub post_recovery_tps: f64,
    /// Crash-rolled-back transactions compensated on surviving partitions.
    pub compensated_txns: u64,
    /// Deterministic log-leader hand-offs across all partitions.
    pub leader_changes: u64,
    /// Worst partition's append→quorum-ack delay, microseconds.
    pub replication_lag_us: u64,
    /// Total microseconds committers spent blocked on log sequencers.
    pub wal_append_wait_us: u64,
    /// Mean log entries shipped per replication-pump batch.
    pub replication_batch_len: f64,
    /// In-doubt atomic commits terminated from the durable vote set (live
    /// Paxos Commit resolution plus recovery-time sealing).
    pub in_doubt_resolved: u64,
    /// Transactions orphaned by a coordinator crash under classic 2PC
    /// (blocked forever; always 0 under Paxos Commit).
    pub orphaned_txns: u64,
    /// Distributed commit decisions whose prepare→decide latency was
    /// recorded by the atomic-commit layer.
    pub commit_decisions: u64,
    /// Mean prepare→decide latency of distributed commits, microseconds.
    pub commit_decide_mean_us: f64,
    /// p99 prepare→decide latency of distributed commits, microseconds.
    pub commit_decide_p99_us: u64,
    /// Network round trips charged per committed distributed transaction
    /// (the metric the batched remote-read fan-out improves).
    pub remote_round_trips_per_dist_txn: f64,
    /// Fraction of consulted remote reads served from the batched prefetch
    /// buffer (hits / (hits + stale + misses); 0 with batching off).
    pub prefetch_hit_rate: f64,
    /// Windowed TPS / abort-rate / p99 series sampled during the run.
    pub timeline: Vec<TimelineWindow>,
}

impl ClusterStats {
    /// All-zero stats for call sites without a cluster (unit tests,
    /// single-component micro-benchmarks). The experiment driver must build
    /// the struct literally instead, so new fields can't be forgotten there.
    pub fn empty() -> Self {
        ClusterStats {
            pruned_versions: 0,
            post_recovery_tps: 0.0,
            compensated_txns: 0,
            leader_changes: 0,
            replication_lag_us: 0,
            wal_append_wait_us: 0,
            replication_batch_len: 0.0,
            in_doubt_resolved: 0,
            orphaned_txns: 0,
            commit_decisions: 0,
            commit_decide_mean_us: 0.0,
            commit_decide_p99_us: 0,
            remote_round_trips_per_dist_txn: 0.0,
            prefetch_hit_rate: 0.0,
            timeline: Vec::new(),
        }
    }
}

/// Shared, thread-safe metric sink for one experiment run.
#[derive(Debug, Default)]
pub struct Metrics {
    committed: AtomicU64,
    aborted_attempts: AtomicU64,
    /// Transactions abandoned permanently (user aborts).
    abandoned: AtomicU64,
    latency: Histogram,
    /// Aborts by reason.
    abort_reasons: Mutex<HashMap<AbortReason, u64>>,
    /// Aggregated per-phase time across committed transactions (nanoseconds).
    phase_nanos: [AtomicU64; 8],
    /// Messages sent (filled in by the network layer via `add_messages`).
    messages: AtomicU64,
    /// Remote (cross-partition) read/write requests issued.
    remote_ops: AtomicU64,
    /// Total time spent rebuilding crashed partitions (wipe + checkpoint
    /// restore + log replay), microseconds.
    recovery_time_us: AtomicU64,
    /// Committed transactions replayed from durable logs during recovery.
    replayed_txns: AtomicU64,
    /// Read-only transactions served lock-free from the MVCC snapshot (no
    /// locks, no validation, no group-commit wait). Also counted into
    /// `committed`.
    snapshot_reads: AtomicU64,
    /// Committed transactions that touched more than one partition (a subset
    /// of `committed`).
    dist_committed: AtomicU64,
    /// Latency histogram over only the distributed commits — dominated by
    /// remote round trips, so this is where the batched fan-out shows up.
    dist_latency: Histogram,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_commit(&self, latency_us: u64, phases: &PhaseTimers, distributed: bool) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.latency.record_us(latency_us);
        if distributed {
            self.dist_committed.fetch_add(1, Ordering::Relaxed);
            self.dist_latency.record_us(latency_us);
        }
        let arr = phases.as_array();
        for (slot, v) in self.phase_nanos.iter().zip(arr.iter()) {
            slot.fetch_add(*v, Ordering::Relaxed);
        }
    }

    pub fn record_abort(&self, reason: AbortReason) {
        self.aborted_attempts.fetch_add(1, Ordering::Relaxed);
        *self.abort_reasons.lock().entry(reason).or_insert(0) += 1;
    }

    pub fn record_abandoned(&self) {
        self.abandoned.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one read-only transaction served from the MVCC snapshot.
    /// Callers record the commit separately (`record_commit`); this counter
    /// tracks how many of the commits took the lock-free path.
    pub fn record_snapshot_read(&self) {
        self.snapshot_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot_reads(&self) -> u64 {
        self.snapshot_reads.load(Ordering::Relaxed)
    }

    pub fn add_messages(&self, n: u64) {
        self.messages.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_remote_ops(&self, n: u64) {
        self.remote_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Account one partition recovery (Fig 12b companion numbers: how long
    /// the rebuild took and how much durable log it replayed).
    pub fn record_recovery(&self, duration_us: u64, replayed_txns: u64) {
        self.recovery_time_us
            .fetch_add(duration_us, Ordering::Relaxed);
        self.replayed_txns
            .fetch_add(replayed_txns, Ordering::Relaxed);
    }

    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Committed transactions that touched more than one partition.
    pub fn dist_committed(&self) -> u64 {
        self.dist_committed.load(Ordering::Relaxed)
    }

    pub fn aborted_attempts(&self) -> u64 {
        self.aborted_attempts.load(Ordering::Relaxed)
    }

    /// A live handle on the commit-latency histogram, for windowed
    /// percentile sampling by the experiment driver's timeline thread.
    pub fn latency_counts(&self) -> HistogramCounts {
        self.latency.counts()
    }

    /// Produce an immutable snapshot with derived quantities. `cluster`
    /// carries the counters only the experiment driver can collect
    /// (post-run cluster state and the sampled timeline).
    pub fn snapshot(&self, elapsed_secs: f64, cluster: ClusterStats) -> MetricsSnapshot {
        let committed = self.committed();
        let aborted = self.aborted_attempts();
        let attempts = committed + aborted;
        let mut phase_ms = HashMap::new();
        if committed > 0 {
            for (i, p) in Phase::ALL.iter().enumerate() {
                let ns = self.phase_nanos[i].load(Ordering::Relaxed);
                phase_ms.insert(*p, ns as f64 / committed as f64 / 1e6);
            }
        }
        let abort_reasons = self.abort_reasons.lock().clone();
        let crash_aborts: u64 = abort_reasons
            .iter()
            .filter(|(r, _)| r.is_crash())
            .map(|(_, c)| *c)
            .sum();
        MetricsSnapshot {
            elapsed_secs,
            committed,
            aborted_attempts: aborted,
            abandoned: self.abandoned.load(Ordering::Relaxed),
            throughput_tps: if elapsed_secs > 0.0 {
                committed as f64 / elapsed_secs
            } else {
                0.0
            },
            abort_rate: if attempts > 0 {
                aborted as f64 / attempts as f64
            } else {
                0.0
            },
            crash_abort_rate: if attempts > 0 {
                crash_aborts as f64 / attempts as f64
            } else {
                0.0
            },
            mean_latency_ms: self.latency.mean_us() / 1000.0,
            p50_latency_ms: self.latency.percentile_us(0.50) as f64 / 1000.0,
            p99_latency_ms: self.latency.percentile_us(0.99) as f64 / 1000.0,
            max_latency_ms: self.latency.max_us() as f64 / 1000.0,
            dist_committed: self.dist_committed(),
            dist_txn_mean_ms: self.dist_latency.mean_us() / 1000.0,
            dist_txn_p99_ms: self.dist_latency.percentile_us(0.99) as f64 / 1000.0,
            phase_ms,
            abort_reasons,
            messages: self.messages.load(Ordering::Relaxed),
            remote_ops: self.remote_ops.load(Ordering::Relaxed),
            recovery_time_us: self.recovery_time_us.load(Ordering::Relaxed),
            replayed_txns: self.replayed_txns.load(Ordering::Relaxed),
            snapshot_reads: self.snapshot_reads(),
            snapshot_read_tps: if elapsed_secs > 0.0 {
                self.snapshot_reads() as f64 / elapsed_secs
            } else {
                0.0
            },
            pruned_versions: cluster.pruned_versions,
            post_recovery_tps: cluster.post_recovery_tps,
            compensated_txns: cluster.compensated_txns,
            leader_changes: cluster.leader_changes,
            replication_lag_us: cluster.replication_lag_us,
            wal_append_wait_us: cluster.wal_append_wait_us,
            replication_batch_len: cluster.replication_batch_len,
            in_doubt_resolved: cluster.in_doubt_resolved,
            orphaned_txns: cluster.orphaned_txns,
            commit_decisions: cluster.commit_decisions,
            commit_decide_mean_us: cluster.commit_decide_mean_us,
            commit_decide_p99_us: cluster.commit_decide_p99_us,
            remote_round_trips_per_dist_txn: cluster.remote_round_trips_per_dist_txn,
            prefetch_hit_rate: cluster.prefetch_hit_rate,
            timeline: cluster.timeline,
        }
    }
}

/// Immutable result of one experiment run.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub elapsed_secs: f64,
    pub committed: u64,
    pub aborted_attempts: u64,
    pub abandoned: u64,
    pub throughput_tps: f64,
    /// Aborted attempts / total attempts.
    pub abort_rate: f64,
    /// Crash-induced aborted attempts / total attempts (Fig 12b).
    pub crash_abort_rate: f64,
    pub mean_latency_ms: f64,
    pub p50_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub max_latency_ms: f64,
    /// Committed transactions that touched more than one partition (a subset
    /// of `committed`).
    pub dist_committed: u64,
    /// Mean commit latency over only the distributed commits, milliseconds.
    pub dist_txn_mean_ms: f64,
    /// p99 commit latency over only the distributed commits, milliseconds —
    /// the latency figure the batched remote-read fan-out improves.
    pub dist_txn_p99_ms: f64,
    /// Average milliseconds per committed transaction spent in each phase.
    pub phase_ms: HashMap<Phase, f64>,
    pub abort_reasons: HashMap<AbortReason, u64>,
    pub messages: u64,
    pub remote_ops: u64,
    /// Time spent rebuilding crashed partitions from checkpoint + durable-log
    /// replay, microseconds (0 when no crash was injected).
    pub recovery_time_us: u64,
    /// Committed transactions replayed from durable logs during recovery.
    pub replayed_txns: u64,
    /// Read-only transactions served lock-free from the MVCC snapshot (a
    /// subset of `committed`).
    pub snapshot_reads: u64,
    /// Snapshot-served read-only transactions per second.
    pub snapshot_read_tps: f64,
    /// Superseded record versions garbage-collected at checkpoints (filled
    /// in by the experiment driver from the cluster).
    pub pruned_versions: u64,
    /// Throughput over the window between recovery completion and the end of
    /// the measurement — the post-recovery dip Fig 12b-style harnesses
    /// report (0 when no crash was injected or nothing ran afterwards).
    pub post_recovery_tps: f64,
    /// Crash-rolled-back transactions whose installed writes on *surviving*
    /// partitions were undone via before-image compensation (0 when no crash
    /// was injected; filled in by the experiment driver from the cluster).
    pub compensated_txns: u64,
    /// Deterministic log-leader hand-offs across all partitions (every crash
    /// moves leadership of the partition's replicated log to the successor
    /// replica; filled in by the experiment driver from the cluster).
    pub leader_changes: u64,
    /// Replication lag of the replicated log: the time between appending a
    /// record and its quorum acknowledgement (the worst partition's
    /// quorum-ack delay, microseconds). Equals the local persist delay when
    /// `replication_factor` is 1; filled in by the experiment driver.
    pub replication_lag_us: u64,
    /// Total microseconds committers spent blocked on a partition
    /// sequencer (stage 1 of the append pipeline) across all partitions —
    /// contention on the commit critical section itself, zero when every
    /// append found the sequencer free. Filled in by the experiment driver.
    pub wal_append_wait_us: u64,
    /// Mean number of log entries the replication pump shipped to the
    /// follower replicas per drained batch (stage 2 of the append
    /// pipeline). 0 for single-copy logs, 1.0 when every entry was drained
    /// alone; larger values mean the pump amortized follower lock
    /// acquisitions across committers. Filled in by the experiment driver.
    pub replication_batch_len: f64,
    /// In-doubt atomic commits terminated from the durable vote set: the
    /// coordinator died between the vote round and the decision, and the
    /// transaction was resolved (live Paxos Commit resolution or
    /// recovery-time presumed-abort sealing) instead of blocking. Filled in
    /// by the experiment driver from the cluster.
    pub in_doubt_resolved: u64,
    /// Transactions orphaned by a coordinator crash under classic 2PC —
    /// nobody can decide, their locks leak, participants block. Always 0
    /// under Paxos Commit. Filled in by the experiment driver.
    pub orphaned_txns: u64,
    /// Distributed commit decisions whose prepare→decide latency the
    /// atomic-commit layer recorded (one per distributed commit).
    pub commit_decisions: u64,
    /// Mean prepare→decide latency of distributed commits, microseconds —
    /// the cost of the decision phase itself (a full round trip under
    /// classic 2PC, durable log appends + a one-way notification under
    /// Paxos Commit).
    pub commit_decide_mean_us: f64,
    /// p99 prepare→decide latency of distributed commits, microseconds.
    pub commit_decide_p99_us: u64,
    /// Network round trips charged per committed distributed transaction
    /// (filled in by the experiment driver from the cluster's network
    /// counters; the headline number for the batched remote-read fan-out).
    pub remote_round_trips_per_dist_txn: f64,
    /// Fraction of consulted remote reads served from the batched prefetch
    /// buffer (0 with batching off; filled in by the experiment driver).
    pub prefetch_hit_rate: f64,
    /// Windowed (~100 ms) TPS / abort-rate / p99 series sampled while the
    /// run was live. Empty when the driver did not sample (short unit-test
    /// runs).
    pub timeline: Vec<TimelineWindow>,
}

impl MetricsSnapshot {
    /// Throughput in kilo-transactions per second (the unit used in figures).
    pub fn ktps(&self) -> f64 {
        self.throughput_tps / 1000.0
    }

    pub fn phase(&self, p: Phase) -> f64 {
        self.phase_ms.get(&p).copied().unwrap_or(0.0)
    }

    /// Aborted attempts for one reason.
    pub fn aborts_for(&self, reason: AbortReason) -> u64 {
        self.abort_reasons.get(&reason).copied().unwrap_or(0)
    }

    /// Per-reason abort breakdown, largest first (ties broken by the debug
    /// name so output is deterministic). Lifecycle regressions — e.g. a
    /// phantom insert flipping later puts into `NotFound` aborts — show up
    /// here instead of being folded into the single abort total.
    pub fn abort_breakdown(&self) -> Vec<(AbortReason, u64)> {
        let mut v: Vec<(AbortReason, u64)> = self
            .abort_reasons
            .iter()
            .filter(|(_, count)| **count > 0)
            .map(|(r, count)| (*r, *count))
            .collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| format!("{}", a.0).cmp(&format!("{}", b.0)))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_percentiles_are_ordered() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record_us(i);
        }
        let p50 = h.percentile_us(0.5);
        let p99 = h.percentile_us(0.99);
        assert!(p50 <= p99);
        assert!((400..700).contains(&p50), "p50={p50}");
        assert!(p99 >= 900, "p99={p99}");
        assert_eq!(h.count(), 1000);
        assert!(h.mean_us() > 400.0 && h.mean_us() < 600.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_us(10);
        b.record_us(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_us(), 1000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn percentile_zero_returns_the_minimum_sample() {
        // Regression: ceil(total * 0.0) == 0 used to satisfy `seen >= target`
        // at the first (empty) bucket, so percentile_us(0.0) was always 0.
        let h = Histogram::new();
        for us in [500u64, 900, 1_400] {
            h.record_us(us);
        }
        let p0 = h.percentile_us(0.0);
        assert!(
            (450..=560).contains(&p0),
            "p0 must be ~the smallest sample (500us), got {p0}"
        );
        assert!(h.percentile_us(0.0) <= h.percentile_us(0.5));
    }

    #[test]
    fn percentiles_monotone_under_concurrent_recording() {
        // Property check for the satellite requirement: with many threads
        // hammering record_us, any percentile query ordering stays monotone
        // and the final counts are exact (no lost updates).
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record_us(1 + (i * 7 + t * 13) % 10_000);
                        if i % 512 == 0 {
                            let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0]
                                .iter()
                                .map(|q| h.percentile_us(*q))
                                .collect();
                            assert!(
                                qs.windows(2).all(|w| w[0] <= w[1]),
                                "percentiles not monotone mid-run: {qs:?}"
                            );
                        }
                    }
                })
            })
            .collect();
        for hd in handles {
            hd.join().unwrap();
        }
        assert_eq!(h.count(), threads * per_thread);
        let qs: Vec<u64> = [0.0, 0.5, 0.99, 1.0]
            .iter()
            .map(|q| h.percentile_us(*q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        assert!(qs[0] >= 1, "p0 sees a real sample, not the empty bucket 0");
    }

    #[test]
    fn windowed_delta_percentiles_ignore_earlier_samples() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record_us(10);
        }
        let mark = h.counts();
        for _ in 0..50 {
            h.record_us(1_000);
        }
        let now = h.counts();
        assert_eq!(now.count_since(&mark), 50);
        let p50 = now.percentile_us_since(&mark, 0.5);
        assert!(
            (900..=1100).contains(&p50),
            "window p50 must reflect only the 1000us samples, got {p50}"
        );
        assert_eq!(now.percentile_us_since(&now, 0.99), 0, "empty delta");
    }

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for us in [1u64, 5, 17, 100, 999, 12345, 1_000_000] {
            let v = Histogram::bucket_value(Histogram::bucket_index(us));
            let err = (v as f64 - us as f64).abs() / us as f64;
            assert!(err < 0.07, "us={us} decoded {v} err {err}");
        }
    }

    #[test]
    fn abort_breakdown_is_sorted_and_complete() {
        let m = Metrics::new();
        for _ in 0..3 {
            m.record_abort(AbortReason::WaitDie);
        }
        m.record_abort(AbortReason::NotFound);
        for _ in 0..2 {
            m.record_abort(AbortReason::Validation);
        }
        let s = m.snapshot(1.0, ClusterStats::empty());
        assert_eq!(
            s.abort_breakdown(),
            vec![
                (AbortReason::WaitDie, 3),
                (AbortReason::Validation, 2),
                (AbortReason::NotFound, 1),
            ]
        );
        assert_eq!(s.aborts_for(AbortReason::WaitDie), 3);
        assert_eq!(s.aborts_for(AbortReason::CrashAbort), 0);
    }

    #[test]
    fn metrics_snapshot_derives_rates() {
        let m = Metrics::new();
        let mut ph = PhaseTimers::new();
        ph.add(Phase::Execute, Duration::from_micros(100));
        m.record_commit(500, &ph, false);
        m.record_commit(1500, &ph, true);
        m.record_abort(AbortReason::LockConflict);
        m.record_abort(AbortReason::CrashAbort);
        m.record_recovery(1_500, 42);
        m.record_snapshot_read();
        let s = m.snapshot(
            2.0,
            ClusterStats {
                pruned_versions: 3,
                post_recovery_tps: 1.5,
                compensated_txns: 4,
                leader_changes: 1,
                replication_lag_us: 250,
                wal_append_wait_us: 75,
                replication_batch_len: 2.5,
                in_doubt_resolved: 2,
                orphaned_txns: 1,
                commit_decisions: 7,
                commit_decide_mean_us: 340.0,
                commit_decide_p99_us: 900,
                remote_round_trips_per_dist_txn: 2.5,
                prefetch_hit_rate: 0.75,
                timeline: vec![TimelineWindow {
                    start_us: 0,
                    len_us: 100_000,
                    committed: 2,
                    aborted: 2,
                    tps: 20.0,
                    abort_rate: 0.5,
                    p99_latency_ms: 1.5,
                }],
            },
        );
        assert_eq!(s.snapshot_reads, 1);
        assert!((s.snapshot_read_tps - 0.5).abs() < 1e-9);
        assert_eq!(s.recovery_time_us, 1_500);
        assert_eq!(s.replayed_txns, 42);
        // The driver-supplied cluster stats come through verbatim.
        assert_eq!(s.pruned_versions, 3);
        assert_eq!(s.post_recovery_tps, 1.5);
        assert_eq!(s.compensated_txns, 4);
        assert_eq!(s.leader_changes, 1);
        assert_eq!(s.replication_lag_us, 250);
        assert_eq!(s.wal_append_wait_us, 75);
        assert_eq!(s.replication_batch_len, 2.5);
        assert_eq!(s.in_doubt_resolved, 2);
        assert_eq!(s.orphaned_txns, 1);
        assert_eq!(s.commit_decisions, 7);
        assert_eq!(s.commit_decide_mean_us, 340.0);
        assert_eq!(s.commit_decide_p99_us, 900);
        assert_eq!(s.remote_round_trips_per_dist_txn, 2.5);
        assert_eq!(s.prefetch_hit_rate, 0.75);
        // Only the 1500us commit was distributed.
        assert_eq!(s.dist_committed, 1);
        assert!(s.dist_txn_p99_ms > 1.0 && s.dist_txn_p99_ms < 2.0);
        assert!(s.dist_txn_mean_ms > 1.0 && s.dist_txn_mean_ms < 2.0);
        assert_eq!(s.timeline.len(), 1);
        assert_eq!(s.timeline[0].committed, 2);
        assert_eq!(s.committed, 2);
        assert_eq!(s.aborted_attempts, 2);
        assert!((s.throughput_tps - 1.0).abs() < 1e-9);
        assert!((s.abort_rate - 0.5).abs() < 1e-9);
        assert!((s.crash_abort_rate - 0.25).abs() < 1e-9);
        assert!(s.phase(Phase::Execute) > 0.0);
        assert_eq!(s.ktps() * 1000.0, s.throughput_tps);
    }
}
