//! Common types shared by every crate in the Primo reproduction workspace.
//!
//! This crate deliberately has no dependency on the storage, network or
//! protocol crates: it defines the vocabulary (identifiers, values, abort
//! reasons, configuration, statistics) that all of them speak.

pub mod config;
pub mod error;
pub mod ids;
pub mod phase;
pub mod rng;
pub mod sim_time;
pub mod stats;
pub mod value;

pub use config::{
    CcScheme, ClusterConfig, LoggingScheme, NetConfig, PrimoConfig, ProtocolKind, WalConfig,
};
pub use error::{AbortReason, TxnError, TxnResult};
pub use ids::{PartitionId, TableId, ThreadId, Ts, TxnId};
pub use phase::{Phase, PhaseTimers};
pub use rng::{FastRng, ZipfGen};
pub use stats::{
    ClusterStats, Histogram, HistogramCounts, Metrics, MetricsSnapshot, TimelineWindow,
};
pub use value::{Key, Row, Value};
