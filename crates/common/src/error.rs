//! Transaction abort reasons and error plumbing.

use std::fmt;

/// Why a transaction attempt aborted.
///
/// The distinction between *conflict-induced* and *crash-induced* aborts is the
/// backbone of the paper (§1): Primo removes conflict-induced aborts from the
/// commit phase (WCF) and handles crash-induced aborts in batches (WM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// A lock request was denied under the NO_WAIT policy.
    LockConflict,
    /// A lock request was denied under the WAIT_DIE policy because the
    /// requester was younger than the holder.
    WaitDie,
    /// OCC / TicToc validation failed.
    Validation,
    /// The coordinator detected that a record it read in local mode changed
    /// while switching to distributed mode (§4.2.2 example).
    ModeSwitch,
    /// The application explicitly rolled back (`Rollback` in a stored
    /// procedure or an interactive transaction).
    UserAbort,
    /// The transaction read or updated a key that does not exist (and was
    /// not created with `insert`). Retrying cannot succeed.
    NotFound,
    /// A participant or the group-commit layer aborted the transaction because
    /// of a (simulated) partition crash.
    CrashAbort,
    /// A remote partition could not be reached (crashed) during execution.
    RemoteUnavailable,
    /// The transaction was aborted because the epoch it belonged to was
    /// aborted wholesale (COCO-style group commit).
    EpochAbort,
    /// Aria-style deterministic conflict (write-after-write / read-after-write
    /// reservation clash within a batch).
    DeterministicConflict,
    /// The coordinating worker died between the prepare round and the commit
    /// decision, and the atomic-commit layer terminated the in-doubt
    /// transaction with a global abort (Paxos Commit's non-blocking
    /// resolution; classic 2PC never reports this — it blocks instead).
    CoordinatorCrash,
}

impl AbortReason {
    /// True for aborts that the worker loop should retry with back-off.
    pub fn is_retryable(self) -> bool {
        !matches!(self, AbortReason::UserAbort | AbortReason::NotFound)
    }

    /// True if this abort was caused by a concurrency conflict (as opposed to
    /// a crash or an explicit rollback).
    pub fn is_conflict(self) -> bool {
        matches!(
            self,
            AbortReason::LockConflict
                | AbortReason::WaitDie
                | AbortReason::Validation
                | AbortReason::ModeSwitch
                | AbortReason::DeterministicConflict
        )
    }

    /// True if this abort was caused by a (simulated) crash.
    pub fn is_crash(self) -> bool {
        matches!(
            self,
            AbortReason::CrashAbort
                | AbortReason::RemoteUnavailable
                | AbortReason::EpochAbort
                | AbortReason::CoordinatorCrash
        )
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Error type returned by transaction execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnError {
    Aborted(AbortReason),
}

impl TxnError {
    pub fn reason(&self) -> AbortReason {
        match self {
            TxnError::Aborted(r) => *r,
        }
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Aborted(r) => write!(f, "transaction aborted: {r}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<AbortReason> for TxnError {
    fn from(r: AbortReason) -> Self {
        TxnError::Aborted(r)
    }
}

/// Convenience alias used throughout the protocol crates.
pub type TxnResult<T> = Result<T, TxnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_abort_is_not_retryable() {
        assert!(!AbortReason::UserAbort.is_retryable());
        assert!(!AbortReason::NotFound.is_retryable());
        assert!(AbortReason::LockConflict.is_retryable());
        assert!(AbortReason::CrashAbort.is_retryable());
    }

    #[test]
    fn classification_is_disjoint() {
        for r in [
            AbortReason::LockConflict,
            AbortReason::WaitDie,
            AbortReason::Validation,
            AbortReason::ModeSwitch,
            AbortReason::UserAbort,
            AbortReason::NotFound,
            AbortReason::CrashAbort,
            AbortReason::RemoteUnavailable,
            AbortReason::EpochAbort,
            AbortReason::DeterministicConflict,
            AbortReason::CoordinatorCrash,
        ] {
            assert!(!(r.is_conflict() && r.is_crash()), "{r} classified twice");
        }
    }

    #[test]
    fn error_carries_reason() {
        let e: TxnError = AbortReason::Validation.into();
        assert_eq!(e.reason(), AbortReason::Validation);
        assert!(e.to_string().contains("Validation"));
    }
}
