//! Identifier types used across the cluster.

use std::fmt;

/// Identifies one shared-nothing partition (one "server" in the paper's
/// terminology — each partition has a leader that owns a horizontal slice of
/// every table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// Index into per-partition vectors.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a logical table (YCSB main table, TPC-C warehouse, district, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifies a worker thread inside a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

/// Logical (TicToc) timestamp. Independent of the wall clock and of [`TxnId`].
pub type Ts = u64;

/// Globally unique transaction identifier.
///
/// Following §4.1 of the paper, a TID combines the coordinator's server id with
/// a local counter incremented for every new transaction. The `Ord` order is
/// used by the WAIT_DIE deadlock-prevention policy: a *smaller* TID is an
/// *older* (higher-priority) transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnId {
    /// Local sequence number at the coordinator (major component so older
    /// transactions across the cluster compare as smaller).
    pub seq: u64,
    /// Coordinator partition that assigned this TID.
    pub coord: u32,
}

impl TxnId {
    pub fn new(coord: PartitionId, seq: u64) -> Self {
        TxnId {
            seq,
            coord: coord.0,
        }
    }

    /// The coordinator partition encoded in this TID.
    pub fn coordinator(&self) -> PartitionId {
        PartitionId(self.coord)
    }

    /// Pack into a single u64 for lock-word style storage. The sequence is
    /// truncated to 48 bits which is far beyond what any experiment reaches.
    pub fn pack(&self) -> u64 {
        (self.seq << 16) | (self.coord as u64 & 0xFFFF)
    }

    /// Inverse of [`TxnId::pack`].
    pub fn unpack(raw: u64) -> Self {
        TxnId {
            seq: raw >> 16,
            coord: (raw & 0xFFFF) as u32,
        }
    }
}

impl PartialOrd for TxnId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TxnId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Older (smaller seq) first; coordinator id breaks ties.
        (self.seq, self.coord).cmp(&(other.seq, other.coord))
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.coord, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_pack_roundtrip() {
        let id = TxnId::new(PartitionId(7), 123_456);
        assert_eq!(TxnId::unpack(id.pack()), id);
    }

    #[test]
    fn txn_id_order_is_age_order() {
        let old = TxnId::new(PartitionId(3), 10);
        let young = TxnId::new(PartitionId(1), 11);
        assert!(old < young, "smaller sequence number must be older");
    }

    #[test]
    fn txn_id_order_breaks_ties_by_coordinator() {
        let a = TxnId::new(PartitionId(1), 10);
        let b = TxnId::new(PartitionId(2), 10);
        assert!(a < b);
    }

    #[test]
    fn partition_display() {
        assert_eq!(PartitionId(4).to_string(), "P4");
        assert_eq!(TxnId::new(PartitionId(1), 2).to_string(), "T1.2");
    }
}
