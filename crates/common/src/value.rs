//! Keys and values stored in the partitioned tables.

/// Primary-key type. Composite keys (e.g. TPC-C `(w_id, d_id, c_id)`) are
/// encoded into a single `u64` by the workload crates.
pub type Key = u64;

/// An opaque row payload.
///
/// The engine never interprets the payload; workloads encode their columns
/// into it (YCSB uses fixed-size filler, TPC-C serialises typed rows). The
/// payload is reference-counted so that reads do not copy the full row while
/// a transaction is running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value(pub std::sync::Arc<Vec<u8>>);

impl Value {
    pub fn new(bytes: Vec<u8>) -> Self {
        Value(std::sync::Arc::new(bytes))
    }

    /// A value holding `n` zero bytes — used by YCSB-style fillers.
    pub fn zeroed(n: usize) -> Self {
        Value::new(vec![0u8; n])
    }

    /// Encode a `u64` counter as a value (used by Smallbank/YCSB counters).
    pub fn from_u64(x: u64) -> Self {
        Value::new(x.to_le_bytes().to_vec())
    }

    /// Decode a value previously produced by [`Value::from_u64`].
    /// Returns 0 for payloads that are too short.
    pub fn as_u64(&self) -> u64 {
        let b = self.0.as_slice();
        if b.len() >= 8 {
            u64::from_le_bytes(b[..8].try_into().unwrap())
        } else {
            0
        }
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::new(v)
    }
}

impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Value::new(v.to_vec())
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::from_u64(v)
    }
}

/// A row as seen by a transaction: the payload plus the TicToc metadata that
/// was current at read time. Protocols that do not use TicToc simply ignore
/// the timestamps.
#[derive(Debug, Clone)]
pub struct Row {
    pub value: Value,
    /// Write timestamp of the version that was read.
    pub wts: u64,
    /// Read timestamp (end of the valid interval) observed at read time.
    pub rts: u64,
}

impl Row {
    pub fn new(value: Value, wts: u64, rts: u64) -> Self {
        Row { value, wts, rts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_u64_roundtrip() {
        let v = Value::from_u64(0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(v.as_u64(), 0xDEAD_BEEF_0BAD_F00D);
    }

    #[test]
    fn short_value_decodes_to_zero() {
        assert_eq!(Value::new(vec![1, 2, 3]).as_u64(), 0);
    }

    #[test]
    fn zeroed_has_requested_length() {
        assert_eq!(Value::zeroed(100).len(), 100);
        assert!(!Value::zeroed(1).is_empty());
        assert!(Value::new(vec![]).is_empty());
    }

    #[test]
    fn value_clone_shares_allocation() {
        let v = Value::zeroed(64);
        let w = v.clone();
        assert!(std::sync::Arc::ptr_eq(&v.0, &w.0));
    }
}
