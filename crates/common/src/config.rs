//! Cluster, protocol and experiment configuration.
//!
//! Defaults mirror §6.1 of the paper: 4 partitions, simulated ~200 µs network
//! round-trip, 10 ms watermark interval / COCO epoch, exponential back-off
//! starting at 0.5 ms.

/// Which concurrency-control scheme a protocol uses for its *local* accesses
/// and validation logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcScheme {
    /// Two-phase locking, aborting immediately on conflict.
    TwoPlNoWait,
    /// Two-phase locking with the WAIT_DIE priority policy.
    TwoPlWaitDie,
    /// Silo-style OCC (epoch-less variant; TID word validation).
    Silo,
    /// TicToc timestamps (used by Sundial and by Primo's local mode).
    TicToc,
    /// Primo's write-conflict-free scheme (exclusive locks for reads of
    /// distributed transactions, TicToc for local ones).
    Wcf,
}

/// The distributed transaction protocol under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// 2PL(NO_WAIT) + 2PC (Spanner-like, §2.1).
    TwoPlNoWait,
    /// 2PL(WAIT_DIE) + 2PC.
    TwoPlWaitDie,
    /// Distributed Silo as described in COCO.
    Silo,
    /// Sundial (TicToc-based OCC with logical leases) + 2PC.
    Sundial,
    /// Aria: deterministic batched execution, no read/write-set knowledge.
    Aria,
    /// TAPIR-style: OCC with inconsistent replication, single prepare round.
    Tapir,
    /// Primo: WCF + watermark group commit (the paper's contribution).
    Primo,
    /// Ablation: Primo without WM (WCF + COCO group commit) — Fig 4b/5b.
    PrimoNoWm,
    /// Ablation: Primo without WCF and WM (TicToc local + 2PL/2PC distributed
    /// + COCO group commit) — Fig 4b/5b.
    PrimoNoWcfNoWm,
}

impl ProtocolKind {
    /// Short label used in figure output, matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::TwoPlNoWait => "2PL(NW)",
            ProtocolKind::TwoPlWaitDie => "2PL(WD)",
            ProtocolKind::Silo => "Silo",
            ProtocolKind::Sundial => "Sundial",
            ProtocolKind::Aria => "Aria",
            ProtocolKind::Tapir => "TAPIR",
            ProtocolKind::Primo => "Primo",
            ProtocolKind::PrimoNoWm => "Primo w/o WM",
            ProtocolKind::PrimoNoWcfNoWm => "Primo w/o WM & WCF",
        }
    }

    /// The five competitors + Primo used in most figures.
    pub fn headline_set() -> Vec<ProtocolKind> {
        vec![
            ProtocolKind::TwoPlNoWait,
            ProtocolKind::TwoPlWaitDie,
            ProtocolKind::Silo,
            ProtocolKind::Sundial,
            ProtocolKind::Aria,
            ProtocolKind::Primo,
        ]
    }
}

/// How a distributed transaction's commit decision is made atomic across its
/// participants (the `AtomicCommit` layer in the runtime crate).
///
/// Classic 2PC blocks forever if the coordinating worker dies between the
/// prepare round and the decision; Paxos Commit (Gray & Lamport, *Consensus
/// on Transaction Commit*) makes prepare votes quorum-durable replicated-log
/// entries so any replica can assemble the global verdict and terminate
/// in-doubt transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommitMode {
    /// Classic blocking two-phase commit (the ablation baseline).
    #[default]
    TwoPc,
    /// Non-blocking Paxos Commit over the replicated log: participants log
    /// prepare votes as quorum-durable entries, the decision is itself a log
    /// record, and an in-doubt transaction is terminated from the durable
    /// vote set instead of blocking.
    PaxosCommit,
}

impl CommitMode {
    pub fn label(self) -> &'static str {
        match self {
            CommitMode::TwoPc => "2PC",
            CommitMode::PaxosCommit => "PaxosCommit",
        }
    }
}

/// How durability is confirmed (Fig 11–13 compare these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoggingScheme {
    /// Synchronous per-transaction log flush (classic, not used in figures).
    SyncPerTxn,
    /// COCO-style epoch group commit with a global coordinator (§2.3).
    CocoEpoch,
    /// Controlled-Lock-Violation: locks released early, commit acknowledged
    /// once the transaction's log and its dependencies are durable.
    Clv,
    /// Primo's watermark-based asynchronous group commit (§5).
    Watermark,
}

impl LoggingScheme {
    pub fn label(self) -> &'static str {
        match self {
            LoggingScheme::SyncPerTxn => "Sync",
            LoggingScheme::CocoEpoch => "COCO",
            LoggingScheme::Clv => "CLV",
            LoggingScheme::Watermark => "Watermark",
        }
    }
}

/// Simulated network parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// One-way latency between any two partitions, in microseconds.
    pub one_way_us: u64,
    /// Uniform jitter added to each message, in microseconds.
    pub jitter_us: u64,
    /// Extra delay applied to *watermark/epoch* messages only (Fig 13a), in
    /// microseconds, per destination partition (applied uniformly here; the
    /// experiment driver can override per partition at runtime).
    pub control_msg_extra_us: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            // ~200 us RTT: same order as the paper's 16 Gbps Ethernet cluster.
            one_way_us: 100,
            jitter_us: 10,
            control_msg_extra_us: 0,
        }
    }
}

/// Durability / group-commit parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalConfig {
    pub scheme: LoggingScheme,
    /// Watermark interval `t_m` or COCO epoch length, in milliseconds.
    pub interval_ms: u64,
    /// Simulated local disk persist delay for a log batch on the leader
    /// replica, in microseconds.
    pub persist_delay_us: u64,
    /// Enable the force-update mechanism for lagging partitions (§5.1,
    /// evaluated in Fig 13b).
    pub force_update: bool,
    /// Log replicas per partition (the paper replicates each partition's log
    /// through Raft, §5.2). 1 keeps the single-copy log; with `n > 1` a log
    /// record is *durable* once a majority quorum of replicas persisted it,
    /// so recovery tolerates losing the leader's disk, not just its memory.
    pub replication_factor: usize,
    /// Persist delay of the non-leader replicas' disks, in microseconds.
    /// `None` means same as `persist_delay_us`. The one-way network latency
    /// of the replication hop is added on top by the cluster.
    pub replica_persist_delay_us: Option<u64>,
    /// **Deliberately unsound** ablation knob for the snapshot-read
    /// subsystem: report the latest finalized commit timestamp as the
    /// snapshot horizon instead of the scheme's durable horizon. Snapshot
    /// readers may then observe state a crash later rolls back — the
    /// crash-consistency suite asserts it catches exactly that.
    pub unsafe_latest_commit_horizon: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            scheme: LoggingScheme::Watermark,
            interval_ms: 10,
            persist_delay_us: 500,
            force_update: true,
            replication_factor: 1,
            replica_persist_delay_us: None,
            unsafe_latest_commit_horizon: false,
        }
    }
}

/// Primo-specific knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimoConfig {
    /// Fall back to 2PC for read-heavy workloads (§4.3). When `Some(r)`, a
    /// distributed transaction whose declared read ratio exceeds `r` uses the
    /// 2PC path instead of WCF.
    pub read_heavy_fallback: Option<f64>,
    /// Use snapshot reads (no locks) for transactions declared read-only.
    pub read_only_snapshot: bool,
    /// Version-chain depth per record (current + history), `>= 1`. Small by
    /// default so memory stays flat under write-heavy churn.
    pub max_versions: usize,
}

impl Default for PrimoConfig {
    fn default() -> Self {
        PrimoConfig {
            read_heavy_fallback: None,
            read_only_snapshot: true,
            max_versions: 4,
        }
    }
}

/// Flight-recorder (observability) knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Record trace events. On by default — the recorder is designed to stay
    /// on in every run (the `bench_matrix --trace-overhead` gate holds the
    /// cost under 5%); the off position exists for that ablation.
    pub enabled: bool,
    /// Per-worker ring capacity in events (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Also record one event per simulated network hop. Off by default:
    /// per-hop events are high-volume and only useful when debugging the
    /// network layer itself.
    pub trace_messages: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            ring_capacity: 4096,
            trace_messages: false,
        }
    }
}

/// Top-level cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    pub num_partitions: usize,
    /// Worker threads per partition leader.
    pub workers_per_partition: usize,
    pub net: NetConfig,
    pub wal: WalConfig,
    pub primo: PrimoConfig,
    pub trace: TraceConfig,
    /// Atomic-commit protocol for distributed transactions (default: classic
    /// blocking 2PC, the paper's baseline; [`CommitMode::PaxosCommit`] makes
    /// the decision fault-tolerant).
    pub commit_mode: CommitMode,
    /// Initial back-off after an abort, microseconds (paper: 0.5 ms, doubling).
    pub backoff_initial_us: u64,
    /// Upper bound on the exponential back-off, microseconds.
    pub backoff_max_us: u64,
    /// Aria batch size (transactions per partition per batch).
    pub aria_batch_size: usize,
    /// Batch the remote reads of an attempt into one parallel fan-out
    /// (footprint-hinted or learned from the previous attempt) instead of a
    /// round trip per record. Purely a network-accounting optimization — the
    /// commit/abort outcome of every transaction is identical either way, so
    /// it is on by default; off reproduces the sequential per-record model.
    pub batch_remote_reads: bool,
    /// Experiment seed: deterministic randomness derived from it (e.g. the
    /// network jitter salt) varies across seeds while each run stays
    /// reproducible.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_partitions: 4,
            workers_per_partition: 4,
            net: NetConfig::default(),
            wal: WalConfig::default(),
            primo: PrimoConfig::default(),
            trace: TraceConfig::default(),
            commit_mode: CommitMode::default(),
            backoff_initial_us: 500,
            backoff_max_us: 8_000,
            aria_batch_size: 32,
            batch_remote_reads: true,
            seed: 0x5EED,
        }
    }
}

impl ClusterConfig {
    /// A configuration scaled down for unit tests: tiny latencies so tests run
    /// in milliseconds instead of seconds.
    pub fn for_tests(num_partitions: usize) -> Self {
        ClusterConfig {
            num_partitions,
            workers_per_partition: 2,
            net: NetConfig {
                one_way_us: 5,
                jitter_us: 0,
                control_msg_extra_us: 0,
            },
            wal: WalConfig {
                scheme: LoggingScheme::Watermark,
                interval_ms: 1,
                persist_delay_us: 50,
                force_update: true,
                replication_factor: 1,
                replica_persist_delay_us: None,
                unsafe_latest_commit_horizon: false,
            },
            primo: PrimoConfig::default(),
            trace: TraceConfig {
                // Small rings keep the thousands of short-lived test
                // clusters cheap while still exercising the recorder.
                ring_capacity: 512,
                ..TraceConfig::default()
            },
            commit_mode: CommitMode::default(),
            backoff_initial_us: 20,
            backoff_max_us: 500,
            aria_batch_size: 8,
            batch_remote_reads: true,
            seed: 0x5EED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = ClusterConfig::default();
        assert_eq!(c.num_partitions, 4);
        assert_eq!(c.wal.interval_ms, 10);
        assert_eq!(c.backoff_initial_us, 500);
        assert_eq!(c.wal.scheme, LoggingScheme::Watermark);
        assert_eq!(c.wal.replication_factor, 1, "single-copy log by default");
        assert_eq!(c.wal.replica_persist_delay_us, None);
        assert_eq!(c.commit_mode, CommitMode::TwoPc, "blocking 2PC by default");
        assert!(c.batch_remote_reads, "batched remote reads on by default");
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(ProtocolKind::TwoPlNoWait.label(), "2PL(NW)");
        assert_eq!(ProtocolKind::Primo.label(), "Primo");
        assert_eq!(LoggingScheme::CocoEpoch.label(), "COCO");
        assert_eq!(ProtocolKind::headline_set().len(), 6);
    }

    #[test]
    fn config_debug_lists_every_section() {
        let s = format!("{:?}", ClusterConfig::default());
        assert!(s.contains("num_partitions"));
        assert!(s.contains("wal"));
        assert!(s.contains("primo"));
    }
}
