//! Crash recovery for Primo partitions: checkpoint writing and
//! checkpointed restart with durable-log replay (§5.2).
//!
//! The paper's practicality argument rests on the claim that returning
//! results off the watermark (instead of a 2PC ack) stays recoverable
//! because write-sets and watermarks are logged before results are
//! returned. This crate is the subsystem that cashes that claim in:
//!
//! * [`Checkpointer`] periodically folds the durable, committed prefix of a
//!   partition's log into a [`CheckpointImage`](primo_wal::CheckpointImage) (appended to the log as a
//!   real `Checkpoint` payload) and truncates what the newest *durable*
//!   checkpoint covers, so logs stop growing without bound.
//! * [`RecoveryManager`] rebuilds a crashed partition: wipe the volatile
//!   store, restore the newest checkpoint that was durable at the crash,
//!   replay the retained durable log up to the per-scheme
//!   [`ReplayBound`](primo_wal::ReplayBound) — the recovered watermark
//!   (Watermark), the last durable epoch boundary (COCO) or the durable LSN
//!   (CLV / sync) — re-seed the partition's watermark state, and only then
//!   mark the partition reachable again.
//! * [`compensate_survivors`] makes the crash-abort atomic across
//!   partitions: the transactions the scheme rolled back had already
//!   installed writes on *surviving* partitions, which are undone in place
//!   with the before-images in their log entries and sealed with
//!   `TxnRolledBack` markers so no later replay or checkpoint fold can
//!   resurrect them.
//!
//! Both halves work purely against `primo-storage` / `primo-wal` /
//! `primo-net`, so the runtime's cluster orchestration and the test-suite's
//! hand-driven scenarios share the exact same code path.

pub mod checkpoint;
pub mod compensate;
pub mod manager;

pub use checkpoint::{CheckpointStats, Checkpointer};
pub use compensate::{compensate_partition, compensate_survivors, CompensationReport};
pub use manager::{apply_replay, CrashContext, RecoveryManager, RecoveryReport};
