//! The per-partition checkpoint writer.
//!
//! A checkpoint is a consistent image of the partition's committed state at
//! a chosen bound, *derived from the log*, not from the live store: each
//! image is the previous image plus the contiguous durable log prefix the
//! group-commit scheme vouches for
//! ([`GroupCommit::checkpoint_bound`]).
//! That construction is immune to the races a live-store scan would have —
//! a record overwritten by a not-yet-durable transaction never leaks into
//! an image, because the image only ever sees logged, covered writes.
//!
//! The one exception is the **base checkpoint** taken right after workload
//! loading ([`Checkpointer::initial`]): loaders write straight into the
//! store without logging, so the base image is a quiescent store scan.
//! Without it a wiped partition could never get its loaded records back.

use primo_common::{PartitionId, Ts};
use primo_storage::PartitionStore;
use primo_wal::{CheckpointImage, GroupCommit, LogPayload, ReplayBound, ReplicatedLog};
use std::sync::Arc;

/// What one checkpoint pass did (for logs, metrics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    pub partition: PartitionId,
    /// Committed transactions folded into the image by this pass.
    pub folded_txns: usize,
    /// Records in the resulting image.
    pub image_records: usize,
    /// Log entries dropped by truncation (entries covered by the newest
    /// *durable* checkpoint).
    pub truncated_entries: usize,
    /// The image's coverage bound.
    pub up_to_ts: Ts,
}

/// Stateless checkpoint driver: all state lives in the log itself.
pub struct Checkpointer;

impl Checkpointer {
    /// Base checkpoint from a quiescent store scan (call after loading,
    /// before workers start). The image's `base_lsn` is the current log
    /// end, so everything already logged is considered covered.
    pub fn initial(store: &PartitionStore, wal: &ReplicatedLog) -> CheckpointStats {
        let mut image = CheckpointImage {
            up_to_ts: 0,
            base_lsn: wal.end_lsn(),
            ..Default::default()
        };
        for (table, key, value, ts) in store.snapshot_visible() {
            image.records.insert((table, key), (value, ts));
            image.up_to_ts = image.up_to_ts.max(ts);
        }
        let stats = CheckpointStats {
            partition: store.partition(),
            folded_txns: 0,
            image_records: image.len(),
            truncated_entries: 0,
            up_to_ts: image.up_to_ts,
        };
        wal.append(LogPayload::Checkpoint {
            image: Arc::new(image),
        });
        stats
    }

    /// One periodic checkpoint pass: fold the durable covered prefix since
    /// the latest image into a new image, append it, and truncate whatever
    /// the newest **durable** checkpoint covers. Returns `None` when no base
    /// image exists yet (call [`Checkpointer::initial`] first) — folding
    /// from the live store mid-run would not be consistent.
    pub fn tick(
        partition: PartitionId,
        wal: &ReplicatedLog,
        gc: &dyn GroupCommit,
    ) -> Option<CheckpointStats> {
        let (_, prev) = wal.latest_checkpoint()?;
        let bound = gc.checkpoint_bound(partition, wal);
        let new_base = wal.fold_stop_lsn(prev.base_lsn, &bound);

        let folded = if new_base > prev.base_lsn {
            wal.replay_range(prev.base_lsn, &bound, Some(new_base - 1))
        } else {
            Vec::new()
        };
        let mut image = CheckpointImage {
            up_to_ts: prev.up_to_ts,
            base_lsn: new_base,
            records: prev.records.clone(),
        };
        for (_, ts, writes) in &folded {
            image.apply(*ts, writes);
        }
        if let ReplayBound::Ts(b) = bound {
            // The image provably covers everything below the ts bound, even
            // if the folded prefix happened to stop earlier.
            image.up_to_ts = image.up_to_ts.max(b.saturating_sub(1));
        }
        let stats = CheckpointStats {
            partition,
            folded_txns: folded.len(),
            image_records: image.len(),
            truncated_entries: 0,
            up_to_ts: image.up_to_ts,
        };
        wal.append(LogPayload::Checkpoint {
            image: Arc::new(image),
        });
        // Truncate only what the newest *durable* checkpoint covers: the
        // image appended above is still within its persist delay, and a
        // crash right now must be able to fall back to the previous durable
        // image plus the retained log.
        let truncated = wal.truncate_to_durable_checkpoint();
        Some(CheckpointStats {
            truncated_entries: truncated,
            ..stats
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::{TableId, TxnId, Value};
    use primo_wal::LoggedWrite;

    struct FixedBound(ReplayBound);

    impl GroupCommit for FixedBound {
        fn begin_txn(&self, coord: PartitionId, txn: TxnId) -> Arc<primo_wal::TxnTicket> {
            primo_wal::TxnTicket::new(txn, coord, 0)
        }
        fn add_participant(&self, _t: &primo_wal::TxnTicket, _p: PartitionId, _lts: Ts) {}
        fn txn_aborted(&self, _t: &primo_wal::TxnTicket) {}
        fn txn_committed(
            &self,
            ticket: &primo_wal::TxnTicket,
            ts: Ts,
            _ops: usize,
        ) -> primo_wal::CommitWaiter {
            primo_wal::CommitWaiter {
                txn: ticket.txn,
                coordinator: ticket.coordinator,
                ts,
                epoch: 0,
                ready_at_us: None,
            }
        }
        fn wait_durable(&self, _w: &primo_wal::CommitWaiter) -> primo_wal::CommitOutcome {
            primo_wal::CommitOutcome::Committed
        }
        fn try_outcome(&self, _w: &primo_wal::CommitWaiter) -> Option<primo_wal::CommitOutcome> {
            Some(primo_wal::CommitOutcome::Committed)
        }
        fn on_partition_crash(&self, _p: PartitionId) -> Ts {
            0
        }
        fn checkpoint_bound(&self, _p: PartitionId, _log: &ReplicatedLog) -> ReplayBound {
            self.0
        }
        fn label(&self) -> &'static str {
            "fixed"
        }
        fn shutdown(&self) {}
    }

    fn put(key: u64, v: u64) -> Vec<LoggedWrite> {
        vec![LoggedWrite::put(TableId(0), key, Value::from_u64(v))]
    }

    #[test]
    fn initial_checkpoint_captures_only_visible_records() {
        let store = PartitionStore::new(PartitionId(0));
        store.insert(TableId(0), 1, Value::from_u64(1));
        store
            .insert(TableId(0), 2, Value::from_u64(2))
            .install_tombstone(5);
        let wal = ReplicatedLog::single(PartitionId(0), 0);
        let stats = Checkpointer::initial(&store, &wal);
        assert_eq!(stats.image_records, 1);
        let image = wal.latest_checkpoint().unwrap().1;
        assert!(image.records.contains_key(&(TableId(0), 1)));
        assert!(!image.records.contains_key(&(TableId(0), 2)));
    }

    #[test]
    fn tick_folds_covered_prefix_and_truncates_durably() {
        let store = PartitionStore::new(PartitionId(0));
        store.insert(TableId(0), 1, Value::from_u64(1));
        let wal = ReplicatedLog::single(PartitionId(0), 0);
        Checkpointer::initial(&store, &wal);
        for (seq, ts) in [(1u64, 5u64), (2, 8), (3, 50)] {
            wal.append(LogPayload::TxnWrites {
                txn: TxnId::new(PartitionId(0), seq),
                ts,
                writes: put(100 + seq, ts),
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
        // Bound covers ts < 10: two of the three entries fold.
        let gc = FixedBound(ReplayBound::Ts(10));
        let stats = Checkpointer::tick(PartitionId(0), &wal, &gc).expect("base image exists");
        assert_eq!(stats.folded_txns, 2);
        assert_eq!(stats.image_records, 3);
        assert!(stats.truncated_entries > 0, "durable checkpoint truncates");
        let image = wal.latest_checkpoint().unwrap().1;
        assert!(image.records.contains_key(&(TableId(0), 101)));
        assert!(image.records.contains_key(&(TableId(0), 102)));
        assert!(
            !image.records.contains_key(&(TableId(0), 103)),
            "uncovered entry must stay in the log, not the image"
        );
        // The uncovered entry is still replayable from the image's base.
        let rest = wal.replay_range(image.base_lsn, &ReplayBound::Ts(u64::MAX), None);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].1, 50);
    }

    #[test]
    fn tick_without_base_image_is_a_no_op() {
        let wal = ReplicatedLog::single(PartitionId(0), 0);
        let gc = FixedBound(ReplayBound::Ts(10));
        assert!(Checkpointer::tick(PartitionId(0), &wal, &gc).is_none());
    }

    #[test]
    fn fold_stops_at_non_durable_entries() {
        let store = PartitionStore::new(PartitionId(0));
        let wal = ReplicatedLog::single(PartitionId(0), 50_000); // 50 ms persist
        Checkpointer::initial(&store, &wal);
        wal.append(LogPayload::TxnWrites {
            txn: TxnId::new(PartitionId(0), 1),
            ts: 1,
            writes: put(1, 1),
        });
        let gc = FixedBound(ReplayBound::Ts(u64::MAX));
        let stats = Checkpointer::tick(PartitionId(0), &wal, &gc).unwrap();
        assert_eq!(stats.folded_txns, 0, "volatile entries never fold");
    }
}
