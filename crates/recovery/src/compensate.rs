//! Cross-partition crash compensation: undo the installed writes of
//! crash-rolled-back transactions on *surviving* partitions.
//!
//! The group-commit schemes roll a crash back to an agreed token — a
//! watermark, an epoch, the crash instant — and report every transaction
//! above it `CrashAborted`. The *crashed* partition converges by
//! construction: its store is wiped and rebuilt from `checkpoint + bounded
//! replay`, which simply never applies the rolled-back transactions. A
//! *surviving* partition keeps its volatile store, so the writes those
//! transactions installed there must be actively undone or atomicity is
//! silently broken (Gray & Lamport: all-or-nothing across every
//! participant).
//!
//! [`compensate_partition`] walks the survivor's log for `TxnWrites`
//! entries the scheme's
//! [`survivor_rollback_bound`](GroupCommit::survivor_rollback_bound) does
//! not cover, and undoes them newest-first under the records' exclusive
//! write locks using the before-images captured by
//! `runtime::durability::log_txn_writes`:
//!
//! * a put with `prev: Some(v)` restores `v`;
//! * a delete with `prev: Some(v)` revives the tombstone (or recreates the
//!   already-reclaimed slot) with `v`;
//! * an insert with `prev: None` tombstones and reclaims the record the
//!   transaction created — the same lifecycle machinery abort-time undo
//!   uses.
//!
//! Each undone transaction is then sealed with a
//! [`LogPayload::TxnRolledBack`] marker so replay, checkpoint folding and
//! log repair skip it forever: a *later* crash of the surviving partition
//! cannot resurrect what this pass undid. The marker is an ordinary
//! replicated-log record — it fans out to every replica together with the
//! write-sets it cancels, so the rollback decision is exactly as durable
//! as the data it rolls back.

use primo_common::{PartitionId, TxnId};
use primo_storage::{LifecycleState, LockMode, LockPolicy, LockRequestResult, PartitionStore};
use primo_trace::{FlightRecorder, TraceEventKind};
use primo_wal::{GroupCommit, LogPayload, ReplayBound, ReplicatedLog};

/// What one compensation pass over one surviving partition did.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompensationReport {
    /// Rolled-back transactions whose residue was undone (and sealed with a
    /// `TxnRolledBack` marker).
    pub compensated_txns: usize,
    /// Individual record writes undone.
    pub undone_writes: usize,
}

/// How often the compensation pass retries a contended record lock before
/// proceeding without it. The pass uses the oldest possible transaction id,
/// so under WAIT_DIE it always waits rather than dies; the cap only guards
/// against a lock leaked by a buggy protocol path.
const LOCK_ATTEMPTS: usize = 20;

/// Undo every crash-rolled-back transaction's residue on one surviving
/// partition and seal each with a rollback marker. `upper_cutoff` is the
/// survivor's log end captured right after the crash agreement — entries
/// past it belong to post-agreement transactions the scheme reports
/// `Committed` and must not be touched. Idempotent: transactions already
/// sealed are skipped, so compensating twice (or compensating again after a
/// second crash elsewhere) is safe.
pub fn compensate_partition(
    store: &PartitionStore,
    wal: &ReplicatedLog,
    bound: &ReplayBound,
    upper_cutoff: Option<u64>,
) -> CompensationReport {
    undo_rolled_back(
        store,
        wal,
        wal.collect_rolled_back(bound, upper_cutoff),
        None,
    )
}

/// The undo half of [`compensate_partition`]: restore before-images, unlink
/// inserts and revive deletes for an already-collected rolled-back set,
/// sealing each transaction with a rollback marker.
fn undo_rolled_back(
    store: &PartitionStore,
    wal: &ReplicatedLog,
    mut doomed: Vec<primo_wal::ReplayedTxn>,
    recorder: Option<&FlightRecorder>,
) -> CompensationReport {
    if doomed.is_empty() {
        return CompensationReport::default();
    }
    // Undo newest-first: if two rolled-back transactions wrote the same key,
    // the newer one's before-image is the older one's value, so unwinding in
    // reverse commit order lands on the oldest committed state. (No covered
    // transaction can be newer than a rolled-back one on the same key — the
    // bounds are monotone in commit order.)
    doomed.reverse();
    // The compensation pass locks with the oldest possible transaction id:
    // under WAIT_DIE it waits for in-flight holders instead of dying, and
    // no in-flight transaction can mistake it for a peer.
    let undo_txn = TxnId::new(store.partition(), 0);
    let mut report = CompensationReport::default();
    let mut markers = Vec::with_capacity(doomed.len());
    for (txn, ts, writes) in &doomed {
        for w in writes.iter().rev() {
            let table = store.table(w.table);
            let record = table.get(w.key);
            // Serialize against in-flight writers on the record. A missing
            // record (reclaimed delete) has nothing to lock.
            let locked = match &record {
                Some(r) => {
                    let mut attempts = 0;
                    loop {
                        if r.acquire(undo_txn, LockMode::Exclusive, LockPolicy::WaitDie)
                            == LockRequestResult::Granted
                        {
                            break true;
                        }
                        attempts += 1;
                        if attempts >= LOCK_ATTEMPTS {
                            // Leaked lock: restore anyway rather than leave
                            // the rolled-back value visible forever.
                            break false;
                        }
                    }
                }
                None => false,
            };
            match (&w.prev, &record) {
                // The key had a committed value before the transaction:
                // reinstate it. `revert` (not `install`) so the rolled-back
                // version is *purged* from the MVCC chain instead of pushed
                // into history where a snapshot could still read it (this
                // also revives a tombstoned record — a rolled-back delete —
                // since revert flips it `Visible`).
                (Some(prev), Some(r)) => r.revert(prev.clone(), *ts),
                // Rolled-back delete whose tombstone was already physically
                // reclaimed: recreate the slot.
                (Some(prev), None) => {
                    store.restore(w.table, w.key, prev.clone(), *ts);
                }
                // The key had no committed value (the transaction's insert
                // created or revived it): revert to a tombstone (purging the
                // rolled-back version from the chain) + reclaim, the same
                // net lifecycle a committed delete reaches.
                (None, Some(r)) => {
                    if r.state() == LifecycleState::Visible {
                        r.revert_to_tombstone(*ts);
                    }
                }
                (None, None) => {}
            }
            if let Some(r) = &record {
                if locked {
                    r.release(undo_txn);
                }
                if r.state() == LifecycleState::Tombstone {
                    table.reclaim(w.key);
                }
            }
            report.undone_writes += 1;
        }
        markers.push(LogPayload::TxnRolledBack { txn: *txn });
        report.compensated_txns += 1;
        if let Some(rec) = recorder {
            rec.emit(
                Some(*txn),
                Some(store.partition()),
                TraceEventKind::Compensation {
                    writes: writes.len() as u64,
                },
            );
        }
    }
    // Seal the whole set with one batched append: the markers are only
    // consulted after this pass returns (replay, folds and later
    // compensations all read the log afterwards), so appending them
    // together — one sequencer acquisition instead of one per transaction —
    // is observationally identical to sealing each transaction in turn.
    wal.append_batch(markers);
    report
}

/// Compensate every *surviving* partition after a crash: translate the
/// scheme's agreement token into each survivor's rollback bound and undo
/// the residue. Returns the total number of compensated transactions.
///
/// Two ordering guarantees keep the per-waiter verdict and the store
/// consistent:
///
/// * the survivor's log end is captured as an **upper cutoff** right after
///   the agreement — every rolled-back transaction's entries are below it
///   (write-sets are logged before `txn_committed`, and a waiter registered
///   before the agreement is exactly one whose entries predate it), while
///   entries appended later belong to post-agreement transactions the
///   scheme reports `Committed` and are never touched;
/// * the scheme is told the sealed set
///   ([`GroupCommit::on_txns_rolled_back`]) **before** the first
///   before-image is restored, so a waiter that registered after the
///   agreement but logged before it is reported `CrashAborted`, never
///   `Committed`-with-undone-writes.
pub fn compensate_survivors<'a>(
    partitions: impl Iterator<Item = (PartitionId, &'a PartitionStore, &'a ReplicatedLog)>,
    gc: &dyn GroupCommit,
    crash_token: primo_common::Ts,
    recorder: Option<&FlightRecorder>,
) -> usize {
    let mut compensated = 0;
    for (_, store, wal) in partitions {
        let cutoff = wal.end_lsn();
        let bound = gc.survivor_rollback_bound(crash_token, wal);
        let doomed = wal.collect_rolled_back(&bound, Some(cutoff));
        if doomed.is_empty() {
            continue;
        }
        let ids: Vec<TxnId> = doomed.iter().map(|(txn, _, _)| *txn).collect();
        gc.on_txns_rolled_back(&ids);
        compensated += undo_rolled_back(store, wal, doomed, recorder).compensated_txns;
    }
    compensated
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::{TableId, Value};
    use primo_wal::LoggedWrite;

    fn put_entry(wal: &ReplicatedLog, seq: u64, ts: u64, key: u64, value: u64, prev: Option<u64>) {
        wal.append(LogPayload::TxnWrites {
            txn: TxnId::new(PartitionId(0), seq),
            ts,
            writes: vec![LoggedWrite::put(TableId(0), key, Value::from_u64(value))
                .with_prev(prev.map(Value::from_u64))],
        });
    }

    #[test]
    fn put_residue_is_restored_to_the_before_image() {
        let store = PartitionStore::new(PartitionId(0));
        let wal = ReplicatedLog::single(PartitionId(0), 0);
        store.insert(TableId(0), 1, Value::from_u64(10));
        // Committed (covered) write, then a rolled-back one.
        put_entry(&wal, 1, 5, 1, 20, Some(10));
        store.insert(TableId(0), 1, Value::from_u64(20));
        put_entry(&wal, 2, 9, 1, 30, Some(20));
        store.insert(TableId(0), 1, Value::from_u64(30));
        let report = compensate_partition(&store, &wal, &ReplayBound::Ts(8), None);
        assert_eq!(report.compensated_txns, 1);
        assert_eq!(report.undone_writes, 1);
        assert_eq!(store.get(TableId(0), 1).unwrap().read().value.as_u64(), 20);
        assert!(wal
            .rolled_back_txns()
            .contains(&TxnId::new(PartitionId(0), 2)));
        // Idempotent: a second pass finds nothing.
        assert_eq!(
            compensate_partition(&store, &wal, &ReplayBound::Ts(8), None).compensated_txns,
            0
        );
    }

    #[test]
    fn insert_residue_is_unlinked_and_delete_residue_revived() {
        let store = PartitionStore::new(PartitionId(0));
        let wal = ReplicatedLog::single(PartitionId(0), 0);
        // Rolled-back insert: the record exists, Visible, no before-image.
        wal.append(LogPayload::TxnWrites {
            txn: TxnId::new(PartitionId(0), 1),
            ts: 9,
            writes: vec![LoggedWrite::put(TableId(0), 7, Value::from_u64(7))],
        });
        store.insert(TableId(0), 7, Value::from_u64(7));
        // Rolled-back delete whose tombstone was already reclaimed.
        wal.append(LogPayload::TxnWrites {
            txn: TxnId::new(PartitionId(0), 2),
            ts: 10,
            writes: vec![LoggedWrite::delete(TableId(0), 8).with_prev(Some(Value::from_u64(88)))],
        });
        let report = compensate_partition(&store, &wal, &ReplayBound::Ts(8), None);
        assert_eq!(report.compensated_txns, 2);
        assert!(
            store.get(TableId(0), 7).is_none(),
            "insert residue unlinked"
        );
        let revived = store.get(TableId(0), 8).expect("deleted record revived");
        assert_eq!(revived.read().value.as_u64(), 88);
        assert_eq!(revived.state(), LifecycleState::Visible);
    }

    #[test]
    fn chained_rollbacks_unwind_to_the_oldest_committed_state() {
        // T1 inserts k (prev None), T2 overwrites it (prev = T1's value),
        // both rolled back: the key must end up absent.
        let store = PartitionStore::new(PartitionId(0));
        let wal = ReplicatedLog::single(PartitionId(0), 0);
        put_entry(&wal, 1, 9, 3, 1, None);
        store.insert(TableId(0), 3, Value::from_u64(1));
        put_entry(&wal, 2, 10, 3, 2, Some(1));
        store.insert(TableId(0), 3, Value::from_u64(2));
        let report = compensate_partition(&store, &wal, &ReplayBound::Ts(8), None);
        assert_eq!(report.compensated_txns, 2);
        assert!(
            store.get(TableId(0), 3).is_none(),
            "the chain must unwind to 'never existed'"
        );
    }
}
