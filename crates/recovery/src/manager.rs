//! The recovery manager: wipe a crashed partition's volatile store and
//! rebuild it from `latest quorum-durable checkpoint + bounded replay of the
//! replicated log` — surviving a lost leader disk, and handing off to the
//! deterministic successor replica when a second crash lands mid-replay.

use primo_common::sim_time::now_us;
use primo_common::{PartitionId, Ts};
use primo_net::{PartitionHealth, SimNetwork};
use primo_storage::PartitionStore;
use primo_trace::{FlightRecorder, TraceEventKind};
use primo_wal::{GroupCommit, LogPayload, LoggedOp, ReplayedTxn, ReplicatedLog};
use std::time::Instant;

/// Everything captured at the instant a partition crashed. Recovery needs
/// the crash-time quorum-durable LSN (entries past it never reached a
/// majority of replicas and are lost) and the scheme's agreement token
/// (recovered watermark / aborted epoch / crash time) to bound replay.
#[derive(Debug, Clone, Copy)]
pub struct CrashContext {
    pub partition: PartitionId,
    /// What [`GroupCommit::on_partition_crash`] returned.
    pub token: Ts,
    /// Quorum-durable LSN of the partition's replicated log at the crash
    /// instant; `None` if nothing had reached a quorum yet. Capture
    /// **before** any leader-disk loss: every replica physically holds
    /// every appended entry, so anything quorum-durable at the crash is
    /// reproducible from the surviving copies — dropping the dead leader's
    /// vote first would misreport acknowledged history as lost.
    pub durable_lsn: Option<u64>,
    /// Simulated timestamp of the crash.
    pub crashed_at_us: u64,
}

impl CrashContext {
    /// Capture the crash-time state of one partition. Call *after* the
    /// network marked the partition crashed and the group commit agreed on
    /// the rollback point, but *before* the log's leader hand-off discards
    /// any disk (see [`CrashContext::durable_lsn`]).
    pub fn capture(partition: PartitionId, token: Ts, log: &ReplicatedLog) -> Self {
        CrashContext {
            partition,
            token,
            durable_lsn: log.durable_lsn(),
            crashed_at_us: now_us(),
        }
    }
}

/// What one recovery did.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    pub partition: PartitionId,
    /// Records dropped by the wipe (the volatile store at crash time).
    pub wiped_records: usize,
    /// Records restored from the checkpoint image.
    pub restored_records: usize,
    /// Committed transactions replayed from the retained durable log.
    pub replayed_txns: usize,
    /// The watermark the partition's state was re-seeded from.
    pub recovered_wp: Ts,
    /// Wall-clock recovery latency (wipe + restore + replay).
    pub duration_us: u64,
    /// Leader hand-offs observed *during* the replay: a further crash of
    /// the replacement leader bumps the log's term, and the recovery loop
    /// restarts from the deterministic successor replica.
    pub mid_replay_handoffs: usize,
    /// Replicas re-seeded from the elected leader after the replay (wiped
    /// or lagging copies brought back to full strength).
    pub repaired_replicas: usize,
    /// In-doubt transactions terminated during this recovery: commit votes
    /// that were quorum-durable at the crash with no durable resolution
    /// (decision, installed write-set, or rollback marker) are sealed with
    /// the presumed-abort verdict so every future reader agrees.
    pub in_doubt_resolved: usize,
}

/// Apply a replayed transaction sequence to a store, in order. The sequence
/// comes ts-sorted and deduplicated from
/// [`ReplicatedLog::replay_range`], so applying it twice equals applying it
/// once (puts overwrite in place, deletes of missing keys are no-ops).
pub fn apply_replay(store: &PartitionStore, txns: &[ReplayedTxn]) {
    for (_, ts, writes) in txns {
        for w in writes {
            match &w.op {
                LoggedOp::Put(v) => {
                    store.restore(w.table, w.key, v.clone(), *ts);
                }
                LoggedOp::Delete => {
                    store.table(w.table).remove(w.key);
                }
            }
        }
    }
}

/// Stateless recovery driver.
pub struct RecoveryManager;

impl RecoveryManager {
    /// Rebuild `store` after the crash described by `crash`:
    ///
    /// 1. flip the partition to [`PartitionHealth::Recovering`] — it stays
    ///    unreachable for the whole replay, not just the configured outage;
    /// 2. wipe the volatile store (every slot, whatever its lifecycle —
    ///    tombstones and uncommitted inserts must never resurrect, and they
    ///    cannot: checkpoints snapshot only `Visible` records and the log
    ///    only ever contains committed write-sets);
    /// 3. restore the newest checkpoint that was **quorum**-durable *at the
    ///    crash* — read from the elected leader replica, which survives even
    ///    when the dead leader's disk was discarded;
    /// 4. replay the retained quorum-durable log from the image's base,
    ///    bounded by the scheme ([`GroupCommit::replay_bound`]) and by the
    ///    crash-time quorum LSN — honoring `TxnRolledBack` markers, so a
    ///    transaction this partition compensated as a *survivor* of an
    ///    earlier crash is never resurrected by its own recovery;
    /// 5. if the log's leadership term moved while replaying (a second
    ///    crash killed the replacement leader), restart from step 2 against
    ///    the deterministic successor replica;
    /// 6. repair wiped / lagging replicas from the elected leader and
    ///    re-seed the scheme's per-partition state from the recovered `Wp`
    ///    ([`GroupCommit::on_partition_recover`]);
    /// 7. only then mark the partition [`PartitionHealth::Up`].
    pub fn recover(
        store: &PartitionStore,
        log: &ReplicatedLog,
        gc: &dyn GroupCommit,
        net: &SimNetwork,
        crash: &CrashContext,
    ) -> RecoveryReport {
        Self::recover_with_fault(store, log, gc, net, crash, None, &mut || {})
    }

    /// [`RecoveryManager::recover`] with a flight recorder (each replay
    /// pass emits a [`TraceEventKind::RecoveryReplay`] event) and a
    /// fault-injection hook invoked after each replay pass, *before* the
    /// term check — tests use the hook to land a second crash
    /// deterministically mid-replay and pin the hand-off to the successor
    /// replica.
    pub fn recover_with_fault(
        store: &PartitionStore,
        log: &ReplicatedLog,
        gc: &dyn GroupCommit,
        net: &SimNetwork,
        crash: &CrashContext,
        recorder: Option<&FlightRecorder>,
        mid_replay: &mut dyn FnMut(),
    ) -> RecoveryReport {
        let p = crash.partition;
        let started = Instant::now();
        net.set_health(p, PartitionHealth::Recovering);

        let mut mid_replay_handoffs = 0;
        // The crash-time store size: only the *first* pass wipes the store
        // the crash left behind — a restarted pass wipes its own voided
        // restore, which is not what the report should claim was dropped.
        let mut crash_wiped: Option<usize> = None;
        let (wiped_records, restored_records, txns) = loop {
            // The replay below reads exclusively from the replica this term
            // elected; if the term moves mid-replay the pass is void and the
            // successor starts over.
            let term = log.term();
            let pass_wiped = store.wipe();
            let wiped_records = *crash_wiped.get_or_insert(pass_wiped);

            // `durable_lsn = None` means nothing at all reached a quorum
            // when the partition died: there is no image to restore and no
            // log to replay.
            let (restored, txns) = match crash.durable_lsn {
                None => {
                    // The whole log was volatile; every write-set in it is
                    // lost.
                    log.retain_replayable(0, &primo_wal::ReplayBound::Lsn(0), None);
                    (0, Vec::new())
                }
                Some(cutoff) => {
                    let image = log.latest_durable_checkpoint(Some(cutoff));
                    let (restored, replay_base) = match &image {
                        Some(image) => {
                            for ((table, key), (value, ts)) in &image.records {
                                store.restore(*table, *key, value.clone(), *ts);
                            }
                            (image.len(), image.base_lsn)
                        }
                        None => (0, 0),
                    };
                    let bound = gc.replay_bound(crash.token, log, crash.durable_lsn);
                    let txns = log.replay_range(replay_base, &bound, Some(cutoff));
                    apply_replay(store, &txns);
                    // Log repair: drop every write-set replay did not apply
                    // (lost volatile tail, rolled-back durable suffix) so a
                    // later checkpoint fold — whose bound keeps advancing
                    // after recovery — cannot resurrect a transaction that
                    // was reported crash-aborted.
                    log.retain_replayable(replay_base, &bound, Some(cutoff));
                    (restored, txns)
                }
            };

            if let Some(rec) = recorder {
                rec.emit(
                    None,
                    Some(p),
                    TraceEventKind::RecoveryReplay {
                        pass: mid_replay_handoffs as u32,
                        entries: txns.len() as u64,
                    },
                );
            }
            mid_replay();
            if log.term() == term {
                break (wiped_records, restored, txns);
            }
            // The replacement leader crashed while we were replaying its
            // log: leadership already moved to the deterministic successor —
            // void this pass and rebuild from the new leader's copy.
            mid_replay_handoffs += 1;
        };

        // Bring wiped / lagging replicas back to full strength from the
        // elected leader before the partition serves again, so the replica
        // set can absorb the *next* crash.
        let repaired_replicas = log.repair_replicas();

        // Terminate in-doubt atomic commits (Paxos Commit's non-blocking
        // guarantee): a vote that was quorum-durable at the crash but has no
        // durable resolution — no decision entry, no installed write-set, no
        // rollback marker — belongs to a transaction whose coordinator died
        // between prepare and decide. No durable decision means nobody ever
        // decided COMMIT, so the presumed-abort verdict is sealed durably;
        // a classic-2PC cluster logs no votes and resolves nothing here.
        let in_doubt = log.unresolved_commit_votes(crash.durable_lsn);
        let in_doubt_resolved = in_doubt.len();
        if !in_doubt.is_empty() {
            log.append_batch(
                in_doubt
                    .iter()
                    .map(|txn| LogPayload::CommitDecision {
                        txn: *txn,
                        commit: false,
                    })
                    .collect(),
            );
            if let Some(rec) = recorder {
                for txn in &in_doubt {
                    rec.emit(
                        Some(*txn),
                        Some(p),
                        TraceEventKind::DecisionReached {
                            commit: false,
                            in_doubt: true,
                        },
                    );
                }
            }
        }

        // §5.2: the new leader retrieves the latest Wp from its (replicated)
        // log — only one that was quorum-durable at the crash, never one the
        // dead leader's agent appended during the outage. The cluster-wide
        // agreement token can only be larger (it already incorporates every
        // partition's view).
        let recovered_wp = crash.token.max(
            log.latest_durable_watermark_at(crash.durable_lsn)
                .unwrap_or(0),
        );
        gc.on_partition_recover(p, recovered_wp);
        net.set_health(p, PartitionHealth::Up);

        RecoveryReport {
            partition: p,
            wiped_records,
            restored_records,
            replayed_txns: txns.len(),
            recovered_wp,
            duration_us: started.elapsed().as_micros() as u64,
            mid_replay_handoffs,
            repaired_replicas,
            in_doubt_resolved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpointer;
    use primo_common::config::NetConfig;
    use primo_common::{TableId, TxnId, Value};
    use primo_wal::{CommitOutcome, CommitWaiter, LogPayload, LoggedWrite, ReplayBound, TxnTicket};
    use std::sync::Arc;

    /// Minimal scheme: everything durable at crash is committed.
    struct DurableIsCommitted;

    impl GroupCommit for DurableIsCommitted {
        fn begin_txn(&self, coord: PartitionId, txn: TxnId) -> Arc<TxnTicket> {
            TxnTicket::new(txn, coord, 0)
        }
        fn add_participant(&self, _t: &TxnTicket, _p: PartitionId, _lts: Ts) {}
        fn txn_aborted(&self, _t: &TxnTicket) {}
        fn txn_committed(&self, ticket: &TxnTicket, ts: Ts, _ops: usize) -> CommitWaiter {
            CommitWaiter {
                txn: ticket.txn,
                coordinator: ticket.coordinator,
                ts,
                epoch: 0,
                ready_at_us: None,
            }
        }
        fn wait_durable(&self, _w: &CommitWaiter) -> CommitOutcome {
            CommitOutcome::Committed
        }
        fn try_outcome(&self, _w: &CommitWaiter) -> Option<CommitOutcome> {
            Some(CommitOutcome::Committed)
        }
        fn on_partition_crash(&self, _p: PartitionId) -> Ts {
            0
        }
        fn label(&self) -> &'static str {
            "durable"
        }
        fn shutdown(&self) {}
    }

    fn net() -> SimNetwork {
        SimNetwork::new(
            2,
            NetConfig {
                one_way_us: 0,
                jitter_us: 0,
                control_msg_extra_us: 0,
            },
            1,
        )
    }

    fn log_put(wal: &ReplicatedLog, seq: u64, ts: Ts, key: u64, v: u64) {
        wal.append(LogPayload::TxnWrites {
            txn: TxnId::new(PartitionId(0), seq),
            ts,
            writes: vec![LoggedWrite::put(TableId(0), key, Value::from_u64(v))],
        });
    }

    #[test]
    fn recovery_restores_checkpoint_plus_replay_and_reopens() {
        let store = PartitionStore::new(PartitionId(0));
        let wal = ReplicatedLog::single(PartitionId(0), 0);
        let net = net();
        let gc = DurableIsCommitted;
        let p = PartitionId(0);

        // Loaded base state, checkpointed.
        for k in 0..4u64 {
            store.insert(TableId(0), k, Value::from_u64(k));
        }
        Checkpointer::initial(&store, &wal);
        // Two committed transactions after the checkpoint: an update and a
        // delete, installed in the store and logged.
        log_put(&wal, 1, 10, 0, 100);
        store.insert(TableId(0), 0, Value::from_u64(100));
        wal.append(LogPayload::TxnWrites {
            txn: TxnId::new(p, 2),
            ts: 11,
            writes: vec![LoggedWrite::delete(TableId(0), 3)],
        });
        store.table(TableId(0)).remove(3);
        std::thread::sleep(std::time::Duration::from_millis(1));

        // Crash: dirty the store to prove the wipe really runs.
        net.set_crashed(p, true);
        store.insert(TableId(0), 999, Value::from_u64(999));
        let crash = CrashContext::capture(p, gc.on_partition_crash(p), &wal);

        let report = RecoveryManager::recover(&store, &wal, &gc, &net, &crash);
        assert_eq!(report.wiped_records, 4, "3 live + 1 dirty slot wiped");
        assert_eq!(report.restored_records, 4);
        assert_eq!(report.replayed_txns, 2);
        assert!(!net.is_crashed(p), "recovery clears the crash flag last");

        assert_eq!(
            store.get(TableId(0), 0).unwrap().read().value.as_u64(),
            100,
            "replayed update wins over the checkpointed value"
        );
        assert!(store.get(TableId(0), 3).is_none(), "replayed delete holds");
        assert!(store.get(TableId(0), 999).is_none(), "dirty write is gone");
        assert_eq!(store.get(TableId(0), 1).unwrap().read().value.as_u64(), 1);
    }

    #[test]
    fn entries_volatile_at_crash_are_lost() {
        let store = PartitionStore::new(PartitionId(0));
        // 50 ms persist delay: the second entry never becomes durable
        // before the crash.
        let wal = ReplicatedLog::single(PartitionId(0), 50_000);
        let net = net();
        let gc = DurableIsCommitted;
        let p = PartitionId(0);
        store.insert(TableId(0), 1, Value::from_u64(1));
        Checkpointer::initial(&store, &wal);
        std::thread::sleep(std::time::Duration::from_millis(60));
        // Durable by now; this one will survive.
        log_put(&wal, 1, 5, 1, 50);
        std::thread::sleep(std::time::Duration::from_millis(60));
        // Volatile at crash; lost.
        log_put(&wal, 2, 6, 1, 60);
        net.set_crashed(p, true);
        let crash = CrashContext::capture(p, gc.on_partition_crash(p), &wal);
        let report = RecoveryManager::recover(&store, &wal, &gc, &net, &crash);
        assert_eq!(report.replayed_txns, 1);
        assert_eq!(store.get(TableId(0), 1).unwrap().read().value.as_u64(), 50);
    }

    #[test]
    fn recovery_seals_in_doubt_votes_with_the_presumed_abort_verdict() {
        let store = PartitionStore::new(PartitionId(0));
        let wal = ReplicatedLog::single(PartitionId(0), 0);
        let net = net();
        let gc = DurableIsCommitted;
        let p = PartitionId(0);
        store.insert(TableId(0), 1, Value::from_u64(1));
        Checkpointer::initial(&store, &wal);

        // Three transactions voted before the crash. txn_a reached its
        // decision, txn_b installed its write-set (commit evidence), txn_c
        // is genuinely in doubt: coordinator died between prepare & decide.
        let txn_a = TxnId::new(p, 10);
        let txn_b = TxnId::new(p, 11);
        let txn_c = TxnId::new(p, 12);
        for txn in [txn_a, txn_b, txn_c] {
            wal.append(LogPayload::CommitVote {
                txn,
                coordinator: p,
                commit: true,
            });
        }
        wal.append(LogPayload::CommitDecision {
            txn: txn_a,
            commit: true,
        });
        wal.append(LogPayload::TxnWrites {
            txn: txn_b,
            ts: 9,
            writes: vec![LoggedWrite::put(TableId(0), 2, Value::from_u64(2))],
        });
        std::thread::sleep(std::time::Duration::from_millis(1));

        net.set_crashed(p, true);
        let crash = CrashContext::capture(p, gc.on_partition_crash(p), &wal);
        let report = RecoveryManager::recover(&store, &wal, &gc, &net, &crash);
        assert_eq!(report.in_doubt_resolved, 1, "only txn_c was in doubt");
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert_eq!(
            wal.commit_decision_for(txn_c, None),
            Some(false),
            "the presumed-abort verdict is sealed durably"
        );
        assert_eq!(
            wal.commit_decision_for(txn_a, None),
            Some(true),
            "the durable COMMIT decision is never overridden"
        );
        assert!(
            wal.unresolved_commit_votes(None).is_empty(),
            "no vote stays unresolved after recovery"
        );
        // Running recovery again resolves nothing new (idempotent).
        net.set_crashed(p, true);
        let crash = CrashContext::capture(p, gc.on_partition_crash(p), &wal);
        let report = RecoveryManager::recover(&store, &wal, &gc, &net, &crash);
        assert_eq!(report.in_doubt_resolved, 0);
    }

    #[test]
    fn apply_replay_twice_equals_once() {
        let wal = ReplicatedLog::single(PartitionId(0), 0);
        log_put(&wal, 1, 3, 7, 70);
        log_put(&wal, 2, 5, 7, 71);
        wal.append(LogPayload::TxnWrites {
            txn: TxnId::new(PartitionId(0), 3),
            ts: 6,
            writes: vec![LoggedWrite::delete(TableId(0), 8)],
        });
        std::thread::sleep(std::time::Duration::from_millis(1));
        let txns = wal.replay_range(0, &ReplayBound::Ts(u64::MAX), None);
        let once = PartitionStore::new(PartitionId(0));
        apply_replay(&once, &txns);
        let twice = PartitionStore::new(PartitionId(0));
        apply_replay(&twice, &txns);
        apply_replay(&twice, &txns);
        let mut a = once.snapshot_visible();
        let mut b = twice.snapshot_visible();
        a.sort_by_key(|(t, k, _, _)| (*t, *k));
        b.sort_by_key(|(t, k, _, _)| (*t, *k));
        assert_eq!(a, b);
        assert_eq!(once.get(TableId(0), 7).unwrap().read().value.as_u64(), 71);
    }
}
