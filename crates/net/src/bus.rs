//! Asynchronous control-message bus with simulated delivery delay.
//!
//! Partition watermarks (§5.1) and COCO epoch messages are *not* on the
//! transaction critical path; they are broadcast asynchronously and may be
//! delayed (Fig 13a studies exactly that). The [`DelayedBus`] delivers
//! messages to per-partition mailboxes after `base_delay + per-destination
//! extra delay`, using a background pump thread.

use parking_lot::{Condvar, Mutex};
use primo_common::sim_time::now_us;
use primo_common::PartitionId;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Control messages exchanged between partition leaders outside the
/// transaction critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusMessage {
    /// A partition advertises its partition-watermark `Wp` (§5.1).
    PartitionWatermark { from: PartitionId, wp: u64 },
    /// COCO group-prepare for an epoch (coordinator -> all).
    EpochPrepare { epoch: u64 },
    /// COCO group-ready response (partition -> coordinator).
    EpochReady { from: PartitionId, epoch: u64 },
    /// COCO group-commit / group-abort decision (coordinator -> all).
    EpochDecision { epoch: u64, commit: bool },
    /// Recovery: a partition publishes its latest persisted watermark so the
    /// cluster can agree on a rollback point (§5.2).
    RecoveryWatermark {
        from: PartitionId,
        wp: u64,
        term: u64,
    },
}

#[derive(Debug)]
struct Pending {
    deliver_at_us: u64,
    to: PartitionId,
    msg: BusMessage,
    seq: u64,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at_us == other.deliver_at_us && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by delivery time (BinaryHeap is a max-heap, so reverse).
        other
            .deliver_at_us
            .cmp(&self.deliver_at_us)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A per-partition mailbox: delivered messages wait here until the owning
/// partition drains them.
#[derive(Debug, Default)]
struct Mailbox {
    queue: Mutex<VecDeque<BusMessage>>,
    available: Condvar,
}

impl Mailbox {
    fn push(&self, msg: BusMessage) {
        self.queue.lock().push_back(msg);
        self.available.notify_all();
    }

    fn try_pop(&self) -> Option<BusMessage> {
        self.queue.lock().pop_front()
    }

    fn pop_timeout(&self, timeout: Duration) -> Option<BusMessage> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.queue.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                return Some(msg);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.available.wait_for(&mut q, deadline - now);
        }
    }
}

/// Delay-injecting broadcast bus for control messages.
#[derive(Debug)]
pub struct DelayedBus {
    inboxes: Vec<Mailbox>,
    queue: Arc<Mutex<BinaryHeap<Pending>>>,
    /// Base one-way delay for control messages, microseconds.
    base_delay_us: AtomicU64,
    /// Extra delay applied to messages *from* a given partition (simulates a
    /// lagging sender, Fig 13a).
    extra_from_us: Vec<AtomicU64>,
    seq: AtomicU64,
    stop: Arc<AtomicBool>,
    pump: Mutex<Option<JoinHandle<()>>>,
}

impl DelayedBus {
    pub fn new(num_partitions: usize, base_delay_us: u64) -> Arc<Self> {
        let inboxes = (0..num_partitions).map(|_| Mailbox::default()).collect();
        let bus = Arc::new(DelayedBus {
            inboxes,
            queue: Arc::new(Mutex::new(BinaryHeap::new())),
            base_delay_us: AtomicU64::new(base_delay_us),
            extra_from_us: (0..num_partitions).map(|_| AtomicU64::new(0)).collect(),
            seq: AtomicU64::new(0),
            stop: Arc::new(AtomicBool::new(false)),
            pump: Mutex::new(None),
        });
        bus.start_pump();
        bus
    }

    fn start_pump(self: &Arc<Self>) {
        let me = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("bus-pump".into())
            .spawn(move || me.pump_loop())
            .expect("spawn bus pump");
        *self.pump.lock() = Some(handle);
    }

    fn pump_loop(&self) {
        while !self.stop.load(Ordering::Relaxed) {
            let now = now_us();
            let mut delivered_any = false;
            {
                let mut q = self.queue.lock();
                while let Some(top) = q.peek() {
                    if top.deliver_at_us > now {
                        break;
                    }
                    let p = q.pop().unwrap();
                    self.inboxes[p.to.idx()].push(p.msg);
                    delivered_any = true;
                }
            }
            if !delivered_any {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    pub fn set_base_delay_us(&self, us: u64) {
        self.base_delay_us.store(us, Ordering::Relaxed);
    }

    /// Simulate a lagging sender: all control messages originating from
    /// `from` are delayed by an additional `us`.
    pub fn set_extra_delay_from(&self, from: PartitionId, us: u64) {
        self.extra_from_us[from.idx()].store(us, Ordering::Relaxed);
    }

    fn delay_for(&self, from: PartitionId) -> u64 {
        self.base_delay_us.load(Ordering::Relaxed)
            + self.extra_from_us[from.idx()].load(Ordering::Relaxed)
    }

    /// Send a message to one partition (delivered after the configured delay).
    pub fn send(&self, from: PartitionId, to: PartitionId, msg: BusMessage) {
        let deliver_at = now_us() + self.delay_for(from);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.queue.lock().push(Pending {
            deliver_at_us: deliver_at,
            to,
            msg,
            seq,
        });
    }

    /// Broadcast to every partition except the sender.
    pub fn broadcast(&self, from: PartitionId, msg: BusMessage) {
        for p in 0..self.inboxes.len() {
            if p != from.idx() {
                self.send(from, PartitionId(p as u32), msg.clone());
            }
        }
    }

    /// Drain all messages currently available for a partition.
    pub fn drain(&self, me: PartitionId) -> Vec<BusMessage> {
        let mut out = Vec::new();
        while let Some(m) = self.inboxes[me.idx()].try_pop() {
            out.push(m);
        }
        out
    }

    /// Blocking receive with timeout for coordinator threads.
    pub fn recv_timeout(&self, me: PartitionId, timeout: Duration) -> Option<BusMessage> {
        self.inboxes[me.idx()].pop_timeout(timeout)
    }

    /// Stop the pump thread. Called on cluster shutdown.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for DelayedBus {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_delivered_after_delay() {
        let bus = DelayedBus::new(2, 2_000);
        bus.send(
            PartitionId(0),
            PartitionId(1),
            BusMessage::PartitionWatermark {
                from: PartitionId(0),
                wp: 42,
            },
        );
        // Immediately: nothing yet (2 ms delay).
        assert!(bus.drain(PartitionId(1)).is_empty());
        std::thread::sleep(Duration::from_millis(10));
        let got = bus.drain(PartitionId(1));
        assert_eq!(
            got,
            vec![BusMessage::PartitionWatermark {
                from: PartitionId(0),
                wp: 42
            }]
        );
        bus.shutdown();
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let bus = DelayedBus::new(3, 0);
        bus.broadcast(PartitionId(1), BusMessage::EpochPrepare { epoch: 7 });
        std::thread::sleep(Duration::from_millis(5));
        assert!(bus.drain(PartitionId(1)).is_empty());
        assert_eq!(bus.drain(PartitionId(0)).len(), 1);
        assert_eq!(bus.drain(PartitionId(2)).len(), 1);
        bus.shutdown();
    }

    #[test]
    fn lagging_sender_is_delayed_more() {
        let bus = DelayedBus::new(2, 0);
        bus.set_extra_delay_from(PartitionId(0), 50_000);
        bus.send(
            PartitionId(0),
            PartitionId(1),
            BusMessage::EpochReady {
                from: PartitionId(0),
                epoch: 1,
            },
        );
        std::thread::sleep(Duration::from_millis(5));
        assert!(
            bus.drain(PartitionId(1)).is_empty(),
            "should still be in flight"
        );
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(bus.drain(PartitionId(1)).len(), 1);
        bus.shutdown();
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let bus = DelayedBus::new(1, 0);
        assert!(bus
            .recv_timeout(PartitionId(0), Duration::from_millis(5))
            .is_none());
        bus.shutdown();
    }
}
