//! Simulated cluster network.
//!
//! The paper runs on a real 16 Gbps Ethernet cluster; this reproduction keeps
//! every partition in one process and *charges* network latency to the calling
//! thread instead. The key property preserved is the contention footprint: a
//! transaction that performs a remote access or a 2PC round holds its locks
//! for the corresponding round-trip time.
//!
//! Two communication styles are provided:
//!
//! * [`SimNetwork`] — synchronous RPC-style charging (`round_trip`,
//!   `one_way`) plus message counting and per-partition crash flags.
//! * [`DelayedBus`] — asynchronous delivery of control messages (partition
//!   watermarks, epoch coordination) after a configurable delay, used by the
//!   group-commit schemes.

pub mod bus;
pub mod network;

pub use bus::{BusMessage, DelayedBus};
pub use network::{PartitionHealth, SimNetwork};
