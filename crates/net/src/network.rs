//! Latency-charging simulated network with crash injection.

use parking_lot::RwLock;
use primo_common::config::NetConfig;
use primo_common::sim_time::charge_latency_us;
use primo_common::{FastRng, PartitionId};
use primo_trace::{FlightRecorder, TraceEventKind};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// Reachability of one partition as seen by the network.
///
/// A partition is unreachable while `Crashed` **and** while `Recovering`:
/// the replacement leader only starts answering once its store is rebuilt
/// from checkpoint + log replay, not merely once the configured outage
/// elapses. The distinction is kept so operators (and tests) can observe
/// where the downtime went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionHealth {
    /// Reachable, serving requests.
    Up,
    /// The leader is down; nothing answers.
    Crashed,
    /// A replacement leader is replaying the durable log; still unreachable.
    Recovering,
}

impl PartitionHealth {
    fn encode(self) -> u8 {
        match self {
            PartitionHealth::Up => 0,
            PartitionHealth::Crashed => 1,
            PartitionHealth::Recovering => 2,
        }
    }

    fn decode(raw: u8) -> Self {
        match raw {
            0 => PartitionHealth::Up,
            1 => PartitionHealth::Crashed,
            _ => PartitionHealth::Recovering,
        }
    }
}

/// The simulated network connecting all partitions.
///
/// All methods are cheap and thread-safe; latency is charged by blocking the
/// calling thread for the configured duration (spin for short waits).
#[derive(Debug)]
pub struct SimNetwork {
    cfg: RwLock<NetConfig>,
    num_partitions: usize,
    /// Extra one-way delay per destination partition, microseconds. Used by
    /// Fig 13a (delayed watermark/epoch messages) and general asymmetry
    /// experiments.
    extra_delay_us: Vec<AtomicU64>,
    /// Health per partition: a crashed or recovering partition does not
    /// answer (encoded [`PartitionHealth`]).
    health: Vec<AtomicU8>,
    /// Total messages "sent" (one per one-way hop).
    messages: AtomicU64,
    /// Total round trips charged.
    round_trips: AtomicU64,
    /// Of `messages`: the one-way hops attributable to the atomic-commit
    /// layer's vote/decision fan-out (Paxos Commit). A breakdown counter,
    /// not an additional charge — the hops are already in `messages`.
    commit_messages: AtomicU64,
    /// Jitter source (per-call cheap hash, not a shared RNG, to avoid
    /// contention). Derived from the experiment seed so different seeds
    /// sample different jitter while each run stays reproducible.
    jitter_salt: u64,
    /// Flight recorder for per-hop `MsgHop` events. Only set when the
    /// `trace.trace_messages` knob is on (per-hop volume dwarfs every other
    /// event class); unset, each send pays one relaxed `OnceLock` read.
    recorder: OnceLock<Arc<FlightRecorder>>,
}

/// One round of splitmix64: turns correlated seeds (0, 1, 2, …) into
/// decorrelated salts.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SimNetwork {
    pub fn new(num_partitions: usize, cfg: NetConfig, seed: u64) -> Self {
        SimNetwork {
            cfg: RwLock::new(cfg),
            num_partitions,
            extra_delay_us: (0..num_partitions).map(|_| AtomicU64::new(0)).collect(),
            health: (0..num_partitions)
                .map(|_| AtomicU8::new(PartitionHealth::Up.encode()))
                .collect(),
            messages: AtomicU64::new(0),
            round_trips: AtomicU64::new(0),
            commit_messages: AtomicU64::new(0),
            jitter_salt: splitmix64(seed),
            recorder: OnceLock::new(),
        }
    }

    /// Attach the cluster flight recorder for per-hop tracing. The cluster
    /// only calls this when `trace.trace_messages` is enabled.
    pub fn set_recorder(&self, recorder: Arc<FlightRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    fn trace_hop(&self, from: PartitionId, to: PartitionId) {
        if let Some(rec) = self.recorder.get() {
            rec.emit(
                None,
                Some(from),
                TraceEventKind::MsgHop {
                    from: from.0,
                    to: to.0,
                },
            );
        }
    }

    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    pub fn config(&self) -> NetConfig {
        *self.cfg.read()
    }

    pub fn set_config(&self, cfg: NetConfig) {
        *self.cfg.write() = cfg;
    }

    /// Add an extra per-destination one-way delay (Fig 13a lag injection).
    pub fn set_extra_delay_us(&self, to: PartitionId, us: u64) {
        self.extra_delay_us[to.idx()].store(us, Ordering::Relaxed);
    }

    pub fn extra_delay_us(&self, to: PartitionId) -> u64 {
        self.extra_delay_us[to.idx()].load(Ordering::Relaxed)
    }

    /// Mark a partition as crashed (it will not be reachable) or fully up.
    /// Shorthand over [`SimNetwork::set_health`] kept for the common
    /// crash-injection call sites.
    pub fn set_crashed(&self, p: PartitionId, crashed: bool) {
        self.set_health(
            p,
            if crashed {
                PartitionHealth::Crashed
            } else {
                PartitionHealth::Up
            },
        );
    }

    /// Set a partition's health (recovery moves it `Crashed -> Recovering ->
    /// Up`; it stays unreachable until `Up`).
    pub fn set_health(&self, p: PartitionId, health: PartitionHealth) {
        self.health[p.idx()].store(health.encode(), Ordering::SeqCst);
    }

    pub fn health(&self, p: PartitionId) -> PartitionHealth {
        PartitionHealth::decode(self.health[p.idx()].load(Ordering::SeqCst))
    }

    /// Unreachable: crashed or still replaying its log.
    pub fn is_crashed(&self, p: PartitionId) -> bool {
        self.health(p) != PartitionHealth::Up
    }

    fn one_way_latency_us(&self, from: PartitionId, to: PartitionId) -> u64 {
        if from == to {
            return 0;
        }
        let cfg = *self.cfg.read();
        let jitter = if cfg.jitter_us > 0 {
            // Cheap stateless jitter: hash of a counter.
            let x = self
                .messages
                .load(Ordering::Relaxed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ self.jitter_salt;
            x % (cfg.jitter_us + 1)
        } else {
            0
        };
        cfg.one_way_us + jitter + self.extra_delay_us[to.idx()].load(Ordering::Relaxed)
    }

    /// Charge a one-way message from `from` to `to`. Returns `false` if the
    /// destination is crashed (message lost).
    pub fn one_way(&self, from: PartitionId, to: PartitionId) -> bool {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.trace_hop(from, to);
        charge_latency_us(self.one_way_latency_us(from, to));
        !self.is_crashed(to)
    }

    /// Charge a request/response round trip. Returns `false` if the remote
    /// partition is crashed.
    pub fn round_trip(&self, from: PartitionId, to: PartitionId) -> bool {
        if from == to {
            return !self.is_crashed(to);
        }
        self.messages.fetch_add(2, Ordering::Relaxed);
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.trace_hop(from, to);
        self.trace_hop(to, from);
        if self.is_crashed(to) {
            // The request times out: charge only the outbound latency.
            charge_latency_us(self.one_way_latency_us(from, to));
            return false;
        }
        charge_latency_us(2 * self.one_way_latency_us(from, to));
        true
    }

    /// Charge one round trip that fans out to several destinations in
    /// parallel (e.g. a 2PC prepare to all participants): the cost is the
    /// slowest destination, not the sum. Returns `false` if any destination
    /// is crashed.
    pub fn round_trip_multi(&self, from: PartitionId, to: &[PartitionId]) -> bool {
        let remote: Vec<_> = to.iter().copied().filter(|p| *p != from).collect();
        if remote.is_empty() {
            return true;
        }
        self.messages
            .fetch_add(2 * remote.len() as u64, Ordering::Relaxed);
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        let mut max_us = 0;
        let mut ok = true;
        for p in &remote {
            self.trace_hop(from, *p);
            self.trace_hop(*p, from);
            max_us = max_us.max(self.one_way_latency_us(from, *p));
            if self.is_crashed(*p) {
                ok = false;
            }
        }
        charge_latency_us(2 * max_us);
        ok
    }

    /// One-way fan-out (e.g. Primo's write-set dissemination, which needs no
    /// acknowledgement). Returns `false` if any destination is crashed.
    pub fn one_way_multi(&self, from: PartitionId, to: &[PartitionId]) -> bool {
        let remote: Vec<_> = to.iter().copied().filter(|p| *p != from).collect();
        if remote.is_empty() {
            return true;
        }
        self.messages
            .fetch_add(remote.len() as u64, Ordering::Relaxed);
        for p in &remote {
            self.trace_hop(from, *p);
        }
        // The sender does not wait for delivery: sending is effectively free
        // for the caller beyond a small serialization cost.
        charge_latency_us(1);
        remote.iter().all(|p| !self.is_crashed(*p))
    }

    /// Account one-way messages sent by a background subsystem (e.g. log
    /// replication fan-out) without charging latency to the calling thread:
    /// the sender does not wait for replica acknowledgements — the cost
    /// surfaces as quorum-ack delay on the durability side, not as send
    /// latency.
    pub fn note_background_messages(&self, n: u64) {
        self.messages.fetch_add(n, Ordering::Relaxed);
    }

    /// Attribute `n` already-charged one-way hops to the atomic-commit
    /// layer's vote/decision fan-out. Call this *alongside* the charging
    /// send (`round_trip_multi` / `one_way_multi` / the replication pump's
    /// `note_background_messages`), never instead of it: this increments
    /// only the breakdown counter, not the message total.
    pub fn note_commit_messages(&self, n: u64) {
        self.commit_messages.fetch_add(n, Ordering::Relaxed);
    }

    /// Of [`SimNetwork::messages_sent`]: hops attributed to atomic-commit
    /// vote/decision fan-out.
    pub fn commit_messages_sent(&self) -> u64 {
        self.commit_messages.load(Ordering::Relaxed)
    }

    /// Number of one-way messages charged so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Number of round trips charged so far.
    pub fn round_trips_charged(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Jitter helper exposed for deterministic tests.
    pub fn sample_latency_us(&self, from: PartitionId, to: PartitionId, _rng: &mut FastRng) -> u64 {
        self.one_way_latency_us(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn net(one_way_us: u64) -> SimNetwork {
        SimNetwork::new(
            4,
            NetConfig {
                one_way_us,
                jitter_us: 0,
                control_msg_extra_us: 0,
            },
            0x5EED,
        )
    }

    #[test]
    fn jitter_salt_follows_the_experiment_seed() {
        let cfg = NetConfig {
            one_way_us: 0,
            jitter_us: 1_000_000,
            control_msg_extra_us: 0,
        };
        let mut rng = primo_common::FastRng::new(1);
        // Different seeds sample different jitter …
        let samples: Vec<u64> = (0..16u64)
            .map(|seed| {
                SimNetwork::new(2, cfg, seed).sample_latency_us(
                    PartitionId(0),
                    PartitionId(1),
                    &mut rng,
                )
            })
            .collect();
        let distinct: std::collections::HashSet<_> = samples.iter().collect();
        assert!(
            distinct.len() > 8,
            "adjacent seeds must decorrelate: {samples:?}"
        );
        // … while the same seed reproduces the same jitter.
        let a =
            SimNetwork::new(2, cfg, 7).sample_latency_us(PartitionId(0), PartitionId(1), &mut rng);
        let b =
            SimNetwork::new(2, cfg, 7).sample_latency_us(PartitionId(0), PartitionId(1), &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn local_access_is_free() {
        let n = net(1000);
        let start = Instant::now();
        assert!(n.round_trip(PartitionId(0), PartitionId(0)));
        assert!(start.elapsed().as_micros() < 500);
        assert_eq!(n.messages_sent(), 0);
    }

    #[test]
    fn round_trip_charges_twice_one_way() {
        let n = net(100);
        let start = Instant::now();
        assert!(n.round_trip(PartitionId(0), PartitionId(1)));
        let el = start.elapsed().as_micros();
        assert!(el >= 190, "elapsed {el}us");
        assert_eq!(n.messages_sent(), 2);
        assert_eq!(n.round_trips_charged(), 1);
    }

    #[test]
    fn multi_round_trip_costs_slowest_not_sum() {
        let n = net(100);
        let start = Instant::now();
        assert!(n.round_trip_multi(
            PartitionId(0),
            &[PartitionId(1), PartitionId(2), PartitionId(3)]
        ));
        let el = start.elapsed().as_micros();
        assert!(el >= 190, "elapsed {el}us");
        assert!(el < 450, "fan-out should be parallel, elapsed {el}us");
        assert_eq!(n.messages_sent(), 6);
    }

    #[test]
    fn crashed_partition_breaks_round_trip() {
        let n = net(10);
        n.set_crashed(PartitionId(2), true);
        assert!(!n.round_trip(PartitionId(0), PartitionId(2)));
        assert!(!n.round_trip_multi(PartitionId(0), &[PartitionId(1), PartitionId(2)]));
        n.set_crashed(PartitionId(2), false);
        assert!(n.round_trip(PartitionId(0), PartitionId(2)));
    }

    #[test]
    fn recovering_partition_stays_unreachable() {
        let n = net(10);
        n.set_health(PartitionId(1), PartitionHealth::Crashed);
        assert_eq!(n.health(PartitionId(1)), PartitionHealth::Crashed);
        // Replay in progress: the outage window is over but the partition
        // must not answer until the store is rebuilt.
        n.set_health(PartitionId(1), PartitionHealth::Recovering);
        assert!(n.is_crashed(PartitionId(1)));
        assert!(!n.round_trip(PartitionId(0), PartitionId(1)));
        n.set_health(PartitionId(1), PartitionHealth::Up);
        assert_eq!(n.health(PartitionId(1)), PartitionHealth::Up);
        assert!(n.round_trip(PartitionId(0), PartitionId(1)));
    }

    #[test]
    fn extra_delay_applies_to_destination() {
        let n = net(10);
        n.set_extra_delay_us(PartitionId(1), 300);
        assert_eq!(n.extra_delay_us(PartitionId(1)), 300);
        let start = Instant::now();
        n.round_trip(PartitionId(0), PartitionId(1));
        assert!(start.elapsed().as_micros() >= 600);
        let start = Instant::now();
        n.round_trip(PartitionId(0), PartitionId(2));
        assert!(start.elapsed().as_micros() < 500);
    }

    #[test]
    fn background_messages_count_without_charging_latency() {
        let n = net(5000);
        let start = Instant::now();
        n.note_background_messages(3);
        assert!(start.elapsed().as_millis() < 2);
        assert_eq!(n.messages_sent(), 3);
    }

    #[test]
    fn commit_message_breakdown_does_not_inflate_the_total() {
        let n = net(10);
        n.round_trip_multi(PartitionId(0), &[PartitionId(1), PartitionId(2)]);
        n.note_commit_messages(4);
        assert_eq!(n.messages_sent(), 4, "breakdown must not double-count");
        assert_eq!(n.commit_messages_sent(), 4);
    }

    #[test]
    fn one_way_multi_does_not_block_sender() {
        let n = net(5000);
        let start = Instant::now();
        assert!(n.one_way_multi(PartitionId(0), &[PartitionId(1), PartitionId(2)]));
        assert!(start.elapsed().as_millis() < 3);
        assert_eq!(n.messages_sent(), 2);
    }
}
