//! Appendix A of the paper: an analytical model of the conflict rate of a
//! local transaction under Primo versus a 2PC-based scheme.
//!
//! The model is used by the `appendixA` harness (and by tests) to check the
//! paper's analytical conclusions: Primo wins whenever the read ratio is not
//! extreme, and the advantage grows with contention, the distributed-ratio,
//! and the relative cost of a network round trip.

/// Workload / system parameters of the analytical model (Appendix A).
#[derive(Debug, Clone, Copy)]
pub struct ModelParams {
    /// Number of partitions `n`.
    pub partitions: usize,
    /// Worker threads per partition `h`.
    pub threads_per_partition: usize,
    /// Keys accessed per transaction `m`.
    pub ops_per_txn: usize,
    /// Fraction of reads `R_r` among the `m` accesses.
    pub read_ratio: f64,
    /// Fraction of distributed transactions `R_d`.
    pub distributed_ratio: f64,
    /// Probability two random operations touch the same record `P_c`
    /// (captures contention / skew).
    pub conflict_prob: f64,
    /// Fraction of read records whose `rts` must be extended `R_u`
    /// (the paper measures at most 0.6).
    pub rts_update_ratio: f64,
    /// Local execution time `t_l` (any unit).
    pub local_time: f64,
    /// Remote round-trip time `t_r` (same unit as `local_time`).
    pub remote_time: f64,
    /// Local transactions concurrent with the observed one `N_l`.
    pub concurrent_local: f64,
    /// Probability that each operation of a distributed transaction goes to
    /// a remote partition (the YCSB `remote_op_ratio`). Governs how many
    /// per-record round trips the batched fan-out can collapse.
    pub remote_op_ratio: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        // Roughly the default YCSB setting of §6.1.
        ModelParams {
            partitions: 4,
            threads_per_partition: 16,
            ops_per_txn: 10,
            read_ratio: 0.5,
            distributed_ratio: 0.2,
            conflict_prob: 1e-5,
            rts_update_ratio: 0.6,
            local_time: 10.0,
            remote_time: 200.0,
            concurrent_local: 48.0,
            remote_op_ratio: 0.3,
        }
    }
}

/// Probability that a local transaction conflicts with one given concurrent
/// transaction under a 2PC-based scheme (Appendix A, Eq. 1).
pub fn conflict_with_one_2pc(p: &ModelParams) -> f64 {
    let m = p.ops_per_txn as f64;
    let rr = p.read_ratio;
    1.0 - (1.0 - p.conflict_prob).powf(m * m * (1.0 - rr * rr))
}

/// Probability that a local transaction conflicts with one given concurrent
/// *distributed* transaction under Primo (Appendix A, Eq. 2).
pub fn conflict_with_one_primo_dist(p: &ModelParams) -> f64 {
    let m = p.ops_per_txn as f64;
    let rr = p.read_ratio;
    let ru = p.rts_update_ratio;
    1.0 - (1.0 - p.conflict_prob).powf(m * m * (1.0 - rr * rr + rr * rr * ru))
}

/// Expected number of concurrent distributed transactions under 2PC
/// (Appendix A, Eq. 3).
pub fn concurrent_distributed_2pc(p: &ModelParams) -> f64 {
    let nh = (p.partitions * p.threads_per_partition) as f64;
    p.distributed_ratio * nh * (2.0 + 2.0 * p.remote_time / p.local_time)
}

/// Expected number of concurrent distributed transactions under Primo
/// (Appendix A, Eq. 4).
pub fn concurrent_distributed_primo(p: &ModelParams) -> f64 {
    let nh = (p.partitions * p.threads_per_partition) as f64;
    p.distributed_ratio * nh * (2.0 + p.remote_time / p.local_time)
}

/// Conflict rate of a local transaction under a 2PC-based scheme
/// (Appendix A, Eq. 5).
pub fn conflict_rate_2pc(p: &ModelParams) -> f64 {
    let c = conflict_with_one_2pc(p);
    let n_dist = concurrent_distributed_2pc(p);
    1.0 - (1.0 - c).powf(n_dist + p.concurrent_local)
}

/// Conflict rate of a local transaction under Primo (Appendix A, Eq. 6).
pub fn conflict_rate_primo(p: &ModelParams) -> f64 {
    let c_local = conflict_with_one_2pc(p);
    let c_dist = conflict_with_one_primo_dist(p);
    let n_dist = concurrent_distributed_primo(p);
    1.0 - (1.0 - c_dist).powf(n_dist) * (1.0 - c_local).powf(p.concurrent_local)
}

/// Convenience: the ratio `CR_2PC / CR_Primo` (> 1 means Primo has the lower
/// conflict rate and is expected to win).
pub fn advantage_ratio(p: &ModelParams) -> f64 {
    let primo = conflict_rate_primo(p);
    let twopc = conflict_rate_2pc(p);
    if primo <= f64::EPSILON {
        f64::INFINITY
    } else {
        twopc / primo
    }
}

// ---------------------------------------------------------------------------
// Remote-read message model (batched fan-out vs per-record round trips).
//
// The conflict model above is about *what aborts*; this block is about *what
// the read phase costs on the wire*. A distributed transaction with `m`
// operations, each remote with probability `r`, performs `m·r` remote reads
// in expectation. Sequentially each read is its own round trip; the batched
// fan-out resolves the whole footprint in one parallel round per attempt
// (cost = the slowest partition, charged once), so the read phase collapses
// to a single round trip whenever the transaction is distributed at all.
// ---------------------------------------------------------------------------

/// Expected remote-read round trips per distributed transaction with
/// per-record (sequential) reads: one per remote operation.
pub fn read_round_trips_sequential(p: &ModelParams) -> f64 {
    p.ops_per_txn as f64 * p.remote_op_ratio
}

/// Expected remote-read round trips per distributed transaction with the
/// batched fan-out: one parallel round whenever at least one operation is
/// remote (the generator forces ≥ 1 remote op in a distributed transaction,
/// so this is exactly 1 for `r > 0`).
pub fn read_round_trips_batched(p: &ModelParams) -> f64 {
    if p.remote_op_ratio > 0.0 && p.ops_per_txn > 0 {
        1.0
    } else {
        0.0
    }
}

/// Read-phase latency of one distributed transaction (same unit as
/// `remote_time`) under sequential per-record reads.
pub fn read_latency_sequential(p: &ModelParams) -> f64 {
    read_round_trips_sequential(p) * p.remote_time
}

/// Read-phase latency under the batched fan-out: one round trip, because the
/// fan-out is charged at the slowest partition rather than the sum.
pub fn read_latency_batched(p: &ModelParams) -> f64 {
    read_round_trips_batched(p) * p.remote_time
}

/// The ratio `sequential / batched` of remote-read round trips (> 1 means
/// batching saves messages). Crosses 1 exactly where a distributed
/// transaction has one expected remote operation: below that the fan-out is
/// the same single round trip the sequential path would pay.
pub fn batching_advantage(p: &ModelParams) -> f64 {
    let batched = read_round_trips_batched(p);
    if batched <= f64::EPSILON {
        1.0
    } else {
        read_round_trips_sequential(p) / batched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primo_wins_at_moderate_read_ratio() {
        // The paper: with Ru = 0.6, Primo shows a definite advantage when
        // Rr < 0.8.
        for rr in [0.0, 0.2, 0.5, 0.7] {
            let p = ModelParams {
                read_ratio: rr,
                conflict_prob: 1e-4,
                ..Default::default()
            };
            assert!(
                advantage_ratio(&p) > 1.0,
                "Primo should win at read ratio {rr}"
            );
        }
    }

    #[test]
    fn read_heavy_mostly_distributed_favours_2pc() {
        // The paper's exception (§4.3 / Appendix A): with the conservative
        // Ru = 0.6, a read-heavy (Rr ≈ 0.9+) and mostly-distributed workload
        // makes the extra exclusive locks outweigh the saved round trips, so
        // Primo should fall back to 2PC there.
        let read_heavy = ModelParams {
            read_ratio: 0.95,
            distributed_ratio: 0.8,
            conflict_prob: 1e-7,
            ..Default::default()
        };
        assert!(advantage_ratio(&read_heavy) < 1.0);
        let mixed = ModelParams {
            read_ratio: 0.5,
            distributed_ratio: 0.8,
            conflict_prob: 1e-7,
            ..Default::default()
        };
        assert!(advantage_ratio(&mixed) > 1.0);
        assert!(advantage_ratio(&mixed) > advantage_ratio(&read_heavy));
    }

    #[test]
    fn advantage_grows_with_contention_and_distribution() {
        let base = ModelParams {
            conflict_prob: 1e-7,
            ..Default::default()
        };
        let contended = ModelParams {
            conflict_prob: 1e-5,
            ..Default::default()
        };
        assert!(conflict_rate_2pc(&contended) > conflict_rate_2pc(&base));
        let more_dist = ModelParams {
            distributed_ratio: 0.8,
            conflict_prob: 1e-7,
            ..Default::default()
        };
        let less_dist = ModelParams {
            distributed_ratio: 0.1,
            conflict_prob: 1e-7,
            ..Default::default()
        };
        // The absolute gap between the schemes grows with the ratio of
        // distributed transactions (away from saturation).
        let gap_more = conflict_rate_2pc(&more_dist) - conflict_rate_primo(&more_dist);
        let gap_less = conflict_rate_2pc(&less_dist) - conflict_rate_primo(&less_dist);
        assert!(gap_more > gap_less);
    }

    #[test]
    fn conflict_rates_are_probabilities() {
        for rr in [0.0, 0.5, 0.9] {
            for pc in [1e-6, 1e-4, 1e-2] {
                let p = ModelParams {
                    read_ratio: rr,
                    conflict_prob: pc,
                    ..Default::default()
                };
                for v in [
                    conflict_rate_2pc(&p),
                    conflict_rate_primo(&p),
                    conflict_with_one_2pc(&p),
                    conflict_with_one_primo_dist(&p),
                ] {
                    assert!((0.0..=1.0).contains(&v), "value {v} out of range");
                }
            }
        }
    }

    #[test]
    fn primo_has_fewer_concurrent_distributed_txns() {
        let p = ModelParams::default();
        assert!(concurrent_distributed_primo(&p) < concurrent_distributed_2pc(&p));
    }

    #[test]
    fn batching_crossover_is_at_one_expected_remote_op() {
        // Below one expected remote operation per transaction the fan-out is
        // the same single round trip the sequential path pays — no advantage.
        let at_crossover = ModelParams {
            ops_per_txn: 10,
            remote_op_ratio: 0.1,
            ..Default::default()
        };
        assert!((batching_advantage(&at_crossover) - 1.0).abs() < 1e-9);
        // Above it the advantage is exactly the expected remote-read count.
        let above = ModelParams {
            ops_per_txn: 10,
            remote_op_ratio: 0.5,
            ..Default::default()
        };
        assert!((batching_advantage(&above) - 5.0).abs() < 1e-9);
        assert!(batching_advantage(&above) > batching_advantage(&at_crossover));
        // Fully remote 10-op transactions: 10× fewer read round trips — the
        // acceptance bar (≥ 2×) with a wide margin.
        let fully_remote = ModelParams {
            ops_per_txn: 10,
            remote_op_ratio: 1.0,
            ..Default::default()
        };
        assert!((batching_advantage(&fully_remote) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn batched_read_latency_is_one_round_trip() {
        let p = ModelParams {
            ops_per_txn: 10,
            remote_op_ratio: 1.0,
            remote_time: 200.0,
            ..Default::default()
        };
        assert!((read_latency_batched(&p) - 200.0).abs() < 1e-9);
        assert!((read_latency_sequential(&p) - 2000.0).abs() < 1e-9);
        // A purely local mix charges nothing either way.
        let local = ModelParams {
            remote_op_ratio: 0.0,
            ..Default::default()
        };
        assert_eq!(read_round_trips_sequential(&local), 0.0);
        assert_eq!(read_round_trips_batched(&local), 0.0);
    }
}
