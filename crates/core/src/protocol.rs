//! The Primo protocol: execution + commit paths (Algorithm 1 of the paper).

use crate::context::{Mode, PrimoCtx};
use primo_common::{AbortReason, Phase, PhaseTimers, Ts, TxnError, TxnId, TxnResult};
use primo_runtime::access::{recheck_locked_record, resolve_write_record, AccessSet, WriteKind};
use primo_runtime::cluster::Cluster;
use primo_runtime::commit::PrepareOutcome;
use primo_runtime::durability::log_txn_writes;
use primo_runtime::prefetch::ReadFanout;
use primo_runtime::protocol::{CommittedTxn, Protocol};
use primo_runtime::txn::TxnProgram;
use primo_storage::{LockMode, LockPolicy, LockRequestResult, Record};
use primo_trace::TraceEventKind;
use primo_wal::TxnTicket;
use std::sync::Arc;

/// Primo (optionally with WCF disabled, which is the "Primo w/o WM & WCF"
/// ablation of Fig 4b/5b: TicToc for local transactions, classic 2PL + 2PC
/// for distributed ones).
#[derive(Debug, Clone)]
pub struct PrimoProtocol {
    wcf_enabled: bool,
    label: &'static str,
    /// Distributed transactions whose declared read fraction is at or above
    /// this threshold use the 2PC fallback path (§4.3). `None` disables the
    /// fallback.
    read_heavy_fallback: Option<f64>,
}

impl PrimoProtocol {
    /// Full Primo: WCF concurrency control (pair with the watermark group
    /// commit for the complete system).
    pub fn full() -> Self {
        PrimoProtocol {
            wcf_enabled: true,
            label: "Primo",
            read_heavy_fallback: None,
        }
    }

    /// Ablation: WCF disabled — distributed transactions use shared-lock
    /// reads and a 2PC commit, local transactions still use TicToc.
    pub fn without_wcf() -> Self {
        PrimoProtocol {
            wcf_enabled: false,
            label: "Primo w/o WCF",
            read_heavy_fallback: None,
        }
    }

    /// Full Primo with the read-heavy 2PC fallback enabled at `threshold`
    /// (e.g. 0.8 per the paper's analysis).
    ///
    /// The threshold is compared against each program's declared read
    /// fraction, so it must itself be a fraction.
    ///
    /// # Panics
    /// Panics if `threshold` is NaN or outside `[0, 1]` — such a value would
    /// silently disable the fallback (or force every distributed transaction
    /// through 2PC) instead of expressing a read ratio.
    pub fn with_read_heavy_fallback(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && (0.0..=1.0).contains(&threshold),
            "read-heavy fallback threshold must be a fraction in [0, 1], got {threshold}"
        );
        PrimoProtocol {
            wcf_enabled: true,
            label: "Primo",
            read_heavy_fallback: Some(threshold),
        }
    }

    /// Override the display label (used for the ablation variants in figures).
    pub fn labeled(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }

    fn use_wcf_for(&self, program: &dyn TxnProgram) -> bool {
        if !self.wcf_enabled {
            return false;
        }
        match self.read_heavy_fallback {
            Some(thr) => program.read_fraction_hint() < thr,
            None => true,
        }
    }

    /// Compute the TicToc commit timestamp for the access set (Algorithm 1
    /// line 17) and reserve it with the group-commit scheme, which applies
    /// the watermark floor (rule R2, coordinator side) atomically and pins
    /// the watermark below the result until `txn_committed` — so the
    /// write-set this transaction is about to log can never end up below a
    /// published (durability-claiming) `Wp`. Assumes write records are
    /// already covered by read entries (dummy reads) in WCF mode or locked
    /// separately otherwise.
    fn compute_ts(cluster: &Cluster, ticket: &TxnTicket, access: &AccessSet) -> Ts {
        let mut ts = 0;
        for r in &access.reads {
            if !r.dummy {
                ts = ts.max(r.wts);
            }
        }
        for w in &access.writes {
            if let Some(i) = access.find_read(w.partition, w.table, w.key) {
                let (_, rts) = access.reads[i].record.timestamps();
                ts = ts.max(rts + 1);
            }
        }
        let ts = cluster.group_commit.reserve_commit_ts(ticket, ts);
        cluster.recorder.emit(
            Some(ticket.txn),
            Some(ticket.coordinator),
            TraceEventKind::CommitTsReserved { ts },
        );
        ts
    }

    /// Commit a purely local transaction with TicToc (§4.2.1).
    fn commit_local_tictoc(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        ticket: &TxnTicket,
        ctx: &mut PrimoCtx<'_>,
        timers: &mut PhaseTimers,
    ) -> TxnResult<CommittedTxn> {
        // 1. Resolve and lock the write set (abort immediately on conflict,
        //    as TicToc / Silo do). `resolved` keeps the record of every
        //    write so installation cannot race a concurrent unlink;
        //    `locked` remembers which locks this phase acquired.
        let mut resolved: Vec<Arc<Record>> = Vec::new();
        let mut locked: Vec<Arc<Record>> = Vec::new();
        let lock_result = timers.time(Phase::Commit, || {
            for w in &ctx.access.writes {
                let store = &cluster.partition(w.partition).store;
                let record = resolve_write_record(store, w, txn, &ctx.access.undo)?;
                if ctx.access.find_read(w.partition, w.table, w.key).is_none()
                    || ctx.access.reads[ctx.access.find_read(w.partition, w.table, w.key).unwrap()]
                        .locked
                        .is_none()
                {
                    if record.acquire(txn, LockMode::Exclusive, LockPolicy::NoWait)
                        != LockRequestResult::Granted
                    {
                        if let Some(owner) = record.lock().holder() {
                            cluster.recorder.emit(
                                Some(txn),
                                Some(w.partition),
                                TraceEventKind::LockWait { owner },
                            );
                        }
                        return Err(AbortReason::Validation);
                    }
                    locked.push(Arc::clone(&record));
                    // The record may have been tombstoned between resolution
                    // and lock acquisition (an insert's bounce is retryable;
                    // the helper reclaims the tombstone our lock pinned).
                    recheck_locked_record(&record, txn, w.kind, &store.table(w.table), w.key)?;
                }
                resolved.push(record);
            }
            Ok(())
        });
        if let Err(reason) = lock_result {
            ctx.access.undo.unwind();
            for r in &locked {
                r.release(txn);
            }
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }

        // 2. Compute and reserve the commit timestamp. The raise for
        //    blind-write records (locked above, no read entry) happens after
        //    the reservation: the watermark pin stays at the reserved
        //    (lower) value, which is conservative and therefore still sound.
        let mut ts = timers.time(Phase::Timestamp, || {
            Self::compute_ts(cluster, ticket, &ctx.access)
        });
        for r in &locked {
            let (_, rts) = r.timestamps();
            ts = ts.max(rts + 1);
        }

        // 3. Validate the read set (extend rts where needed).
        cluster
            .recorder
            .emit(Some(txn), Some(ctx.home), TraceEventKind::ValidationStart);
        let validation = timers.time(Phase::Commit, || {
            for r in &ctx.access.reads {
                if r.dummy {
                    continue;
                }
                let in_write_set = ctx.access.find_write(r.partition, r.table, r.key).is_some();
                if r.rts >= ts {
                    continue;
                }
                // Need to extend the valid interval of this record to ts.
                let (wts_now, _) = r.record.timestamps();
                if wts_now != r.wts {
                    return Err(AbortReason::Validation);
                }
                if !in_write_set && r.record.lock().exclusively_locked_by_other(txn) {
                    return Err(AbortReason::Validation);
                }
                r.record.extend_rts(ts);
            }
            Ok(())
        });
        cluster.recorder.emit(
            Some(txn),
            Some(ctx.home),
            TraceEventKind::ValidationOutcome {
                ok: validation.is_ok(),
                reason: validation.err(),
            },
        );
        if let Err(reason) = validation {
            ctx.access.undo.unwind();
            for r in &locked {
                r.release(txn);
            }
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }

        // 4. Log the write-set (while the locks are held, so the log is
        //    ahead of the store), install the writes (deletes become
        //    tombstones) and release.
        let ops = ctx.access.ops();
        timers.time(Phase::Commit, || {
            log_txn_writes(cluster, txn, ts, &ctx.access.writes);
            for (w, record) in ctx.access.writes.iter().zip(&resolved) {
                match w.kind {
                    WriteKind::Delete => record.install_tombstone(ts),
                    _ => record.install(w.value.clone(), ts),
                }
            }
            for r in &locked {
                r.release(txn);
            }
        });
        ctx.access.release_all_locks(txn);
        Self::commit_epilogue(cluster, ctx);
        Ok(CommittedTxn {
            ts,
            ops,
            distributed: false,
        })
    }

    /// Post-commit pass shared by every commit path: physically reclaim the
    /// tombstones this transaction installed (deferred reclamation on the
    /// table shard) and unwind any record that was materialised for an
    /// insert but never installed (an insert cancelled by a later delete of
    /// the same key in this transaction).
    fn commit_epilogue(cluster: &Cluster, ctx: &mut PrimoCtx<'_>) {
        for w in &ctx.access.writes {
            if w.kind == WriteKind::Delete {
                cluster
                    .partition(w.partition)
                    .store
                    .table(w.table)
                    .reclaim(w.key);
            }
        }
        ctx.access.undo.unwind();
    }

    /// Commit a distributed transaction under WCF (Algorithm 1 commit phase):
    /// no prepare round, no possibility of conflict.
    fn commit_wcf(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        ticket: &TxnTicket,
        ctx: &mut PrimoCtx<'_>,
        timers: &mut PhaseTimers,
    ) -> TxnResult<CommittedTxn> {
        let home = ctx.home;
        let ts = timers.time(Phase::Timestamp, || {
            Self::compute_ts(cluster, ticket, &ctx.access)
        });
        cluster.group_commit.update_ts(ticket, ts);
        let ops = ctx.access.ops();
        let participants = ctx.access.participants(home);

        timers.time(Phase::Commit, || {
            // Durability first: every involved partition logs the write-set
            // while the WCF exclusive locks (taken by the dummy reads) are
            // still held. Shipping the set to the participant's log rides
            // the same one-way batch charged below.
            log_txn_writes(cluster, txn, ts, &ctx.access.writes);
            // Local part: prolong valid intervals of reads, install writes,
            // release locks — all without any communication.
            for r in &ctx.access.reads {
                if r.partition == home
                    && ctx.access.find_write(r.partition, r.table, r.key).is_none()
                {
                    r.record.extend_rts(ts);
                }
            }
            for w in &ctx.access.writes {
                if w.partition == home {
                    Self::install_write(cluster, w, ts);
                }
            }
            for r in &mut ctx.access.reads {
                if r.partition == home && r.locked.is_some() {
                    r.record.release(txn);
                    r.locked = None;
                }
            }

            // Remote part: ship the write-set (with ts) to each participant in
            // one one-way batch; no acknowledgement and no further round trip
            // is needed because the exclusive locks are already held there.
            if !participants.is_empty() {
                cluster.net.one_way_multi(home, &participants);
            }
            for p in &participants {
                for r in &ctx.access.reads {
                    if r.partition == *p
                        && ctx.access.find_write(r.partition, r.table, r.key).is_none()
                    {
                        r.record.extend_rts(ts);
                    }
                }
                for w in &ctx.access.writes {
                    if w.partition == *p {
                        Self::install_write(cluster, w, ts);
                    }
                }
                for r in &mut ctx.access.reads {
                    if r.partition == *p && r.locked.is_some() {
                        r.record.release(txn);
                        r.locked = None;
                    }
                }
            }
        });
        Self::commit_epilogue(cluster, ctx);

        Ok(CommittedTxn {
            ts,
            ops,
            distributed: true,
        })
    }

    /// Commit a distributed transaction with classic 2PC (shared-lock reads
    /// during execution): the ablation path and the read-heavy fallback.
    fn commit_2pc(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        ticket: &TxnTicket,
        ctx: &mut PrimoCtx<'_>,
        timers: &mut PhaseTimers,
    ) -> TxnResult<CommittedTxn> {
        let home = ctx.home;
        let participants = ctx.access.participants(home);

        // Prepare round through the cluster's atomic-commit layer: ship
        // write-sets, acquire exclusive locks everywhere (upgrading shared
        // read locks), wait for every participant's vote (under Paxos Commit
        // the votes are additionally logged quorum-durably).
        let prepared = match timers.time(Phase::TwoPc, || {
            cluster
                .atomic_commit()
                .prepare(cluster, txn, home, &participants)
        }) {
            PrepareOutcome::Prepared(at) => at,
            PrepareOutcome::Aborted(reason) => {
                ctx.abort_cleanup();
                return Err(TxnError::Aborted(reason));
            }
            PrepareOutcome::Orphaned => {
                // Classic 2PC's blocking failure: the coordinator died with
                // the votes in hand and nobody can decide — nothing is
                // cleaned up, the participants stay blocked on this
                // attempt's locks.
                return Err(TxnError::Aborted(AbortReason::CoordinatorCrash));
            }
        };

        let mut locked: Vec<Arc<Record>> = Vec::new();
        let lock_result = timers.time(Phase::TwoPc, || {
            for w in &ctx.access.writes {
                let store = &cluster.partition(w.partition).store;
                let record = resolve_write_record(store, w, txn, &ctx.access.undo)?;
                if record.acquire(txn, LockMode::Exclusive, LockPolicy::WaitDie)
                    != LockRequestResult::Granted
                {
                    if let Some(owner) = record.lock().holder() {
                        cluster.recorder.emit(
                            Some(txn),
                            Some(w.partition),
                            TraceEventKind::LockWait { owner },
                        );
                    }
                    return Err(AbortReason::LockConflict);
                }
                locked.push(Arc::clone(&record));
                recheck_locked_record(&record, txn, w.kind, &store.table(w.table), w.key)?;
            }
            Ok(())
        });
        if let Err(reason) = lock_result {
            ctx.access.undo.unwind();
            for r in &locked {
                r.release(txn);
            }
            // Abort decision still needs to reach the participants.
            cluster
                .atomic_commit()
                .decide_abort(cluster, txn, home, &participants);
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }

        // Timestamp + read validation (TicToc-style, so local transactions
        // can still commit around us).
        let ts = timers.time(Phase::Timestamp, || {
            Self::compute_ts(cluster, ticket, &ctx.access)
        });
        cluster.group_commit.update_ts(ticket, ts);
        cluster
            .recorder
            .emit(Some(txn), Some(home), TraceEventKind::ValidationStart);
        let validation = timers.time(Phase::Commit, || {
            for r in &ctx.access.reads {
                if r.dummy {
                    continue;
                }
                if r.rts >= ts {
                    continue;
                }
                let (wts_now, _) = r.record.timestamps();
                if wts_now != r.wts {
                    return Err(AbortReason::Validation);
                }
                r.record.extend_rts(ts);
            }
            Ok(())
        });
        cluster.recorder.emit(
            Some(txn),
            Some(home),
            TraceEventKind::ValidationOutcome {
                ok: validation.is_ok(),
                reason: validation.err(),
            },
        );
        if let Err(reason) = validation {
            ctx.access.undo.unwind();
            for r in &locked {
                r.release(txn);
            }
            cluster
                .atomic_commit()
                .decide_abort(cluster, txn, home, &participants);
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }

        // Log the write-set under the locks, then install into the
        // resolved-and-locked records.
        let ops = ctx.access.ops();
        timers.time(Phase::Commit, || {
            log_txn_writes(cluster, txn, ts, &ctx.access.writes);
            for (w, record) in ctx.access.writes.iter().zip(&locked) {
                match w.kind {
                    WriteKind::Delete => record.install_tombstone(ts),
                    _ => record.install(w.value.clone(), ts),
                }
            }
        });

        // Commit round: propagate the decision, then release all locks.
        timers.time(Phase::TwoPc, || {
            cluster
                .atomic_commit()
                .decide_commit(cluster, txn, home, &participants, prepared);
        });
        for r in &locked {
            r.release(txn);
        }
        ctx.access.release_all_locks(txn);
        Self::commit_epilogue(cluster, ctx);

        Ok(CommittedTxn {
            ts,
            ops,
            distributed: true,
        })
    }

    /// WCF-mode install: the dummy read pre-locked (and, for inserts,
    /// materialised) the record, so it is fetched and written in place;
    /// deletes become tombstones.
    fn install_write(cluster: &Cluster, w: &primo_runtime::access::WriteEntry, ts: Ts) {
        let store = &cluster.partition(w.partition).store;
        let Some(record) = store.get(w.table, w.key) else {
            // Unreachable in practice: every WCF write is covered by a
            // dummy read that pinned the record under an exclusive lock.
            return;
        };
        match w.kind {
            WriteKind::Delete => record.install_tombstone(ts),
            _ => record.install(w.value.clone(), ts),
        }
    }
}

impl Protocol for PrimoProtocol {
    fn name(&self) -> &'static str {
        self.label
    }

    fn execute_once(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        program: &dyn TxnProgram,
        ticket: &TxnTicket,
        timers: &mut PhaseTimers,
        fanout: &ReadFanout,
    ) -> TxnResult<CommittedTxn> {
        let home = program.home_partition();
        let wcf = self.use_wcf_for(program);
        let mut ctx = PrimoCtx::new(cluster, ticket, txn, home, wcf).with_fanout(fanout);

        // Execution phase: run the program (reads lock per mode, writes are
        // buffered).
        let exec = timers.time(Phase::Execute, || program.execute(&mut ctx));
        if let Err(e) = exec {
            let reason = ctx.dead.unwrap_or(e.reason());
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }
        if let Some(reason) = ctx.dead {
            ctx.abort_cleanup();
            return Err(TxnError::Aborted(reason));
        }

        match ctx.mode() {
            Mode::Local => self.commit_local_tictoc(cluster, txn, ticket, &mut ctx, timers),
            Mode::Distributed => {
                if wcf {
                    self.commit_wcf(cluster, txn, ticket, &mut ctx, timers)
                } else {
                    self.commit_2pc(cluster, txn, ticket, &mut ctx, timers)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_common::{PartitionId, TableId, Value};
    use primo_runtime::txn::{IncrementProgram, TxnContext};
    use primo_runtime::worker::run_single_txn;

    fn loaded_cluster(n: usize) -> Arc<Cluster> {
        let cluster = Cluster::new(ClusterConfig::for_tests(n));
        for p in 0..n as u32 {
            for k in 0..64u64 {
                cluster
                    .partition(PartitionId(p))
                    .store
                    .insert(TableId(0), k, Value::from_u64(0));
            }
        }
        cluster
    }

    #[test]
    fn local_transaction_commits_and_installs() {
        let cluster = loaded_cluster(2);
        let protocol = PrimoProtocol::full();
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![
                (PartitionId(0), TableId(0), 1),
                (PartitionId(0), TableId(0), 2),
            ],
        };
        run_single_txn(&cluster, &protocol, &prog).unwrap();
        assert_eq!(
            cluster
                .partition(PartitionId(0))
                .store
                .get(TableId(0), 1)
                .unwrap()
                .read()
                .value
                .as_u64(),
            1
        );
        cluster.shutdown();
    }

    #[test]
    fn distributed_transaction_commits_without_2pc_roundtrips() {
        let cluster = loaded_cluster(3);
        let protocol = PrimoProtocol::full();
        let before = cluster.net.round_trips_charged();
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![
                (PartitionId(0), TableId(0), 1),
                (PartitionId(1), TableId(0), 1),
                (PartitionId(2), TableId(0), 1),
            ],
        };
        run_single_txn(&cluster, &protocol, &prog).unwrap();
        let used = cluster.net.round_trips_charged() - before;
        // One round trip per remote read; zero extra for commit.
        assert_eq!(used, 2, "WCF must not add prepare/commit round trips");
        for p in 0..3u32 {
            assert_eq!(
                cluster
                    .partition(PartitionId(p))
                    .store
                    .get(TableId(0), 1)
                    .unwrap()
                    .read()
                    .value
                    .as_u64(),
                1
            );
        }
        // All locks are released after commit.
        for p in 0..3u32 {
            assert!(!cluster
                .partition(PartitionId(p))
                .store
                .get(TableId(0), 1)
                .unwrap()
                .lock()
                .is_locked());
        }
        cluster.shutdown();
    }

    #[test]
    fn non_wcf_variant_pays_2pc_roundtrips() {
        let cluster = loaded_cluster(2);
        let protocol = PrimoProtocol::without_wcf();
        let before = cluster.net.round_trips_charged();
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![
                (PartitionId(0), TableId(0), 3),
                (PartitionId(1), TableId(0), 3),
            ],
        };
        run_single_txn(&cluster, &protocol, &prog).unwrap();
        let used = cluster.net.round_trips_charged() - before;
        // 1 remote read + prepare + commit = 3 round trips.
        assert_eq!(used, 3, "2PC path must pay prepare and commit rounds");
        cluster.shutdown();
    }

    #[test]
    fn writes_carry_the_same_timestamp_on_all_partitions() {
        let cluster = loaded_cluster(2);
        let protocol = PrimoProtocol::full();
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![
                (PartitionId(0), TableId(0), 7),
                (PartitionId(1), TableId(0), 7),
            ],
        };
        run_single_txn(&cluster, &protocol, &prog).unwrap();
        let (w0, r0) = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 7)
            .unwrap()
            .timestamps();
        let (w1, r1) = cluster
            .partition(PartitionId(1))
            .store
            .get(TableId(0), 7)
            .unwrap()
            .timestamps();
        assert_eq!(w0, w1);
        assert_eq!(r0, r1);
        assert!(w0 > 0);
        cluster.shutdown();
    }

    #[test]
    fn user_abort_leaves_no_effects_and_no_locks() {
        struct AbortingProgram;
        impl TxnProgram for AbortingProgram {
            fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                ctx.read(PartitionId(1), TableId(0), 9)?;
                ctx.write(PartitionId(1), TableId(0), 9, Value::from_u64(123))?;
                Err(TxnError::Aborted(AbortReason::UserAbort))
            }
            fn home_partition(&self) -> PartitionId {
                PartitionId(0)
            }
        }
        let cluster = loaded_cluster(2);
        let protocol = PrimoProtocol::full();
        let err = run_single_txn(&cluster, &protocol, &AbortingProgram).unwrap_err();
        assert_eq!(err, AbortReason::UserAbort);
        let rec = cluster
            .partition(PartitionId(1))
            .store
            .get(TableId(0), 9)
            .unwrap();
        assert_eq!(rec.read().value.as_u64(), 0, "no effects installed");
        assert!(!rec.lock().is_locked(), "locks released after user abort");
        cluster.shutdown();
    }

    #[test]
    #[should_panic(expected = "must be a fraction")]
    fn read_heavy_fallback_rejects_nan() {
        let _ = PrimoProtocol::with_read_heavy_fallback(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be a fraction")]
    fn read_heavy_fallback_rejects_out_of_range() {
        let _ = PrimoProtocol::with_read_heavy_fallback(1.5);
    }

    #[test]
    fn read_heavy_fallback_accepts_boundary_values() {
        let _ = PrimoProtocol::with_read_heavy_fallback(0.0);
        let _ = PrimoProtocol::with_read_heavy_fallback(1.0);
        let _ = PrimoProtocol::with_read_heavy_fallback(0.8);
    }

    #[test]
    fn insert_creates_missing_record_at_commit() {
        struct InsertProgram;
        impl TxnProgram for InsertProgram {
            fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                // Key 5000 was never loaded; a distributed insert must create
                // it on the remote partition.
                ctx.read(PartitionId(1), TableId(0), 1)?;
                ctx.insert(PartitionId(1), TableId(0), 5000, Value::from_u64(42))
            }
            fn home_partition(&self) -> PartitionId {
                PartitionId(0)
            }
        }
        let cluster = loaded_cluster(2);
        run_single_txn(&cluster, &PrimoProtocol::full(), &InsertProgram).unwrap();
        assert_eq!(
            cluster
                .partition(PartitionId(1))
                .store
                .get(TableId(0), 5000)
                .unwrap()
                .read()
                .value
                .as_u64(),
            42
        );
        cluster.shutdown();
    }

    #[test]
    fn plain_write_to_missing_record_aborts_not_found() {
        struct BlindPut {
            home: PartitionId,
            target: PartitionId,
        }
        impl TxnProgram for BlindPut {
            fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                // `write` is an update: key 7777 does not exist anywhere.
                ctx.read(self.target, TableId(0), 1)?;
                ctx.write(self.target, TableId(0), 7777, Value::from_u64(1))
            }
            fn home_partition(&self) -> PartitionId {
                self.home
            }
        }
        let cluster = loaded_cluster(2);
        // Local and distributed paths must both reject the phantom update.
        for target in [PartitionId(0), PartitionId(1)] {
            let err = run_single_txn(
                &cluster,
                &PrimoProtocol::full(),
                &BlindPut {
                    home: PartitionId(0),
                    target,
                },
            )
            .unwrap_err();
            assert_eq!(err, AbortReason::NotFound, "target {target}");
            assert!(
                cluster
                    .partition(target)
                    .store
                    .get(TableId(0), 7777)
                    .is_none(),
                "phantom record must not be created on {target}"
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn aborted_insert_leaves_no_phantom_record() {
        // The PR 1 correctness hole: an insert materialises its record before
        // the commit decision (dummy read in WCF mode); an abort must unlink
        // it again — locally and remotely.
        struct AbortedInsert {
            target: PartitionId,
        }
        impl TxnProgram for AbortedInsert {
            fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                ctx.read(self.target, TableId(0), 1)?;
                ctx.insert(self.target, TableId(0), 9_999, Value::from_u64(1))?;
                Err(TxnError::Aborted(AbortReason::UserAbort))
            }
            fn home_partition(&self) -> PartitionId {
                PartitionId(0)
            }
        }
        let cluster = loaded_cluster(2);
        for target in [PartitionId(0), PartitionId(1)] {
            let err = run_single_txn(&cluster, &PrimoProtocol::full(), &AbortedInsert { target })
                .unwrap_err();
            assert_eq!(err, AbortReason::UserAbort);
            assert!(
                cluster
                    .partition(target)
                    .store
                    .get(TableId(0), 9_999)
                    .is_none(),
                "aborted insert left a phantom on {target}"
            );
            // The key still does not exist: a plain put must abort NotFound.
            struct Put {
                target: PartitionId,
            }
            impl TxnProgram for Put {
                fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                    ctx.write(self.target, TableId(0), 9_999, Value::from_u64(2))
                }
                fn home_partition(&self) -> PartitionId {
                    PartitionId(0)
                }
            }
            let err =
                run_single_txn(&cluster, &PrimoProtocol::full(), &Put { target }).unwrap_err();
            assert_eq!(err, AbortReason::NotFound, "target {target}");
        }
        cluster.shutdown();
    }

    #[test]
    fn committed_delete_reclaims_the_record() {
        struct DeleteKey {
            target: PartitionId,
        }
        impl TxnProgram for DeleteKey {
            fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                // Touch a second key so the remote case is distributed.
                ctx.read(self.target, TableId(0), 1)?;
                ctx.delete(self.target, TableId(0), 7)
            }
            fn home_partition(&self) -> PartitionId {
                PartitionId(0)
            }
        }
        let cluster = loaded_cluster(2);
        for target in [PartitionId(0), PartitionId(1)] {
            run_single_txn(&cluster, &PrimoProtocol::full(), &DeleteKey { target }).unwrap();
            assert!(
                cluster.partition(target).store.get(TableId(0), 7).is_none(),
                "deleted record must be physically reclaimed on {target}"
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn aborted_delete_keeps_the_record_visible() {
        struct AbortedDelete;
        impl TxnProgram for AbortedDelete {
            fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                ctx.read(PartitionId(1), TableId(0), 1)?;
                ctx.delete(PartitionId(1), TableId(0), 8)?;
                Err(TxnError::Aborted(AbortReason::UserAbort))
            }
            fn home_partition(&self) -> PartitionId {
                PartitionId(0)
            }
        }
        let cluster = loaded_cluster(2);
        let before = cluster
            .partition(PartitionId(1))
            .store
            .get(TableId(0), 8)
            .unwrap()
            .read();
        run_single_txn(&cluster, &PrimoProtocol::full(), &AbortedDelete).unwrap_err();
        let rec = cluster
            .partition(PartitionId(1))
            .store
            .get(TableId(0), 8)
            .expect("record survives the aborted delete");
        assert!(rec.is_visible_to(TxnId::new(PartitionId(0), 999_999)));
        assert_eq!(rec.read().value.as_u64(), before.value.as_u64());
        assert!(!rec.lock().is_locked());
        cluster.shutdown();
    }

    #[test]
    fn insert_then_delete_in_one_txn_is_a_no_op() {
        struct InsertDelete {
            target: PartitionId,
        }
        impl TxnProgram for InsertDelete {
            fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                // Distributed so the WCF dummy read materialises the record
                // before the delete cancels the insert.
                ctx.read(self.target, TableId(0), 1)?;
                ctx.insert(self.target, TableId(0), 8_888, Value::from_u64(1))?;
                ctx.delete(self.target, TableId(0), 8_888)
            }
            fn home_partition(&self) -> PartitionId {
                PartitionId(0)
            }
        }
        let cluster = loaded_cluster(2);
        for target in [PartitionId(0), PartitionId(1)] {
            run_single_txn(&cluster, &PrimoProtocol::full(), &InsertDelete { target }).unwrap();
            assert!(
                cluster
                    .partition(target)
                    .store
                    .get(TableId(0), 8_888)
                    .is_none(),
                "cancelled insert must leave no record behind on {target}"
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn delete_then_insert_replaces_the_record() {
        struct Replace;
        impl TxnProgram for Replace {
            fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                ctx.delete(PartitionId(0), TableId(0), 3)?;
                // Reading the deleted key inside the txn sees the deletion …
                assert_eq!(
                    ctx.read(PartitionId(0), TableId(0), 3)
                        .unwrap_err()
                        .reason(),
                    AbortReason::NotFound
                );
                // … but the context must survive the buffered NotFound so the
                // insert can recreate the key.
                Err(TxnError::Aborted(AbortReason::UserAbort))
            }
            fn home_partition(&self) -> PartitionId {
                PartitionId(0)
            }
        }
        // Read-your-deletes marks the context dead; a delete+insert without
        // the probing read commits as a replace.
        struct CleanReplace;
        impl TxnProgram for CleanReplace {
            fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                ctx.delete(PartitionId(0), TableId(0), 3)?;
                ctx.insert(PartitionId(0), TableId(0), 3, Value::from_u64(777))
            }
            fn home_partition(&self) -> PartitionId {
                PartitionId(0)
            }
        }
        let cluster = loaded_cluster(1);
        run_single_txn(&cluster, &PrimoProtocol::full(), &Replace).unwrap_err();
        run_single_txn(&cluster, &PrimoProtocol::full(), &CleanReplace).unwrap();
        assert_eq!(
            cluster
                .partition(PartitionId(0))
                .store
                .get(TableId(0), 3)
                .unwrap()
                .read()
                .value
                .as_u64(),
            777
        );
        cluster.shutdown();
    }

    #[test]
    fn read_heavy_fallback_routes_to_2pc() {
        struct ReadHeavy;
        impl TxnProgram for ReadHeavy {
            fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
                ctx.read(PartitionId(1), TableId(0), 1)?;
                ctx.read(PartitionId(1), TableId(0), 2)?;
                Ok(())
            }
            fn home_partition(&self) -> PartitionId {
                PartitionId(0)
            }
            fn read_fraction_hint(&self) -> f64 {
                0.95
            }
        }
        let cluster = loaded_cluster(2);
        let protocol = PrimoProtocol::with_read_heavy_fallback(0.8);
        let before = cluster.net.round_trips_charged();
        run_single_txn(&cluster, &protocol, &ReadHeavy).unwrap();
        // Fallback = 2PC path: 2 remote reads + prepare + commit = 4.
        assert_eq!(cluster.net.round_trips_charged() - before, 4);
        cluster.shutdown();
    }

    #[test]
    fn concurrent_increments_preserve_the_sum() {
        // Serializability smoke test: N concurrent transactions increment the
        // same two records (one local, one remote); the final sum must equal
        // the number of committed increments times 2.
        let cluster = loaded_cluster(2);
        let protocol = Arc::new(PrimoProtocol::full());
        let mut handles = Vec::new();
        let committed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for w in 0..4 {
            let cluster = Arc::clone(&cluster);
            let protocol = Arc::clone(&protocol);
            let committed = Arc::clone(&committed);
            handles.push(std::thread::spawn(move || {
                for i in 0..10 {
                    let prog = IncrementProgram {
                        home: PartitionId((w % 2) as u32),
                        accesses: vec![
                            (PartitionId(0), TableId(0), 42),
                            (PartitionId(1), TableId(0), 42),
                        ],
                    };
                    if run_single_txn(&cluster, protocol.as_ref(), &prog).is_ok() {
                        committed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                    let _ = i;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let n = committed.load(std::sync::atomic::Ordering::SeqCst);
        let v0 = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 42)
            .unwrap()
            .read()
            .value
            .as_u64();
        let v1 = cluster
            .partition(PartitionId(1))
            .store
            .get(TableId(0), 42)
            .unwrap()
            .read()
            .value
            .as_u64();
        assert_eq!(v0, n, "partition 0 counter must equal committed count");
        assert_eq!(v1, n, "partition 1 counter must equal committed count");
        cluster.shutdown();
    }
}
