//! **Primo** — the paper's contribution: a distributed transaction protocol
//! that eliminates two-phase commit while staying general.
//!
//! The two pillars:
//!
//! * [`context`] / [`protocol`] — the **write-conflict-free (WCF)**
//!   concurrency control of §4: local transactions run plain TicToc;
//!   a transaction switches to distributed mode on its first remote access
//!   and from then on acquires *exclusive* locks for every read, so that the
//!   commit phase can never hit a conflict and needs no prepare round.
//!   Blind writes are covered by dummy reads, deadlocks are prevented by
//!   WAIT_DIE, and an optional 2PC fallback handles the read-heavy corner the
//!   paper's analysis identifies (§4.3).
//! * the **watermark-based group commit** of §5 lives in `primo-wal`
//!   ([`primo_wal::WatermarkCommit`]); this crate wires the protocol to it:
//!   coordinators constrain timestamps by the watermark floor, participants
//!   raise record floors on remote reads, and the worker returns a result
//!   only once the global watermark passes the transaction's timestamp.
//!
//! Downstream users and examples interact with the system through the
//! `primo_repro::Primo` facade crate, which wires this protocol into a
//! cluster handle with sessions, experiments and a protocol registry.

pub mod analysis;
pub mod context;
pub mod protocol;

pub use protocol::PrimoProtocol;
