//! The transaction context Primo hands to a running program.
//!
//! A transaction starts in **local mode** (TicToc: reads take no locks) and
//! switches to **distributed mode** on its first remote access (§4.2.2).
//! In distributed mode every read — local or remote — takes an *exclusive*
//! lock (the WCF rule), blind writes are pre-locked through dummy reads, and
//! remote reads raise the watermark floor of the records they touch (§5.1,
//! rule R2 case 2).
//!
//! With `wcf = false` (the "Primo w/o WCF" ablation and the read-heavy 2PC
//! fallback) distributed reads take shared locks instead and the commit phase
//! runs classic 2PC (see [`crate::protocol`]).

use primo_common::{AbortReason, Key, PartitionId, TableId, TxnError, TxnId, TxnResult, Value};
use primo_runtime::access::{
    check_visible, claim_insert_slot, recheck_locked_record, AccessSet, ReadEntry, WriteEntry,
    WriteKind,
};
use primo_runtime::cluster::Cluster;
use primo_runtime::prefetch::{PrefetchOutcome, ReadFanout};
use primo_runtime::txn::TxnContext;
use primo_storage::{LockMode, LockPolicy, LockRequestResult, Record};
use primo_trace::TraceEventKind;
use primo_wal::TxnTicket;
use std::sync::Arc;

/// Execution mode of a Primo transaction (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No remote access seen yet: plain TicToc, no locks on reads.
    Local,
    /// Distributed: exclusive (or shared, for the non-WCF variant) locks on
    /// every read.
    Distributed,
}

/// The context for one Primo transaction attempt.
pub struct PrimoCtx<'a> {
    pub(crate) cluster: &'a Cluster,
    pub(crate) ticket: &'a TxnTicket,
    pub(crate) txn: TxnId,
    pub(crate) home: PartitionId,
    pub(crate) mode: Mode,
    /// True = WCF (exclusive locks for distributed reads); false = shared
    /// locks + 2PC commit (ablation / read-heavy fallback).
    pub(crate) wcf: bool,
    pub(crate) access: AccessSet,
    /// Sticky abort: once an operation fails, all further operations fail
    /// with the same reason (the program unwinds by propagating the error).
    pub(crate) dead: Option<AbortReason>,
    /// The attempt's batched-prefetch buffer, when the worker resolved one:
    /// consulted before paying a per-record remote round trip, and fed the
    /// observed remote access set for footprint learning.
    pub(crate) fanout: Option<&'a ReadFanout>,
}

impl<'a> PrimoCtx<'a> {
    pub fn new(
        cluster: &'a Cluster,
        ticket: &'a TxnTicket,
        txn: TxnId,
        home: PartitionId,
        wcf: bool,
    ) -> Self {
        PrimoCtx {
            cluster,
            ticket,
            txn,
            home,
            mode: Mode::Local,
            wcf,
            access: AccessSet::new(),
            dead: None,
            fanout: None,
        }
    }

    /// Attach the attempt's prefetch buffer (see
    /// [`primo_runtime::prefetch`]). Without it every remote access pays the
    /// sequential per-record round trip, as before.
    pub fn with_fanout(mut self, fanout: &'a ReadFanout) -> Self {
        self.fanout = Some(fanout);
        self
    }

    pub fn mode(&self) -> Mode {
        self.mode
    }

    pub fn access(&self) -> &AccessSet {
        &self.access
    }

    fn fail(&mut self, reason: AbortReason) -> TxnError {
        self.dead = Some(reason);
        TxnError::Aborted(reason)
    }

    fn read_lock_mode(&self) -> LockMode {
        if self.wcf {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        }
    }

    /// Fetch the record backing `(table, key)` on partition `p`, applying the
    /// lifecycle visibility rules: tombstones read as `NotFound`, another
    /// transaction's uncommitted insert as a retryable conflict.
    fn read_record(
        &self,
        p: PartitionId,
        table: TableId,
        key: Key,
    ) -> Result<Arc<Record>, AbortReason> {
        let store = &self.cluster.partition(p).store;
        match store.get(table, key) {
            Some(r) => check_visible(&r, self.txn).map(|()| r),
            None => Err(AbortReason::NotFound),
        }
    }

    /// Claim (or create / revive) the record backing an insert, logging the
    /// undo so an abort unlinks it again.
    fn record_for_insert(
        &self,
        p: PartitionId,
        table: TableId,
        key: Key,
    ) -> Result<Arc<Record>, AbortReason> {
        let table = self.cluster.partition(p).store.table(table);
        claim_insert_slot(table, key, self.txn, &self.access.undo)
    }

    /// Acquire a lock for this transaction under WAIT_DIE.
    fn acquire(&self, record: &Record, mode: LockMode) -> LockRequestResult {
        record.acquire(self.txn, mode, LockPolicy::WaitDie)
    }

    /// Pay the network cost of touching `(table, key)` on remote partition
    /// `p` — unless the attempt's batched fan-out already covers it. A
    /// *value* read hits only if the record is unchanged since the fan-out; a
    /// *dummy* read (lock-only, no value consumed) hits on presence, since
    /// the exclusive lock plus the post-lock lifecycle re-check pin the live
    /// record either way. A stale or missing entry falls back to the
    /// per-record round trip, exactly the sequential path.
    fn charge_remote_access(
        &mut self,
        p: PartitionId,
        table: TableId,
        key: Key,
        dummy: bool,
    ) -> TxnResult<()> {
        let outcome = match self.fanout {
            None => PrefetchOutcome::Miss,
            Some(f) => {
                f.observe(p, table, key);
                if dummy {
                    if f.covers(p, table, key) {
                        PrefetchOutcome::Hit
                    } else {
                        PrefetchOutcome::Miss
                    }
                } else {
                    f.check_value(self.cluster, p, table, key)
                }
            }
        };
        match outcome {
            PrefetchOutcome::Hit => {
                // Served from the batch — but a partition that crashed since
                // the fan-out still fails the access, exactly as the round
                // trip would.
                if self.cluster.net.is_crashed(p) {
                    return Err(self.fail(AbortReason::RemoteUnavailable));
                }
                self.cluster.note_prefetch_hit();
                self.cluster.recorder.emit(
                    Some(self.txn),
                    Some(self.home),
                    TraceEventKind::PrefetchHit,
                );
                Ok(())
            }
            outcome => {
                if self.fanout.is_some() {
                    if outcome == PrefetchOutcome::Stale {
                        self.cluster.note_prefetch_stale();
                        self.cluster.recorder.emit(
                            Some(self.txn),
                            Some(self.home),
                            TraceEventKind::PrefetchStale,
                        );
                    } else {
                        self.cluster.note_prefetch_miss();
                    }
                }
                if !self.cluster.net.round_trip(self.home, p) {
                    return Err(self.fail(AbortReason::RemoteUnavailable));
                }
                Ok(())
            }
        }
    }

    /// Switch from local to distributed mode: lock every record read so far
    /// and verify it has not changed since the unlocked (TicToc) read; lock
    /// dummy reads for any blind writes buffered while still local (§4.2.2).
    fn switch_to_distributed(&mut self) -> TxnResult<()> {
        debug_assert_eq!(self.mode, Mode::Local);
        let mode = self.read_lock_mode();
        for i in 0..self.access.reads.len() {
            let (record, observed_wts) = {
                let e = &self.access.reads[i];
                (Arc::clone(&e.record), e.wts)
            };
            if self.acquire(&record, mode) != LockRequestResult::Granted {
                return Err(self.fail(AbortReason::WaitDie));
            }
            self.access.reads[i].locked = Some(mode);
            if record.wts() != observed_wts {
                // The record changed between the optimistic local read and
                // the lock acquisition: abort and retry in distributed mode.
                return Err(self.fail(AbortReason::ModeSwitch));
            }
        }
        self.mode = Mode::Distributed;
        if self.wcf {
            // Blind writes buffered while local need their dummy reads now so
            // that write-set ⊆ read-set holds before the commit phase. Only
            // inserts may create the record they pre-lock.
            let pending: Vec<WriteEntry> = self
                .access
                .writes
                .iter()
                .filter(|w| self.access.find_read(w.partition, w.table, w.key).is_none())
                .cloned()
                .collect();
            for w in pending {
                self.dummy_read(w.partition, w.table, w.key, w.kind == WriteKind::Insert)?;
            }
        }
        Ok(())
    }

    /// Acquire an exclusive lock on a record only to cover a blind write
    /// (dummy read, §4.2.2 "Blind-write Handling"). `create` is true only
    /// for insert-kind writes — a plain write to a missing record aborts.
    fn dummy_read(
        &mut self,
        p: PartitionId,
        table: TableId,
        key: Key,
        create: bool,
    ) -> TxnResult<()> {
        if self.access.find_read(p, table, key).is_some() {
            return Ok(());
        }
        let remote = p != self.home;
        if remote {
            // A dummy read piggybacks on the attempt's batched fan-out when
            // the write key was part of the footprint (hinted write keys /
            // learned retries); only an uncovered one still costs its own
            // round trip (studied in Fig 9).
            self.charge_remote_access(p, table, key, true)?;
        }
        let record = match if create {
            self.record_for_insert(p, table, key)
        } else {
            self.read_record(p, table, key)
        } {
            Ok(r) => r,
            Err(reason) => return Err(self.fail(reason)),
        };
        if self.acquire(&record, LockMode::Exclusive) != LockRequestResult::Granted {
            return Err(self.fail(AbortReason::WaitDie));
        }
        // Re-check the lifecycle now that the lock pins it (an
        // insert-covering dummy read bounces retryably: the retry revives or
        // recreates the slot).
        let kind = if create {
            WriteKind::Insert
        } else {
            WriteKind::Put
        };
        if let Err(reason) = recheck_locked_record(
            &record,
            self.txn,
            kind,
            &self.cluster.partition(p).store.table(table),
            key,
        ) {
            return Err(self.fail(reason));
        }
        if remote {
            let floor = self.cluster.group_commit.ts_floor(p);
            record.raise_watermark_floor(floor);
            let row = record.read();
            self.cluster
                .group_commit
                .add_participant(self.ticket, p, row.wts);
        }
        let row = record.read();
        self.access.reads.push(ReadEntry {
            partition: p,
            table,
            key,
            record,
            wts: row.wts,
            rts: row.rts,
            locked: Some(LockMode::Exclusive),
            dummy: true,
        });
        Ok(())
    }

    /// Shared body of `write` / `insert`: buffer the entry and, in
    /// distributed WCF mode, pre-lock blind writes via a dummy read. The
    /// effective kind after buffering decides whether the dummy read may
    /// create the record (insert stickiness: a put over a buffered insert
    /// still refers to the record this transaction creates).
    fn buffered_write(&mut self, entry: WriteEntry) -> TxnResult<()> {
        if let Some(reason) = self.dead {
            return Err(TxnError::Aborted(reason));
        }
        let (p, table, key) = (entry.partition, entry.table, entry.key);
        // A write to a remote partition makes the transaction distributed
        // even if nothing was read remotely (blind remote write).
        if self.mode == Mode::Local && p != self.home {
            self.switch_to_distributed()?;
        }
        self.access.buffer_write(entry);
        if self.mode == Mode::Distributed
            && self.wcf
            && self.access.find_read(p, table, key).is_none()
        {
            // Blind write in distributed mode: pre-lock via a dummy read so
            // that installing the write-set can never conflict.
            let i = self
                .access
                .find_write(p, table, key)
                .expect("entry was just buffered");
            let create = self.access.writes[i].kind == WriteKind::Insert;
            self.dummy_read(p, table, key, create)?;
        }
        Ok(())
    }

    /// Abort cleanup: unwind every record this attempt materialised (created
    /// or revived for inserts — the undo runs while the exclusive locks are
    /// still held), release every lock and notify participants (one-way
    /// ABORT messages — no acknowledgements are needed, §4.2.2).
    pub(crate) fn abort_cleanup(&mut self) {
        let parts = self.access.participants(self.home);
        if !parts.is_empty() {
            self.cluster.net.one_way_multi(self.home, &parts);
        }
        self.access.abort_unwind(self.txn);
    }
}

impl TxnContext for PrimoCtx<'_> {
    fn read(&mut self, p: PartitionId, table: TableId, key: Key) -> TxnResult<Value> {
        if let Some(reason) = self.dead {
            return Err(TxnError::Aborted(reason));
        }
        // Read-your-own-writes (and your own deletes) from the buffer.
        if let Some(i) = self.access.find_write(p, table, key) {
            if self.access.writes[i].kind == WriteKind::Delete {
                return Err(self.fail(AbortReason::NotFound));
            }
            return Ok(self.access.writes[i].value.clone());
        }
        // Repeated read of the same record.
        if let Some(i) = self.access.find_read(p, table, key) {
            let e = &self.access.reads[i];
            if !e.dummy {
                return Ok(e.record.read().value);
            }
        }

        if self.mode == Mode::Local && p != self.home {
            self.switch_to_distributed()?;
        }

        match self.mode {
            Mode::Local => {
                // TicToc read: no lock, remember the observed interval.
                let record = self
                    .read_record(p, table, key)
                    .map_err(|reason| self.fail(reason))?;
                let row = record.read();
                let value = row.value.clone();
                self.access.reads.push(ReadEntry {
                    partition: p,
                    table,
                    key,
                    record,
                    wts: row.wts,
                    rts: row.rts,
                    locked: None,
                    dummy: false,
                });
                Ok(value)
            }
            Mode::Distributed => {
                let remote = p != self.home;
                if remote {
                    self.charge_remote_access(p, table, key, false)?;
                } else if self.cluster.net.is_crashed(p) {
                    return Err(self.fail(AbortReason::RemoteUnavailable));
                }
                let record = self
                    .read_record(p, table, key)
                    .map_err(|reason| self.fail(reason))?;
                let mode = self.read_lock_mode();
                if self.acquire(&record, mode) != LockRequestResult::Granted {
                    return Err(self.fail(AbortReason::WaitDie));
                }
                // Re-check the lifecycle now that the lock pins it: a delete
                // may have committed between resolution and acquisition.
                if let Err(reason) = recheck_locked_record(
                    &record,
                    self.txn,
                    WriteKind::Put,
                    &self.cluster.partition(p).store.table(table),
                    key,
                ) {
                    return Err(self.fail(reason));
                }
                if remote && self.wcf {
                    // Rule R2 (participant side): make sure the transaction's
                    // final timestamp will exceed the participant's watermark.
                    let floor = self.cluster.group_commit.ts_floor(p);
                    record.raise_watermark_floor(floor);
                }
                let row = record.read();
                if remote {
                    self.cluster
                        .group_commit
                        .add_participant(self.ticket, p, row.wts);
                }
                let value = row.value.clone();
                self.access.reads.push(ReadEntry {
                    partition: p,
                    table,
                    key,
                    record,
                    wts: row.wts,
                    rts: row.rts,
                    locked: Some(mode),
                    dummy: false,
                });
                Ok(value)
            }
        }
    }

    fn write(&mut self, p: PartitionId, table: TableId, key: Key, value: Value) -> TxnResult<()> {
        // Sticky abort first: a dead context must keep its original (often
        // retryable) reason rather than have it overwritten below.
        if let Some(reason) = self.dead {
            return Err(TxnError::Aborted(reason));
        }
        // A plain write to a key this transaction deleted sees the deletion:
        // the key no longer exists, so the update aborts like any other
        // update of a missing record.
        if let Some(i) = self.access.find_write(p, table, key) {
            if self.access.writes[i].kind == WriteKind::Delete {
                return Err(self.fail(AbortReason::NotFound));
            }
        }
        self.buffered_write(WriteEntry::put(p, table, key, value))
    }

    fn insert(&mut self, p: PartitionId, table: TableId, key: Key, value: Value) -> TxnResult<()> {
        // Inserts behave like blind writes, but carry the create-if-absent
        // intent: the record is created at commit (or by the dummy read in
        // distributed mode) instead of aborting with NotFound. An insert
        // over a buffered delete recreates the key (the buffer merge turns
        // the entry back into an insert).
        self.buffered_write(WriteEntry::insert(p, table, key, value))
    }

    fn delete(&mut self, p: PartitionId, table: TableId, key: Key) -> TxnResult<()> {
        if let Some(reason) = self.dead {
            return Err(TxnError::Aborted(reason));
        }
        if let Some(i) = self.access.find_write(p, table, key) {
            match self.access.writes[i].kind {
                // Deleting a key this transaction inserted cancels the
                // insert: the key never becomes visible. A record already
                // materialised for it (dummy read) is unlinked by the
                // commit epilogue's undo pass, since nothing installs it.
                WriteKind::Insert => {
                    self.access.writes.remove(i);
                    return Ok(());
                }
                // The key is already gone from this transaction's view.
                WriteKind::Delete => return Err(self.fail(AbortReason::NotFound)),
                WriteKind::Put => {
                    self.access.writes[i] = WriteEntry::delete(p, table, key);
                    return Ok(());
                }
            }
        }
        // A fresh delete is a blind write that must observe an existing
        // record: in distributed WCF mode the dummy read pre-locks it (and
        // aborts NotFound if it is missing); in local mode the commit-time
        // resolution enforces the same contract.
        self.buffered_write(WriteEntry::delete(p, table, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use std::sync::Arc as StdArc;

    fn setup() -> (StdArc<Cluster>, TxnId) {
        let cluster = Cluster::new(ClusterConfig::for_tests(2));
        for p in 0..2u32 {
            for k in 0..100u64 {
                cluster
                    .partition(PartitionId(p))
                    .store
                    .insert(TableId(0), k, Value::from_u64(k));
            }
        }
        let txn = cluster.next_txn_id(PartitionId(0));
        (cluster, txn)
    }

    #[test]
    fn local_reads_take_no_locks() {
        let (cluster, txn) = setup();
        let ticket = cluster.group_commit.begin_txn(PartitionId(0), txn);
        let mut ctx = PrimoCtx::new(&cluster, &ticket, txn, PartitionId(0), true);
        let v = ctx.read(PartitionId(0), TableId(0), 7).unwrap();
        assert_eq!(v.as_u64(), 7);
        assert_eq!(ctx.mode(), Mode::Local);
        let rec = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 7)
            .unwrap();
        assert!(!rec.lock().is_locked());
        cluster.shutdown();
    }

    #[test]
    fn remote_read_switches_mode_and_locks_exclusively() {
        let (cluster, txn) = setup();
        let ticket = cluster.group_commit.begin_txn(PartitionId(0), txn);
        let mut ctx = PrimoCtx::new(&cluster, &ticket, txn, PartitionId(0), true);
        ctx.read(PartitionId(0), TableId(0), 1).unwrap();
        ctx.read(PartitionId(1), TableId(0), 2).unwrap();
        assert_eq!(ctx.mode(), Mode::Distributed);
        // Both the earlier local read and the remote read are now X-locked.
        let local = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 1)
            .unwrap();
        let remote = cluster
            .partition(PartitionId(1))
            .store
            .get(TableId(0), 2)
            .unwrap();
        assert!(local.lock().held_by(txn));
        assert!(remote.lock().held_by(txn));
        assert!(remote
            .lock()
            .exclusively_locked_by_other(TxnId::new(PartitionId(1), 999)));
        assert_eq!(ticket.participants(), vec![PartitionId(1)]);
        ctx.abort_cleanup();
        assert!(!local.lock().is_locked());
        cluster.shutdown();
    }

    #[test]
    fn blind_write_gets_dummy_read_lock() {
        let (cluster, txn) = setup();
        let ticket = cluster.group_commit.begin_txn(PartitionId(0), txn);
        let mut ctx = PrimoCtx::new(&cluster, &ticket, txn, PartitionId(0), true);
        // Force distributed mode with a remote read, then blind-write another
        // remote key.
        ctx.read(PartitionId(1), TableId(0), 3).unwrap();
        ctx.write(PartitionId(1), TableId(0), 4, Value::from_u64(99))
            .unwrap();
        let rec = cluster
            .partition(PartitionId(1))
            .store
            .get(TableId(0), 4)
            .unwrap();
        assert!(rec.lock().held_by(txn));
        let dummy = ctx
            .access()
            .reads
            .iter()
            .find(|r| r.key == 4)
            .expect("dummy read entry exists");
        assert!(dummy.dummy);
        ctx.abort_cleanup();
        cluster.shutdown();
    }

    #[test]
    fn read_your_own_writes() {
        let (cluster, txn) = setup();
        let ticket = cluster.group_commit.begin_txn(PartitionId(0), txn);
        let mut ctx = PrimoCtx::new(&cluster, &ticket, txn, PartitionId(0), true);
        ctx.write(PartitionId(0), TableId(0), 5, Value::from_u64(777))
            .unwrap();
        assert_eq!(
            ctx.read(PartitionId(0), TableId(0), 5).unwrap().as_u64(),
            777
        );
        cluster.shutdown();
    }

    #[test]
    fn conflicting_younger_txn_dies() {
        let (cluster, txn_old) = setup();
        let txn_young = cluster.next_txn_id(PartitionId(0));
        assert!(txn_old < txn_young);
        let ticket_old = cluster.group_commit.begin_txn(PartitionId(0), txn_old);
        let ticket_young = cluster.group_commit.begin_txn(PartitionId(0), txn_young);
        let mut old = PrimoCtx::new(&cluster, &ticket_old, txn_old, PartitionId(0), true);
        let mut young = PrimoCtx::new(&cluster, &ticket_young, txn_young, PartitionId(0), true);
        // Old transaction holds the exclusive lock (distributed mode).
        old.read(PartitionId(1), TableId(0), 10).unwrap();
        // Young transaction in distributed mode on the same record must die.
        young.read(PartitionId(1), TableId(0), 11).unwrap();
        let err = young.read(PartitionId(1), TableId(0), 10).unwrap_err();
        assert_eq!(err.reason(), AbortReason::WaitDie);
        // Sticky failure.
        assert!(young.read(PartitionId(0), TableId(0), 1).is_err());
        old.abort_cleanup();
        young.abort_cleanup();
        cluster.shutdown();
    }

    #[test]
    fn crashed_partition_fails_remote_read() {
        let (cluster, txn) = setup();
        let ticket = cluster.group_commit.begin_txn(PartitionId(0), txn);
        let mut ctx = PrimoCtx::new(&cluster, &ticket, txn, PartitionId(0), true);
        cluster.net.set_crashed(PartitionId(1), true);
        let err = ctx.read(PartitionId(1), TableId(0), 1).unwrap_err();
        assert_eq!(err.reason(), AbortReason::RemoteUnavailable);
        ctx.abort_cleanup();
        cluster.shutdown();
    }

    #[test]
    fn non_wcf_variant_uses_shared_locks() {
        let (cluster, txn) = setup();
        let ticket = cluster.group_commit.begin_txn(PartitionId(0), txn);
        let mut ctx = PrimoCtx::new(&cluster, &ticket, txn, PartitionId(0), false);
        ctx.read(PartitionId(1), TableId(0), 20).unwrap();
        let rec = cluster
            .partition(PartitionId(1))
            .store
            .get(TableId(0), 20)
            .unwrap();
        // Another transaction can still share-lock the record.
        let other = TxnId::new(PartitionId(1), 999_999);
        assert_eq!(
            rec.acquire(other, LockMode::Shared, LockPolicy::NoWait),
            LockRequestResult::Granted
        );
        rec.release(other);
        ctx.abort_cleanup();
        cluster.shutdown();
    }
}
