//! `PrimoDb` — an embedded-style facade over a Primo cluster.
//!
//! Downstream users (and the examples in this repository) interact with the
//! system through this type: create a cluster, load data, and run
//! transactions expressed as closures over a [`TxnContext`]. Each closure may
//! branch on what it reads — exactly the generality the paper targets.
//!
//! ```
//! use primo_core::PrimoDb;
//! use primo_common::{PartitionId, TableId, Value};
//!
//! let db = PrimoDb::with_partitions(2);
//! const ACCOUNTS: TableId = TableId(0);
//! db.load(PartitionId(0), ACCOUNTS, 1, Value::from_u64(100));
//! db.load(PartitionId(1), ACCOUNTS, 2, Value::from_u64(50));
//!
//! // Transfer 10 from account 1 (partition 0) to account 2 (partition 1).
//! db.transaction(PartitionId(0), |ctx| {
//!     let a = ctx.read(PartitionId(0), ACCOUNTS, 1)?.as_u64();
//!     let b = ctx.read(PartitionId(1), ACCOUNTS, 2)?.as_u64();
//!     ctx.write(PartitionId(0), ACCOUNTS, 1, Value::from_u64(a - 10))?;
//!     ctx.write(PartitionId(1), ACCOUNTS, 2, Value::from_u64(b + 10))?;
//!     Ok(())
//! })
//! .unwrap();
//!
//! assert_eq!(db.get(PartitionId(0), ACCOUNTS, 1).unwrap().as_u64(), 90);
//! assert_eq!(db.get(PartitionId(1), ACCOUNTS, 2).unwrap().as_u64(), 60);
//! db.shutdown();
//! ```

use crate::protocol::PrimoProtocol;
use primo_common::config::ClusterConfig;
use primo_common::{AbortReason, Key, PartitionId, TableId, TxnResult, Value};
use primo_runtime::cluster::Cluster;
use primo_runtime::txn::{TxnContext, TxnProgram};
use primo_runtime::worker::run_single_txn;
use std::sync::Arc;

/// A transaction program defined by a closure.
pub struct ClosureProgram<F>
where
    F: Fn(&mut dyn TxnContext) -> TxnResult<()> + Send + Sync,
{
    home: PartitionId,
    read_only: bool,
    body: F,
}

impl<F> ClosureProgram<F>
where
    F: Fn(&mut dyn TxnContext) -> TxnResult<()> + Send + Sync,
{
    pub fn new(home: PartitionId, body: F) -> Self {
        ClosureProgram {
            home,
            read_only: false,
            body,
        }
    }

    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }
}

impl<F> TxnProgram for ClosureProgram<F>
where
    F: Fn(&mut dyn TxnContext) -> TxnResult<()> + Send + Sync,
{
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        (self.body)(ctx)
    }

    fn home_partition(&self) -> PartitionId {
        self.home
    }

    fn is_read_only(&self) -> bool {
        self.read_only
    }

    fn label(&self) -> &'static str {
        "closure"
    }
}

/// An embedded Primo database: a cluster plus the Primo protocol, with a
/// closure-based transaction API.
pub struct PrimoDb {
    cluster: Arc<Cluster>,
    protocol: PrimoProtocol,
}

impl PrimoDb {
    /// Open a database with an explicit configuration.
    pub fn open(config: ClusterConfig) -> Self {
        PrimoDb {
            cluster: Cluster::new(config),
            protocol: PrimoProtocol::full(),
        }
    }

    /// Open a database with `n` partitions and fast (test-friendly) timing.
    pub fn with_partitions(n: usize) -> Self {
        Self::open(ClusterConfig::for_tests(n))
    }

    /// The underlying cluster (for advanced integration, experiments, ...).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn num_partitions(&self) -> usize {
        self.cluster.num_partitions()
    }

    /// Load a record directly (outside any transaction) — initial population.
    pub fn load(&self, partition: PartitionId, table: TableId, key: Key, value: Value) {
        self.cluster.partition(partition).store.insert(table, key, value);
    }

    /// Read the latest committed value of a record (outside any transaction).
    pub fn get(&self, partition: PartitionId, table: TableId, key: Key) -> Option<Value> {
        self.cluster
            .partition(partition)
            .store
            .get(table, key)
            .map(|r| r.read().value)
    }

    /// Run a transaction to completion (retrying conflict aborts with
    /// back-off). Returns the number of attempts it took, or the abort
    /// reason if the transaction rolled back permanently (user abort).
    pub fn transaction<F>(&self, home: PartitionId, body: F) -> Result<usize, AbortReason>
    where
        F: Fn(&mut dyn TxnContext) -> TxnResult<()> + Send + Sync,
    {
        let program = ClosureProgram::new(home, body);
        run_single_txn(&self.cluster, &self.protocol, &program)
    }

    /// Run a pre-built [`TxnProgram`].
    pub fn run_program(&self, program: &dyn TxnProgram) -> Result<usize, AbortReason> {
        run_single_txn(&self.cluster, &self.protocol, program)
    }

    /// Stop background threads. The database must not be used afterwards.
    pub fn shutdown(&self) {
        self.cluster.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(0);

    #[test]
    fn transfer_between_partitions_is_atomic() {
        let db = PrimoDb::with_partitions(2);
        db.load(PartitionId(0), T, 1, Value::from_u64(100));
        db.load(PartitionId(1), T, 2, Value::from_u64(100));
        db.transaction(PartitionId(0), |ctx| {
            let a = ctx.read(PartitionId(0), T, 1)?.as_u64();
            let b = ctx.read(PartitionId(1), T, 2)?.as_u64();
            ctx.write(PartitionId(0), T, 1, Value::from_u64(a - 30))?;
            ctx.write(PartitionId(1), T, 2, Value::from_u64(b + 30))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(db.get(PartitionId(0), T, 1).unwrap().as_u64(), 70);
        assert_eq!(db.get(PartitionId(1), T, 2).unwrap().as_u64(), 130);
        db.shutdown();
    }

    #[test]
    fn user_rollback_has_no_effect() {
        let db = PrimoDb::with_partitions(1);
        db.load(PartitionId(0), T, 1, Value::from_u64(5));
        let err = db
            .transaction(PartitionId(0), |ctx| {
                ctx.write(PartitionId(0), T, 1, Value::from_u64(999))?;
                Err(primo_common::TxnError::Aborted(AbortReason::UserAbort))
            })
            .unwrap_err();
        assert_eq!(err, AbortReason::UserAbort);
        assert_eq!(db.get(PartitionId(0), T, 1).unwrap().as_u64(), 5);
        db.shutdown();
    }

    #[test]
    fn branching_on_query_results_works() {
        // The "general workload" the paper motivates: the write target depends
        // on what was read.
        let db = PrimoDb::with_partitions(2);
        db.load(PartitionId(0), T, 1, Value::from_u64(7)); // odd -> write key 100
        db.load(PartitionId(1), T, 100, Value::from_u64(0));
        db.load(PartitionId(1), T, 200, Value::from_u64(0));
        db.transaction(PartitionId(0), |ctx| {
            let v = ctx.read(PartitionId(0), T, 1)?.as_u64();
            let target = if v % 2 == 1 { 100 } else { 200 };
            ctx.write(PartitionId(1), T, target, Value::from_u64(v))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(db.get(PartitionId(1), T, 100).unwrap().as_u64(), 7);
        assert_eq!(db.get(PartitionId(1), T, 200).unwrap().as_u64(), 0);
        db.shutdown();
    }

    #[test]
    fn get_of_missing_key_is_none() {
        let db = PrimoDb::with_partitions(1);
        assert!(db.get(PartitionId(0), T, 404).is_none());
        assert_eq!(db.num_partitions(), 1);
        db.shutdown();
    }
}
