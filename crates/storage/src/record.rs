//! A single record: payload + TicToc timestamps + its lock + its lifecycle
//! state.

use crate::lock::{LockMode, LockPolicy, LockRequestResult, RecordLock};
use parking_lot::Mutex;
use primo_common::{Row, TxnId, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lifecycle of a record in its table.
///
/// "Existing in the table's hash map" is *not* the same as "existing in the
/// database": an insert materialises its record before the commit decision
/// (so it can be locked and installed into), and a delete leaves a tombstone
/// behind until the deferred-reclamation pass physically unlinks it. The
/// state machine makes both intermediate states explicit so readers never
/// observe a phantom:
///
/// ```text
///              install (commit)
///   (absent) ──create──▶ UncommittedInsert{owner} ──▶ Visible
///        ▲                   │ abort: unlink             │ delete install
///        └───────────────────┘                           ▼
///   (absent) ◀──reclaim── Tombstone ◀────────────────────┘
///                            │  insert: revive (abort restores Tombstone)
///                            └────────▶ UncommittedInsert{owner}
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// A committed record: readable by everyone.
    Visible,
    /// Created by `owner` for an insert whose transaction has not committed.
    /// Invisible to every other transaction.
    UncommittedInsert { owner: TxnId },
    /// Deleted by a committed transaction; awaiting physical unlink by the
    /// deferred-reclamation pass. Invisible to everyone.
    Tombstone,
}

// The state is packed into one atomic word: transitions happen either under
// the record's exclusive lock (install paths) or under the table-shard lock
// (create / revive / unlink / reclaim), so a plain store/CAS word is enough.
const STATE_VISIBLE: u64 = 0;
const STATE_TOMBSTONE: u64 = 1;
const STATE_UNCOMMITTED_TAG: u64 = 2;

fn encode_state(state: LifecycleState) -> u64 {
    match state {
        LifecycleState::Visible => STATE_VISIBLE,
        LifecycleState::Tombstone => STATE_TOMBSTONE,
        LifecycleState::UncommittedInsert { owner } => (owner.pack() << 2) | STATE_UNCOMMITTED_TAG,
    }
}

fn decode_state(raw: u64) -> LifecycleState {
    match raw {
        STATE_VISIBLE => LifecycleState::Visible,
        STATE_TOMBSTONE => LifecycleState::Tombstone,
        _ => LifecycleState::UncommittedInsert {
            owner: TxnId::unpack(raw >> 2),
        },
    }
}

/// The versioned payload of a record together with its TicToc metadata.
///
/// `wts` is the logical time the current version was written; `rts` is the
/// end of the interval in which the version is known to be valid
/// (`rts >= wts`, §4.2.1).
#[derive(Debug, Clone)]
pub struct RecordData {
    pub value: Value,
    pub wts: u64,
    pub rts: u64,
}

/// A record stored in a partition.
///
/// The payload/timestamps are protected by a short-critical-section mutex;
/// transaction-duration ownership is expressed through the embedded
/// [`RecordLock`]. Protocols combine the two as they see fit: 2PL/WCF hold
/// the lock across the transaction, OCC schemes only lock during
/// validation/installation.
#[derive(Debug)]
pub struct Record {
    data: Mutex<RecordData>,
    lock: RecordLock,
    /// Encoded [`LifecycleState`].
    state: AtomicU64,
}

impl Record {
    /// A committed ([`LifecycleState::Visible`]) record — loaders and
    /// commit-time creation use this.
    pub fn new(value: Value) -> Self {
        Self::with_state(value, LifecycleState::Visible)
    }

    /// A record created ahead of its commit decision by an insert.
    pub fn new_uncommitted(value: Value, owner: TxnId) -> Self {
        Self::with_state(value, LifecycleState::UncommittedInsert { owner })
    }

    fn with_state(value: Value, state: LifecycleState) -> Self {
        Record {
            data: Mutex::new(RecordData {
                value,
                wts: 0,
                rts: 0,
            }),
            lock: RecordLock::new(),
            state: AtomicU64::new(encode_state(state)),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> LifecycleState {
        decode_state(self.state.load(Ordering::Acquire))
    }

    /// True if `txn` may read this record: it is committed, or it is `txn`'s
    /// own uncommitted insert.
    pub fn is_visible_to(&self, txn: TxnId) -> bool {
        match self.state() {
            LifecycleState::Visible => true,
            LifecycleState::UncommittedInsert { owner } => owner == txn,
            LifecycleState::Tombstone => false,
        }
    }

    /// Transition `UncommittedInsert{owner}` back to `Tombstone` (abort-time
    /// undo of an insert that revived a tombstoned record). Returns false if
    /// the state changed in the meantime (the insert was installed).
    pub fn restore_tombstone(&self, owner: TxnId) -> bool {
        let expected = encode_state(LifecycleState::UncommittedInsert { owner });
        self.state
            .compare_exchange(
                expected,
                STATE_TOMBSTONE,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Force a lifecycle state. Only table-level code (shard-locked create /
    /// revive) and install paths may call this.
    pub(crate) fn set_state(&self, state: LifecycleState) {
        self.state.store(encode_state(state), Ordering::Release);
    }

    /// Atomically snapshot the payload and timestamps.
    pub fn read(&self) -> Row {
        let d = self.data.lock();
        Row::new(d.value.clone(), d.wts, d.rts)
    }

    /// Current `(wts, rts)` pair.
    pub fn timestamps(&self) -> (u64, u64) {
        let d = self.data.lock();
        (d.wts, d.rts)
    }

    /// Current write timestamp (doubles as Silo's TID word / version).
    pub fn wts(&self) -> u64 {
        self.data.lock().wts
    }

    /// Install a new version with `wts = rts = ts` (TicToc write rule).
    /// Installing commits the version, so the record becomes
    /// [`LifecycleState::Visible`] (this is the `UncommittedInsert → Visible`
    /// flip of the lifecycle, and also revives a record a delete+insert pair
    /// went through).
    pub fn install(&self, value: Value, ts: u64) {
        let mut d = self.data.lock();
        d.value = value;
        d.wts = ts;
        d.rts = ts;
        drop(d);
        self.set_state(LifecycleState::Visible);
    }

    /// Install a new version, bumping the version counter by one (used by
    /// protocols without logical timestamps, e.g. plain 2PL and Silo). Flips
    /// the record [`LifecycleState::Visible`] like [`Record::install`].
    pub fn install_next_version(&self, value: Value) -> u64 {
        let mut d = self.data.lock();
        d.value = value;
        d.wts += 1;
        d.rts = d.wts;
        let wts = d.wts;
        drop(d);
        self.set_state(LifecycleState::Visible);
        wts
    }

    /// Install a committed delete at timestamp `ts`: the record becomes a
    /// [`LifecycleState::Tombstone`] and its `wts` advances so that
    /// concurrent optimistic readers fail validation instead of resurrecting
    /// the deleted version.
    pub fn install_tombstone(&self, ts: u64) {
        let mut d = self.data.lock();
        if d.wts < ts {
            d.wts = ts;
        } else {
            d.wts += 1;
        }
        d.rts = d.wts;
        drop(d);
        self.set_state(LifecycleState::Tombstone);
    }

    /// [`Record::install_tombstone`] for protocols without logical
    /// timestamps: bump the version counter instead.
    pub fn install_tombstone_next_version(&self) -> u64 {
        let mut d = self.data.lock();
        d.wts += 1;
        d.rts = d.wts;
        let wts = d.wts;
        drop(d);
        self.set_state(LifecycleState::Tombstone);
        wts
    }

    /// Extend the valid interval so that it covers `ts` (TicToc
    /// `rts = max(rts, ts)`).
    pub fn extend_rts(&self, ts: u64) {
        let mut d = self.data.lock();
        if d.rts < ts {
            d.rts = ts;
        }
    }

    /// Raise both timestamps to at least `floor`. Used by participants to
    /// enforce watermark monotonicity (R2 in §5.1): if `wts <= Wp`, set
    /// `wts = rts = Wp + 1` before returning the record to the coordinator.
    pub fn raise_watermark_floor(&self, floor: u64) {
        let mut d = self.data.lock();
        if d.wts <= floor {
            d.wts = floor + 1;
            if d.rts < d.wts {
                d.rts = d.wts;
            }
        }
    }

    /// The record's lock.
    pub fn lock(&self) -> &RecordLock {
        &self.lock
    }

    /// Convenience: acquire this record's lock.
    pub fn acquire(&self, txn: TxnId, mode: LockMode, policy: LockPolicy) -> LockRequestResult {
        self.lock.acquire(txn, mode, policy)
    }

    /// Convenience: release this record's lock.
    pub fn release(&self, txn: TxnId) {
        self.lock.release(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::PartitionId;

    fn t(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    #[test]
    fn install_sets_both_timestamps() {
        let r = Record::new(Value::from_u64(1));
        r.install(Value::from_u64(2), 7);
        let row = r.read();
        assert_eq!(row.value.as_u64(), 2);
        assert_eq!((row.wts, row.rts), (7, 7));
    }

    #[test]
    fn extend_rts_never_shrinks() {
        let r = Record::new(Value::from_u64(0));
        r.install(Value::from_u64(1), 5);
        r.extend_rts(9);
        assert_eq!(r.timestamps(), (5, 9));
        r.extend_rts(3);
        assert_eq!(r.timestamps(), (5, 9));
    }

    #[test]
    fn next_version_increments() {
        let r = Record::new(Value::from_u64(0));
        let v1 = r.install_next_version(Value::from_u64(1));
        let v2 = r.install_next_version(Value::from_u64(2));
        assert!(v2 > v1);
        assert_eq!(r.wts(), v2);
    }

    #[test]
    fn watermark_floor_raises_old_records() {
        let r = Record::new(Value::from_u64(0));
        r.install(Value::from_u64(1), 3);
        r.raise_watermark_floor(10);
        assert_eq!(r.timestamps(), (11, 11));
        // Already-new records are untouched.
        r.install(Value::from_u64(2), 20);
        r.raise_watermark_floor(10);
        assert_eq!(r.timestamps(), (20, 20));
    }

    #[test]
    fn lifecycle_roundtrips_through_the_atomic_encoding() {
        let r = Record::new(Value::from_u64(0));
        assert_eq!(r.state(), LifecycleState::Visible);
        let owner = TxnId::new(PartitionId(3), 1 << 39);
        let u = Record::new_uncommitted(Value::zeroed(0), owner);
        assert_eq!(u.state(), LifecycleState::UncommittedInsert { owner });
        assert!(u.is_visible_to(owner));
        assert!(!u.is_visible_to(t(999)));
        u.set_state(LifecycleState::Tombstone);
        assert_eq!(u.state(), LifecycleState::Tombstone);
        assert!(!u.is_visible_to(owner));
    }

    #[test]
    fn install_commits_an_uncommitted_insert() {
        let owner = t(5);
        let r = Record::new_uncommitted(Value::zeroed(0), owner);
        r.install(Value::from_u64(7), 3);
        assert_eq!(r.state(), LifecycleState::Visible);
        let v = Record::new_uncommitted(Value::zeroed(0), owner);
        v.install_next_version(Value::from_u64(1));
        assert_eq!(v.state(), LifecycleState::Visible);
    }

    #[test]
    fn tombstone_install_bumps_wts_past_readers() {
        let r = Record::new(Value::from_u64(1));
        r.install(Value::from_u64(2), 10);
        r.install_tombstone(5); // ts below current wts still advances it
        assert_eq!(r.state(), LifecycleState::Tombstone);
        assert!(r.wts() > 10, "validation of concurrent readers must fail");
        let s = Record::new(Value::from_u64(1));
        let w0 = s.install_next_version(Value::from_u64(2));
        assert!(s.install_tombstone_next_version() > w0);
        assert_eq!(s.state(), LifecycleState::Tombstone);
    }

    #[test]
    fn restore_tombstone_is_a_guarded_cas() {
        let owner = t(9);
        let r = Record::new(Value::from_u64(0));
        r.set_state(LifecycleState::Tombstone);
        r.set_state(LifecycleState::UncommittedInsert { owner });
        // The revival aborts: the record returns to Tombstone.
        assert!(r.restore_tombstone(owner));
        assert_eq!(r.state(), LifecycleState::Tombstone);
        // Once installed (Visible), a stale undo must not clobber the state.
        r.set_state(LifecycleState::UncommittedInsert { owner });
        r.install(Value::from_u64(1), 4);
        assert!(!r.restore_tombstone(owner));
        assert_eq!(r.state(), LifecycleState::Visible);
    }

    #[test]
    fn record_lock_is_usable_through_record() {
        let r = Record::new(Value::from_u64(0));
        assert_eq!(
            r.acquire(t(1), LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Granted
        );
        assert_eq!(
            r.acquire(t(2), LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Abort
        );
        r.release(t(1));
        assert!(!r.lock().is_locked());
    }
}
