//! A single record: payload + TicToc timestamps + its lock + its lifecycle
//! state.

use crate::lock::{LockMode, LockPolicy, LockRequestResult, RecordLock};
use parking_lot::Mutex;
use primo_common::{Row, TxnId, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lifecycle of a record in its table.
///
/// "Existing in the table's hash map" is *not* the same as "existing in the
/// database": an insert materialises its record before the commit decision
/// (so it can be locked and installed into), and a delete leaves a tombstone
/// behind until the deferred-reclamation pass physically unlinks it. The
/// state machine makes both intermediate states explicit so readers never
/// observe a phantom:
///
/// ```text
///              install (commit)
///   (absent) ──create──▶ UncommittedInsert{owner} ──▶ Visible
///        ▲                   │ abort: unlink             │ delete install
///        └───────────────────┘                           ▼
///   (absent) ◀──reclaim── Tombstone ◀────────────────────┘
///                            │  insert: revive (abort restores Tombstone)
///                            └────────▶ UncommittedInsert{owner}
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// A committed record: readable by everyone.
    Visible,
    /// Created by `owner` for an insert whose transaction has not committed.
    /// Invisible to every other transaction.
    UncommittedInsert { owner: TxnId },
    /// Deleted by a committed transaction; awaiting physical unlink by the
    /// deferred-reclamation pass. Invisible to everyone.
    Tombstone,
}

// The state is packed into one atomic word: transitions happen either under
// the record's exclusive lock (install paths) or under the table-shard lock
// (create / revive / unlink / reclaim), so a plain store/CAS word is enough.
const STATE_VISIBLE: u64 = 0;
const STATE_TOMBSTONE: u64 = 1;
const STATE_UNCOMMITTED_TAG: u64 = 2;

fn encode_state(state: LifecycleState) -> u64 {
    match state {
        LifecycleState::Visible => STATE_VISIBLE,
        LifecycleState::Tombstone => STATE_TOMBSTONE,
        LifecycleState::UncommittedInsert { owner } => (owner.pack() << 2) | STATE_UNCOMMITTED_TAG,
    }
}

fn decode_state(raw: u64) -> LifecycleState {
    match raw {
        STATE_VISIBLE => LifecycleState::Visible,
        STATE_TOMBSTONE => LifecycleState::Tombstone,
        _ => LifecycleState::UncommittedInsert {
            owner: TxnId::unpack(raw >> 2),
        },
    }
}

/// Default bound on the number of retained versions (current + history).
/// Small on purpose: snapshot readers run at the group-commit horizon, which
/// trails the newest commit only by the durability delay, so a short chain
/// almost always suffices and memory stays flat under write-heavy churn.
pub const DEFAULT_MAX_VERSIONS: usize = 4;

/// Commit timestamp of a version that was never committed (uncommitted
/// inserts before their install).
const CTS_UNCOMMITTED: u64 = u64::MAX;
/// Commit timestamp of a version installed through a legacy un-timestamped
/// path: its position on the commit-time axis is unknown, so snapshot reads
/// of the record must fall back to the normal protocol path.
const CTS_UNKNOWN: u64 = u64::MAX - 1;

/// One superseded committed version in a record's bounded history chain.
/// `value == None` records a committed deletion (the key was absent from
/// `cts` until the next version).
#[derive(Debug, Clone)]
pub struct Version {
    /// Commit timestamp at which this version became current.
    pub cts: u64,
    /// Payload, or `None` for a deletion version.
    pub value: Option<Value>,
}

/// Outcome of a snapshot read ([`Record::read_at`]) at a horizon `h`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotRead {
    /// The version current as of `h`.
    Value(Value),
    /// The key was authoritatively absent (deleted or never inserted) at `h`.
    Absent,
    /// The chain cannot answer for `h` (version evicted, or an
    /// un-timestamped install in the way): the caller must fall back to the
    /// protocol read path.
    Miss,
}

/// The versioned payload of a record together with its TicToc metadata.
///
/// `wts` is the logical time the current version was written; `rts` is the
/// end of the interval in which the version is known to be valid
/// (`rts >= wts`, §4.2.1).
#[derive(Debug, Clone)]
pub struct RecordData {
    pub value: Value,
    pub wts: u64,
    pub rts: u64,
    /// Commit timestamp of the current version — the group-commit domain
    /// (`finalize_commit_ts`), which for counter-based protocols differs
    /// from `wts`.
    cts: u64,
    /// The current version is a committed deletion. Kept inside the data
    /// mutex (unlike the lifecycle word) so snapshot reads see payload and
    /// deletion flag atomically.
    deleted: bool,
    /// Superseded committed versions, oldest first. Bounded by
    /// `max_versions - 1`.
    history: Vec<Version>,
    /// The chain is complete for horizons `>= floor_cts`: a miss at such a
    /// horizon means the key was absent. Below it the answer is unknown
    /// (versions evicted / restored from a checkpoint image).
    floor_cts: u64,
    /// Bound on retained versions (current + history), `>= 1`.
    max_versions: usize,
}

impl RecordData {
    /// Push the current version into the history chain before it is
    /// overwritten by a new install committing at `new_cts`. Handles the
    /// sentinel states and the capacity bound, raising `floor_cts` whenever
    /// pre-`new_cts` history becomes unanswerable.
    fn push_current_version(&mut self, new_cts: u64) {
        if self.cts == CTS_UNCOMMITTED {
            // First committed version of a runtime-created record. There is
            // no committed version to preserve, and the chain can answer from
            // this install on — but *only* from it on: a previous incarnation
            // of the key may have lived and been reclaimed before this record
            // existed, so horizons below the first commit stay unanswerable.
            self.floor_cts = new_cts;
            return;
        }
        if self.cts == CTS_UNKNOWN || new_cts == CTS_UNKNOWN {
            // An un-timestamped version sits between the retained history
            // and the new current version: everything below the new install
            // is unanswerable. Drop the stale chain and close the gap.
            self.history.clear();
            self.floor_cts = if new_cts == CTS_UNKNOWN {
                CTS_UNKNOWN
            } else {
                new_cts
            };
            return;
        }
        if new_cts < self.cts {
            // Out-of-order commit timestamps (reachable only through direct
            // test/tooling installs — protocol installs finalize under the
            // write lock, so per-record cts is monotone): the chain's
            // ordering premise is broken. Drop it and stop answering below
            // the newer of the two.
            self.history.clear();
            self.floor_cts = self.floor_cts.max(self.cts);
            return;
        }
        if self.max_versions <= 1 {
            self.floor_cts = self.floor_cts.max(new_cts);
            return;
        }
        let value = if self.deleted {
            None
        } else {
            Some(self.value.clone())
        };
        self.history.push(Version {
            cts: self.cts,
            value,
        });
        while self.history.len() > self.max_versions - 1 {
            self.history.remove(0);
            // The oldest retained version now bounds what the chain can
            // answer.
            let oldest = self.history.first().map_or(new_cts, |v| v.cts);
            self.floor_cts = self.floor_cts.max(oldest);
        }
    }
}

/// A record stored in a partition.
///
/// The payload/timestamps are protected by a short-critical-section mutex;
/// transaction-duration ownership is expressed through the embedded
/// [`RecordLock`]. Protocols combine the two as they see fit: 2PL/WCF hold
/// the lock across the transaction, OCC schemes only lock during
/// validation/installation.
#[derive(Debug)]
pub struct Record {
    data: Mutex<RecordData>,
    lock: RecordLock,
    /// Encoded [`LifecycleState`].
    state: AtomicU64,
}

impl Record {
    /// A committed ([`LifecycleState::Visible`]) record — loaders and
    /// commit-time creation use this.
    pub fn new(value: Value) -> Self {
        Self::with_state(value, LifecycleState::Visible)
    }

    /// A record created ahead of its commit decision by an insert.
    pub fn new_uncommitted(value: Value, owner: TxnId) -> Self {
        Self::with_state(value, LifecycleState::UncommittedInsert { owner })
    }

    fn with_state(value: Value, state: LifecycleState) -> Self {
        let cts = match state {
            // Loader-created records are the initial database image,
            // committed "at time zero" and visible to every snapshot.
            LifecycleState::Visible => 0,
            LifecycleState::Tombstone => 0,
            LifecycleState::UncommittedInsert { .. } => CTS_UNCOMMITTED,
        };
        // A runtime-created (uncommitted) record cannot answer for *any*
        // horizon until its first commit sets the floor: the key may have
        // had a reclaimed earlier incarnation this record knows nothing
        // about. Loader records are the time-zero image and answer fully.
        let floor_cts = match state {
            LifecycleState::UncommittedInsert { .. } => CTS_UNCOMMITTED,
            _ => 0,
        };
        Record {
            data: Mutex::new(RecordData {
                value,
                wts: 0,
                rts: 0,
                cts,
                deleted: matches!(state, LifecycleState::Tombstone),
                history: Vec::new(),
                floor_cts,
                max_versions: DEFAULT_MAX_VERSIONS,
            }),
            lock: RecordLock::new(),
            state: AtomicU64::new(encode_state(state)),
        }
    }

    /// A record rebuilt during crash recovery from a checkpoint image or log
    /// replay: `Visible` with `wts = rts = ts`, and a version chain that
    /// answers only for horizons `>= ts` (the image does not carry the
    /// record's pre-`ts` history).
    pub fn restored(value: Value, ts: u64) -> Self {
        let rec = Self::new(value);
        {
            let mut d = rec.data.lock();
            d.wts = ts;
            d.rts = ts;
            d.cts = ts;
            d.floor_cts = ts;
        }
        rec
    }

    /// Bound the number of retained versions (current + history).
    /// `max_versions` must be `>= 1`; excess history is evicted immediately.
    pub fn set_max_versions(&self, max_versions: usize) {
        assert!(
            max_versions >= 1,
            "a record keeps at least its current version"
        );
        let mut d = self.data.lock();
        d.max_versions = max_versions;
        while d.history.len() > max_versions - 1 {
            d.history.remove(0);
            let oldest = d.history.first().map(|v| v.cts);
            if let Some(oldest) = oldest {
                d.floor_cts = d.floor_cts.max(oldest);
            } else if d.cts != CTS_UNCOMMITTED && d.cts != CTS_UNKNOWN {
                d.floor_cts = d.floor_cts.max(d.cts);
            }
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> LifecycleState {
        decode_state(self.state.load(Ordering::Acquire))
    }

    /// True if `txn` may read this record: it is committed, or it is `txn`'s
    /// own uncommitted insert.
    pub fn is_visible_to(&self, txn: TxnId) -> bool {
        match self.state() {
            LifecycleState::Visible => true,
            LifecycleState::UncommittedInsert { owner } => owner == txn,
            LifecycleState::Tombstone => false,
        }
    }

    /// Transition `UncommittedInsert{owner}` back to `Tombstone` (abort-time
    /// undo of an insert that revived a tombstoned record). Returns false if
    /// the state changed in the meantime (the insert was installed).
    pub fn restore_tombstone(&self, owner: TxnId) -> bool {
        let expected = encode_state(LifecycleState::UncommittedInsert { owner });
        self.state
            .compare_exchange(
                expected,
                STATE_TOMBSTONE,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Force a lifecycle state. Only table-level code (shard-locked create /
    /// revive) and install paths may call this.
    pub(crate) fn set_state(&self, state: LifecycleState) {
        self.state.store(encode_state(state), Ordering::Release);
    }

    /// Atomically snapshot the payload and timestamps.
    pub fn read(&self) -> Row {
        let d = self.data.lock();
        Row::new(d.value.clone(), d.wts, d.rts)
    }

    /// Current `(wts, rts)` pair.
    pub fn timestamps(&self) -> (u64, u64) {
        let d = self.data.lock();
        (d.wts, d.rts)
    }

    /// Current write timestamp (doubles as Silo's TID word / version).
    pub fn wts(&self) -> u64 {
        self.data.lock().wts
    }

    /// Install a new version with `wts = rts = ts` (TicToc write rule).
    /// Installing commits the version, so the record becomes
    /// [`LifecycleState::Visible`] (this is the `UncommittedInsert → Visible`
    /// flip of the lifecycle, and also revives a record a delete+insert pair
    /// went through). The previous committed version is pushed onto the
    /// bounded history chain; `ts` doubles as the commit timestamp.
    pub fn install(&self, value: Value, ts: u64) {
        let mut d = self.data.lock();
        d.push_current_version(ts);
        d.value = value;
        d.wts = ts;
        d.rts = ts;
        d.cts = ts;
        d.deleted = false;
        drop(d);
        self.set_state(LifecycleState::Visible);
    }

    /// Install a new version, bumping the version counter by one (used by
    /// protocols without logical timestamps, e.g. plain 2PL and Silo). Flips
    /// the record [`LifecycleState::Visible`] like [`Record::install`].
    ///
    /// The version carries no commit timestamp, so the record's chain stops
    /// answering snapshot reads until a timestamped install closes the gap —
    /// protocol call-sites pass their finalized group-commit timestamp via
    /// [`Record::install_next_version_at`] instead.
    pub fn install_next_version(&self, value: Value) -> u64 {
        self.install_next_version_at(value, CTS_UNKNOWN)
    }

    /// [`Record::install_next_version`] with the transaction's finalized
    /// group-commit timestamp `cts`, which orders the version on the
    /// commit-time axis for snapshot readers while `wts` keeps counting for
    /// OCC validation.
    pub fn install_next_version_at(&self, value: Value, cts: u64) -> u64 {
        let mut d = self.data.lock();
        d.push_current_version(cts);
        d.value = value;
        d.wts += 1;
        d.rts = d.wts;
        d.cts = cts;
        d.deleted = false;
        let wts = d.wts;
        drop(d);
        self.set_state(LifecycleState::Visible);
        wts
    }

    /// Install a committed delete at timestamp `ts`: the record becomes a
    /// [`LifecycleState::Tombstone`] and its `wts` advances so that
    /// concurrent optimistic readers fail validation instead of resurrecting
    /// the deleted version. A deletion version (`value = None`) is what the
    /// chain records, so snapshot readers below `ts` still see the old value
    /// and readers at or above it see the key as absent.
    pub fn install_tombstone(&self, ts: u64) {
        let mut d = self.data.lock();
        d.push_current_version(ts);
        if d.wts < ts {
            d.wts = ts;
        } else {
            d.wts += 1;
        }
        d.rts = d.wts;
        d.cts = ts;
        d.deleted = true;
        drop(d);
        self.set_state(LifecycleState::Tombstone);
    }

    /// [`Record::install_tombstone`] for protocols without logical
    /// timestamps: bump the version counter instead.
    pub fn install_tombstone_next_version(&self) -> u64 {
        self.install_tombstone_next_version_at(CTS_UNKNOWN)
    }

    /// [`Record::install_tombstone_next_version`] with the transaction's
    /// finalized group-commit timestamp (see
    /// [`Record::install_next_version_at`]).
    pub fn install_tombstone_next_version_at(&self, cts: u64) -> u64 {
        let mut d = self.data.lock();
        d.push_current_version(cts);
        d.wts += 1;
        d.rts = d.wts;
        d.cts = cts;
        d.deleted = true;
        let wts = d.wts;
        drop(d);
        self.set_state(LifecycleState::Tombstone);
        wts
    }

    /// Resolve the version current as of commit-time horizon `h` — the MVCC
    /// snapshot read. Lock-free in the transactional sense: it takes only
    /// the record's short data mutex, never the [`RecordLock`], and needs no
    /// validation because versions at or below a group-commit horizon are
    /// immutable by construction.
    pub fn read_at(&self, h: u64) -> SnapshotRead {
        let d = self.data.lock();
        if d.cts == CTS_UNKNOWN {
            // An un-timestamped install may or may not predate `h`.
            return SnapshotRead::Miss;
        }
        if d.cts != CTS_UNCOMMITTED && d.cts <= h {
            return if d.deleted {
                SnapshotRead::Absent
            } else {
                SnapshotRead::Value(d.value.clone())
            };
        }
        for v in d.history.iter().rev() {
            if v.cts <= h {
                return match &v.value {
                    Some(value) => SnapshotRead::Value(value.clone()),
                    None => SnapshotRead::Absent,
                };
            }
        }
        if h >= d.floor_cts {
            SnapshotRead::Absent
        } else {
            SnapshotRead::Miss
        }
    }

    /// Crash compensation: reinstate the before-image `prev` in place of the
    /// rolled-back version committed at `ts`. Every version with `cts >= ts`
    /// is purged from the chain (it belongs to a crash-aborted transaction);
    /// the before-image's original history entry, where still retained,
    /// keeps serving snapshot horizons below `ts`.
    pub fn revert(&self, prev: Value, ts: u64) {
        let mut d = self.data.lock();
        d.history.retain(|v| v.cts < ts);
        d.value = prev;
        d.wts = ts;
        d.rts = ts;
        d.cts = ts;
        d.deleted = false;
        drop(d);
        self.set_state(LifecycleState::Visible);
    }

    /// Crash compensation for a rolled-back insert whose slot must revert to
    /// a deleted state: purge versions at or above `ts` and leave a
    /// tombstone. See [`Record::revert`].
    pub fn revert_to_tombstone(&self, ts: u64) {
        let mut d = self.data.lock();
        d.history.retain(|v| v.cts < ts);
        if d.wts < ts {
            d.wts = ts;
        } else {
            d.wts += 1;
        }
        d.rts = d.wts;
        d.cts = ts;
        d.deleted = true;
        drop(d);
        self.set_state(LifecycleState::Tombstone);
    }

    /// Drop every history version shadowed by a newer version committed at
    /// or below `bound` — the version-chain GC. Snapshot horizons are
    /// monotone, so once the newest version with `cts <= bound` exists,
    /// older versions can never be read again. Returns how many versions
    /// were pruned.
    pub fn prune_versions(&self, bound: u64) -> usize {
        let mut d = self.data.lock();
        if d.history.is_empty() {
            return 0;
        }
        let current_covers = d.cts != CTS_UNCOMMITTED && d.cts != CTS_UNKNOWN && d.cts <= bound;
        let cut = if current_covers {
            d.history.len()
        } else {
            // Keep the newest history version with cts <= bound (it serves
            // horizons in `[its cts, bound]`); everything older is dead.
            d.history
                .iter()
                .rposition(|v| v.cts <= bound)
                .unwrap_or_default()
        };
        if cut == 0 {
            return 0;
        }
        d.history.drain(..cut);
        let oldest = d.history.first().map(|v| v.cts).unwrap_or(d.cts);
        if oldest != CTS_UNCOMMITTED && oldest != CTS_UNKNOWN {
            d.floor_cts = d.floor_cts.max(oldest);
        }
        cut
    }

    /// Number of retained history versions (excluding the current one).
    pub fn version_chain_len(&self) -> usize {
        self.data.lock().history.len()
    }

    /// Extend the valid interval so that it covers `ts` (TicToc
    /// `rts = max(rts, ts)`).
    pub fn extend_rts(&self, ts: u64) {
        let mut d = self.data.lock();
        if d.rts < ts {
            d.rts = ts;
        }
    }

    /// Raise both timestamps to at least `floor`. Used by participants to
    /// enforce watermark monotonicity (R2 in §5.1): if `wts <= Wp`, set
    /// `wts = rts = Wp + 1` before returning the record to the coordinator.
    pub fn raise_watermark_floor(&self, floor: u64) {
        let mut d = self.data.lock();
        if d.wts <= floor {
            d.wts = floor + 1;
            if d.rts < d.wts {
                d.rts = d.wts;
            }
        }
    }

    /// The record's lock.
    pub fn lock(&self) -> &RecordLock {
        &self.lock
    }

    /// Convenience: acquire this record's lock.
    pub fn acquire(&self, txn: TxnId, mode: LockMode, policy: LockPolicy) -> LockRequestResult {
        self.lock.acquire(txn, mode, policy)
    }

    /// Convenience: release this record's lock.
    pub fn release(&self, txn: TxnId) {
        self.lock.release(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::PartitionId;

    fn t(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    #[test]
    fn install_sets_both_timestamps() {
        let r = Record::new(Value::from_u64(1));
        r.install(Value::from_u64(2), 7);
        let row = r.read();
        assert_eq!(row.value.as_u64(), 2);
        assert_eq!((row.wts, row.rts), (7, 7));
    }

    #[test]
    fn extend_rts_never_shrinks() {
        let r = Record::new(Value::from_u64(0));
        r.install(Value::from_u64(1), 5);
        r.extend_rts(9);
        assert_eq!(r.timestamps(), (5, 9));
        r.extend_rts(3);
        assert_eq!(r.timestamps(), (5, 9));
    }

    #[test]
    fn next_version_increments() {
        let r = Record::new(Value::from_u64(0));
        let v1 = r.install_next_version(Value::from_u64(1));
        let v2 = r.install_next_version(Value::from_u64(2));
        assert!(v2 > v1);
        assert_eq!(r.wts(), v2);
    }

    #[test]
    fn watermark_floor_raises_old_records() {
        let r = Record::new(Value::from_u64(0));
        r.install(Value::from_u64(1), 3);
        r.raise_watermark_floor(10);
        assert_eq!(r.timestamps(), (11, 11));
        // Already-new records are untouched.
        r.install(Value::from_u64(2), 20);
        r.raise_watermark_floor(10);
        assert_eq!(r.timestamps(), (20, 20));
    }

    #[test]
    fn lifecycle_roundtrips_through_the_atomic_encoding() {
        let r = Record::new(Value::from_u64(0));
        assert_eq!(r.state(), LifecycleState::Visible);
        let owner = TxnId::new(PartitionId(3), 1 << 39);
        let u = Record::new_uncommitted(Value::zeroed(0), owner);
        assert_eq!(u.state(), LifecycleState::UncommittedInsert { owner });
        assert!(u.is_visible_to(owner));
        assert!(!u.is_visible_to(t(999)));
        u.set_state(LifecycleState::Tombstone);
        assert_eq!(u.state(), LifecycleState::Tombstone);
        assert!(!u.is_visible_to(owner));
    }

    #[test]
    fn install_commits_an_uncommitted_insert() {
        let owner = t(5);
        let r = Record::new_uncommitted(Value::zeroed(0), owner);
        r.install(Value::from_u64(7), 3);
        assert_eq!(r.state(), LifecycleState::Visible);
        let v = Record::new_uncommitted(Value::zeroed(0), owner);
        v.install_next_version(Value::from_u64(1));
        assert_eq!(v.state(), LifecycleState::Visible);
    }

    #[test]
    fn tombstone_install_bumps_wts_past_readers() {
        let r = Record::new(Value::from_u64(1));
        r.install(Value::from_u64(2), 10);
        r.install_tombstone(5); // ts below current wts still advances it
        assert_eq!(r.state(), LifecycleState::Tombstone);
        assert!(r.wts() > 10, "validation of concurrent readers must fail");
        let s = Record::new(Value::from_u64(1));
        let w0 = s.install_next_version(Value::from_u64(2));
        assert!(s.install_tombstone_next_version() > w0);
        assert_eq!(s.state(), LifecycleState::Tombstone);
    }

    #[test]
    fn restore_tombstone_is_a_guarded_cas() {
        let owner = t(9);
        let r = Record::new(Value::from_u64(0));
        r.set_state(LifecycleState::Tombstone);
        r.set_state(LifecycleState::UncommittedInsert { owner });
        // The revival aborts: the record returns to Tombstone.
        assert!(r.restore_tombstone(owner));
        assert_eq!(r.state(), LifecycleState::Tombstone);
        // Once installed (Visible), a stale undo must not clobber the state.
        r.set_state(LifecycleState::UncommittedInsert { owner });
        r.install(Value::from_u64(1), 4);
        assert!(!r.restore_tombstone(owner));
        assert_eq!(r.state(), LifecycleState::Visible);
    }

    #[test]
    fn snapshot_reads_walk_the_version_chain() {
        let r = Record::new(Value::from_u64(10));
        r.install(Value::from_u64(20), 5);
        r.install(Value::from_u64(30), 9);
        // Initial image at cts 0, then versions at 5 and 9.
        assert_eq!(r.read_at(0), SnapshotRead::Value(Value::from_u64(10)));
        assert_eq!(r.read_at(4), SnapshotRead::Value(Value::from_u64(10)));
        assert_eq!(r.read_at(5), SnapshotRead::Value(Value::from_u64(20)));
        assert_eq!(r.read_at(8), SnapshotRead::Value(Value::from_u64(20)));
        assert_eq!(r.read_at(9), SnapshotRead::Value(Value::from_u64(30)));
        assert_eq!(
            r.read_at(u64::MAX - 2),
            SnapshotRead::Value(Value::from_u64(30))
        );
    }

    #[test]
    fn snapshot_sees_deletions_as_absent_below_and_at_horizon() {
        let r = Record::new(Value::from_u64(1));
        r.install(Value::from_u64(2), 3);
        r.install_tombstone(7);
        assert_eq!(r.read_at(6), SnapshotRead::Value(Value::from_u64(2)));
        assert_eq!(r.read_at(7), SnapshotRead::Absent);
        // Reinsert after the delete: the deletion version stays in history.
        r.install(Value::from_u64(9), 11);
        assert_eq!(r.read_at(10), SnapshotRead::Absent);
        assert_eq!(r.read_at(11), SnapshotRead::Value(Value::from_u64(9)));
        assert_eq!(r.read_at(3), SnapshotRead::Value(Value::from_u64(2)));
    }

    #[test]
    fn uncommitted_inserts_are_invisible_to_snapshots() {
        let r = Record::new_uncommitted(Value::zeroed(8), t(1));
        // Unanswerable, not absent: an earlier incarnation of the key may
        // have been reclaimed before this record was created.
        assert_eq!(r.read_at(100), SnapshotRead::Miss);
        r.install(Value::from_u64(5), 50);
        assert_eq!(r.read_at(49), SnapshotRead::Miss);
        assert_eq!(r.read_at(50), SnapshotRead::Value(Value::from_u64(5)));
    }

    #[test]
    fn untimestamped_installs_force_fallback() {
        let r = Record::new(Value::from_u64(1));
        r.install_next_version(Value::from_u64(2));
        assert_eq!(r.read_at(0), SnapshotRead::Miss);
        assert_eq!(r.read_at(u64::MAX - 2), SnapshotRead::Miss);
        // A timestamped install closes the gap from its cts upward.
        r.install(Value::from_u64(3), 40);
        assert_eq!(r.read_at(40), SnapshotRead::Value(Value::from_u64(3)));
        assert_eq!(r.read_at(39), SnapshotRead::Miss);
    }

    #[test]
    fn capacity_eviction_raises_the_floor() {
        let r = Record::new(Value::from_u64(0));
        r.set_max_versions(2);
        r.install(Value::from_u64(1), 10);
        r.install(Value::from_u64(2), 20);
        // Chain holds current (cts 20) + one history version (cts 10); the
        // initial image was evicted.
        assert_eq!(r.version_chain_len(), 1);
        assert_eq!(r.read_at(20), SnapshotRead::Value(Value::from_u64(2)));
        assert_eq!(r.read_at(10), SnapshotRead::Value(Value::from_u64(1)));
        assert_eq!(r.read_at(9), SnapshotRead::Miss);
    }

    #[test]
    fn single_version_records_miss_below_current() {
        let r = Record::new(Value::from_u64(0));
        r.set_max_versions(1);
        r.install(Value::from_u64(1), 10);
        assert_eq!(r.version_chain_len(), 0);
        assert_eq!(r.read_at(10), SnapshotRead::Value(Value::from_u64(1)));
        assert_eq!(r.read_at(9), SnapshotRead::Miss);
    }

    #[test]
    fn timestamped_counter_installs_serve_snapshots() {
        let r = Record::new(Value::from_u64(1));
        let w1 = r.install_next_version_at(Value::from_u64(2), 17);
        let w2 = r.install_tombstone_next_version_at(23);
        assert!(w2 > w1, "wts keeps counting for OCC validation");
        assert_eq!(r.read_at(16), SnapshotRead::Value(Value::from_u64(1)));
        assert_eq!(r.read_at(17), SnapshotRead::Value(Value::from_u64(2)));
        assert_eq!(r.read_at(23), SnapshotRead::Absent);
    }

    #[test]
    fn revert_purges_rolled_back_versions() {
        let r = Record::new(Value::from_u64(1));
        r.install(Value::from_u64(2), 5);
        r.install(Value::from_u64(3), 9); // crash-rolled-back
        r.revert(Value::from_u64(2), 9);
        assert_eq!(r.read_at(9), SnapshotRead::Value(Value::from_u64(2)));
        assert_eq!(r.read_at(8), SnapshotRead::Value(Value::from_u64(2)));
        assert_eq!(r.read_at(4), SnapshotRead::Value(Value::from_u64(1)));
        // Rolled-back insert reverts to a tombstone.
        let s = Record::new(Value::from_u64(7));
        s.install(Value::from_u64(8), 4); // crash-rolled-back
        s.revert_to_tombstone(4);
        assert_eq!(s.state(), LifecycleState::Tombstone);
        assert_eq!(s.read_at(4), SnapshotRead::Absent);
        assert_eq!(s.read_at(3), SnapshotRead::Value(Value::from_u64(7)));
    }

    #[test]
    fn prune_drops_only_shadowed_versions() {
        let r = Record::new(Value::from_u64(0));
        r.set_max_versions(8);
        for (v, ts) in [(1u64, 10u64), (2, 20), (3, 30)] {
            r.install(Value::from_u64(v), ts);
        }
        assert_eq!(r.version_chain_len(), 3);
        // Bound 20: version at 20 still serves [20, 30), so only the initial
        // image and the version at 10 are shadowed.
        assert_eq!(r.prune_versions(20), 2);
        assert_eq!(r.read_at(20), SnapshotRead::Value(Value::from_u64(2)));
        assert_eq!(r.read_at(19), SnapshotRead::Miss);
        // Bound past the current version: all history goes.
        assert_eq!(r.prune_versions(30), 1);
        assert_eq!(r.version_chain_len(), 0);
        assert_eq!(r.read_at(30), SnapshotRead::Value(Value::from_u64(3)));
        assert_eq!(r.prune_versions(30), 0);
    }

    #[test]
    fn restored_records_answer_only_from_their_restore_point() {
        let r = Record::restored(Value::from_u64(5), 12);
        assert_eq!(r.read_at(12), SnapshotRead::Value(Value::from_u64(5)));
        assert_eq!(r.read_at(11), SnapshotRead::Miss);
        assert_eq!(r.timestamps(), (12, 12));
    }

    #[test]
    fn record_lock_is_usable_through_record() {
        let r = Record::new(Value::from_u64(0));
        assert_eq!(
            r.acquire(t(1), LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Granted
        );
        assert_eq!(
            r.acquire(t(2), LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Abort
        );
        r.release(t(1));
        assert!(!r.lock().is_locked());
    }
}
