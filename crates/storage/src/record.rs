//! A single record: payload + TicToc timestamps + its lock.

use crate::lock::{LockMode, LockPolicy, LockRequestResult, RecordLock};
use parking_lot::Mutex;
use primo_common::{Row, TxnId, Value};

/// The versioned payload of a record together with its TicToc metadata.
///
/// `wts` is the logical time the current version was written; `rts` is the
/// end of the interval in which the version is known to be valid
/// (`rts >= wts`, §4.2.1).
#[derive(Debug, Clone)]
pub struct RecordData {
    pub value: Value,
    pub wts: u64,
    pub rts: u64,
}

/// A record stored in a partition.
///
/// The payload/timestamps are protected by a short-critical-section mutex;
/// transaction-duration ownership is expressed through the embedded
/// [`RecordLock`]. Protocols combine the two as they see fit: 2PL/WCF hold
/// the lock across the transaction, OCC schemes only lock during
/// validation/installation.
#[derive(Debug)]
pub struct Record {
    data: Mutex<RecordData>,
    lock: RecordLock,
}

impl Record {
    pub fn new(value: Value) -> Self {
        Record {
            data: Mutex::new(RecordData {
                value,
                wts: 0,
                rts: 0,
            }),
            lock: RecordLock::new(),
        }
    }

    /// Atomically snapshot the payload and timestamps.
    pub fn read(&self) -> Row {
        let d = self.data.lock();
        Row::new(d.value.clone(), d.wts, d.rts)
    }

    /// Current `(wts, rts)` pair.
    pub fn timestamps(&self) -> (u64, u64) {
        let d = self.data.lock();
        (d.wts, d.rts)
    }

    /// Current write timestamp (doubles as Silo's TID word / version).
    pub fn wts(&self) -> u64 {
        self.data.lock().wts
    }

    /// Install a new version with `wts = rts = ts` (TicToc write rule).
    pub fn install(&self, value: Value, ts: u64) {
        let mut d = self.data.lock();
        d.value = value;
        d.wts = ts;
        d.rts = ts;
    }

    /// Install a new version, bumping the version counter by one (used by
    /// protocols without logical timestamps, e.g. plain 2PL and Silo).
    pub fn install_next_version(&self, value: Value) -> u64 {
        let mut d = self.data.lock();
        d.value = value;
        d.wts += 1;
        d.rts = d.wts;
        d.wts
    }

    /// Extend the valid interval so that it covers `ts` (TicToc
    /// `rts = max(rts, ts)`).
    pub fn extend_rts(&self, ts: u64) {
        let mut d = self.data.lock();
        if d.rts < ts {
            d.rts = ts;
        }
    }

    /// Raise both timestamps to at least `floor`. Used by participants to
    /// enforce watermark monotonicity (R2 in §5.1): if `wts <= Wp`, set
    /// `wts = rts = Wp + 1` before returning the record to the coordinator.
    pub fn raise_watermark_floor(&self, floor: u64) {
        let mut d = self.data.lock();
        if d.wts <= floor {
            d.wts = floor + 1;
            if d.rts < d.wts {
                d.rts = d.wts;
            }
        }
    }

    /// The record's lock.
    pub fn lock(&self) -> &RecordLock {
        &self.lock
    }

    /// Convenience: acquire this record's lock.
    pub fn acquire(&self, txn: TxnId, mode: LockMode, policy: LockPolicy) -> LockRequestResult {
        self.lock.acquire(txn, mode, policy)
    }

    /// Convenience: release this record's lock.
    pub fn release(&self, txn: TxnId) {
        self.lock.release(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::PartitionId;

    fn t(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    #[test]
    fn install_sets_both_timestamps() {
        let r = Record::new(Value::from_u64(1));
        r.install(Value::from_u64(2), 7);
        let row = r.read();
        assert_eq!(row.value.as_u64(), 2);
        assert_eq!((row.wts, row.rts), (7, 7));
    }

    #[test]
    fn extend_rts_never_shrinks() {
        let r = Record::new(Value::from_u64(0));
        r.install(Value::from_u64(1), 5);
        r.extend_rts(9);
        assert_eq!(r.timestamps(), (5, 9));
        r.extend_rts(3);
        assert_eq!(r.timestamps(), (5, 9));
    }

    #[test]
    fn next_version_increments() {
        let r = Record::new(Value::from_u64(0));
        let v1 = r.install_next_version(Value::from_u64(1));
        let v2 = r.install_next_version(Value::from_u64(2));
        assert!(v2 > v1);
        assert_eq!(r.wts(), v2);
    }

    #[test]
    fn watermark_floor_raises_old_records() {
        let r = Record::new(Value::from_u64(0));
        r.install(Value::from_u64(1), 3);
        r.raise_watermark_floor(10);
        assert_eq!(r.timestamps(), (11, 11));
        // Already-new records are untouched.
        r.install(Value::from_u64(2), 20);
        r.raise_watermark_floor(10);
        assert_eq!(r.timestamps(), (20, 20));
    }

    #[test]
    fn record_lock_is_usable_through_record() {
        let r = Record::new(Value::from_u64(0));
        assert_eq!(
            r.acquire(t(1), LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Granted
        );
        assert_eq!(
            r.acquire(t(2), LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Abort
        );
        r.release(t(1));
        assert!(!r.lock().is_locked());
    }
}
